//! Serialization round-trip suite: the on-disk checkpoint format must
//! be bit-stable over the *entire* gate surface (every `Gate` variant,
//! exact IEEE-754 phase bits, `Mcx` arities), pinned by a committed
//! golden fixture, and must refuse future format versions with a typed
//! error instead of misreading them.
//!
//! Bit-stability is asserted on the encoded bytes
//! (`encode → decode → encode` equality), which is stronger than value
//! equality and survives values `PartialEq` can't compare (NaN phases).

use proptest::prelude::*;
use qcir::persist::{self, PersistError, FORMAT_VERSION};
use qcir::{Circuit, Gate};
use tetrislock::job::{JobConfig, JobState};

/// Encode → decode → encode must reproduce the same bytes.
fn assert_bit_stable<T>(value: &T)
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let bytes = serde::to_bytes(value);
    let decoded: T = serde::from_bytes(&bytes).expect("decode what we encoded");
    assert_eq!(
        bytes,
        serde::to_bytes(&decoded),
        "re-encoding changed the bytes"
    );
}

/// One instruction per `Gate` variant, including parametrized ones with
/// phases whose *bits* matter (negative zero, subnormals, non-dyadic).
fn every_gate_circuit() -> Circuit {
    let tricky = [
        0.0,
        -0.0,
        std::f64::consts::PI,
        f64::MIN_POSITIVE,
        -1.0e-300,
        1.0 / 3.0,
    ];
    let mut c = Circuit::with_name(8, "gate_surface");
    let one_q: [Gate; 11] = [
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::Sx,
        Gate::Sxdg,
    ];
    for (i, g) in one_q.into_iter().enumerate() {
        c.append(g, &[(i as u32) % 8]).unwrap();
    }
    for (i, &a) in tricky.iter().enumerate() {
        let q = (i as u32) % 8;
        c.append(Gate::Rx(a), &[q]).unwrap();
        c.append(Gate::Ry(a), &[q]).unwrap();
        c.append(Gate::Rz(a), &[q]).unwrap();
        c.append(Gate::P(a), &[q]).unwrap();
        c.append(Gate::U(a, -a, a * 0.5), &[q]).unwrap();
        c.append(Gate::CP(a), &[q, (q + 1) % 8]).unwrap();
        c.append(Gate::CRz(a), &[q, (q + 1) % 8]).unwrap();
    }
    for g in [Gate::CX, Gate::CY, Gate::CZ, Gate::CH, Gate::Swap] {
        c.append(g, &[0, 1]).unwrap();
    }
    c.append(Gate::CCX, &[0, 1, 2]).unwrap();
    c.append(Gate::CSwap, &[3, 4, 5]).unwrap();
    for controls in 1..=7u32 {
        let wires: Vec<u32> = (0..=controls).collect();
        c.append(Gate::Mcx(controls), &wires).unwrap();
    }
    c
}

#[test]
fn every_gate_variant_roundtrips_bit_stable() {
    assert_bit_stable(&every_gate_circuit());
}

#[test]
fn job_state_roundtrips_bit_stable() {
    // A job advanced halfway has every kind of field populated: config,
    // enums, nested circuits, Option products, BTreeMaps of wire maps.
    let out = std::env::temp_dir().join(format!("tlk_persist_rt_{}", std::process::id()));
    std::fs::create_dir_all(&out).unwrap();
    let mut circuit = Circuit::with_name(4, "persist_rt");
    circuit.h(0).cx(0, 1).ccx(0, 1, 2).cx(2, 3);
    let mut job = JobState::new("rt", circuit, JobConfig::default());
    for _ in 0..5 {
        job.advance(&out).unwrap();
    }
    assert_bit_stable(&job);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn derived_impls_are_not_noop_shims() {
    // Regression guard for the old vendored-serde trap: the derive used
    // to expand to nothing, so `to_bytes` on any value silently produced
    // an empty buffer. Real impls must produce non-empty, decodable
    // encodings.
    let c = every_gate_circuit();
    let bytes = serde::to_bytes(&c);
    assert!(
        bytes.len() > 100,
        "encoding a {}-gate circuit produced only {} bytes — derive is a no-op again?",
        c.gate_count(),
        bytes.len()
    );
    let back: Circuit = serde::from_bytes(&bytes).expect("decode");
    assert_eq!(back.num_qubits(), c.num_qubits());
    assert_eq!(back.gate_count(), c.gate_count());
}

// ---------------------------------------------------------------------
// Golden fixture: pins the v1 on-disk bytes. If this test fails after
// an intentional format change, bump `persist::FORMAT_VERSION` and
// regenerate with `TLK_REGEN_FIXTURES=1 cargo test -p tetrislock-tests
// --test persist_roundtrip`.
// ---------------------------------------------------------------------

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/persist_v1.bin")
}

/// Deterministic fixture value: a mid-pipeline job state over the full
/// gate surface (no compile stages — those depend on qcompile's output,
/// which may legitimately evolve; the fixture pins *serialization*, not
/// the compiler).
fn fixture_value() -> JobState {
    let mut job = JobState::new("golden", every_gate_circuit(), JobConfig::default());
    job.steps_done = 2;
    job
}

#[test]
fn golden_fixture_matches_current_encoder() {
    let path = fixture_path();
    let current = persist::to_envelope(&fixture_value());
    if std::env::var("TLK_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &current).unwrap();
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with TLK_REGEN_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        golden, current,
        "on-disk format drifted from the committed v1 fixture — if intentional, \
         bump qcir::persist::FORMAT_VERSION and regenerate the fixture"
    );
}

#[test]
fn golden_fixture_still_decodes() {
    if std::env::var("TLK_REGEN_FIXTURES").is_ok() {
        return;
    }
    let golden = std::fs::read(fixture_path()).expect("fixture committed");
    let job: JobState = persist::from_envelope(&golden).expect("v1 fixture decodes");
    assert_eq!(job.id, "golden");
    assert_eq!(job.steps_done, 2);
    assert_eq!(
        serde::to_bytes(&job.original),
        serde::to_bytes(&every_gate_circuit())
    );
}

#[test]
fn bumped_version_is_refused_with_typed_error() {
    let mut envelope = persist::to_envelope(&fixture_value());
    // Version is the little-endian u32 right after the 4-byte magic, and
    // it is checked before the checksum — exactly so that forward
    // refusal does not depend on the rest of the file being intact.
    let future = FORMAT_VERSION + 1;
    envelope[4..8].copy_from_slice(&future.to_le_bytes());
    match persist::from_envelope::<JobState>(&envelope) {
        Err(PersistError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, future);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Property tests: arbitrary circuits over the full gate surface.
// ---------------------------------------------------------------------

/// Any 64-bit pattern reinterpreted as `f64` — including NaN payloads,
/// infinities, negative zero, and subnormals; the codec stores raw
/// IEEE-754 bits, so even non-values must survive.
fn arb_angle() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(f64::from_bits)
}

/// Strategy producing any gate variant with arbitrary angle bits.
fn arb_gate(n: u32) -> impl Strategy<Value = (Gate, Vec<u32>)> {
    let wire = move || 0..n;
    prop_oneof![
        (0u8..11, wire()).prop_map(|(k, q)| {
            let g = [
                Gate::I,
                Gate::X,
                Gate::Y,
                Gate::Z,
                Gate::H,
                Gate::S,
                Gate::Sdg,
                Gate::T,
                Gate::Tdg,
                Gate::Sx,
                Gate::Sxdg,
            ][k as usize]
                .clone();
            (g, vec![q])
        }),
        (0u8..4, arb_angle(), wire()).prop_map(|(k, a, q)| {
            let g = match k {
                0 => Gate::Rx(a),
                1 => Gate::Ry(a),
                2 => Gate::Rz(a),
                _ => Gate::P(a),
            };
            (g, vec![q])
        }),
        (arb_angle(), arb_angle(), arb_angle(), wire())
            .prop_map(|(t, p, l, q)| (Gate::U(t, p, l), vec![q])),
        (0u8..6, wire(), wire(), arb_angle()).prop_filter_map(
            "distinct wires",
            |(k, a, b, phi)| {
                if a == b {
                    return None;
                }
                let g = match k {
                    0 => Gate::CX,
                    1 => Gate::CY,
                    2 => Gate::CZ,
                    3 => Gate::CH,
                    4 => Gate::CP(phi),
                    _ => Gate::CRz(phi),
                };
                Some((g, vec![a, b]))
            }
        ),
        (wire(), wire()).prop_filter_map("distinct wires", |(a, b)| {
            (a != b).then(|| (Gate::Swap, vec![a, b]))
        }),
        (wire(), wire(), wire()).prop_filter_map("distinct wires", |(a, b, c)| {
            (a != b && b != c && a != c).then_some(())?;
            Some((Gate::CCX, vec![a, b, c]))
        }),
        (wire(), wire(), wire()).prop_filter_map("distinct wires", |(a, b, c)| {
            (a != b && b != c && a != c).then(|| (Gate::CSwap, vec![a, b, c]))
        }),
        (1..n).prop_map(move |controls| {
            // Mcx over the first controls+1 wires (distinct by
            // construction).
            (Gate::Mcx(controls), (0..=controls).collect())
        }),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (3u32..=8, 0usize..40).prop_flat_map(|(n, len)| {
        proptest::collection::vec(arb_gate(n), 0..=len).prop_map(move |gates| {
            let mut c = Circuit::with_name(n, "arb");
            for (g, wires) in gates {
                c.append(g, &wires).expect("generated wires valid");
            }
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_circuits_roundtrip_bit_stable(c in arb_circuit()) {
        let bytes = serde::to_bytes(&c);
        let back: Circuit = serde::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(&bytes, &serde::to_bytes(&back));
        prop_assert_eq!(back.num_qubits(), c.num_qubits());
        prop_assert_eq!(back.gate_count(), c.gate_count());
    }

    #[test]
    fn arbitrary_circuits_survive_the_envelope(c in arb_circuit()) {
        let envelope = persist::to_envelope(&c);
        let back: Circuit = persist::from_envelope(&envelope).expect("envelope decode");
        prop_assert_eq!(serde::to_bytes(&c), serde::to_bytes(&back));
    }

    #[test]
    fn raw_f64_bits_are_exact(bits in 0u64..=u64::MAX) {
        // Straight to the codec: any 64-bit pattern — NaN payloads,
        // negative zero, subnormals — must survive exactly.
        let x = f64::from_bits(bits);
        let bytes = serde::to_bytes(&x);
        let back: f64 = serde::from_bytes(&bytes).expect("decode f64");
        prop_assert_eq!(back.to_bits(), bits);
    }
}
