//! Full-pipeline trace round-trip: run the real
//! obfuscate → split → compile → recombine → verify pipeline with a
//! memory sink at full level, then schema-validate the emitted trace,
//! re-parse every line, and check the signals each layer promised.
//!
//! The qobs level and sink are process-global. This file gets its own
//! test binary (its own process), so it cannot disturb the other
//! suites; within the file every test serializes on `TEST_LOCK` and
//! installs its own sink.

use qcir::Circuit;
use std::sync::Mutex;
use tetrislock::recombine::recombine;
use tetrislock::Obfuscator;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A non-Clifford sample so verification cannot shortcut through the
/// classical or tableau tiers.
fn sample() -> Circuit {
    let mut c = Circuit::with_name(4, "trace_sample");
    c.h(0).cx(0, 1).t(1).cx(1, 2).tdg(2).cx(0, 3).h(3);
    c
}

#[test]
fn full_pipeline_trace_is_schema_valid_and_parseable() {
    let _guard = lock();
    qobs::set_level(qobs::Level::Full);
    let sink = qobs::set_trace_memory();
    qobs::run_meta(&[
        ("command", qobs::AttrValue::from("pipeline_test")),
        (
            "qsim_workers",
            qobs::AttrValue::from(qsim::resolved_workers()),
        ),
    ]);

    // The pipeline under trace: protect, compile each segment,
    // recombine, verify against the original.
    let circuit = sample();
    let obf = Obfuscator::new().with_seed(3).obfuscate(&circuit);
    let split = obf.split(7);
    let device = qsim::Device::ideal(4);
    let transpiled = qcompile::Transpiler::new(device)
        .transpile(&split.left.circuit)
        .expect("segment transpiles");
    assert!(transpiled.circuit.gate_count() > 0);
    let restored = recombine(&split).expect("recombination is total");
    let report = qverify::Verifier::new().check_report(&circuit, &restored);
    assert!(report.verdict.is_equivalent());

    // A phase-only inequivalent pair: the ZX tier certifies it through
    // the phase replay, so the witness counters land in this trace.
    let mut t = Circuit::new(2);
    t.t(0);
    let mut tdg = Circuit::new(2);
    tdg.tdg(0);
    let phase = qverify::Verifier::new().check_report(&t, &tdg);
    assert_eq!(phase.tier, qverify::Tier::Zx);
    assert!(phase.verdict.is_inequivalent());

    // A deliberately inequivalent dense-tier check so the statevector
    // kernels run inside this same trace: the 8-control mcx refuses ZX
    // translation, so the miter never becomes a diagram and the dense
    // tier decides.
    let mut wide = Circuit::new(9);
    wide.mcx(&[0, 1, 2, 3, 4, 5, 6, 7], 8).t(8);
    let mut wide_bad = Circuit::new(9);
    wide_bad.mcx(&[0, 1, 2, 3, 4, 5, 6, 7], 8).tdg(8);
    let dense = qverify::Verifier::new().check_report(&wide, &wide_bad);
    assert_eq!(dense.tier, qverify::Tier::Dense);
    assert!(dense.verdict.is_inequivalent());

    qobs::flush();
    let text = sink.contents();
    qobs::clear_trace();

    // Schema-valid end to end.
    let summary = qobs::schema::validate_trace(&text)
        .unwrap_or_else(|e| panic!("invalid trace: {e}\n{text}"));
    assert!(
        summary.spans >= 6,
        "expected pipeline + verify spans:\n{text}"
    );
    assert!(summary.counters > 0 && summary.lines > summary.spans);

    // Every line re-parses as a flat JSON object with a type tag.
    for line in text.lines() {
        let obj = qobs::json::parse_line(line)
            .unwrap_or_else(|e| panic!("unparseable line `{line}`: {e}"));
        assert!(obj.get_str("type").is_some(), "untyped line `{line}`");
    }

    // The signals each instrumented layer promised.
    for needle in [
        "\"qsim_workers\"",
        "\"name\":\"core.obfuscate\"",
        "\"name\":\"core.split\"",
        "\"name\":\"compile.transpile\"",
        "\"name\":\"core.recombine\"",
        "\"name\":\"verify.check\"",
        "\"name\":\"verify.tier\"",
        "\"tier\":\"dense\"",
        "\"outcome\":\"decided\"",
        "qsim.kernel.",
        "qverify.tier.dense.entered",
        "qverify.tier.dense.elapsed_us",
        "qverify.zx.witness.basis_replays",
        "qverify.zx.witness.phase_replays",
        "qverify.zx.witness.confirmed",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }

    // And the report renderer accepts the same document.
    let rendered = qobs::report::summarize(&text).expect("report renders the trace");
    assert!(rendered.contains("verify.tier[dense]"), "{rendered}");
    assert!(rendered.contains("<- decided"), "{rendered}");
}

#[test]
fn spans_nest_with_resolvable_parents() {
    let _guard = lock();
    qobs::set_level(qobs::Level::Full);
    let sink = qobs::set_trace_memory();
    qobs::run_meta(&[]);

    {
        let _outer = qobs::span("outer");
        let _inner = qobs::span("inner");
    }

    qobs::flush();
    let text = sink.contents();
    qobs::clear_trace();

    qobs::schema::validate_trace(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    let inner_line = text
        .lines()
        .find(|l| l.contains("\"name\":\"inner\""))
        .expect("inner span emitted");
    let inner = qobs::json::parse_line(inner_line).unwrap();
    let parent = inner.get_u64("parent").expect("inner has a parent");
    let outer_line = text
        .lines()
        .find(|l| l.contains("\"name\":\"outer\""))
        .expect("outer span emitted");
    let outer = qobs::json::parse_line(outer_line).unwrap();
    assert_eq!(outer.get_u64("id"), Some(parent));
}
