//! Observability overhead pins: with `QOBS=off` the instrumented qsim
//! hot path must stay within noise of the pre-instrumentation (PR 6)
//! engine.
//!
//! There is no uninstrumented binary left to race against, so the pin
//! has two parts, both at the 16-qubit smoke scale `perfdump` and
//! `fusion_regression` time:
//!
//! 1. the exact wall-clock bound the seed pinned (fused ≤ unfused ×
//!    1.5 + 5 ms, best-of-4) still holds with the instrumentation
//!    compiled in and disabled — the "no worse than the seed" contract
//!    in the seed's own terms;
//! 2. disabled instrumentation is not slower than counter-level
//!    instrumentation beyond the same noise allowance — the off path
//!    really is the cheap path (one relaxed atomic load per probe).
//!
//! The qobs level is process-global; this file is its own test binary,
//! and its tests serialize on `TEST_LOCK` and restore the level they
//! found.

use qsim::{ExecConfig, Statevector};
use std::sync::Mutex;
use std::time::Instant;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn best_of_4(circuit: &qcir::Circuit, config: &ExecConfig) -> f64 {
    let mut best = f64::INFINITY;
    // First iteration doubles as warmup; best-of keeps the noise
    // one-sided.
    for _ in 0..4 {
        let mut sv = Statevector::zero(circuit.num_qubits()).expect("within cap");
        let start = Instant::now();
        sv.apply_circuit_with(circuit, config).expect("fits");
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(sv.probability(0));
    }
    best
}

/// Part 1: the seed's own wall-clock bound, re-run with the
/// instrumented engine at `QOBS=off`.
#[test]
fn qobs_off_keeps_seed_fusion_wall_clock_bound() {
    let _guard = lock();
    let prior = qobs::level();
    qobs::set_level(qobs::Level::Off);

    let circuit = bench::clifford_t_circuit(16, 200);
    let fused = best_of_4(&circuit, &ExecConfig::default());
    let unfused = best_of_4(&circuit, &ExecConfig::unfused());
    qobs::set_level(prior);
    assert!(
        fused <= unfused * 1.5 + 0.005,
        "QOBS=off: fused {fused:.6}s vs unfused {unfused:.6}s at 16q"
    );
}

/// Part 2: `QOBS=off` is not slower than `QOBS=counters` beyond the
/// same lenient noise allowance.
#[test]
fn qobs_off_not_slower_than_counters() {
    let _guard = lock();
    let prior = qobs::level();
    let circuit = bench::clifford_t_circuit(16, 200);

    qobs::set_level(qobs::Level::Off);
    let off = best_of_4(&circuit, &ExecConfig::default());
    qobs::set_level(qobs::Level::Counters);
    let counters = best_of_4(&circuit, &ExecConfig::default());
    qobs::set_level(prior);

    assert!(
        off <= counters * 1.5 + 0.005,
        "QOBS=off {off:.6}s vs QOBS=counters {counters:.6}s at 16q"
    );
}
