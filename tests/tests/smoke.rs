//! Workspace smoke test: the full paper pipeline (Fig. 2) end-to-end,
//! touching every crate — a RevLib benchmark (`revlib`) is obfuscated and
//! split (`tetrislock`), both segments are transpiled by different
//! "untrusted compilers" (`qcompile`), the results are recombined and
//! verified by unitary equivalence and simulation (`qsim`), compared
//! distributionally (`qmetrics`), and round-tripped through OpenQASM
//! (`qcir`).

use qcir::{Circuit, Qubit};
use qcompile::{OptimizationLevel, Transpiler};
use qmetrics::{accuracy, tvd};
use qsim::unitary::equivalent_up_to_phase;
use qsim::{Device, Sampler, Statevector};
use revlib::adder_1bit;
use std::collections::BTreeMap;
use tetrislock::recombine::{recombine, recombine_compiled};
use tetrislock::Obfuscator;

const SEED: u64 = 2025;
const EPS: f64 = 1e-9;

#[test]
fn paper_pipeline_end_to_end() {
    // 1. revlib: a Table-I benchmark with an independent reference model.
    let bench = adder_1bit();
    assert_eq!(bench.verify_exhaustive(), None, "benchmark self-check");
    let original = bench.circuit();

    // 2. tetrislock obfuscation: R⁻¹R inserted into empty slots — same
    //    function, same depth (the paper's zero-overhead claim).
    let obf = Obfuscator::new().with_seed(SEED).obfuscate(original);
    assert!(obf.inserted_count() > 0, "expected gates to be inserted");
    assert_eq!(obf.obfuscated().depth(), original.depth());

    // 3. Interlocking split: every inserted R gate is separated from its
    //    R⁻¹ partner, so neither compiler sees a cancelable pair.
    let split = obf.split(SEED + 7);
    assert!(split.left.circuit.gate_count() > 0);
    assert!(split.right.circuit.gate_count() > 0);
    assert_eq!(
        split.left.circuit.gate_count() + split.right.circuit.gate_count(),
        obf.obfuscated().gate_count()
    );

    // 4. Designer-side recombination of the raw segments restores the
    //    original unitary exactly (up to global phase).
    let restored = recombine(&split).expect("recombination is total");
    assert!(
        equivalent_up_to_phase(&restored, original, EPS).expect("fits in simulator"),
        "raw recombination must restore the original unitary"
    );

    // 5. qcompile: each segment goes to a *different* untrusted compiler.
    let device = Device::fake_valencia();
    let compiler_a = Transpiler::new(device.clone()).with_optimization(OptimizationLevel::Full);
    let compiler_b = Transpiler::new(device)
        .with_optimization(OptimizationLevel::Light)
        .with_trivial_layout();
    let left = compiler_a
        .transpile(&split.left.circuit)
        .expect("left segment fits")
        .into_logical_circuit();
    let right = compiler_b
        .transpile(&split.right.circuit)
        .expect("right segment fits")
        .into_logical_circuit();

    // 6. Recombine the *compiled* segments and check the assembled
    //    circuit computes the original function (data wires agree on the
    //    all-zeros input; routing ancillas start and end in |0⟩).
    let n = original.num_qubits();
    let (lmap, next_free) = extend_map(&split.left.wire_map, &left, n);
    let (rmap, total) = extend_map(&split.right.wire_map, &right, next_free);
    let assembled =
        recombine_compiled(total, &left, &lmap, &right, &rmap).expect("wire maps are total");
    let expected = Statevector::from_circuit(original).expect("fits");
    let actual = Statevector::from_circuit(&assembled).expect("fits");
    let mut marginal = vec![0.0f64; 1usize << n];
    for (index, amp) in actual.amplitudes().iter().enumerate() {
        marginal[index & ((1 << n) - 1)] += amp.norm_sqr();
    }
    for (index, p) in expected.probabilities().iter().enumerate() {
        assert!(
            (marginal[index] - p).abs() < EPS,
            "probability mismatch on basis state {index}: {} vs {p}",
            marginal[index]
        );
    }

    // 7. qmetrics: ideal sampling of original vs restored is
    //    distribution-identical (TVD 0) and lands on the reference output.
    let sampler = Sampler::new(1000).with_seed(SEED);
    let counts_original = sampler.run_ideal(original).expect("fits");
    let counts_restored = sampler.run_ideal(&restored).expect("fits");
    assert!(tvd(&counts_original, &counts_restored) < EPS);
    let reference_output = bench.eval(0);
    assert!((accuracy(&counts_original, reference_output) - 1.0).abs() < EPS);

    // 8. qcir: the restored design survives an OpenQASM round trip.
    let qasm = qcir::qasm::to_qasm(&restored);
    let back = qcir::qasm::from_qasm(&qasm).expect("emitted QASM parses");
    assert_eq!(back.instructions(), restored.instructions());
}

/// Inverts a split wire map (original → segment) into segment → original
/// and extends it with fresh wires for the compiler's routing ancillas.
fn extend_map(
    split_map: &BTreeMap<Qubit, Qubit>,
    logical: &Circuit,
    mut next_free: u32,
) -> (BTreeMap<Qubit, Qubit>, u32) {
    let mut map: BTreeMap<Qubit, Qubit> = split_map.iter().map(|(&o, &s)| (s, o)).collect();
    for wire in 0..logical.num_qubits() {
        map.entry(Qubit::new(wire)).or_insert_with(|| {
            let fresh = next_free;
            next_free += 1;
            Qubit::new(fresh)
        });
    }
    (map, next_free)
}
