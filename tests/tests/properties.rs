//! Property-based tests (proptest) over randomly generated circuits:
//! the TetrisLock invariants must hold for *arbitrary* classical
//! reversible circuits, not just the RevLib set.

use proptest::prelude::*;
use qcir::{Circuit, Gate};
use revlib::spec::classical_eval;
use tetrislock::recombine::recombine;
use tetrislock::{InsertionConfig, Obfuscator};

/// Strategy: a random classical reversible circuit over `n` qubits.
fn classical_circuit(max_qubits: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (3..=max_qubits, 1..=max_gates).prop_flat_map(|(n, len)| {
        let gate = prop_oneof![
            // X on a random wire.
            (0..n).prop_map(|q| (Gate::X, vec![q])),
            // CX on two distinct wires.
            (0..n, 0..n).prop_filter_map("distinct wires", move |(a, b)| {
                (a != b).then(|| (Gate::CX, vec![a, b]))
            }),
            // CCX on three distinct wires.
            (0..n, 0..n, 0..n).prop_filter_map("distinct wires", move |(a, b, c)| {
                (a != b && b != c && a != c).then(|| (Gate::CCX, vec![a, b, c]))
            }),
        ];
        proptest::collection::vec(gate, 1..=len).prop_map(move |gates| {
            let mut circuit = Circuit::with_name(n, "prop");
            for (g, wires) in gates {
                circuit.append(g, &wires).expect("generated wires valid");
            }
            circuit
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn obfuscation_preserves_depth(
        circuit in classical_circuit(7, 20),
        seed in 0u64..1000,
    ) {
        let obf = Obfuscator::new().with_seed(seed).obfuscate(&circuit);
        prop_assert_eq!(obf.obfuscated().depth(), circuit.depth());
    }

    #[test]
    fn obfuscation_preserves_function_on_all_inputs(
        circuit in classical_circuit(6, 16),
        seed in 0u64..1000,
    ) {
        let obf = Obfuscator::new().with_seed(seed).obfuscate(&circuit);
        let n = circuit.num_qubits();
        for input in 0..1usize << n {
            prop_assert_eq!(
                classical_eval(obf.obfuscated(), input).unwrap(),
                classical_eval(&circuit, input).unwrap(),
                "diverged at input {}", input
            );
        }
    }

    #[test]
    fn split_recombination_is_exact(
        circuit in classical_circuit(6, 16),
        seed in 0u64..1000,
        split_seed in 0u64..1000,
    ) {
        let obf = Obfuscator::new().with_seed(seed).obfuscate(&circuit);
        let split = obf.split(split_seed);
        let restored = recombine(&split).unwrap();
        let n = circuit.num_qubits();
        for input in 0..1usize << n {
            prop_assert_eq!(
                classical_eval(&restored, input).unwrap(),
                classical_eval(&circuit, input).unwrap(),
                "diverged at input {}", input
            );
        }
    }

    #[test]
    fn split_partitions_gate_count(
        circuit in classical_circuit(7, 20),
        seed in 0u64..1000,
    ) {
        let obf = Obfuscator::new().with_seed(seed).obfuscate(&circuit);
        let split = obf.split(seed ^ 0xABCD);
        prop_assert_eq!(
            split.left.circuit.gate_count() + split.right.circuit.gate_count(),
            obf.obfuscated().gate_count()
        );
    }

    #[test]
    fn gate_budget_respected(
        circuit in classical_circuit(7, 20),
        seed in 0u64..1000,
        limit in 0usize..=6,
    ) {
        let obf = Obfuscator::new()
            .with_config(InsertionConfig { seed, gate_limit: limit, ..Default::default() })
            .obfuscate(&circuit);
        prop_assert!(obf.insertion().gate_overhead() <= limit);
    }

    #[test]
    fn circuit_inverse_roundtrip(circuit in classical_circuit(6, 16)) {
        // (C⁻¹)⁻¹ = C structurally, and C·C⁻¹ = identity functionally.
        let double = circuit.inverse().inverse();
        prop_assert_eq!(double.instructions(), circuit.instructions());
        let composed = circuit.then(&circuit.inverse()).unwrap();
        let n = circuit.num_qubits();
        for input in 0..1usize << n {
            prop_assert_eq!(classical_eval(&composed, input).unwrap(), input);
        }
    }

    #[test]
    fn qasm_roundtrip_random_classical(circuit in classical_circuit(6, 16)) {
        let text = qcir::qasm::to_qasm(&circuit);
        let back = qcir::qasm::from_qasm(&text).unwrap();
        prop_assert_eq!(back.instructions(), circuit.instructions());
    }

    #[test]
    fn real_roundtrip_random_classical(circuit in classical_circuit(6, 16)) {
        let text = qcir::real::to_real(&circuit).unwrap();
        let back = qcir::real::from_real(&text).unwrap();
        prop_assert_eq!(back.instructions(), circuit.instructions());
    }

    #[test]
    fn classical_eval_is_a_permutation(circuit in classical_circuit(6, 16)) {
        let n = circuit.num_qubits();
        let mut seen = vec![false; 1 << n];
        for input in 0..1usize << n {
            let out = classical_eval(&circuit, input).unwrap();
            prop_assert!(!seen[out], "not injective at {}", input);
            seen[out] = true;
        }
    }

    #[test]
    fn statevector_matches_classical_eval_on_samples(
        circuit in classical_circuit(5, 12),
        input in 0usize..32,
    ) {
        use qsim::Statevector;
        let n = circuit.num_qubits();
        let input = input & ((1 << n) - 1);
        let mut sv = Statevector::basis(n, input).unwrap();
        sv.apply_circuit(&circuit).unwrap();
        let expected = classical_eval(&circuit, input).unwrap();
        prop_assert!((sv.probability(expected) - 1.0).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Kernel equivalence: the layered engine vs the pre-engine naive loops
// ---------------------------------------------------------------------------
//
// `bench::naive` keeps the original full-scan statevector loops as the
// recorded baseline. Every engine configuration — stride kernels, the
// lane-blocked SIMD-friendly pair loops, cost-model-gated fusion,
// layer-blocked sweeps, and the pooled threaded drivers — must agree
// with it on arbitrary circuits over the full gate-dispatch surface.

use qsim::{Blocking, ExecConfig, Statevector};
use std::f64::consts::FRAC_PI_4;

/// The engine configurations the equivalence sweep exercises: fusion
/// on/off × one worker / three workers × layering off / forced.
fn engine_configs() -> Vec<ExecConfig> {
    let mut configs = Vec::new();
    for fuse in [true, false] {
        for threads in [1, 3] {
            for blocking in [Blocking::Off, Blocking::Force] {
                configs.push(ExecConfig {
                    fuse,
                    threads,
                    blocking,
                });
            }
        }
    }
    configs
}

/// Largest per-component deviation between the engine run under
/// `config` and the naive reference amplitudes.
fn deviation_vs_naive(circuit: &Circuit, config: &ExecConfig) -> f64 {
    let reference = bench::naive::from_circuit(circuit);
    let mut sv = Statevector::zero(circuit.num_qubits()).expect("within cap");
    sv.apply_circuit_with(circuit, config).expect("fits");
    sv.amplitudes()
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a.re - b.re).abs().max((a.im - b.im).abs()))
        .fold(0.0, f64::max)
}

/// Strategy: a random circuit over the full kernel dispatch surface —
/// diagonal, antidiagonal, dense single-qubit, two-qubit phase,
/// permutation, and k-qubit fallback gates on arbitrary (non-adjacent,
/// non-contiguous) targets.
fn kernel_circuit(max_qubits: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (4..=max_qubits, 1..=max_gates).prop_flat_map(|(n, len)| {
        let gate = prop_oneof![
            (0..n).prop_map(|q| (Gate::H, vec![q])),
            (0..n).prop_map(|q| (Gate::X, vec![q])),
            (0..n).prop_map(|q| (Gate::Y, vec![q])),
            (0..n).prop_map(|q| (Gate::S, vec![q])),
            (0..n).prop_map(|q| (Gate::Tdg, vec![q])),
            (0..n).prop_map(|q| (Gate::Sx, vec![q])),
            (0..n, 1..8u32).prop_map(|(q, k)| (Gate::Rz(k as f64 * FRAC_PI_4), vec![q])),
            (0..n, 1..8u32).prop_map(|(q, k)| (Gate::Ry(k as f64 * FRAC_PI_4), vec![q])),
            (0..n, 1..8u32, 1..8u32).prop_map(|(q, t, l)| {
                (
                    Gate::U(t as f64 * FRAC_PI_4, 0.3, l as f64 * FRAC_PI_4),
                    vec![q],
                )
            }),
            (0..n, 0..n).prop_filter_map("distinct wires", move |(a, b)| {
                (a != b).then(|| (Gate::CX, vec![a, b]))
            }),
            (0..n, 0..n).prop_filter_map("distinct wires", move |(a, b)| {
                (a != b).then(|| (Gate::CZ, vec![a, b]))
            }),
            (0..n, 0..n).prop_filter_map("distinct wires", move |(a, b)| {
                (a != b).then(|| (Gate::CH, vec![a, b]))
            }),
            (0..n, 0..n, 1..8u32).prop_filter_map("distinct wires", move |(a, b, k)| {
                (a != b).then(|| (Gate::CP(k as f64 * FRAC_PI_4), vec![a, b]))
            }),
            (0..n, 0..n, 1..8u32).prop_filter_map("distinct wires", move |(a, b, k)| {
                (a != b).then(|| (Gate::CRz(k as f64 * FRAC_PI_4), vec![a, b]))
            }),
            (0..n, 0..n).prop_filter_map("distinct wires", move |(a, b)| {
                (a != b).then(|| (Gate::Swap, vec![a, b]))
            }),
            (0..n, 0..n, 0..n).prop_filter_map("distinct wires", move |(a, b, c)| {
                (a != b && b != c && a != c).then(|| (Gate::CCX, vec![a, b, c]))
            }),
            (0..n, 0..n, 0..n).prop_filter_map("distinct wires", move |(a, b, c)| {
                (a != b && b != c && a != c).then(|| (Gate::CSwap, vec![a, b, c]))
            }),
        ];
        proptest::collection::vec(gate, 1..=len).prop_map(move |gates| {
            let mut circuit = Circuit::with_name(n, "kernel-prop");
            for (g, wires) in gates {
                circuit.append(g, &wires).expect("generated wires valid");
            }
            circuit
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Every engine configuration agrees with the naive loops on
    // arbitrary circuits over the full gate surface, including the
    // cost-model decisions (fused runs route through the diagonal /
    // antidiagonal / dense kernels picked by their class).
    #[test]
    fn kernel_engine_matches_naive_on_random_circuits(
        circuit in kernel_circuit(9, 24),
    ) {
        for config in engine_configs() {
            let dev = deviation_vs_naive(&circuit, &config);
            prop_assert!(
                dev < 1e-10,
                "config {:?} deviates from naive by {} on {}q/{} gates",
                config, dev, circuit.num_qubits(), circuit.gate_count()
            );
        }
    }
}

/// Fast-path boundary checks: gates whose targets straddle the points
/// where the kernel layout switches — the top qubit of a 2¹⁵-amplitude
/// cache block (layer-local vs cross-block at 16q under forced
/// layering) and the register's top wire.
#[test]
fn kernel_boundary_targets_match_naive() {
    let n = 16;
    let mut c = Circuit::with_name(n, "boundary");
    // Block-local ops right at the boundary (paired span 2¹⁵ on qubit
    // 14) and cross-block ops on qubit 15.
    for q in [0, 13, 14, 15] {
        c.h(q);
        c.t(q);
    }
    c.cx(14, 15);
    c.cz(0, 15);
    c.append(Gate::Swap, &[1, 15]).expect("valid wires");
    c.x(15);
    c.append(Gate::Y, &[14]).expect("valid wires");
    c.append(Gate::CP(FRAC_PI_4), &[15, 3])
        .expect("valid wires");
    for config in engine_configs() {
        let dev = deviation_vs_naive(&c, &config);
        assert!(
            dev < 1e-10,
            "config {config:?} deviates from naive by {dev} at the block boundary"
        );
    }
}

/// 20 qubits: above `LAYER_MIN_QUBITS` (auto layering engages) and
/// above `PARALLEL_MIN_QUBITS` (the pooled threaded drivers engage).
#[test]
fn kernel_engine_matches_naive_at_20_qubits() {
    let circuit = bench::clifford_t_circuit(20, 60);
    for config in [
        ExecConfig::default(),
        ExecConfig::unfused(),
        ExecConfig {
            threads: 3,
            ..ExecConfig::default()
        },
    ] {
        let dev = deviation_vs_naive(&circuit, &config);
        assert!(dev < 1e-10, "config {config:?} deviates by {dev} at 20q");
    }
}

/// 24 qubits: the largest register the naive baseline can replay in
/// test time — a handful of gates over non-adjacent targets spanning
/// the full wire range, against the default (fused, layered, threaded)
/// engine.
#[test]
fn kernel_engine_matches_naive_at_24_qubits() {
    let n = 24;
    let mut c = Circuit::with_name(n, "spot24");
    c.h(0).h(23).cx(0, 23).t(12).x(5);
    c.append(Gate::Y, &[17]).expect("valid wires");
    c.append(Gate::CP(FRAC_PI_4), &[3, 20])
        .expect("valid wires");
    let dev = deviation_vs_naive(&c, &ExecConfig::default());
    assert!(dev < 1e-10, "default engine deviates by {dev} at 24q");
}
