//! Property-based tests (proptest) over randomly generated circuits:
//! the TetrisLock invariants must hold for *arbitrary* classical
//! reversible circuits, not just the RevLib set.

use proptest::prelude::*;
use qcir::{Circuit, Gate};
use revlib::spec::classical_eval;
use tetrislock::recombine::recombine;
use tetrislock::{InsertionConfig, Obfuscator};

/// Strategy: a random classical reversible circuit over `n` qubits.
fn classical_circuit(max_qubits: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (3..=max_qubits, 1..=max_gates).prop_flat_map(|(n, len)| {
        let gate = prop_oneof![
            // X on a random wire.
            (0..n).prop_map(|q| (Gate::X, vec![q])),
            // CX on two distinct wires.
            (0..n, 0..n).prop_filter_map("distinct wires", move |(a, b)| {
                (a != b).then(|| (Gate::CX, vec![a, b]))
            }),
            // CCX on three distinct wires.
            (0..n, 0..n, 0..n).prop_filter_map("distinct wires", move |(a, b, c)| {
                (a != b && b != c && a != c).then(|| (Gate::CCX, vec![a, b, c]))
            }),
        ];
        proptest::collection::vec(gate, 1..=len).prop_map(move |gates| {
            let mut circuit = Circuit::with_name(n, "prop");
            for (g, wires) in gates {
                circuit.append(g, &wires).expect("generated wires valid");
            }
            circuit
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn obfuscation_preserves_depth(
        circuit in classical_circuit(7, 20),
        seed in 0u64..1000,
    ) {
        let obf = Obfuscator::new().with_seed(seed).obfuscate(&circuit);
        prop_assert_eq!(obf.obfuscated().depth(), circuit.depth());
    }

    #[test]
    fn obfuscation_preserves_function_on_all_inputs(
        circuit in classical_circuit(6, 16),
        seed in 0u64..1000,
    ) {
        let obf = Obfuscator::new().with_seed(seed).obfuscate(&circuit);
        let n = circuit.num_qubits();
        for input in 0..1usize << n {
            prop_assert_eq!(
                classical_eval(obf.obfuscated(), input).unwrap(),
                classical_eval(&circuit, input).unwrap(),
                "diverged at input {}", input
            );
        }
    }

    #[test]
    fn split_recombination_is_exact(
        circuit in classical_circuit(6, 16),
        seed in 0u64..1000,
        split_seed in 0u64..1000,
    ) {
        let obf = Obfuscator::new().with_seed(seed).obfuscate(&circuit);
        let split = obf.split(split_seed);
        let restored = recombine(&split).unwrap();
        let n = circuit.num_qubits();
        for input in 0..1usize << n {
            prop_assert_eq!(
                classical_eval(&restored, input).unwrap(),
                classical_eval(&circuit, input).unwrap(),
                "diverged at input {}", input
            );
        }
    }

    #[test]
    fn split_partitions_gate_count(
        circuit in classical_circuit(7, 20),
        seed in 0u64..1000,
    ) {
        let obf = Obfuscator::new().with_seed(seed).obfuscate(&circuit);
        let split = obf.split(seed ^ 0xABCD);
        prop_assert_eq!(
            split.left.circuit.gate_count() + split.right.circuit.gate_count(),
            obf.obfuscated().gate_count()
        );
    }

    #[test]
    fn gate_budget_respected(
        circuit in classical_circuit(7, 20),
        seed in 0u64..1000,
        limit in 0usize..=6,
    ) {
        let obf = Obfuscator::new()
            .with_config(InsertionConfig { seed, gate_limit: limit, ..Default::default() })
            .obfuscate(&circuit);
        prop_assert!(obf.insertion().gate_overhead() <= limit);
    }

    #[test]
    fn circuit_inverse_roundtrip(circuit in classical_circuit(6, 16)) {
        // (C⁻¹)⁻¹ = C structurally, and C·C⁻¹ = identity functionally.
        let double = circuit.inverse().inverse();
        prop_assert_eq!(double.instructions(), circuit.instructions());
        let composed = circuit.then(&circuit.inverse()).unwrap();
        let n = circuit.num_qubits();
        for input in 0..1usize << n {
            prop_assert_eq!(classical_eval(&composed, input).unwrap(), input);
        }
    }

    #[test]
    fn qasm_roundtrip_random_classical(circuit in classical_circuit(6, 16)) {
        let text = qcir::qasm::to_qasm(&circuit);
        let back = qcir::qasm::from_qasm(&text).unwrap();
        prop_assert_eq!(back.instructions(), circuit.instructions());
    }

    #[test]
    fn real_roundtrip_random_classical(circuit in classical_circuit(6, 16)) {
        let text = qcir::real::to_real(&circuit).unwrap();
        let back = qcir::real::from_real(&text).unwrap();
        prop_assert_eq!(back.instructions(), circuit.instructions());
    }

    #[test]
    fn classical_eval_is_a_permutation(circuit in classical_circuit(6, 16)) {
        let n = circuit.num_qubits();
        let mut seen = vec![false; 1 << n];
        for input in 0..1usize << n {
            let out = classical_eval(&circuit, input).unwrap();
            prop_assert!(!seen[out], "not injective at {}", input);
            seen[out] = true;
        }
    }

    #[test]
    fn statevector_matches_classical_eval_on_samples(
        circuit in classical_circuit(5, 12),
        input in 0usize..32,
    ) {
        use qsim::Statevector;
        let n = circuit.num_qubits();
        let input = input & ((1 << n) - 1);
        let mut sv = Statevector::basis(n, input).unwrap();
        sv.apply_circuit(&circuit).unwrap();
        let expected = classical_eval(&circuit, input).unwrap();
        prop_assert!((sv.probability(expected) - 1.0).abs() < 1e-9);
    }
}
