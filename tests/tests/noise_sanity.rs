//! Noise-model sanity checks across crates: accuracy scales with error
//! rates, the fast classical path agrees with the statevector path, and
//! the metrics behave under noise.

use qmetrics::{accuracy, tvd, tvd_vs_ideal};
use qsim::noise::NoiseModel;
use qsim::{Device, Sampler};
use revlib::{adder_1bit, rd53};

#[test]
fn accuracy_decreases_with_noise_strength() {
    let bench = adder_1bit();
    let expected = bench.expected_output();
    let mut last = 1.01;
    for (i, err) in [0.0, 0.005, 0.02, 0.08].iter().enumerate() {
        let noise = NoiseModel::builder()
            .one_qubit_error(*err)
            .two_qubit_error(*err)
            .readout_error(*err / 2.0)
            .build();
        let counts = Sampler::new(4000)
            .with_seed(100 + i as u64)
            .run_noisy(bench.circuit(), &noise)
            .unwrap();
        let acc = accuracy(&counts, expected);
        assert!(
            acc < last + 0.02,
            "accuracy did not trend down: {acc} after {last} at err {err}"
        );
        last = acc;
    }
    assert!(last < 0.8, "strongest noise should visibly hurt: {last}");
}

#[test]
fn zero_noise_gives_perfect_accuracy_for_classical_circuits() {
    for bench in revlib::table1_benchmarks() {
        let counts = Sampler::new(500)
            .with_seed(7)
            .run_noisy(bench.circuit(), &NoiseModel::ideal())
            .unwrap();
        assert_eq!(
            accuracy(&counts, bench.expected_output()),
            1.0,
            "{}",
            bench.name()
        );
    }
}

#[test]
fn valencia_accuracy_in_paper_range() {
    // Paper Table I: original-circuit accuracy between ~0.87 and ~0.99.
    for bench in revlib::table1_benchmarks() {
        let device = if bench.circuit().num_qubits() <= 5 {
            Device::fake_valencia()
        } else {
            Device::fake_valencia_extended(bench.circuit().num_qubits())
        };
        let counts = Sampler::new(1000)
            .with_seed(13)
            .run_noisy(bench.circuit(), device.noise())
            .unwrap();
        let acc = accuracy(&counts, bench.expected_output());
        assert!(
            (0.8..=1.0).contains(&acc),
            "{}: accuracy {acc} outside the plausible band",
            bench.name()
        );
    }
}

#[test]
fn classical_and_statevector_paths_agree_statistically() {
    // Force the slow path by appending a CZ (diagonal, outcome-invisible)
    // and compare against the pure-classical circuit.
    let bench = adder_1bit();
    let mut quantum = bench.circuit().clone();
    quantum.cz(0, 1);
    let noise = NoiseModel::builder()
        .one_qubit_error(0.01)
        .two_qubit_error(0.02)
        .readout_error(0.01)
        .build();
    let fast = Sampler::new(6000)
        .with_seed(1)
        .run_noisy(bench.circuit(), &noise)
        .unwrap();
    let slow = Sampler::new(6000)
        .with_seed(2)
        .run_noisy(&quantum, &noise)
        .unwrap();
    let d = tvd(&fast, &slow);
    assert!(d < 0.06, "paths diverge: tvd = {d}");
}

#[test]
fn tvd_of_noisy_self_is_small() {
    let bench = rd53();
    let device = Device::fake_valencia_extended(7);
    let a = Sampler::new(2000)
        .with_seed(3)
        .run_noisy(bench.circuit(), device.noise())
        .unwrap();
    let b = Sampler::new(2000)
        .with_seed(4)
        .run_noisy(bench.circuit(), device.noise())
        .unwrap();
    assert!(tvd(&a, &b) < 0.1);
    // And TVD vs the ideal output reflects the noise level, not zero.
    let t = tvd_vs_ideal(&a, bench.expected_output());
    assert!(t > 0.0 && t < 0.3, "tvd_vs_ideal = {t}");
}

#[test]
fn extended_device_noise_grows_with_register() {
    // More qubits → more readout corruption on the all-qubit measurement.
    let small = Sampler::new(4000)
        .with_seed(5)
        .run_noisy(
            &qcir::Circuit::new(2),
            Device::fake_valencia_extended(2).noise(),
        )
        .unwrap();
    let large = Sampler::new(4000)
        .with_seed(6)
        .run_noisy(
            &qcir::Circuit::new(12),
            Device::fake_valencia_extended(12).noise(),
        )
        .unwrap();
    assert!(small.probability(0) > large.probability(0));
}
