//! Torn-write robustness: exhaustively truncate a job checkpoint at
//! *every* byte boundary and assert that resume either recovers from
//! the rotated previous checkpoint or fails with a clean, typed
//! diagnostic — never a panic, never silent corruption.
//!
//! This simulates what the atomic tmp+rename protocol is supposed to
//! prevent (a partially written file at the final path) plus what it
//! cannot prevent (post-write corruption by the storage layer), and
//! proves the `.prev` rotation turns both into at most one stage of
//! lost work.

use qcir::Circuit;
use std::path::{Path, PathBuf};
use tetrislock::job::{
    checkpoint_path, load_checkpoint, prev_checkpoint_path, save_checkpoint, JobConfig, JobError,
    JobState,
};

fn sample() -> Circuit {
    let mut c = Circuit::with_name(4, "torn");
    c.h(0).cx(0, 1).ccx(0, 1, 2).cx(2, 3);
    c
}

fn tmp_dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("tlk_torn_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let jobs = base.join("jobs");
    let out = base.join("out");
    std::fs::create_dir_all(&jobs).unwrap();
    std::fs::create_dir_all(&out).unwrap();
    (jobs, out)
}

/// Writes two checkpoint generations for a job advanced `steps` stages:
/// the `.prev` rotation then holds the (steps-1)-stage state and the
/// primary holds the `steps`-stage state.
fn two_generations(jobs: &Path, out: &Path, id: &str, steps: u64) -> JobState {
    let mut job = JobState::new(id, sample(), JobConfig::default());
    for _ in 0..steps.saturating_sub(1) {
        job.advance(out).unwrap();
    }
    save_checkpoint(jobs, &job).unwrap();
    job.advance(out).unwrap();
    save_checkpoint(jobs, &job).unwrap();
    job
}

#[test]
fn every_truncation_recovers_or_fails_cleanly() {
    let (jobs, out) = tmp_dirs("every_byte");
    let full = two_generations(&jobs, &out, "t", 2);
    let ckpt = checkpoint_path(&jobs, "t");
    let pristine = std::fs::read(&ckpt).unwrap();
    assert!(pristine.len() > 50, "checkpoint suspiciously small");

    let mut recovered_full = 0u32;
    let mut recovered_prev = 0u32;
    for cut in 0..=pristine.len() {
        std::fs::write(&ckpt, &pristine[..cut]).unwrap();
        // Must never panic, whatever the cut point.
        match load_checkpoint(&jobs, "t") {
            Ok(Some(state)) => {
                // Either the full current state (only possible for the
                // untruncated file) or the previous generation.
                if state.steps_done == full.steps_done {
                    assert_eq!(
                        cut,
                        pristine.len(),
                        "truncated file decoded as current state"
                    );
                    recovered_full += 1;
                } else {
                    assert_eq!(
                        state.steps_done,
                        full.steps_done - 1,
                        "cut at {cut}: fallback is not the previous generation"
                    );
                    recovered_prev += 1;
                }
            }
            Ok(None) => panic!("cut at {cut}: existing checkpoint reported as missing"),
            Err(JobError::Persist { .. }) => {
                panic!("cut at {cut}: .prev generation exists but was not used")
            }
            Err(other) => panic!("cut at {cut}: unexpected error kind {other:?}"),
        }
    }
    assert_eq!(recovered_full, 1, "exactly the untruncated file is current");
    assert_eq!(
        recovered_prev as usize,
        pristine.len(),
        "every truncation must fall back to .prev"
    );
}

#[test]
fn truncation_without_prev_is_clean_error_never_panic() {
    let (jobs, out) = tmp_dirs("no_prev");
    let _ = two_generations(&jobs, &out, "t", 2);
    let ckpt = checkpoint_path(&jobs, "t");
    let prev = prev_checkpoint_path(&jobs, "t");
    let pristine = std::fs::read(&ckpt).unwrap();
    std::fs::remove_file(&prev).unwrap();

    for cut in 0..pristine.len() {
        std::fs::write(&ckpt, &pristine[..cut]).unwrap();
        match load_checkpoint(&jobs, "t") {
            Err(JobError::Persist { path, .. }) => {
                assert_eq!(path, ckpt, "error should name the primary checkpoint");
            }
            Ok(Some(_)) => panic!("cut at {cut}: truncated checkpoint decoded successfully"),
            other => panic!("cut at {cut}: expected a Persist error, got {other:?}"),
        }
    }
}

#[test]
fn resume_from_prev_generation_completes_bit_identically() {
    // End-to-end: reference output from an uninterrupted job, then a job
    // whose current checkpoint is torn mid-file — resume must recover
    // from .prev, redo the lost stage, and emit identical bytes.
    let (jobs, out) = tmp_dirs("e2e");
    let mut reference = JobState::new("ref", sample(), JobConfig::default());
    while !reference.is_done() {
        reference.advance(&out).unwrap();
    }
    let want = std::fs::read(reference.output_path(&out)).unwrap();

    let _ = two_generations(&jobs, &out, "torn_job", 3);
    let ckpt = checkpoint_path(&jobs, "torn_job");
    let pristine = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &pristine[..pristine.len() / 2]).unwrap();

    let mut resumed = load_checkpoint(&jobs, "torn_job")
        .expect("fallback succeeds")
        .expect("checkpoint exists");
    assert_eq!(
        resumed.steps_done, 2,
        "resumed from the previous generation"
    );
    while !resumed.is_done() {
        resumed.advance(&out).unwrap();
        save_checkpoint(&jobs, &resumed).unwrap();
    }
    let got = std::fs::read(resumed.output_path(&out)).unwrap();
    assert_eq!(got, want, "recovery via .prev changed the output bytes");
}

#[test]
fn orphan_tmp_sweep_removes_only_aged_tmps() {
    // The startup sweep clears `.tmp` debris from crashed runs but must
    // never touch real checkpoints, outputs, or tmps young enough to
    // belong to a concurrent writer.
    let (jobs, out) = tmp_dirs("sweep");
    let full = two_generations(&jobs, &out, "t", 2);
    let orphan = jobs.join("dead.job.tmp");
    std::fs::write(&orphan, b"debris from a crashed run").unwrap();
    let decoy = jobs.join("not_a_tmp.job");
    std::fs::write(&decoy, b"named like a checkpoint").unwrap();

    // With the production minimum age the fresh tmp is NOT removed —
    // it could be a concurrent writer mid-rename.
    let min_age = std::time::Duration::from_secs(tetrislock::batch::TMP_SWEEP_MIN_AGE_SECS);
    let removed = qcir::persist::sweep_orphan_tmps(&jobs, min_age).unwrap();
    assert!(
        removed.is_empty(),
        "fresh tmp swept too eagerly: {removed:?}"
    );
    assert!(orphan.exists());

    // With a zero age gate (how the daemon would see a tmp older than
    // the gate), exactly the orphan goes; everything else stays.
    let removed = qcir::persist::sweep_orphan_tmps(&jobs, std::time::Duration::ZERO).unwrap();
    assert_eq!(removed, vec![orphan.clone()]);
    assert!(!orphan.exists());
    assert!(decoy.exists(), "non-tmp file must survive the sweep");
    assert!(checkpoint_path(&jobs, "t").exists());
    assert!(prev_checkpoint_path(&jobs, "t").exists());

    // The surviving checkpoints still resume.
    let resumed = load_checkpoint(&jobs, "t").unwrap().unwrap();
    assert_eq!(resumed.steps_done, full.steps_done);
}

#[test]
fn orphan_tmp_sweep_ignores_subdirectories() {
    let (jobs, _out) = tmp_dirs("sweep_dirs");
    let subdir = jobs.join("nested.tmp");
    std::fs::create_dir_all(&subdir).unwrap();
    let removed = qcir::persist::sweep_orphan_tmps(&jobs, std::time::Duration::ZERO).unwrap();
    assert!(removed.is_empty(), "{removed:?}");
    assert!(
        subdir.exists(),
        "a directory named *.tmp must not be touched"
    );
}

#[test]
fn torn_tmp_file_is_ignored_by_resume() {
    // A crash between tmp-write and rename leaves `<ckpt>.tmp` behind;
    // resume must load the intact primary and not trip over the orphan.
    let (jobs, out) = tmp_dirs("tmp_orphan");
    let full = two_generations(&jobs, &out, "t", 2);
    let tmp = qcir::persist::tmp_path(&checkpoint_path(&jobs, "t"));
    std::fs::write(&tmp, b"half-written garbage").unwrap();
    let resumed = load_checkpoint(&jobs, "t").unwrap().unwrap();
    assert_eq!(resumed.steps_done, full.steps_done);
}
