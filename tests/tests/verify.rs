//! Acceptance suite for the tiered `qverify` equivalence engine.
//!
//! Covers the scalability claims end to end:
//!
//! * a 50-qubit Clifford identity pair is certified by the **stabilizer
//!   tableau** tier, far beyond dense-unitary reach;
//! * a 34-qubit Clifford+T restore round-trip — past the statevector
//!   cap, where no tier could previously give an exact answer — is
//!   certified by the **ZX-calculus** tier, while a corrupted restore
//!   whose miter is too *branchy* for any replay backend honestly
//!   stays `Inconclusive` (ZX never guesses);
//! * the tier's historical blind spots are closed: `T` vs `T†` is
//!   rejected with a **relative-phase** witness, and a 30-qubit
//!   diagonal-plus-permutation residue — past the statevector cap — is
//!   witnessed through the **sharded out-of-core basis-column** replay;
//! * 20- and 28-qubit wrong-key recombinations are rejected by the
//!   **ZX tier itself** with replay-confirmed basis witnesses — since
//!   the two-sided witness extension, sampling is no longer needed for
//!   these — and the **stimulus** tier still rejects them when forced,
//!   which keeps the raised statevector cap
//!   (`qsim::statevector::MAX_QUBITS`) covered end to end;
//! * a 30-qubit wrong-key pair — past *every* simulation cap, formerly
//!   `Inconclusive` — is rejected by the ZX tier with a bit-replay
//!   `BasisInput` witness;
//! * on every ≤12-qubit revlib benchmark the tiered verdict matches the
//!   dense-unitary ground truth.
//!
//! Plus property-based round-trips (correct key ⇒ equivalent, wrong key
//! ⇒ inequivalent) on random reversible circuits up to 24 qubits forced
//! through the stimulus tier, and ZX-vs-dense agreement on obfuscation
//! round-trips.

use proptest::prelude::*;
use qcir::random::{random_reversible, RandomCircuitConfig};
use qcir::{Circuit, Gate, Qubit};
use qsim::unitary::equivalent_up_to_phase;
use qverify::{Report, Tier, Verdict, Verifier, Witness, MAX_UNITARY_QUBITS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revlib::{all_benchmarks, classical_eval, classical_eval_bits};
use tetrislock::interlock::SplitPair;
use tetrislock::recombine::recombine;
use tetrislock::Obfuscator;

/// Recombination under a *wrong* interlock key: the designer-secret
/// wire map of the right segment with the images of its first two wires
/// swapped. `None` if the segment touches fewer than two wires.
fn wrong_key_recombination(split: &SplitPair) -> Option<Circuit> {
    let keys: Vec<Qubit> = split.right.wire_map.keys().copied().collect();
    if keys.len() < 2 {
        return None;
    }
    let mut bad = split.clone();
    let (a, b) = (keys[0], keys[1]);
    let va = bad.right.wire_map[&a];
    let vb = bad.right.wire_map[&b];
    bad.right.wire_map.insert(a, vb);
    bad.right.wire_map.insert(b, va);
    recombine(&bad).ok()
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counts how many of 128 pseudo-random basis inputs the two classical
/// circuits map differently — cheap ground truth for "really wrong".
fn sampled_divergence(a: &Circuit, b: &Circuit) -> usize {
    let mask = (1usize << a.num_qubits()) - 1;
    (0..128u64)
        .filter(|&i| {
            let input = splitmix(i) as usize & mask;
            classical_eval(a, input).unwrap() != classical_eval(b, input).unwrap()
        })
        .count()
}

#[test]
fn fifty_qubit_clifford_pair_certified_by_tableau_tier() {
    let n = 50u32;
    let mut rng = StdRng::seed_from_u64(42);
    let mut a = Circuit::with_name(n, "clifford50");
    for _ in 0..300 {
        match rng.gen_range(0..3u8) {
            0 => {
                a.h(rng.gen_range(0..n));
            }
            1 => {
                a.s(rng.gen_range(0..n));
            }
            _ => {
                let c = rng.gen_range(0..n);
                let mut t = rng.gen_range(0..n);
                while t == c {
                    t = rng.gen_range(0..n);
                }
                a.cx(c, t);
            }
        }
    }
    // Identity pair: same circuit with extra canceling redundancy.
    let mut b = a.clone();
    b.h(17).h(17).z(3).s(3).s(3);
    let verifier = Verifier::new();
    let report = verifier.check_report(&a, &b);
    assert_eq!(report.tier, Tier::Tableau, "{report}");
    assert!(report.verdict.is_equivalent(), "{report}");
    assert_eq!(report.confidence(), 1.0);

    // One stray S gate must flip the verdict, with a generator witness.
    b.s(29);
    let report = verifier.check_report(&a, &b);
    assert_eq!(report.tier, Tier::Tableau);
    assert!(
        matches!(
            report.verdict,
            Verdict::Inequivalent {
                witness: Witness::Generator { .. }
            }
        ),
        "{report}"
    );
}

/// A random Clifford+T circuit: H/S/T/CX/CCX, seeded.
fn random_clifford_t(n: u32, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, "clifford_t");
    let distinct = |rng: &mut StdRng, used: &[u32]| loop {
        let q = rng.gen_range(0..n);
        if !used.contains(&q) {
            return q;
        }
    };
    for _ in 0..gates {
        match rng.gen_range(0..5u8) {
            0 => {
                c.h(rng.gen_range(0..n));
            }
            1 => {
                c.s(rng.gen_range(0..n));
            }
            2 => {
                c.t(rng.gen_range(0..n));
            }
            3 => {
                let a = rng.gen_range(0..n);
                let b = distinct(&mut rng, &[a]);
                c.cx(a, b);
            }
            _ => {
                let a = rng.gen_range(0..n);
                let b = distinct(&mut rng, &[a]);
                let t = distinct(&mut rng, &[a, b]);
                c.ccx(a, b, t);
            }
        }
    }
    c
}

#[test]
fn thirty_four_qubit_clifford_t_roundtrip_certified_by_zx_tier() {
    // ISSUE 3 acceptance: past the statevector cap (now 28 qubits) a
    // Clifford+T restore round-trip used to be Inconclusive — no tier
    // applied. The ZX tier now certifies it *exactly*.
    let n = 34u32;
    assert!(n > qverify::MAX_STIMULUS_QUBITS);
    let c = random_clifford_t(n, 240, 7);
    let verifier = Verifier::new();
    assert!(
        verifier.check_tableau(&c, &c.clone()).is_none(),
        "pair must be non-Clifford for the claim to be meaningful"
    );

    let obf = Obfuscator::new().with_seed(3).obfuscate(&c);
    let split = obf.split(11);
    let restored = recombine(&split).unwrap();
    let report = verifier.check_report(&c, &restored);
    assert_eq!(report.tier, Tier::Zx, "{report}");
    assert!(report.verdict.is_equivalent(), "{report}");
    assert_eq!(report.confidence(), 1.0);

    // A corrupted restore cannot be *witnessed* at this size: the
    // miter carries hundreds of Hadamards, far over the
    // MAX_COLUMN_BRANCHING bound, so the sharded column replay refuses
    // (its amplitude support would blow the shard budget), the
    // register is past the statevector cap (no dense replay), and the
    // circuits are not classical (no bit replay) — so the witness
    // extension has nothing sound to offer and the dispatch honestly
    // reports Inconclusive rather than guessing.
    let mut corrupted = restored.clone();
    corrupted.t(5);
    assert!(verifier.check_zx(&c, &corrupted).is_none());
    let report = verifier.check_report(&c, &corrupted);
    assert!(
        matches!(report.verdict, Verdict::Inconclusive { .. }),
        "{report}"
    );
}

#[test]
fn zx_certificates_agree_with_dense_on_revlib_roundtrips() {
    // Soundness gate for the new tier: everywhere dense ground truth is
    // available, a ZX certificate must coincide with it (stalls are
    // allowed; false certificates are not).
    let verifier = Verifier::new();
    let mut certified = 0u32;
    for bench in all_benchmarks() {
        let c = bench.circuit();
        let obf = Obfuscator::new().with_seed(5).obfuscate(c);
        let restored = recombine(&obf.split(9)).unwrap();
        if let Some(report) = verifier.check_zx(c, &restored) {
            certified += 1;
            assert!(report.verdict.is_equivalent());
            assert!(
                equivalent_up_to_phase(c, &restored, 1e-9).unwrap(),
                "{}: ZX certified a pair dense rejects",
                bench.name()
            );
        }
        // Corrupted candidates must never be certified equivalent; with
        // the witness extension ZX may now *reject* them outright, and
        // any such rejection must agree with dense ground truth.
        let mut corrupted = restored.clone();
        corrupted.x(0);
        if let Some(report) = verifier.check_zx(c, &corrupted) {
            assert!(
                report.verdict.is_inequivalent(),
                "{}: ZX must not certify a corrupted restore",
                bench.name()
            );
            assert!(
                !equivalent_up_to_phase(c, &corrupted, 1e-9).unwrap(),
                "{}: ZX witnessed a pair dense accepts",
                bench.name()
            );
        }
    }
    assert!(certified >= 3, "cross-check must not be vacuous");
}

#[test]
fn twenty_qubit_wrong_key_rejected_exactly_by_zx_witness() {
    let c = random_reversible(&RandomCircuitConfig::new(20, 40, 9));
    let obf = Obfuscator::new().with_seed(4).obfuscate(&c);
    let split = obf.split(21);
    let verifier = Verifier::new().with_trials(4).with_threads(2).with_seed(77);

    // Correct key: the 20-qubit register is past both the classical
    // exhaustive cap and the dense cap.
    let restored = recombine(&split).unwrap();
    let report = verifier.check_report(&c, &restored);
    // Since the ZX tier landed, the correct-key round-trip is decided
    // *exactly* — the miter's inserted R⁻¹R pairs and mirrored gates
    // all cancel under graph rewriting, so no sampling is needed.
    assert_eq!(report.tier, Tier::Zx, "{report}");
    assert!(report.verdict.is_equivalent(), "{report}");
    assert_eq!(report.confidence(), 1.0);

    // Wrong key: swapped wire-map images. ISSUE 3 left this to the
    // sampling tier; since the two-sided witness extension (ISSUE 5)
    // the ZX tier rejects it itself, with a replay-confirmed basis
    // witness — exact, no trials.
    let bad = wrong_key_recombination(&split).expect("right segment spans ≥2 wires");
    assert!(
        sampled_divergence(&c, &bad) > 0,
        "chosen seeds must yield a functionally wrong key"
    );
    let report = verifier.check_report(&c, &bad);
    assert_eq!(report.tier, Tier::Zx, "{report}");
    match &report.verdict {
        Verdict::Inequivalent {
            witness: Witness::BasisInput { input, .. },
        } => {
            // Bit-replay witness (both circuits classical): checkable
            // outside the verifier entirely.
            assert_ne!(
                classical_eval_bits(&c, input).unwrap(),
                classical_eval_bits(&bad, input).unwrap()
            );
        }
        Verdict::Inequivalent {
            witness: Witness::BasisColumn { overlap, .. },
        } => assert!(*overlap < 1.0 - 1e-9),
        other => panic!("expected a ZX basis witness, got {other}"),
    }
    assert_eq!(report.confidence(), 1.0);

    // The stimulus tier must still reject the pair when forced — the
    // sampling fallback stays healthy for residues ZX cannot see.
    let report = verifier.check_stimulus(&c, &bad).unwrap();
    assert_eq!(report.tier, Tier::Stimulus);
    let Verdict::Inequivalent {
        witness:
            Witness::Stimulus {
                trial,
                seed,
                fidelity,
            },
    } = report.verdict
    else {
        panic!("expected a stimulus witness, got {}", report.verdict);
    };
    // The witness is concrete: a reproducible trial with fidelity < 1.
    assert!(fidelity < 1.0 - 1e-9, "trial {trial} seed {seed:#x}");
}

#[test]
fn twenty_eight_qubit_wrong_key_rejected_at_the_raised_stimulus_cap() {
    // ISSUE 4 acceptance: the stimulus tier inherits the raised
    // statevector cap (26 → 28 qubits) and certifies a wrong-key
    // witness on a register the dense engines cannot touch. One worker
    // owns the 2²⁸-amplitude miter (4 GiB per state); the parallelism
    // lives inside qsim's chunked kernels. Since ISSUE 5 the normal
    // dispatch no longer *needs* sampling here — the ZX tier rejects
    // the pair first with an exact replay witness — so the cap claim is
    // kept covered by forcing the stimulus tier explicitly.
    let n = 28u32;
    assert_eq!(
        qverify::MAX_STIMULUS_QUBITS,
        n,
        "stimulus cap must track qsim"
    );
    let c = random_reversible(&RandomCircuitConfig::new(n, 16, 3));
    let obf = Obfuscator::new().with_seed(6).obfuscate(&c);
    let split = obf.split(19);
    let bad = wrong_key_recombination(&split).expect("right segment spans ≥2 wires");
    assert!(
        sampled_divergence(&c, &bad) > 0,
        "chosen seeds must yield a functionally wrong key"
    );
    // The dispatch decides exactly, via the ZX tier's confirmed basis
    // witness — no 4 GiB statevector is even allocated.
    let verifier = Verifier::new().with_trials(2).with_threads(1).with_seed(41);
    let report = verifier.check_report(&c, &bad);
    assert_eq!(report.tier, Tier::Zx, "{report}");
    assert!(report.verdict.is_inequivalent(), "{report}");
    assert_eq!(report.confidence(), 1.0);
    // Forced stimulus: two trials configured; the witness lands on the
    // first, so only one 28-qubit miter replay actually runs.
    let report = verifier.check_stimulus(&c, &bad).unwrap();
    assert_eq!(report.tier, Tier::Stimulus, "{report}");
    let Verdict::Inequivalent {
        witness: Witness::Stimulus { fidelity, .. },
    } = report.verdict
    else {
        panic!("expected a stimulus witness, got {}", report.verdict);
    };
    assert!(fidelity < 1.0 - 1e-9);
}

#[test]
fn thirty_qubit_wrong_key_rejected_past_every_simulation_cap() {
    // ISSUE 5 acceptance: a 30-qubit wrong-key pair is past the
    // classical-exhaustive cap (16), the dense cap (12) and the
    // stimulus cap (28) — before the witness extension it was
    // Inconclusive. The ZX tier now rejects it with a bit-replay
    // BasisInput witness, exact at any width.
    let n = 30u32;
    assert!(n > qverify::MAX_STIMULUS_QUBITS);
    let c = random_reversible(&RandomCircuitConfig::new(n, 24, 12));
    let obf = Obfuscator::new().with_seed(9).obfuscate(&c);
    let split = obf.split(23);
    let restored = recombine(&split).unwrap();
    let verifier = Verifier::new();
    let report = verifier.check_report(&c, &restored);
    assert_eq!(report.tier, Tier::Zx, "{report}");
    assert!(report.verdict.is_equivalent(), "{report}");

    let bad = wrong_key_recombination(&split).expect("right segment spans ≥2 wires");
    assert!(
        sampled_divergence(&c, &bad) > 0,
        "chosen seeds must yield a functionally wrong key"
    );
    let report = verifier.check_report(&c, &bad);
    assert_eq!(report.tier, Tier::Zx, "{report}");
    assert_eq!(report.confidence(), 1.0);
    let Verdict::Inequivalent {
        witness:
            Witness::BasisInput {
                input,
                left_output,
                right_output,
            },
    } = report.verdict
    else {
        panic!(
            "expected a bit-replay basis witness, got {}",
            report.verdict
        );
    };
    // The witness survives independent re-evaluation.
    assert_eq!(classical_eval_bits(&c, &input).unwrap(), left_output);
    assert_eq!(classical_eval_bits(&bad, &input).unwrap(), right_output);
    assert_ne!(left_output, right_output);
}

#[test]
fn t_versus_tdg_certified_with_relative_phase_witness() {
    // The tier cascade's canonical blind spot, closed: T vs T† leaves a
    // purely diagonal miter residue that no single basis input can see,
    // so for four issues this pair documented an honest fall-through.
    // The phase replay now certifies it at the ZX tier itself: basis
    // eigenvectors |0⟩ and |1⟩ acquire different phases through the
    // miter, and that disagreement is the witness.
    let mut a = Circuit::new(1);
    a.t(0);
    let mut b = Circuit::new(1);
    b.tdg(0);
    let report = Verifier::new().check_report(&a, &b);
    assert_eq!(report.tier, Tier::Zx, "{report}");
    assert_eq!(report.confidence(), 1.0);
    assert!(
        matches!(
            report.verdict,
            Verdict::Inequivalent {
                witness: Witness::RelativePhase {
                    input_a: 0,
                    input_b: 1
                }
            }
        ),
        "{report}"
    );
}

#[test]
fn thirty_qubit_diagonal_witness_via_sharded_column_replay() {
    // A 30-qubit non-classical wrong pair: past the statevector cap,
    // so the old single-statevector basis replay could never certify
    // it. The miter has no branching gates, so the sharded out-of-core
    // column replay streams the relevant basis columns in bounded
    // memory and confirms the witness — the permutation residue shows
    // up as a vanished diagonal amplitude (a BasisColumn witness), and
    // the t/tdg garnish keeps the pair off the classical and Clifford
    // tiers.
    let n = 30u32;
    assert!(n > qverify::MAX_STIMULUS_QUBITS);
    assert!(n <= qverify::MAX_COLUMN_QUBITS);
    let mut a = Circuit::new(n);
    a.t(0).tdg(0).swap(3, 7);
    let b = Circuit::new(n);
    let report = Verifier::new().check_report(&a, &b);
    assert_eq!(report.tier, Tier::Zx, "{report}");
    assert_eq!(report.confidence(), 1.0);
    let Verdict::Inequivalent {
        witness: Witness::BasisColumn { input, overlap },
    } = report.verdict
    else {
        panic!("expected a sharded-replay basis-column witness, got {report}");
    };
    // A single-bit probe on an active wire sees the crossed wires: the
    // miter moves |...1_3...⟩ to |...1_7...⟩, so the diagonal amplitude
    // vanishes.
    assert!(overlap < 1e-9, "overlap {overlap}");
    assert!(input == 1 << 3 || input == 1 << 7, "input {input:#b}");
}

#[test]
fn tiered_verdict_matches_dense_unitary_on_all_revlib_benchmarks() {
    let verifier = Verifier::new();
    for bench in all_benchmarks() {
        let c = bench.circuit();
        assert!(
            c.num_qubits() <= MAX_UNITARY_QUBITS,
            "{} exceeds the dense cap",
            bench.name()
        );
        let obf = Obfuscator::new().with_seed(7).obfuscate(c);
        let split = obf.split(13);
        let restored = recombine(&split).unwrap();

        let tiered = verifier.check(c, &restored).is_equivalent();
        let dense = equivalent_up_to_phase(c, &restored, 1e-9).unwrap();
        assert_eq!(tiered, dense, "{}: tier disagrees with dense", bench.name());
        assert!(dense, "{}: round-trip must restore", bench.name());

        let mut corrupted = restored.clone();
        corrupted.x(0);
        let tiered = verifier.check(c, &corrupted).is_equivalent();
        let dense = equivalent_up_to_phase(c, &corrupted, 1e-9).unwrap();
        assert_eq!(
            tiered,
            dense,
            "{}: tier disagrees with dense on corrupted candidate",
            bench.name()
        );
        assert!(!dense, "{}: corruption must be detected", bench.name());
    }
}

#[test]
fn verify_roundtrip_helper_uses_tiered_engine() {
    let c = random_reversible(&RandomCircuitConfig::new(18, 30, 5));
    let obf = Obfuscator::new().with_seed(2).obfuscate(&c);
    let split = obf.split(6);
    let verifier = Verifier::new().with_trials(3).with_seed(8);
    let verdict = obf.verify_roundtrip(&split, &verifier).unwrap();
    assert!(verdict.is_equivalent());
}

/// Strategy: a random classical reversible circuit with `lo..=hi`
/// qubits — wide enough to land beyond the dense-unitary cap.
fn wide_classical_circuit(lo: u32, hi: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (lo..=hi, 1..=max_gates).prop_flat_map(|(n, len)| {
        let gate = prop_oneof![
            (0..n).prop_map(|q| (Gate::X, vec![q])),
            (0..n, 0..n).prop_filter_map("distinct wires", move |(a, b)| {
                (a != b).then(|| (Gate::CX, vec![a, b]))
            }),
            (0..n, 0..n, 0..n).prop_filter_map("distinct wires", move |(a, b, c)| {
                (a != b && b != c && a != c).then(|| (Gate::CCX, vec![a, b, c]))
            }),
        ];
        proptest::collection::vec(gate, 1..=len).prop_map(move |gates| {
            let mut circuit = Circuit::with_name(n, "wide_prop");
            for (g, wires) in gates {
                circuit.append(g, &wires).expect("generated wires valid");
            }
            circuit
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn roundtrip_with_correct_key_is_equivalent_via_stimulus(
        circuit in wide_classical_circuit(14, 24, 10),
        seed in 0u64..1000,
    ) {
        let obf = Obfuscator::new().with_seed(seed).obfuscate(&circuit);
        let split = obf.split(seed ^ 0x5A5A);
        let restored = recombine(&split).unwrap();
        let verifier = Verifier::new()
            .with_trials(2)
            .with_threads(1)
            .with_seed(seed);
        let report: Report = verifier.check_stimulus(&circuit, &restored).unwrap();
        prop_assert_eq!(report.tier, Tier::Stimulus);
        prop_assert!(
            report.verdict.is_equivalent(),
            "{} qubits: {}", circuit.num_qubits(), report
        );
    }

    #[test]
    fn roundtrip_with_wrong_key_is_inequivalent_via_stimulus(
        circuit in wide_classical_circuit(14, 24, 10),
        seed in 0u64..1000,
    ) {
        let obf = Obfuscator::new().with_seed(seed).obfuscate(&circuit);
        let split = obf.split(seed ^ 0x1234);
        let Some(bad) = wrong_key_recombination(&split) else {
            return Ok(()); // degenerate split: fewer than two right wires
        };
        // Only assert on keys that are *substantially* wrong (≥ ~6% of
        // sampled basis inputs diverge); a lucky swap can hit circuit
        // symmetry and stay equivalent.
        if sampled_divergence(&circuit, &bad) < 8 {
            return Ok(());
        }
        let verifier = Verifier::new()
            .with_trials(2)
            .with_threads(1)
            .with_seed(seed);
        let report = verifier.check_stimulus(&circuit, &bad).unwrap();
        prop_assert!(
            matches!(
                &report.verdict,
                Verdict::Inequivalent { witness: Witness::Stimulus { .. } }
            ),
            "{} qubits: {}", circuit.num_qubits(), report
        );
    }
}
