//! Property-based tests for the transpiler: for arbitrary (random)
//! unitary circuits, compilation to a constrained device must preserve
//! semantics and produce device-conformant output.

use proptest::prelude::*;
use qcir::random::{random_unitary_circuit, RandomCircuitConfig};
use qcompile::transpiler::conforms_to_device;
use qcompile::{OptimizationLevel, Transpiler};
use qsim::unitary::circuit_unitary;
use qsim::Device;

fn check_compiled_equivalence(seed: u64, num_gates: usize, level: OptimizationLevel) {
    let circuit = random_unitary_circuit(&RandomCircuitConfig::new(4, num_gates, seed));
    let device = Device::fake_valencia();
    let out = Transpiler::new(device.clone())
        .with_optimization(level)
        .transpile(&circuit)
        .expect("4-qubit circuit fits on valencia");
    assert!(
        conforms_to_device(&out.circuit, &device),
        "seed {seed}: output not device-conformant"
    );
    let logical = out.into_logical_circuit();
    let mut padded = qcir::Circuit::new(logical.num_qubits());
    padded.compose(&circuit).expect("padding");
    let ua = circuit_unitary(&padded).expect("fits");
    let ub = circuit_unitary(&logical).expect("fits");
    assert!(
        ua.approx_eq_up_to_phase(&ub, 1e-7),
        "seed {seed}: transpilation changed the unitary"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn transpile_preserves_random_unitaries_light(seed in 0u64..10_000) {
        check_compiled_equivalence(seed, 14, OptimizationLevel::Light);
    }

    #[test]
    fn transpile_preserves_random_unitaries_full(seed in 0u64..10_000) {
        check_compiled_equivalence(seed, 14, OptimizationLevel::Full);
    }

    #[test]
    fn optimizer_passes_preserve_random_unitaries(seed in 0u64..10_000) {
        use qcompile::optimize::{cancel_commuting_pairs, optimize_aggressive};
        let circuit = random_unitary_circuit(&RandomCircuitConfig::new(4, 18, seed));
        let mut optimized = circuit.clone();
        optimize_aggressive(&mut optimized);
        cancel_commuting_pairs(&mut optimized);
        let ua = circuit_unitary(&circuit).expect("fits");
        let ub = circuit_unitary(&optimized).expect("fits");
        prop_assert!(
            ua.approx_eq_up_to_phase(&ub, 1e-7),
            "seed {} broke equivalence", seed
        );
    }

    #[test]
    fn decomposition_preserves_random_reversible(seed in 0u64..10_000) {
        use qcir::random::random_reversible;
        use qcompile::decompose::decompose_to_cx;
        let circuit = random_reversible(&RandomCircuitConfig::new(5, 12, seed));
        let lowered = decompose_to_cx(&circuit);
        let ua = circuit_unitary(&circuit).expect("fits");
        let ub = circuit_unitary(&lowered).expect("fits");
        prop_assert!(ua.approx_eq_up_to_phase(&ub, 1e-7));
    }
}
