//! End-to-end roundtrip: obfuscate → split → recombine must restore the
//! exact function of every RevLib benchmark, across seeds.
//!
//! For the classical benchmarks the check is *exhaustive over all basis
//! inputs* (the recombined circuit, evaluated as a classical permutation,
//! must equal the benchmark's independent reference).

use revlib::spec::classical_eval;
use revlib::{all_benchmarks, table1_benchmarks};
use tetrislock::recombine::recombine;
use tetrislock::{InsertionConfig, Obfuscator};

#[test]
fn obfuscation_preserves_every_benchmark_exhaustively() {
    for bench in all_benchmarks() {
        let c = bench.circuit();
        for seed in 0..5u64 {
            let obf = Obfuscator::new().with_seed(seed).obfuscate(c);
            let n = c.num_qubits();
            for input in 0..1usize << n {
                assert_eq!(
                    classical_eval(obf.obfuscated(), input).unwrap(),
                    bench.eval(input),
                    "{} seed {seed} input {input}: obfuscation broke the function",
                    bench.name()
                );
            }
        }
    }
}

#[test]
fn split_and_recombine_restores_every_benchmark() {
    for bench in table1_benchmarks() {
        let c = bench.circuit();
        for seed in 0..5u64 {
            let obf = Obfuscator::new().with_seed(seed).obfuscate(c);
            let split = obf.split(seed.wrapping_mul(31) + 5);
            let restored = recombine(&split).expect("recombination is total");
            let n = c.num_qubits();
            for input in 0..1usize << n {
                assert_eq!(
                    classical_eval(&restored, input).unwrap(),
                    bench.eval(input),
                    "{} seed {seed} input {input}: recombination diverged",
                    bench.name()
                );
            }
        }
    }
}

#[test]
fn depth_never_grows_for_any_benchmark_or_seed() {
    for bench in all_benchmarks() {
        let c = bench.circuit();
        for seed in 0..10u64 {
            let obf = Obfuscator::new().with_seed(seed).obfuscate(c);
            assert_eq!(
                obf.obfuscated().depth(),
                c.depth(),
                "{} seed {seed}: depth changed",
                bench.name()
            );
        }
    }
}

#[test]
fn every_pair_is_separated_by_the_split() {
    for bench in table1_benchmarks() {
        let c = bench.circuit();
        for seed in 0..5u64 {
            let obf = Obfuscator::new().with_seed(seed).obfuscate(c);
            let split = obf.split(seed + 1000);
            for pair in &obf.insertion().pairs {
                let inv = obf.obfuscated().instructions()[pair.inverse_index].clone();
                let fwd = obf.obfuscated().instructions()[pair.forward_index].clone();
                let inv_in_left = inv
                    .remapped(&split.left.wire_map)
                    .map(|m| split.left.circuit.iter().any(|i| *i == m))
                    .unwrap_or(false);
                let fwd_in_right = fwd
                    .remapped(&split.right.wire_map)
                    .map(|m| split.right.circuit.iter().any(|i| *i == m))
                    .unwrap_or(false);
                assert!(
                    inv_in_left && fwd_in_right,
                    "{} seed {seed}: pair {:?} not separated",
                    bench.name(),
                    pair.gate
                );
            }
        }
    }
}

#[test]
fn masking_corrupts_output_for_most_insertions() {
    // Figure 4's premise: the masked view RC (key withheld) produces a
    // different result than the original on the zero input whenever an X
    // half actually fires. Check that masking changes the function for a
    // healthy fraction of seeded runs on the multi-bit circuits.
    for bench in [revlib::rd53(), revlib::rd73(), revlib::rd84()] {
        let c = bench.circuit();
        let mut corrupted = 0;
        let mut inserted_any = 0;
        for seed in 0..10u64 {
            let obf = Obfuscator::new().with_seed(seed).obfuscate(c);
            if obf.inserted_count() == 0 {
                continue;
            }
            inserted_any += 1;
            let masked = obf.masked_circuit();
            if classical_eval(&masked, 0).unwrap() != bench.eval(0) {
                corrupted += 1;
            }
        }
        assert!(inserted_any >= 8, "{}: almost no insertions", bench.name());
        assert!(
            corrupted * 2 >= inserted_any,
            "{}: masking corrupted only {corrupted}/{inserted_any} runs",
            bench.name()
        );
    }
}

#[test]
fn multiway_splits_restore_every_benchmark() {
    use tetrislock::multiway::MultiwayPattern;
    for bench in table1_benchmarks() {
        let c = bench.circuit();
        let n = c.num_qubits();
        for k in [3usize, 4] {
            let obf = Obfuscator::new().with_seed(2).obfuscate(c);
            let pattern = MultiwayPattern::random_for(&obf, k, 9);
            let split = pattern.split(&obf);
            let restored = split.recombine().expect("recombination is total");
            // Sampled inputs for the big registers, exhaustive for small.
            let step = if n > 8 { 13 } else { 1 };
            for input in (0..1usize << n).step_by(step) {
                assert_eq!(
                    classical_eval(&restored, input).unwrap(),
                    bench.eval(input),
                    "{} k={k} input {input}",
                    bench.name()
                );
            }
            // Pair halves in ascending segments.
            for pair in &obf.insertion().pairs {
                assert!(
                    split.assignment[pair.inverse_index] < split.assignment[pair.forward_index],
                    "{} k={k}: pair not separated",
                    bench.name()
                );
            }
        }
    }
}

#[test]
fn gate_overhead_within_paper_budget() {
    // Paper: "a total of 1–4 gates inserted", default budget 4.
    for bench in table1_benchmarks() {
        for seed in 0..10u64 {
            let obf = Obfuscator::new()
                .with_config(InsertionConfig {
                    seed,
                    ..Default::default()
                })
                .obfuscate(bench.circuit());
            assert!(obf.insertion().gate_overhead() <= 4);
        }
    }
}
