//! Property-based tests for the serve daemon's retry/backoff policy
//! and crash-loop circuit breaker (`tetrislock::retry`) in isolation.
//!
//! The serve fault harness depends on these invariants holding for
//! *every* configuration, not just the defaults: schedules must be a
//! pure function of `(policy, seed)` (replayable), monotone and
//! bounded (no retry storms), and the breaker must open after exactly
//! `N` consecutive strikes (quarantine neither early nor late) and
//! re-close after a successful probe.

use proptest::prelude::*;
use tetrislock::retry::{BreakerState, CircuitBreaker, RetryPolicy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn schedule_is_a_pure_function_of_policy_and_seed(
        seed in 0u64..u64::MAX,
        base in 1u64..1_000,
        max in 1_000u64..100_000,
        n in 1u32..24,
    ) {
        let policy = RetryPolicy { max_strikes: 3, base_delay_ms: base, max_delay_ms: max };
        prop_assert_eq!(policy.schedule(seed, n), policy.schedule(seed, n));
        // And per-attempt lookups agree with the vectorized schedule.
        let schedule = policy.schedule(seed, n);
        for (k, &d) in schedule.iter().enumerate() {
            prop_assert_eq!(d, policy.delay_ms(seed, k as u32));
        }
    }

    #[test]
    fn schedule_is_monotone_and_bounded(
        seed in 0u64..u64::MAX,
        base in 1u64..1_000,
        max in 1_000u64..100_000,
    ) {
        let policy = RetryPolicy { max_strikes: 3, base_delay_ms: base, max_delay_ms: max };
        let schedule = policy.schedule(seed, 64);
        for w in schedule.windows(2) {
            prop_assert!(w[0] <= w[1], "schedule shrank: {:?}", schedule);
        }
        for &d in &schedule {
            prop_assert!(d <= max, "delay {d} above the {max} ceiling");
        }
        // Jitter shaves at most 25% off the doubling backbone.
        prop_assert!(schedule[0] >= base - base / 4, "first delay under 0.75*base");
    }

    #[test]
    fn schedule_saturates_exactly_at_the_cap(
        seed in 0u64..u64::MAX,
        base in 1u64..1_000,
        max in 1_000u64..100_000,
    ) {
        let policy = RetryPolicy { max_strikes: 3, base_delay_ms: base, max_delay_ms: max };
        // By attempt 63 the shifted backbone has overflowed or passed
        // any cap, so the delay must be exactly the ceiling — with no
        // jitter applied at the cap.
        prop_assert_eq!(policy.delay_ms(seed, 63), max);
        prop_assert_eq!(policy.delay_ms(seed, 200), max);
    }

    #[test]
    fn different_seeds_jitter_somewhere(seed in 0u64..u64::MAX) {
        // Not an invariant for *every* pair, but two seeds agreeing on
        // all 8 sub-cap delays of the default policy would mean the
        // jitter is not actually keyed on the seed.
        let policy = RetryPolicy::default();
        let a = policy.schedule(seed, 6);
        let b = policy.schedule(seed ^ 0x5DEE_CE66_D1CE_1CEE, 6);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn breaker_opens_after_exactly_n_strikes(n in 1u32..32) {
        let mut breaker = CircuitBreaker::new(n);
        for strike in 1..n {
            breaker.record_failure();
            prop_assert!(
                !breaker.is_open(),
                "opened after {strike} of {n} strikes (too early)"
            );
        }
        prop_assert_eq!(breaker.record_failure(), BreakerState::Open);
        prop_assert_eq!(breaker.strikes(), n);
    }

    #[test]
    fn breaker_recloses_after_successful_probe(n in 1u32..32) {
        let mut breaker = CircuitBreaker::new(n);
        for _ in 0..n {
            breaker.record_failure();
        }
        prop_assert!(breaker.is_open());
        // Exactly one probe may go out while half-open.
        prop_assert!(breaker.probe());
        prop_assert_eq!(breaker.state(), BreakerState::HalfOpen);
        prop_assert!(!breaker.probe());
        breaker.record_success();
        prop_assert_eq!(breaker.state(), BreakerState::Closed);
        prop_assert_eq!(breaker.strikes(), 0);
        // After re-closing, the full strike budget applies again.
        for _ in 0..n - 1 {
            breaker.record_failure();
        }
        prop_assert!(n == 1 || !breaker.is_open());
    }

    #[test]
    fn failed_probe_reopens_immediately(n in 1u32..32) {
        let mut breaker = CircuitBreaker::new(n);
        for _ in 0..n {
            breaker.record_failure();
        }
        prop_assert!(breaker.probe());
        prop_assert_eq!(breaker.record_failure(), BreakerState::Open);
    }
}
