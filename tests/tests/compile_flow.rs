//! Integration across the compiler: split segments survive independent
//! transpilation by different "untrusted compilers" and recombine to the
//! original function.

use qcir::{Circuit, Qubit};
use qcompile::{OptimizationLevel, Transpiler};
use qsim::unitary::equivalent_up_to_phase;
use qsim::{Device, Statevector};
use std::collections::BTreeMap;
use tetrislock::recombine::recombine_compiled;
use tetrislock::Obfuscator;

/// Extends the (inverted) split wire map to cover a compiled segment's
/// routing wires with fresh indices.
fn segment_map(
    split_map: &BTreeMap<Qubit, Qubit>,
    logical: &Circuit,
    mut next_free: u32,
) -> (BTreeMap<Qubit, Qubit>, u32) {
    let mut map: BTreeMap<Qubit, Qubit> = split_map.iter().map(|(&o, &s)| (s, o)).collect();
    for w in 0..logical.num_qubits() {
        map.entry(Qubit::new(w)).or_insert_with(|| {
            let fresh = next_free;
            next_free += 1;
            Qubit::new(fresh)
        });
    }
    (map, next_free)
}

fn end_to_end(circuit: &Circuit, seed: u64) -> Circuit {
    let obf = Obfuscator::new().with_seed(seed).obfuscate(circuit);
    let split = obf.split(seed + 7);

    let device = Device::fake_valencia();
    let compiler_a = Transpiler::new(device.clone()).with_optimization(OptimizationLevel::Full);
    let compiler_b = Transpiler::new(device)
        .with_optimization(OptimizationLevel::Light)
        .with_trivial_layout();

    let left = compiler_a
        .transpile(&split.left.circuit)
        .expect("left segment fits")
        .into_logical_circuit();
    let right = compiler_b
        .transpile(&split.right.circuit)
        .expect("right segment fits")
        .into_logical_circuit();

    let n = circuit.num_qubits();
    let (lmap, next) = segment_map(&split.left.wire_map, &left, n);
    let (rmap, total) = segment_map(&split.right.wire_map, &right, next);
    recombine_compiled(total, &left, &lmap, &right, &rmap).expect("maps are total")
}

/// Checks the recombined-compiled circuit acts like the original on the
/// zero input (ancillas start and end in |0⟩).
fn assert_zero_input_equal(original: &Circuit, assembled: &Circuit) {
    let orig = Statevector::from_circuit(original).expect("fits");
    let asm = Statevector::from_circuit(assembled).expect("fits");
    let n = original.num_qubits();
    // Marginal probabilities on the original wires.
    let mut marg = vec![0.0f64; 1usize << n];
    for (idx, amp) in asm.amplitudes().iter().enumerate() {
        marg[idx & ((1 << n) - 1)] += amp.norm_sqr();
    }
    for (i, p) in orig.probabilities().iter().enumerate() {
        assert!(
            (marg[i] - p).abs() < 1e-9,
            "probability mismatch at basis {i}: {} vs {p}",
            marg[i]
        );
    }
}

#[test]
fn adder_survives_split_compilation() {
    let bench = revlib::adder_1bit();
    for seed in 0..3 {
        let assembled = end_to_end(bench.circuit(), seed);
        assert_zero_input_equal(bench.circuit(), &assembled);
    }
}

#[test]
fn mini_alu_survives_split_compilation() {
    let bench = revlib::mini_alu();
    let assembled = end_to_end(bench.circuit(), 1);
    assert_zero_input_equal(bench.circuit(), &assembled);
}

#[test]
fn mod5_survives_split_compilation() {
    let bench = revlib::mod5_4();
    let assembled = end_to_end(bench.circuit(), 2);
    assert_zero_input_equal(bench.circuit(), &assembled);
}

#[test]
fn compiled_segments_conform_to_device() {
    use qcompile::transpiler::conforms_to_device;
    let bench = revlib::comparator_4gt13();
    let obf = Obfuscator::new().with_seed(3).obfuscate(bench.circuit());
    let split = obf.split(11);
    let device = Device::fake_valencia();
    let t = Transpiler::new(device.clone());
    for segment in [&split.left.circuit, &split.right.circuit] {
        if segment.is_empty() {
            continue;
        }
        let out = t.transpile(segment).expect("fits");
        assert!(conforms_to_device(&out.circuit, &device));
    }
}

#[test]
fn attacker_compiler_cannot_cancel_masking_within_one_segment() {
    // The inverse-cancellation pass is exactly what an attacker-compiler
    // would run to strip R⁻¹R. Within a single segment it must find
    // nothing to cancel (the halves live in different segments).
    use qcompile::optimize::cancel_inverse_pairs;
    for bench in revlib::table1_benchmarks() {
        for seed in 0..5 {
            let obf = Obfuscator::new().with_seed(seed).obfuscate(bench.circuit());
            if obf.inserted_count() == 0 {
                continue;
            }
            let split = obf.split(seed + 3);
            for segment in [&split.left.circuit, &split.right.circuit] {
                let mut stripped = segment.clone();
                let removed = cancel_inverse_pairs(&mut stripped);
                // Any cancellation found must come from the original
                // circuit's own structure, not from a complete R/R⁻¹
                // pair: verify the masked function is still not the
                // original by checking the segment is not functionally
                // the whole obfuscated circuit.
                assert!(
                    stripped.gate_count() + removed == segment.gate_count(),
                    "accounting"
                );
                assert!(
                    segment.gate_count() < obf.obfuscated().gate_count(),
                    "segment holds the entire circuit"
                );
            }
        }
    }
}

#[test]
fn commutation_aware_attacker_also_fails_on_segments() {
    // Even the stronger pass — cancellation through commuting gates —
    // finds no R/R⁻¹ pair inside a single segment, because the partner
    // half is simply absent.
    use qcompile::optimize::cancel_commuting_pairs;
    for bench in [revlib::adder_1bit(), revlib::mini_alu(), revlib::rd53()] {
        for seed in 0..3 {
            let obf = Obfuscator::new().with_seed(seed).obfuscate(bench.circuit());
            if obf.inserted_count() == 0 {
                continue;
            }
            let split = obf.split(seed + 11);
            for segment in [&split.left.circuit, &split.right.circuit] {
                let mut stripped = segment.clone();
                let removed = cancel_commuting_pairs(&mut stripped);
                // Whatever cancels must be original-circuit structure;
                // verify the segment's own function is unchanged.
                if removed > 0 {
                    assert!(
                        equivalent_up_to_phase(segment, &stripped, 1e-9).unwrap(),
                        "{} seed {seed}: pass broke the segment",
                        bench.name()
                    );
                }
            }
        }
    }
}

#[test]
fn whole_circuit_attacker_would_cancel_pairs() {
    // Contrast case: with the *whole* obfuscated circuit in hand, the
    // same pass can strip the masking — which is why the split matters.
    let bench = revlib::adder_1bit();
    let obf = Obfuscator::new().with_seed(0).obfuscate(bench.circuit());
    if obf.inserted_count() == 0 {
        return;
    }
    use qcompile::optimize::cancel_inverse_pairs;
    let mut whole = obf.obfuscated().clone();
    let removed = cancel_inverse_pairs(&mut whole);
    assert!(
        removed >= 2,
        "adjacent R⁻¹/R halves should cancel in the unsplit circuit"
    );
    assert!(
        equivalent_up_to_phase(&whole, bench.circuit(), 1e-9).unwrap(),
        "cancellation should recover the original"
    );
}
