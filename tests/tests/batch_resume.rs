//! Fault-injection suite for the batch protection service — the
//! headline crash-safety test.
//!
//! Strategy: run `tetrislock batch --suite table1` (the paper's RevLib
//! suite) once uninterrupted as the reference, then run the same batch
//! in a subprocess that is repeatedly killed at *seeded-random*
//! checkpoint counts (via the `TLK_BATCH_KILL_AFTER_CHECKPOINTS` hook,
//! which `abort()`s the process — equivalent to `kill -9`: no
//! destructors, no flushes) and resumed with `--resume` until it
//! finally completes. Every restored circuit and the manifest must be
//! **byte-identical** to the uninterrupted run, even though the fault
//! run used a different worker count and crossed many kill/resume
//! cycles.
//!
//! The kill schedule is seeded (`TLK_TEST_SEED` env, default below) so
//! failures replay exactly.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Locates the `tetrislock` binary next to the test executable
/// (`target/debug/deps/<test>` → `target/debug/tetrislock`), building
/// it on demand if a bare `cargo test -p tetrislock-tests` got here
/// without it.
fn tetrislock_bin() -> PathBuf {
    let exe = std::env::current_exe().expect("test executable path");
    let debug_dir = exe
        .parent()
        .and_then(Path::parent)
        .expect("target/debug layout");
    let bin = debug_dir.join(format!("tetrislock{}", std::env::consts::EXE_SUFFIX));
    if bin.exists() {
        return bin;
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = Command::new(cargo)
        .args(["build", "-p", "tetrislock-cli", "--bin", "tetrislock"])
        .status()
        .expect("spawn cargo build");
    assert!(status.success(), "building the tetrislock binary failed");
    assert!(bin.exists(), "no tetrislock binary at {}", bin.display());
    bin
}

/// Small deterministic RNG (xorshift64*) for the kill schedule — the
/// test must not depend on ambient entropy.
struct KillRng(u64);

impl KillRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlk_batch_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// All batch artifacts that must be reproducible: every
/// `*.restored.qasm` plus the manifest, keyed by file name.
fn read_outputs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read output dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".restored.qasm") || name == "manifest.txt" {
            out.insert(name, std::fs::read(entry.path()).expect("read output file"));
        }
    }
    out
}

fn batch_cmd(bin: &Path, out_dir: &Path, workers: &str) -> Command {
    let mut cmd = Command::new(bin);
    cmd.args([
        "batch",
        "--suite",
        "table1",
        "--workers",
        workers,
        "--out-dir",
    ])
    .arg(out_dir)
    .arg("--resume");
    cmd
}

#[test]
fn kill_resume_outputs_byte_identical_to_uninterrupted_run() {
    let bin = tetrislock_bin();
    let ref_dir = unique_dir("ref");
    let fault_dir = unique_dir("fault");

    // Reference: uninterrupted, single worker.
    let status = batch_cmd(&bin, &ref_dir, "1")
        .status()
        .expect("spawn reference batch");
    assert!(status.success(), "reference batch run failed");
    let reference = read_outputs(&ref_dir);
    assert!(
        reference.len() > 8,
        "expected the table1 suite plus manifest, got {} files",
        reference.len()
    );

    // Fault run: different worker count, killed at seeded-random
    // checkpoint counts until it completes on its own.
    let seed = std::env::var("TLK_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xA5EE_D001_u64);
    let mut rng = KillRng(seed | 1);
    let mut kills = 0u32;
    let mut completed = false;
    for round in 0..40 {
        // Kill after 3..=16 checkpoint writes: early enough to strike
        // mid-pipeline (each job checkpoints 8 times), late enough that
        // every round makes progress.
        let kill_after = 3 + rng.next() % 14;
        let status = batch_cmd(&bin, &fault_dir, "2")
            .env("TLK_BATCH_KILL_AFTER_CHECKPOINTS", kill_after.to_string())
            .status()
            .expect("spawn fault batch");
        if status.success() {
            completed = true;
            break;
        }
        kills += 1;
        assert!(
            status.code().is_none() || status.code() != Some(1),
            "round {round}: expected an abort (signal), got clean failure exit"
        );
    }
    if !completed {
        // Belt and braces: finish without the kill hook. The comparison
        // below still proves resume correctness for all prior kills.
        let status = batch_cmd(&bin, &fault_dir, "2")
            .status()
            .expect("spawn final batch");
        assert!(status.success(), "final resume run failed");
    }
    assert!(
        kills >= 3,
        "fault injection fired only {kills} times — the hook is not working"
    );

    let fault = read_outputs(&fault_dir);
    assert_eq!(
        reference.keys().collect::<Vec<_>>(),
        fault.keys().collect::<Vec<_>>(),
        "kill/resume run produced a different file set"
    );
    for (name, want) in &reference {
        assert_eq!(
            fault.get(name).map(Vec::as_slice),
            Some(want.as_slice()),
            "{name} differs between uninterrupted and kill/resume runs"
        );
    }

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&fault_dir);
}

#[test]
fn killed_run_leaves_loadable_checkpoints() {
    // A run killed mid-flight must leave a jobs directory from which
    // every checkpoint loads cleanly (the .prev rotation guarantees at
    // least one good generation per started job).
    let bin = tetrislock_bin();
    let dir = unique_dir("ckpt");
    let status = batch_cmd(&bin, &dir, "2")
        .env("TLK_BATCH_KILL_AFTER_CHECKPOINTS", "5")
        .status()
        .expect("spawn killed batch");
    assert!(!status.success(), "the kill hook should have fired");

    let jobs_dir = dir.join("jobs");
    let mut seen = 0;
    for entry in std::fs::read_dir(&jobs_dir).expect("jobs dir exists after kill") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("job") {
            let id = path.file_stem().unwrap().to_str().unwrap();
            let loaded = tetrislock::job::load_checkpoint(&jobs_dir, id)
                .expect("checkpoint loads or falls back");
            assert!(loaded.is_some(), "checkpoint for {id} vanished");
            seen += 1;
        }
    }
    assert!(seen >= 1, "no checkpoints were written before the kill");
    let _ = std::fs::remove_dir_all(&dir);
}
