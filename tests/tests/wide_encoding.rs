//! Property suite for the wide basis encoding (`qcir::BasisBits`) and
//! the 64+-wire witness replay it unlocks.
//!
//! ISSUE 10 acceptance: the limb-backed encoding must agree bit-for-bit
//! with the legacy `u64` path everywhere both exist (≤ 63 wires), do
//! the right thing at exactly the 63/64/65-wire boundary, and carry the
//! bit-level replay — and through it the ZX tier's witness
//! certification — to 64–128-wire registers. The final regression test
//! pins the headline: the old `n > 63` witness rejection is gone.

use proptest::prelude::*;
use qcir::{BasisBits, Circuit, Gate};
use qverify::{Tier, Verdict, Verifier, Witness};
use revlib::{classical_eval, classical_eval_bits};

/// Strategy: a random classical reversible circuit over `lo..=hi`
/// wires (X/CX/CCX/Swap).
fn reversible_circuit(lo: u32, hi: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (lo..=hi, 1..=max_gates).prop_flat_map(|(n, len)| {
        let gate = prop_oneof![
            (0..n).prop_map(|q| (Gate::X, vec![q])),
            (0..n, 0..n).prop_filter_map("distinct wires", move |(a, b)| {
                (a != b).then(|| (Gate::CX, vec![a, b]))
            }),
            (0..n, 0..n).prop_filter_map("distinct wires", move |(a, b)| {
                (a != b).then(|| (Gate::Swap, vec![a, b]))
            }),
            (0..n, 0..n, 0..n).prop_filter_map("distinct wires", move |(a, b, c)| {
                (a != b && b != c && a != c).then(|| (Gate::CCX, vec![a, b, c]))
            }),
        ];
        proptest::collection::vec(gate, 1..=len).prop_map(move |gates| {
            let mut circuit = Circuit::with_name(n, "wide_enc_prop");
            for (g, wires) in gates {
                circuit.append(g, &wires).expect("generated wires valid");
            }
            circuit
        })
    })
}

/// Strategy: a basis state over `width` wires from random limbs.
fn basis_state(width: u32) -> impl Strategy<Value = BasisBits> {
    let limbs = (width as usize).div_ceil(64);
    proptest::collection::vec(0u64..=u64::MAX, limbs..=limbs).prop_map(move |limbs| {
        let mut x = BasisBits::zeros(width);
        for i in 0..width {
            if limbs[i as usize / 64] >> (i % 64) & 1 == 1 {
                x.set(i, true);
            }
        }
        x
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn u64_embedding_round_trips(width in 1u32..=63, value in 0u64..=u64::MAX) {
        let value = value & ((1u64 << width) - 1);
        let x = BasisBits::from_u64(width, value);
        prop_assert_eq!(x.to_u64(), Some(value));
        prop_assert_eq!(x.count_ones(), value.count_ones());
        for i in 0..width {
            prop_assert_eq!(x.bit(i), value >> i & 1 == 1);
        }
        prop_assert_eq!(x.to_string(), format!("{value:#b}"));
    }

    #[test]
    fn set_get_round_trips_past_the_limb_boundary(x in basis_state(128)) {
        // Rebuild from the reported bits; a faithful get/set pair must
        // reproduce the state exactly, including equality and hashing.
        let mut rebuilt = BasisBits::zeros(128);
        for i in 0..128 {
            rebuilt.set(i, x.bit(i));
        }
        prop_assert_eq!(&rebuilt, &x);
        prop_assert_eq!(rebuilt.count_ones(), (0..128).filter(|&i| x.bit(i)).count() as u32);
    }

    #[test]
    fn bit_replay_agrees_with_legacy_u64_path_below_64_wires(
        circuit in reversible_circuit(3, 20, 24),
        seed in 0u64..=u64::MAX,
    ) {
        // Everywhere both replays exist they must be the same function.
        let n = circuit.num_qubits();
        let input = seed & ((1u64 << n) - 1);
        let legacy = classical_eval(&circuit, input as usize).unwrap() as u64;
        let wide = classical_eval_bits(&circuit, &BasisBits::from_u64(n, input)).unwrap();
        prop_assert_eq!(wide.to_u64(), Some(legacy));
    }

    #[test]
    fn wide_replay_is_a_permutation_witness_oracle(
        circuit in reversible_circuit(64, 128, 24),
        flip in 0u32..64,
    ) {
        // 64-128 wires: the legacy u64 path cannot even name these
        // inputs. The wide replay must still behave like a reversible
        // permutation: deterministic, and bijective on distinct inputs
        // (checked on a pair differing in one bit).
        let n = circuit.num_qubits();
        let zero = BasisBits::zeros(n);
        let mut one = BasisBits::zeros(n);
        one.set(flip % n, true);
        let image_zero = classical_eval_bits(&circuit, &zero).unwrap();
        let image_one = classical_eval_bits(&circuit, &one).unwrap();
        prop_assert_eq!(image_zero.width(), n);
        prop_assert_eq!(&classical_eval_bits(&circuit, &zero).unwrap(), &image_zero);
        prop_assert_ne!(&image_zero, &image_one, "a permutation cannot merge inputs");
    }

    #[test]
    fn wrong_pairs_at_64_to_128_wires_get_replay_certified_witnesses(
        circuit in reversible_circuit(64, 128, 20),
        stray in 0u32..64,
    ) {
        // The tentpole end to end, property-styled: a wide reversible
        // pair with one stray inverter must be rejected by the ZX tier
        // with a BasisBits witness that survives independent replay.
        // (The CCX garnish keeps the pair non-Clifford, so the exact
        // tableau tier cannot take the case first.)
        let n = circuit.num_qubits();
        let mut circuit = circuit;
        circuit.ccx(0, 1, 2);
        let mut bad = circuit.clone();
        bad.x(stray % n);
        let report = Verifier::new().check_report(&circuit, &bad);
        prop_assert_eq!(report.tier, Tier::Zx, "{}", report);
        let Verdict::Inequivalent {
            witness: Witness::BasisInput { input, left_output, right_output },
        } = report.verdict
        else {
            panic!("expected a bit-replay witness, got {report}");
        };
        prop_assert_eq!(input.width(), n);
        prop_assert_ne!(&left_output, &right_output);
        prop_assert_eq!(&classical_eval_bits(&circuit, &input).unwrap(), &left_output);
        prop_assert_eq!(&classical_eval_bits(&bad, &input).unwrap(), &right_output);
    }
}

#[test]
fn boundary_widths_are_exact() {
    // 63 wires: still u64-expressible, and the narrowing must be
    // lossless at the top bit. 64/65 wires: u64 must refuse, limbs must
    // carry on.
    let mut x63 = BasisBits::zeros(63);
    x63.set(62, true);
    assert_eq!(x63.to_u64(), Some(1u64 << 62));

    let mut x64 = BasisBits::zeros(64);
    x64.set(63, true);
    assert_eq!(x64.to_u64(), Some(1u64 << 63));
    assert_eq!(x64.count_ones(), 1);

    let mut x65 = BasisBits::zeros(65);
    x65.set(64, true);
    assert_eq!(x65.to_u64(), None, "bit 64 cannot narrow");
    assert!(x65.bit(64) && !x65.bit(63));

    // A CX straddling the limb boundary: control below, target above.
    let mut c = Circuit::new(65);
    c.x(63).cx(63, 64);
    let out = classical_eval_bits(&c, &BasisBits::zeros(65)).unwrap();
    assert!(out.bit(63) && out.bit(64));
    assert_eq!(out.count_ones(), 2);
}

#[test]
fn witness_replay_works_at_exactly_63_64_and_65_wires() {
    // The widths around the old cliff: at 63 the legacy path still
    // worked; 64 and 65 were rejected outright (`n > 63` bailed before
    // proposing a single candidate). All three must now be decided.
    for n in [63u32, 64, 65] {
        let mut a = Circuit::new(n);
        for q in 0..n - 2 {
            a.cx(q, q + 1).ccx(q, q + 1, q + 2);
        }
        let mut b = a.clone();
        b.x(n - 4);
        let report = Verifier::new().check_report(&a, &b);
        assert_eq!(report.tier, Tier::Zx, "{n} wires: {report}");
        let Verdict::Inequivalent {
            witness: Witness::BasisInput { input, .. },
        } = report.verdict
        else {
            panic!("{n} wires: expected a bit-replay witness, got {report}");
        };
        assert_eq!(input.width(), n);

        // And the equivalent direction stays certified.
        let mut same = a.clone();
        same.x(0).x(0);
        let report = Verifier::new().check_report(&a, &same);
        assert_eq!(report.tier, Tier::Zx, "{n} wires: {report}");
        assert!(report.verdict.is_equivalent(), "{n} wires: {report}");
    }
}

#[test]
fn the_63_wire_witness_rejection_is_lifted() {
    // Regression pin for the headline behavior change: a 100-wire
    // wrong-key-style reversible pair was `Inconclusive` under the u64
    // encoding (the witness extractor bailed at `n > 63`); it now gets
    // a concrete, independently checkable witness.
    let n = 100u32;
    let mut a = Circuit::new(n);
    for q in 0..n - 2 {
        a.cx(q, q + 1).ccx(q, q + 1, q + 2);
    }
    let mut b = a.clone();
    b.x(77);
    let report = Verifier::new().check_report(&a, &b);
    assert_eq!(report.tier, Tier::Zx, "{report}");
    assert_eq!(report.confidence(), 1.0);
    let Verdict::Inequivalent {
        witness:
            Witness::BasisInput {
                input,
                left_output,
                right_output,
            },
    } = report.verdict
    else {
        panic!("expected a bit-replay witness, got {report}");
    };
    assert_eq!(classical_eval_bits(&a, &input).unwrap(), left_output);
    assert_eq!(classical_eval_bits(&b, &input).unwrap(), right_output);
    assert_ne!(left_output, right_output);
}
