//! Differential tier-consistency harness for the `qverify` cascade.
//!
//! ISSUE 10 acceptance: over 200 seeded circuit pairs — equivalent by
//! construction (identity insertion, disjoint-wire commutation) or
//! inequivalent by construction (a single-gate phase or wire mutation)
//! — every tier that *can* speak must tell the same story:
//!
//! * every decisive tier verdict (dispatch, forced tableau, forced ZX,
//!   forced dense) agrees with the by-construction expectation;
//! * no two decisive tiers ever contradict each other on the same pair;
//! * where dense ground truth is reachable it is computed independently
//!   (`equivalent_up_to_phase`) and every decisive verdict must match;
//! * for classical pairs the ground truth is bit-level replay, exact at
//!   any width;
//! * the stimulus tier is held to soundness only — a concrete witness
//!   must never appear on an equivalent pair (its accepts are
//!   statistical by contract, so they are not required);
//! * **no reversible pair at any nameable width, and no Clifford+T
//!   wrong-key pair up to 32 qubits with column-replayable branching,
//!   is allowed to end `Inconclusive`** — these are exactly the blind
//!   spots this issue closes.
//!
//! A single-gate mutation `g → g'` at a fixed position is guaranteed
//! inequivalent whenever `g·g'⁻¹` is not a global phase: the miter
//! collapses to `S† (g·g'⁻¹) S` for the shared suffix `S`, which is the
//! identity up to phase iff `g·g'⁻¹` is. Every mutation below (T→T†,
//! S→S†, and any retargeting of a wire) satisfies that, so the expected
//! verdicts need no sampling escape hatch.

use qcir::{Circuit, Gate};
use qsim::unitary::equivalent_up_to_phase;
use qverify::{Tier, Verdict, Verifier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revlib::classical_eval_bits;

const EPS: f64 = 1e-9;

/// One gate as data, so a sequence can be mutated before materializing.
type GateSeq = Vec<(Gate, Vec<u32>)>;

fn materialize(n: u32, name: &str, gates: &GateSeq) -> Circuit {
    let mut c = Circuit::with_name(n, name);
    for (g, wires) in gates {
        c.append(g.clone(), wires)
            .expect("generated wires are valid");
    }
    c
}

fn distinct(rng: &mut StdRng, n: u32, used: &[u32]) -> u32 {
    loop {
        let q = rng.gen_range(0..n);
        if !used.contains(&q) {
            return q;
        }
    }
}

/// Random reversible sequence: X/CX/CCX/Swap.
fn reversible_seq(n: u32, len: usize, rng: &mut StdRng) -> GateSeq {
    (0..len)
        .map(|_| match rng.gen_range(0..4u8) {
            0 => (Gate::X, vec![rng.gen_range(0..n)]),
            1 => {
                let a = rng.gen_range(0..n);
                (Gate::CX, vec![a, distinct(rng, n, &[a])])
            }
            2 => {
                let a = rng.gen_range(0..n);
                let b = distinct(rng, n, &[a]);
                (Gate::CCX, vec![a, b, distinct(rng, n, &[a, b])])
            }
            _ => {
                let a = rng.gen_range(0..n);
                (Gate::Swap, vec![a, distinct(rng, n, &[a])])
            }
        })
        .collect()
}

/// Random Clifford sequence: H/S/CX/CZ.
fn clifford_seq(n: u32, len: usize, rng: &mut StdRng) -> GateSeq {
    (0..len)
        .map(|_| match rng.gen_range(0..4u8) {
            0 => (Gate::H, vec![rng.gen_range(0..n)]),
            1 => (Gate::S, vec![rng.gen_range(0..n)]),
            2 => {
                let a = rng.gen_range(0..n);
                (Gate::CX, vec![a, distinct(rng, n, &[a])])
            }
            _ => {
                let a = rng.gen_range(0..n);
                (Gate::CZ, vec![a, distinct(rng, n, &[a])])
            }
        })
        .collect()
}

/// Random Clifford+T sequence with at most `max_h` Hadamards, so the
/// miter of any pair built from two such sequences stays within the
/// sharded column replay's branching bound.
fn clifford_t_seq(n: u32, len: usize, max_h: usize, rng: &mut StdRng) -> GateSeq {
    let mut h_left = max_h;
    (0..len)
        .map(|_| match rng.gen_range(0..5u8) {
            0 if h_left > 0 => {
                h_left -= 1;
                (Gate::H, vec![rng.gen_range(0..n)])
            }
            0 | 1 => (Gate::S, vec![rng.gen_range(0..n)]),
            2 => (Gate::T, vec![rng.gen_range(0..n)]),
            3 => {
                let a = rng.gen_range(0..n);
                (Gate::CX, vec![a, distinct(rng, n, &[a])])
            }
            _ if n >= 3 => {
                let a = rng.gen_range(0..n);
                let b = distinct(rng, n, &[a]);
                (Gate::CCX, vec![a, b, distinct(rng, n, &[a, b])])
            }
            _ => (Gate::T, vec![rng.gen_range(0..n)]),
        })
        .collect()
}

/// Equivalent-by-construction variant: insert a canceling identity pair
/// at a random position, then (where possible) commute one adjacent
/// pair of gates acting on disjoint wires.
fn equivalent_variant(n: u32, gates: &GateSeq, rng: &mut StdRng, classical: bool) -> GateSeq {
    let mut out = gates.clone();
    let at = rng.gen_range(0..=out.len());
    let pair: [(Gate, Vec<u32>); 2] = if classical {
        match rng.gen_range(0..3u8) {
            0 => {
                let q = rng.gen_range(0..n);
                [(Gate::X, vec![q]), (Gate::X, vec![q])]
            }
            1 => {
                let a = rng.gen_range(0..n);
                let b = distinct(rng, n, &[a]);
                [(Gate::CX, vec![a, b]), (Gate::CX, vec![a, b])]
            }
            _ => {
                let a = rng.gen_range(0..n);
                let b = distinct(rng, n, &[a]);
                [(Gate::Swap, vec![a, b]), (Gate::Swap, vec![a, b])]
            }
        }
    } else {
        match rng.gen_range(0..3u8) {
            0 => {
                let q = rng.gen_range(0..n);
                [(Gate::S, vec![q]), (Gate::Sdg, vec![q])]
            }
            1 => {
                let q = rng.gen_range(0..n);
                [(Gate::T, vec![q]), (Gate::Tdg, vec![q])]
            }
            _ => {
                let a = rng.gen_range(0..n);
                let b = distinct(rng, n, &[a]);
                [(Gate::CZ, vec![a, b]), (Gate::CZ, vec![a, b])]
            }
        }
    };
    out.splice(at..at, pair);
    // Commute one adjacent disjoint-wire pair, if any exists.
    for i in 0..out.len().saturating_sub(1) {
        let disjoint = out[i].1.iter().all(|w| !out[i + 1].1.contains(w));
        if disjoint {
            out.swap(i, i + 1);
            break;
        }
    }
    out
}

/// Inequivalent-by-construction variant: mutate exactly one gate in
/// place — a phase flip where the gate supports one, a wire retarget
/// otherwise. Both leave `g·g'⁻¹` a non-phase operator.
fn mutated_variant(n: u32, gates: &GateSeq, rng: &mut StdRng) -> GateSeq {
    let mut out = gates.clone();
    let k = rng.gen_range(0..out.len());
    let (gate, wires) = &mut out[k];
    match gate {
        Gate::T => *gate = Gate::Tdg,
        Gate::Tdg => *gate = Gate::T,
        Gate::S => *gate = Gate::Sdg,
        Gate::Sdg => *gate = Gate::S,
        _ if (wires.len() as u32) < n => {
            // Retarget the last wire of the gate to a fresh one.
            let last = wires.len() - 1;
            wires[last] = distinct(rng, n, wires);
        }
        _ => {
            // The gate covers the whole register (CX at 2 wires, CCX
            // at 3): reverse its wires instead — a different operator
            // for every asymmetric gate this can reach.
            wires.reverse();
        }
    }
    out
}

/// Decisive verdicts only; `None` for `Inconclusive`.
fn decisive(verdict: &Verdict) -> Option<bool> {
    match verdict {
        Verdict::Equivalent => Some(true),
        Verdict::Inequivalent { .. } => Some(false),
        Verdict::Inconclusive { .. } => None,
    }
}

/// Runs one pair through every applicable tier and cross-checks all of
/// them against each other, against independent ground truth, and
/// against the by-construction expectation.
///
/// `must_decide` enforces the issue's completion contract: the normal
/// dispatch is not allowed to end `Inconclusive` for this pair.
fn check_case(name: &str, a: &Circuit, b: &Circuit, expected: bool, must_decide: bool) {
    let n = a.num_qubits();
    let verifier = Verifier::new().with_trials(6).with_seed(0xC0FFEE);
    let mut verdicts: Vec<(&str, bool)> = Vec::new();

    let dispatch = verifier.check_report(a, b);
    if let Some(v) = decisive(&dispatch.verdict) {
        verdicts.push(("dispatch", v));
    } else {
        assert!(
            !must_decide,
            "{name}: dispatch must not be Inconclusive, got {dispatch} (tier {})",
            dispatch.tier
        );
    }

    if let Some(report) = verifier.check_tableau(a, b) {
        verdicts.push((
            "tableau",
            decisive(&report.verdict).expect("tableau is exact"),
        ));
    }
    if let Some(report) = verifier.check_zx(a, b) {
        verdicts.push(("zx", decisive(&report.verdict).expect("zx is exact")));
    }
    // Dense ground truth where the unitary is small enough to be cheap
    // across a 200+ pair sweep.
    if n <= 9 {
        let dense = verifier.check_dense(a, b).expect("within the dense cap");
        verdicts.push(("dense", decisive(&dense.verdict).expect("dense is exact")));
        let ground = equivalent_up_to_phase(a, b, EPS).expect("within the dense cap");
        verdicts.push(("unitary-ground-truth", ground));
    }
    // Classical ground truth at any width: bit replay on seeded probes
    // (an observed divergence proves inequivalence; full agreement on
    // equivalent-by-construction pairs is a necessary condition).
    let classical = |c: &Circuit| c.iter().all(|i| i.gate().is_classical());
    if classical(a) && classical(b) {
        let mut probe_rng = StdRng::seed_from_u64(0xBEEF);
        let diverged = (0..64).any(|_| {
            let mut x = qcir::BasisBits::zeros(n);
            for w in 0..n {
                x.set(w, probe_rng.gen_bool(0.5));
            }
            classical_eval_bits(a, &x).unwrap() != classical_eval_bits(b, &x).unwrap()
        });
        if diverged {
            verdicts.push(("bit-replay-ground-truth", false));
        } else if expected {
            verdicts.push(("bit-replay-ground-truth", true));
        }
    }
    // Stimulus: soundness only — witnesses must be real; statistical
    // accepts are not decisive evidence and are not required.
    if n <= 14 {
        let report = verifier.check_stimulus(a, b).expect("within stimulus cap");
        if report.verdict.is_inequivalent() {
            verdicts.push(("stimulus-witness", false));
        }
    }

    assert!(
        !verdicts.is_empty(),
        "{name}: no tier produced any decisive verdict"
    );
    for (tier, verdict) in &verdicts {
        assert_eq!(
            *verdict, expected,
            "{name}: tier `{tier}` disagrees with the by-construction \
             expectation (all verdicts: {verdicts:?})"
        );
    }
}

#[test]
fn reversible_pairs_all_tiers_agree_and_decide_at_any_width() {
    // 88 pairs, 4 to 96 wires — through the classical exhaustive tier,
    // the ZX reduction, and (wrong keys) the any-width bit replay.
    for &n in &[4u32, 6, 8, 12, 16, 24, 32, 48, 64, 80, 96] {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed * 1000 + n as u64);
            let len = 12 + (n as usize) / 2;
            let base = reversible_seq(n, len, &mut rng);
            let a = materialize(n, "rev_base", &base);

            let good = equivalent_variant(n, &base, &mut rng, true);
            let b = materialize(n, "rev_good", &good);
            check_case(
                &format!("reversible/{n}q/s{seed}/equal"),
                &a,
                &b,
                true,
                true,
            );

            let bad = mutated_variant(n, &base, &mut rng);
            let c = materialize(n, "rev_bad", &bad);
            check_case(
                &format!("reversible/{n}q/s{seed}/mutated"),
                &a,
                &c,
                false,
                true,
            );
        }
    }
}

#[test]
fn clifford_pairs_all_tiers_agree_and_decide_at_any_width() {
    // 48 pairs, 3 to 40 wires: the tableau tier is exact at any width,
    // and ZX/dense must never contradict it.
    for &n in &[3u32, 5, 8, 12, 20, 40] {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed * 2000 + n as u64);
            let len = 10 + n as usize;
            let base = clifford_seq(n, len, &mut rng);
            let a = materialize(n, "cliff_base", &base);

            let good = equivalent_variant(n, &base, &mut rng, false);
            let b = materialize(n, "cliff_good", &good);
            check_case(&format!("clifford/{n}q/s{seed}/equal"), &a, &b, true, true);

            let bad = mutated_variant(n, &base, &mut rng);
            let c = materialize(n, "cliff_bad", &bad);
            check_case(
                &format!("clifford/{n}q/s{seed}/mutated"),
                &a,
                &c,
                false,
                true,
            );
        }
    }
}

#[test]
fn small_clifford_t_pairs_match_dense_ground_truth() {
    // 64 pairs, 2 to 9 wires, all within reach of the independent
    // unitary ground truth — the strongest cross-check available.
    for n in 2u32..=9 {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed * 3000 + n as u64);
            let base = clifford_t_seq(n, 14, 4, &mut rng);
            let a = materialize(n, "ct_base", &base);

            let good = equivalent_variant(n, &base, &mut rng, false);
            let b = materialize(n, "ct_good", &good);
            check_case(
                &format!("clifford_t/{n}q/s{seed}/equal"),
                &a,
                &b,
                true,
                true,
            );

            let bad = mutated_variant(n, &base, &mut rng);
            let c = materialize(n, "ct_bad", &bad);
            check_case(
                &format!("clifford_t/{n}q/s{seed}/mutated"),
                &a,
                &c,
                false,
                true,
            );
        }
    }
}

#[test]
fn wide_bounded_branching_clifford_t_pairs_stay_decided_to_32_qubits() {
    // 24 pairs, 16 to 32 wires — past the dense cap and (at 30/32) past
    // the statevector cap. Each sequence carries at most 4 Hadamards,
    // so every miter stays within MAX_COLUMN_BRANCHING and the sharded
    // column replay can certify what the reduction alone cannot. These
    // widths were the cascade's blind spot before this issue.
    for &n in &[16u32, 24, 30, 32] {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed * 4000 + n as u64);
            let base = clifford_t_seq(n, 20 + n as usize / 2, 4, &mut rng);
            let a = materialize(n, "wide_ct_base", &base);

            let good = equivalent_variant(n, &base, &mut rng, false);
            let b = materialize(n, "wide_ct_good", &good);
            check_case(&format!("wide_ct/{n}q/s{seed}/equal"), &a, &b, true, true);

            let bad = mutated_variant(n, &base, &mut rng);
            let c = materialize(n, "wide_ct_bad", &bad);
            check_case(
                &format!("wide_ct/{n}q/s{seed}/mutated"),
                &a,
                &c,
                false,
                true,
            );
        }
    }
}

#[test]
fn harness_covers_at_least_two_hundred_pairs() {
    // The sweep sizes above are data, not code — keep the advertised
    // coverage honest if someone trims a width list.
    let reversible = 11 * 4 * 2;
    let clifford = 6 * 4 * 2;
    let small_ct = 8 * 4 * 2;
    let wide_ct = 4 * 3 * 2;
    assert!(reversible + clifford + small_ct + wide_ct >= 200);
}

#[test]
fn no_tier_contradicts_another_on_undecidable_shapes() {
    // Even where the dispatch is *allowed* to end Inconclusive (an
    // untranslatable mcx garnish at 30 qubits), no decisive tier may
    // contradict another: forced tiers must refuse rather than guess.
    let n = 30u32;
    let controls: Vec<u32> = (0..8).collect();
    let mut a = Circuit::new(n);
    a.mcx(&controls, 8).t(8);
    let mut b = Circuit::new(n);
    b.mcx(&controls, 8).tdg(8);
    let verifier = Verifier::new();
    assert!(verifier.check_tableau(&a, &b).is_none());
    assert!(verifier.check_zx(&a, &b).is_none());
    let report = verifier.check_report(&a, &b);
    assert_eq!(report.tier, Tier::Structural, "{report}");
    assert!(matches!(report.verdict, Verdict::Inconclusive { .. }));
}
