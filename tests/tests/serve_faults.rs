//! Hostile-environment fault harness for `tetrislock serve` — the
//! daemon-level counterpart of `batch_resume.rs`.
//!
//! Every test here drives the real binary as a subprocess against a
//! sandboxed watch directory and asserts the robustness contract from
//! the serve design:
//!
//! - half-written (slowly appended) inputs are never admitted early;
//! - poisoned inputs quarantine with a typed, loadable
//!   [`FailureReport`] instead of wedging the queue;
//! - seeded `kill -9` (via `TLK_BATCH_KILL_AFTER_CHECKPOINTS`) at any
//!   instant resumes to **byte-identical** outputs on restart;
//! - a crash-looping job quarantines after exactly the strike budget
//!   and can be re-queued once the underlying fault is gone;
//! - cancellation sentinels win races against admission;
//! - drain under load exits 0 with no lost and no duplicated jobs;
//! - the idle loop is polling-bounded (no busy-spin) and no orphan
//!   `.tmp` staging files survive a drained run.

use qcir::Circuit;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use tetrislock::serve::{failure_report_path, FailureKind, FailureReport, SHUTDOWN_SENTINEL};

/// Locates the `tetrislock` binary next to the test executable,
/// building it on demand.
fn tetrislock_bin() -> PathBuf {
    let exe = std::env::current_exe().expect("test executable path");
    let debug_dir = exe
        .parent()
        .and_then(Path::parent)
        .expect("target/debug layout");
    let bin = debug_dir.join(format!("tetrislock{}", std::env::consts::EXE_SUFFIX));
    if bin.exists() {
        return bin;
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = Command::new(cargo)
        .args(["build", "-p", "tetrislock-cli", "--bin", "tetrislock"])
        .status()
        .expect("spawn cargo build");
    assert!(status.success(), "building the tetrislock binary failed");
    assert!(bin.exists(), "no tetrislock binary at {}", bin.display());
    bin
}

/// Small deterministic RNG (xorshift64*) for the kill schedule.
struct KillRng(u64);

impl KillRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// One sandbox: watch/, jobs/, out/ under a unique temp root.
struct Sandbox {
    watch: PathBuf,
    jobs: PathBuf,
    out: PathBuf,
}

fn sandbox(tag: &str) -> Sandbox {
    let base = std::env::temp_dir().join(format!("tlk_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let sb = Sandbox {
        watch: base.join("watch"),
        jobs: base.join("jobs"),
        out: base.join("out"),
    };
    std::fs::create_dir_all(&sb.watch).unwrap();
    sb
}

/// Spawns `tetrislock serve` over the sandbox with fast test-friendly
/// intervals plus `extra` flags; stdin is null (must NOT trigger the
/// stdin-EOF drain — that is part of the contract under test).
fn spawn_serve(sb: &Sandbox, extra: &[&str], envs: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(tetrislock_bin());
    cmd.arg("serve")
        .args(["--watch", sb.watch.to_str().unwrap()])
        .args(["--jobs-dir", sb.jobs.to_str().unwrap()])
        .args(["--out-dir", sb.out.to_str().unwrap()])
        .args(["--poll-ms", "25", "--stability-ms", "80"])
        .args(extra)
        .env_remove("TLK_BATCH_KILL_AFTER_CHECKPOINTS")
        .env_remove("TLK_BATCH_PANIC_JOB")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn tetrislock serve")
}

/// Polls `pred` until it holds or the deadline passes.
fn wait_for(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Drops the drain sentinel and waits for a clean exit 0.
fn drain(sb: &Sandbox, child: &mut Child) {
    std::fs::write(sb.watch.join(SHUTDOWN_SENTINEL), "").unwrap();
    let status = wait_exit(child, Duration::from_secs(120));
    assert!(status, "serve did not exit 0 on drain");
}

/// Waits for the child to exit; returns whether it exited successfully.
/// Kills it (and fails) past the deadline so a deadlock cannot hang
/// the whole suite.
fn wait_exit(child: &mut Child, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.success();
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("serve did not exit before the deadline (deadlock?)");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The three standard test circuits (same shapes as the batch suite).
fn circuits() -> Vec<(String, Circuit)> {
    let mut a = Circuit::with_name(4, "alpha");
    a.h(0).cx(0, 1).cx(1, 2).cx(0, 1).x(3).cx(3, 2);
    let mut b = Circuit::with_name(5, "beta");
    b.h(0).cx(0, 1).ccx(0, 1, 2).cx(2, 3).h(4).cx(3, 4);
    let mut c = Circuit::with_name(3, "gamma");
    c.x(0).cx(0, 1).ccx(0, 1, 2);
    vec![
        ("alpha".to_string(), a),
        ("beta".to_string(), b),
        ("gamma".to_string(), c),
    ]
}

fn drop_circuit(watch: &Path, file_name: &str, circuit: &Circuit) {
    // Write-then-rename so the daemon can never observe a half file
    // (the slow-append test exercises the unsafe path deliberately).
    let tmp = watch.join(format!("{file_name}.writing"));
    std::fs::write(&tmp, qcir::qasm::to_qasm(circuit)).unwrap();
    std::fs::rename(&tmp, watch.join(file_name)).unwrap();
}

/// Every `*.restored.qasm` in a directory, keyed by file name.
fn read_outputs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let Ok(rd) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in rd {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".restored.qasm") {
            out.insert(name, std::fs::read(entry.path()).expect("read output file"));
        }
    }
    out
}

/// Asserts no `.tmp` staging debris anywhere in the sandbox.
fn assert_no_orphan_tmps(sb: &Sandbox) {
    for dir in [&sb.watch, &sb.jobs, &sb.out] {
        let Ok(rd) = std::fs::read_dir(dir) else {
            continue;
        };
        for entry in rd.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            assert!(
                !name.ends_with(".tmp"),
                "orphan tmp {name} left in {}",
                dir.display()
            );
        }
    }
}

/// Reference outputs from an uninterrupted `batch` run over the same
/// circuits and (default) pipeline configuration — serve must be
/// byte-identical to this.
fn batch_reference(tag: &str) -> BTreeMap<String, Vec<u8>> {
    let base = std::env::temp_dir().join(format!("tlk_serve_ref_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let mut inputs = Vec::new();
    for (id, circuit) in circuits() {
        let path = base.join(format!("{id}.qasm"));
        std::fs::write(&path, qcir::qasm::to_qasm(&circuit)).unwrap();
        inputs.push(path);
    }
    let out_dir = base.join("out");
    let mut cmd = Command::new(tetrislock_bin());
    cmd.arg("batch");
    for p in &inputs {
        cmd.arg(p);
    }
    let status = cmd
        .args(["--out-dir", out_dir.to_str().unwrap()])
        .env_remove("TLK_BATCH_KILL_AFTER_CHECKPOINTS")
        .env_remove("TLK_BATCH_PANIC_JOB")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run reference batch");
    assert!(status.success(), "reference batch failed");
    read_outputs(&out_dir)
}

/// Parses status.json into (key → u64) plus the draining flag.
fn read_status(sb: &Sandbox) -> qobs::json::ParsedObj {
    let text = std::fs::read_to_string(sb.out.join("status.json")).expect("status.json");
    qobs::json::parse_line(text.trim()).expect("status.json parses as one flat JSON object")
}

#[test]
fn clean_run_matches_uninterrupted_batch_and_drains() {
    let reference = batch_reference("clean");
    let sb = sandbox("clean");
    let mut child = spawn_serve(&sb, &[], &[]);
    for (id, circuit) in circuits() {
        drop_circuit(&sb.watch, &format!("{id}.qasm"), &circuit);
    }
    wait_for("all outputs", Duration::from_secs(120), || {
        read_outputs(&sb.out).len() == 3
    });
    drain(&sb, &mut child);

    assert_eq!(
        read_outputs(&sb.out),
        reference,
        "serve diverged from batch"
    );
    // Inputs consumed into done/, none left in the watch dir.
    for (id, _) in circuits() {
        assert!(sb.watch.join("done").join(format!("{id}.qasm")).exists());
        assert!(!sb.watch.join(format!("{id}.qasm")).exists());
    }
    assert_no_orphan_tmps(&sb);
    let status = read_status(&sb);
    assert_eq!(status.get_u64("completed"), Some(3));
    assert_eq!(status.get_u64("quarantined"), Some(0));
    assert_eq!(status.get_bool("draining"), Some(true));
}

#[test]
fn seeded_kill9_cycles_resume_to_byte_identical_outputs() {
    let reference = batch_reference("kill9");
    let sb = sandbox("kill9");
    for (id, circuit) in circuits() {
        drop_circuit(&sb.watch, &format!("{id}.qasm"), &circuit);
    }

    let seed: u64 = std::env::var("TLK_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_5EED_0001);
    let mut rng = KillRng(seed);
    let mut cycles = 0u32;
    loop {
        cycles += 1;
        assert!(cycles <= 30, "kill/resume did not converge in 30 cycles");
        // Abort the daemon after 1..=6 checkpoint writes (process-wide
        // count; abort == kill -9: no destructors, no flushes).
        let budget = (rng.next() % 6 + 1).to_string();
        let mut child = spawn_serve(
            &sb,
            &[],
            &[("TLK_BATCH_KILL_AFTER_CHECKPOINTS", budget.as_str())],
        );
        // Either the abort fires (non-zero exit) or all jobs finished
        // under budget — detect whichever happens first.
        let deadline = Instant::now() + Duration::from_secs(120);
        let finished = loop {
            if read_outputs(&sb.out).len() == 3
                && circuits()
                    .iter()
                    .all(|(id, _)| !sb.watch.join(format!("{id}.qasm")).exists())
            {
                break true;
            }
            if child.try_wait().expect("try_wait").is_some() {
                break false;
            }
            assert!(Instant::now() < deadline, "kill cycle stuck");
            std::thread::sleep(Duration::from_millis(20));
        };
        if finished {
            drain(&sb, &mut child);
            break;
        }
        let status = child.wait().expect("wait aborted serve");
        assert!(!status.success(), "expected the injected abort");
    }

    assert_eq!(
        read_outputs(&sb.out),
        reference,
        "kill/resume cycles (seed {seed:#x}) diverged from the uninterrupted run"
    );
    assert_no_orphan_tmps(&sb);
}

#[test]
fn poisoned_and_truncated_inputs_quarantine_with_typed_reports() {
    let sb = sandbox("poison");
    let mut child = spawn_serve(&sb, &[], &[]);
    // One valid job, one file of garbage, one truncated-mid-statement
    // QASM file — both stable long before admission, so the stability
    // window cannot save them: the parser must.
    drop_circuit(&sb.watch, "good.qasm", &circuits()[2].1);
    std::fs::write(sb.watch.join("garbage.qasm"), "this is not qasm at all").unwrap();
    let full = qcir::qasm::to_qasm(&circuits()[0].1);
    std::fs::write(sb.watch.join("cutoff.qasm"), &full[..full.len() / 2]).unwrap();

    wait_for("quarantines + output", Duration::from_secs(120), || {
        failure_report_path(&sb.watch, "garbage").exists()
            && failure_report_path(&sb.watch, "cutoff").exists()
            && sb.out.join("good.restored.qasm").exists()
    });
    drain(&sb, &mut child);

    for id in ["garbage", "cutoff"] {
        let report: FailureReport =
            qcir::persist::load(&failure_report_path(&sb.watch, id)).expect("typed report loads");
        assert_eq!(report.id, id);
        assert_eq!(report.kind, FailureKind::Poisoned, "{report:?}");
        assert!(!report.message.is_empty());
        // The poisoned input itself is preserved for post-mortem.
        assert!(sb.watch.join("failed").join(format!("{id}.qasm")).exists());
    }
    let status = read_status(&sb);
    assert_eq!(status.get_u64("quarantined"), Some(2));
    assert_eq!(status.get_u64("completed"), Some(1));
    assert_no_orphan_tmps(&sb);
}

#[test]
fn slowly_appended_input_is_not_admitted_until_stable() {
    let sb = sandbox("slow_append");
    // Generous stability window relative to the append cadence.
    let mut child = spawn_serve(&sb, &["--stability-ms", "400"], &[]);
    let text = qcir::qasm::to_qasm(&circuits()[1].1);
    let chunks: Vec<&str> = vec![
        &text[..text.len() / 3],
        &text[text.len() / 3..2 * text.len() / 3],
        &text[2 * text.len() / 3..],
    ];
    let target = sb.watch.join("slow.qasm");
    // Every prefix of the file is invalid QASM: admitting early would
    // quarantine it as poisoned, which is exactly what the stability
    // window must prevent.
    for chunk in chunks {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&target)
            .unwrap();
        f.write_all(chunk.as_bytes()).unwrap();
        f.flush().unwrap();
        std::thread::sleep(Duration::from_millis(150));
    }
    wait_for("slow job output", Duration::from_secs(120), || {
        sb.out.join("slow.restored.qasm").exists()
    });
    drain(&sb, &mut child);
    assert!(
        !failure_report_path(&sb.watch, "slow").exists(),
        "half-written input was admitted and quarantined"
    );
    let status = read_status(&sb);
    assert_eq!(status.get_u64("quarantined"), Some(0));
    assert_eq!(status.get_u64("completed"), Some(1));
}

#[test]
fn crash_loop_quarantines_after_strikes_then_requeues_clean() {
    let sb = sandbox("crash_loop");
    // The injected panic fires on every advance for this job id; with
    // 2 strikes and a tight backoff the breaker opens fast.
    let mut child = spawn_serve(
        &sb,
        &[
            "--strikes",
            "2",
            "--base-delay-ms",
            "10",
            "--max-delay-ms",
            "40",
        ],
        &[("TLK_BATCH_PANIC_JOB", "cursed")],
    );
    drop_circuit(&sb.watch, "cursed.qasm", &circuits()[2].1);
    wait_for("crash-loop quarantine", Duration::from_secs(120), || {
        failure_report_path(&sb.watch, "cursed").exists()
    });
    drain(&sb, &mut child);

    let report: FailureReport =
        qcir::persist::load(&failure_report_path(&sb.watch, "cursed")).unwrap();
    assert_eq!(report.kind, FailureKind::CrashLoop, "{report:?}");
    assert_eq!(
        report.attempts.len(),
        2,
        "exactly the strike budget of attempts: {report:?}"
    );
    assert!(
        report.message.contains("injected panic"),
        "report carries the panic message: {report:?}"
    );
    assert!(!sb.out.join("cursed.restored.qasm").exists());

    // Re-queue: with the fault gone, moving the preserved input back
    // into the watch dir must run it to completion.
    let mut child = spawn_serve(&sb, &[], &[]);
    std::fs::rename(
        sb.watch.join("failed").join("cursed.qasm"),
        sb.watch.join("cursed.qasm"),
    )
    .unwrap();
    wait_for("requeued output", Duration::from_secs(120), || {
        sb.out.join("cursed.restored.qasm").exists()
    });
    drain(&sb, &mut child);
    assert_no_orphan_tmps(&sb);
}

#[test]
fn stage_timeout_quarantines_as_timeout_kind() {
    let sb = sandbox("timeout");
    // A 1 ms stage budget: some pipeline stage of a 12-qubit classical
    // circuit (exhaustive verification over 4096 basis states) is
    // guaranteed to blow it. One strike → immediate quarantine.
    let mut c = Circuit::with_name(12, "wide");
    for i in 0..11 {
        c.cx(i, i + 1);
    }
    for i in 0..10 {
        c.ccx(i, i + 1, i + 2);
    }
    let mut child = spawn_serve(&sb, &["--stage-timeout-ms", "1", "--strikes", "1"], &[]);
    drop_circuit(&sb.watch, "wide.qasm", &c);
    wait_for("timeout quarantine", Duration::from_secs(120), || {
        failure_report_path(&sb.watch, "wide").exists()
    });
    drain(&sb, &mut child);
    let report: FailureReport =
        qcir::persist::load(&failure_report_path(&sb.watch, "wide")).unwrap();
    assert_eq!(report.kind, FailureKind::Timeout, "{report:?}");
    assert!(report.message.contains("wall clock"), "{report:?}");
}

#[test]
fn cancellation_wins_race_against_admission() {
    let sb = sandbox("cancel");
    // Input and cancel sentinel land before the daemon starts: the
    // intake loop processes sentinels before admissions in the same
    // poll, so the cancel must always win.
    drop_circuit(&sb.watch, "doomed.qasm", &circuits()[0].1);
    std::fs::write(sb.watch.join("doomed.cancel"), "").unwrap();
    // A cancel for a job that never existed must be consumed silently.
    std::fs::write(sb.watch.join("ghost.cancel"), "").unwrap();
    let mut child = spawn_serve(&sb, &[], &[]);
    drop_circuit(&sb.watch, "survivor.qasm", &circuits()[2].1);

    wait_for("survivor output + cancel", Duration::from_secs(120), || {
        sb.out.join("survivor.restored.qasm").exists()
            && sb.watch.join("cancelled").join("doomed.qasm").exists()
    });
    drain(&sb, &mut child);

    assert!(
        !sb.out.join("doomed.restored.qasm").exists(),
        "cancelled job must not produce output"
    );
    assert!(
        !sb.watch.join("doomed.cancel").exists(),
        "sentinel consumed"
    );
    assert!(
        !sb.watch.join("ghost.cancel").exists(),
        "ghost sentinel consumed"
    );
    let status = read_status(&sb);
    assert_eq!(status.get_u64("cancelled"), Some(1));
    assert_eq!(status.get_u64("completed"), Some(1));
}

#[test]
fn priority_orders_execution_under_one_worker() {
    let sb = sandbox("priority");
    // All three land before the daemon starts, so they are admitted in
    // one poll batch; with one worker the heap order IS the run order.
    let c = &circuits()[2].1;
    drop_circuit(&sb.watch, "p9--low.qasm", c);
    drop_circuit(&sb.watch, "p1--high.qasm", c);
    drop_circuit(&sb.watch, "p5--mid.qasm", c);
    let mut child = spawn_serve(&sb, &["--workers", "1"], &[]);
    wait_for("all outputs", Duration::from_secs(120), || {
        read_outputs(&sb.out).len() == 3
    });
    drain(&sb, &mut child);

    let mtime = |id: &str| {
        std::fs::metadata(sb.out.join(format!("{id}.restored.qasm")))
            .unwrap()
            .modified()
            .unwrap()
    };
    let (high, mid, low) = (mtime("high"), mtime("mid"), mtime("low"));
    assert!(high <= mid, "priority 1 ran after priority 5");
    assert!(mid <= low, "priority 5 ran after priority 9");
}

#[test]
fn drain_under_load_loses_and_duplicates_nothing() {
    let sb = sandbox("drain_load");
    for (id, circuit) in circuits() {
        drop_circuit(&sb.watch, &format!("{id}.qasm"), &circuit);
    }
    // Drain lands in the same first poll as the admissions: whatever
    // was not finished must still be sitting in the watch dir.
    std::fs::write(sb.watch.join(SHUTDOWN_SENTINEL), "").unwrap();
    let mut child = spawn_serve(&sb, &["--workers", "2"], &[]);
    assert!(
        wait_exit(&mut child, Duration::from_secs(120)),
        "drain under load must exit 0"
    );

    // Conservation: every job is either done (output + input in done/)
    // or still pending in the watch dir — never both, never neither.
    for (id, _) in circuits() {
        let output = sb.out.join(format!("{id}.restored.qasm")).exists();
        let consumed = sb.watch.join("done").join(format!("{id}.qasm")).exists();
        let pending = sb.watch.join(format!("{id}.qasm")).exists();
        assert_eq!(output, consumed, "{id}: output and done/ disagree");
        assert!(
            output ^ pending,
            "{id}: job lost or duplicated (output={output}, pending={pending})"
        );
    }

    // A second serve run finishes the stragglers to the full set.
    let reference = batch_reference("drain_load");
    let mut child = spawn_serve(&sb, &["--workers", "2"], &[]);
    wait_for("all outputs", Duration::from_secs(120), || {
        read_outputs(&sb.out).len() == 3
    });
    drain(&sb, &mut child);
    assert_eq!(read_outputs(&sb.out), reference);
    assert_no_orphan_tmps(&sb);
}

#[test]
fn idle_loop_is_polling_bounded_not_busy_spinning() {
    let sb = sandbox("idle");
    let started = Instant::now();
    let mut child = spawn_serve(&sb, &["--poll-ms", "50"], &[]);
    std::thread::sleep(Duration::from_millis(900));
    drain(&sb, &mut child);
    let elapsed_ms = started.elapsed().as_millis() as u64;

    let status = read_status(&sb);
    let polls = status.get_u64("polls").expect("polls gauge");
    // Each poll sleeps 50 ms, so the count is bounded by wall clock
    // (+ slack for startup and the final drain poll). A busy-spinning
    // intake would be orders of magnitude over this.
    let bound = elapsed_ms / 50 + 10;
    assert!(
        polls <= bound,
        "{polls} polls in {elapsed_ms} ms (bound {bound}): intake is busy-spinning"
    );
    assert!(polls >= 2, "daemon never polled");
    assert_eq!(status.get_u64("admitted"), Some(0));
}
