//! Determinism: the engine's contract that the worker count never
//! changes a single bit of the output amplitudes.
//!
//! The kernels are elementwise/pairwise with no cross-amplitude
//! reductions, the lane-blocked and remainder loops share one inlined
//! per-element formula, and layer blocking only reorders sweeps in
//! time — so `QSIM_WORKERS=1` and `QSIM_WORKERS=N` must agree exactly
//! (`f64::to_bits`, not epsilon). CI runs this suite under both
//! settings; the `auto` tests below compare the env-resolved worker
//! count against an explicit single worker, so each CI setting pins
//! the env path against the sequential baseline.

use qcir::Circuit;
use qsim::{Blocking, ExecConfig, Statevector};

/// Runs `circuit` under `config` and returns the raw amplitude bits.
fn run_bits(circuit: &Circuit, config: &ExecConfig) -> Vec<(u64, u64)> {
    let mut sv = Statevector::zero(circuit.num_qubits()).expect("within cap");
    sv.apply_circuit_with(circuit, config).expect("fits");
    sv.amplitudes()
        .iter()
        .map(|a| (a.re.to_bits(), a.im.to_bits()))
        .collect()
}

/// 18 qubits clears `PARALLEL_MIN_QUBITS`, so the pooled threaded
/// drivers actually engage; forced layering exercises the blocked
/// sweep under every worker count.
#[test]
fn worker_count_never_changes_amplitude_bits_18q_forced_layering() {
    let circuit = bench::clifford_t_circuit(18, 80);
    for fuse in [true, false] {
        let base = run_bits(
            &circuit,
            &ExecConfig {
                fuse,
                threads: 1,
                blocking: Blocking::Force,
            },
        );
        for threads in [2, 3, 4] {
            let other = run_bits(
                &circuit,
                &ExecConfig {
                    fuse,
                    threads,
                    blocking: Blocking::Force,
                },
            );
            assert_eq!(
                base, other,
                "amplitudes diverged: fuse={fuse} threads={threads}"
            );
        }
    }
}

/// 20 qubits with the default config: auto layering engages
/// (`LAYER_MIN_QUBITS` = 20), on top of threading and fusion.
#[test]
fn worker_count_never_changes_amplitude_bits_20q_auto() {
    let circuit = bench::clifford_t_circuit(20, 80);
    let base = run_bits(
        &circuit,
        &ExecConfig {
            threads: 1,
            ..ExecConfig::default()
        },
    );
    for threads in [2, 4] {
        let other = run_bits(
            &circuit,
            &ExecConfig {
                threads,
                ..ExecConfig::default()
            },
        );
        assert_eq!(base, other, "amplitudes diverged at threads={threads}");
    }
}

/// The env-resolved worker count (`threads: 0` → `QSIM_WORKERS` /
/// detected parallelism) is bit-identical to an explicit single
/// worker. CI runs the suite under `QSIM_WORKERS=1` and
/// `QSIM_WORKERS=4`, so both resolutions get pinned against the
/// sequential baseline.
#[test]
fn auto_worker_resolution_is_bit_identical_to_single_worker() {
    let circuit = bench::clifford_t_circuit(18, 60);
    let auto = run_bits(&circuit, &ExecConfig::default());
    let single = run_bits(
        &circuit,
        &ExecConfig {
            threads: 1,
            ..ExecConfig::default()
        },
    );
    assert_eq!(auto, single, "env-resolved workers diverged from threads=1");
    // The resolution itself must land in the engine's supported range.
    let workers = qsim::resolved_workers();
    assert!(
        (1..=8).contains(&workers),
        "resolved_workers out of range: {workers}"
    );
}

/// Repeated runs of the same configuration are bit-identical (no
/// uninitialized state, no run-to-run scheduling sensitivity).
#[test]
fn repeated_runs_are_bit_identical() {
    let circuit = bench::clifford_t_circuit(18, 60);
    let config = ExecConfig {
        threads: 4,
        blocking: Blocking::Force,
        ..ExecConfig::default()
    };
    let first = run_bits(&circuit, &config);
    let second = run_bits(&circuit, &config);
    assert_eq!(first, second, "same config diverged across runs");
}
