//! Fusion must never lose: regression pins for the cost-model gate.
//!
//! The pre-gate engine fused every eligible run unconditionally, which
//! made the 16-qubit smoke benchmarks *slower* fused than unfused
//! (dense 2×2 products replacing cheap diagonal/permutation sweeps).
//! The `qcir::fusion` cost model now skips fusion when the fused
//! kernel would cost more than the specialized per-gate kernels; these
//! tests pin that decision structurally (the plan-cost invariant, on
//! the exact circuits the perf suite times) and once loosely against
//! the wall clock.

use qcir::fusion::{plan_cost, CostRegime};
use qcir::Circuit;
use qsim::{ExecConfig, Statevector};
use std::time::Instant;

fn smoke_circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        ("rd53", revlib::rd53().circuit().clone()),
        ("rd84", revlib::rd84().circuit().clone()),
        ("clifford_t_16q", bench::clifford_t_circuit(16, 200)),
    ]
}

/// The cost model's fused plan is never costlier than the unfused plan
/// on the smoke-suite circuits, in either cache regime. This is the
/// structural form of "fused_ms ≤ unfused_ms in BENCH_qsim.json":
/// exact, noise-free, and checked on every test run.
#[test]
fn cost_model_fused_plan_never_exceeds_unfused() {
    for (name, circuit) in &smoke_circuits() {
        for regime in [CostRegime::ComputeBound, CostRegime::MemoryBound] {
            let fused = plan_cost(circuit, true, regime);
            let unfused = plan_cost(circuit, false, regime);
            assert!(
                fused <= unfused + 1e-12,
                "{name} under {regime:?}: fused plan {fused} > unfused plan {unfused}"
            );
        }
    }
}

/// One lenient wall-clock pin at smoke scale. The 1.5× slack (plus a
/// small absolute floor) absorbs scheduler noise on loaded single-CPU
/// CI runners; the strict check is the structural plan-cost invariant
/// above.
#[test]
fn fused_wall_clock_not_slower_on_smoke_circuit() {
    let circuit = bench::clifford_t_circuit(16, 200);
    let best_of = |config: &ExecConfig| {
        let mut best = f64::INFINITY;
        // First iteration doubles as warmup; best-of keeps the noise
        // one-sided.
        for _ in 0..4 {
            let mut sv = Statevector::zero(circuit.num_qubits()).expect("within cap");
            let start = Instant::now();
            sv.apply_circuit_with(&circuit, config).expect("fits");
            best = best.min(start.elapsed().as_secs_f64());
            std::hint::black_box(sv.probability(0));
        }
        best
    };
    let fused = best_of(&ExecConfig::default());
    let unfused = best_of(&ExecConfig::unfused());
    assert!(
        fused <= unfused * 1.5 + 0.005,
        "fused {fused:.6}s vs unfused {unfused:.6}s at 16q"
    );
}
