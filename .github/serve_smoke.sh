#!/usr/bin/env bash
# CI smoke for `tetrislock serve`: background daemon, three good
# circuits + one poisoned file dropped into the watch directory, then
# assert three outputs, one typed quarantine, and a clean sentinel
# drain (exit 0). Launched with `&` so the daemon sees a null stdin —
# which must NOT trigger the stdin-EOF drain path.
set -euo pipefail

BASE="${1:?usage: serve_smoke.sh <scratch-dir>}"
rm -rf "$BASE"
mkdir -p "$BASE/watch"

cargo build --release -p tetrislock-cli --bin tetrislock
TLK=target/release/tetrislock

"$TLK" serve \
  --watch "$BASE/watch" --out-dir "$BASE/out" \
  --workers 2 --poll-ms 50 --stability-ms 100 &
SERVE_PID=$!

qasm() {
  printf 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[%d];\n%s\n' "$1" "$2"
}
qasm 4 'h q[0];
cx q[0],q[1];
ccx q[0],q[1],q[2];
cx q[2],q[3];' > "$BASE/watch/smoke_a.qasm"
qasm 3 'x q[0];
cx q[0],q[1];
ccx q[0],q[1],q[2];' > "$BASE/watch/smoke_b.qasm"
qasm 5 'h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];' > "$BASE/watch/smoke_c.qasm"
printf 'OPENQASM 2.0;\nqreg q[3;\nthis is not qasm' > "$BASE/watch/smoke_poison.qasm"

for _ in $(seq 1 600); do
  if [ -f "$BASE/out/smoke_a.restored.qasm" ] &&
     [ -f "$BASE/out/smoke_b.restored.qasm" ] &&
     [ -f "$BASE/out/smoke_c.restored.qasm" ] &&
     [ -f "$BASE/watch/failed/smoke_poison.failure" ]; then
    break
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve died before finishing (null stdin treated as drain?)" >&2
    exit 1
  fi
  sleep 1
done
test -f "$BASE/out/smoke_a.restored.qasm"
test -f "$BASE/out/smoke_b.restored.qasm"
test -f "$BASE/out/smoke_c.restored.qasm"
test -f "$BASE/watch/failed/smoke_poison.failure"
test -f "$BASE/watch/failed/smoke_poison.qasm"

touch "$BASE/watch/shutdown"
wait "$SERVE_PID"   # must exit 0 — set -e fails the step otherwise

# The drained status renders as a health card and reports the tallies.
"$TLK" report --serve "$BASE/out/status.json" | tee /dev/stderr | grep -q 'draining'
grep -q '"completed":3' "$BASE/out/status.json"
grep -q '"quarantined":1' "$BASE/out/status.json"
echo "serve smoke OK"
