//! Offline API-subset shim of [`serde`](https://crates.io/crates/serde),
//! vendored because this workspace builds in a network-less container
//! (see `vendor/README.md`).
//!
//! Unlike the original marker-trait shim, this version is a **real,
//! working serialization layer**: `Serialize`/`Deserialize` carry actual
//! encode/decode methods over a compact binary wire format
//! ([`codec`]), and `#[derive(Serialize, Deserialize)]` (re-exported
//! from `serde_derive`) generates real field-by-field implementations.
//! A derived struct round-trips bit-identically through
//! [`to_bytes`]/[`from_bytes`] — floats are written as raw IEEE-754
//! bits, so even NaN payloads and signed zeros survive.
//!
//! The *trait names and derive spelling* stay upstream-compatible so
//! `use serde::{Deserialize, Serialize}` + `#[derive(...)]` compile
//! unchanged, but the trait **methods** are this shim's own (there is no
//! `Serializer`/`Deserializer` visitor machinery). Swapping the real
//! crates back in requires migrating any direct `to_bytes`/`from_bytes`
//! caller to a real format crate such as `bincode`; the derive sites
//! themselves need no changes.
//!
//! # Example
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Point {
//!     x: u32,
//!     label: String,
//! }
//!
//! let p = Point { x: 7, label: "origin".into() };
//! let bytes = serde::to_bytes(&p);
//! let back: Point = serde::from_bytes(&bytes).unwrap();
//! assert_eq!(back, p);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;

use codec::{DecodeError, Decoder, Encoder};

/// A type that can be encoded onto the shim's binary wire format.
///
/// Implemented by `#[derive(Serialize)]` for structs and enums, and by
/// hand for the primitive / std types in [`codec`]. Encoding is
/// infallible: the encoder only appends to a growable buffer.
pub trait Serialize {
    /// Appends this value's encoding to `enc`.
    fn serialize(&self, enc: &mut Encoder);
}

/// A type that can be decoded from the shim's binary wire format.
///
/// Implemented by `#[derive(Deserialize)]`. Decoding is total: any
/// byte-slice input either yields a value or a typed [`DecodeError`] —
/// never a panic — so corrupt or truncated input is always survivable.
pub trait Deserialize<'de>: Sized {
    /// Reads one value of this type from `dec`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the input is truncated, malformed,
    /// or encodes an unknown enum variant.
    fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError>;
}

pub use serde_derive::{Deserialize, Serialize};

/// Encodes `value` to a standalone byte buffer.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.serialize(&mut enc);
    enc.into_bytes()
}

/// Decodes a `T` from `bytes`, requiring the input to be fully consumed.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated/malformed input or if bytes
/// remain after the value (a length/framing mismatch upstream).
pub fn from_bytes<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let value = T::deserialize(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    // Derive-macro expansion is exercised from consumer crates (the
    // derive generates `::serde::...` paths that do not resolve inside
    // this crate itself); these tests cover the hand-written impls.
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(from_bytes::<u64>(&to_bytes(&u64::MAX)).unwrap(), u64::MAX);
        assert_eq!(from_bytes::<i64>(&to_bytes(&i64::MIN)).unwrap(), i64::MIN);
        assert!(from_bytes::<bool>(&to_bytes(&true)).unwrap());
        assert_eq!(
            from_bytes::<String>(&to_bytes("héllo")).unwrap(),
            "héllo".to_string()
        );
    }

    #[test]
    fn f64_is_bit_exact() {
        for v in [0.0f64, -0.0, 1.5, f64::NAN, f64::INFINITY, 1e-300] {
            let back: f64 = from_bytes(&to_bytes(&v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        assert_eq!(from_bytes::<Vec<Option<u32>>>(&to_bytes(&v)).unwrap(), v);
        let m: BTreeMap<usize, u64> = [(3, 30), (1, 10)].into();
        assert_eq!(
            from_bytes::<BTreeMap<usize, u64>>(&to_bytes(&m)).unwrap(),
            m
        );
        let t = (7u32, "x".to_string(), vec![true, false]);
        assert_eq!(
            from_bytes::<(u32, String, Vec<bool>)>(&to_bytes(&t)).unwrap(),
            t
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&5u32);
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u32>(&bytes),
            Err(DecodeError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = to_bytes(&vec![String::from("abc"); 4]);
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Vec<String>>(&bytes[..cut]).is_err());
        }
    }
}
