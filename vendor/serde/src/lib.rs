//! Offline API-subset shim of [`serde`](https://crates.io/crates/serde),
//! vendored because this workspace builds in a network-less container
//! (see `vendor/README.md`).
//!
//! Exposes the two trait names and their derive macros so `use serde::
//! {Deserialize, Serialize}` + `#[derive(Serialize, Deserialize)]`
//! compile unchanged. The traits are empty markers and the derives
//! expand to nothing — nothing in this workspace actually serializes
//! through serde (the CLI sidecar format is hand-rolled text). Replacing
//! this shim with the real crates requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
