//! The shim's binary wire format: encoder, decoder, and the
//! `Serialize`/`Deserialize` impls for primitives and std containers.
//!
//! The format is compact and schema-driven (like `bincode`): the byte
//! stream carries no field names or type tags beyond enum variant
//! indices, so both sides must agree on the type. Versioning is the
//! *caller's* job — `qcir::persist` wraps every payload in a versioned,
//! checksummed envelope.
//!
//! Encoding rules:
//!
//! * unsigned integers (`u8`–`u64`, `usize`): LEB128 varint (≤ 10 bytes)
//! * signed integers: zigzag-mapped, then varint
//! * `bool`: one byte, `0` or `1` (anything else is a decode error)
//! * `f32`/`f64`: raw IEEE-754 bits, little-endian — **bit-exact**
//!   round-trips, including NaN payloads and `-0.0`
//! * `String`/`str`: byte length (varint) + UTF-8 bytes (validated)
//! * `Vec<T>`, `BTreeMap`, `BTreeSet`: element count (varint) + elements
//! * `Option<T>`: tag byte `0`/`1` + payload if `1`
//! * tuples, structs: fields in declaration order, no framing
//! * enums: variant index (varint) + payload fields
//!
//! Every length read is bounds-checked against the bytes actually
//! remaining, so a corrupted length can never trigger an outsized
//! allocation or a panic.

use crate::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    /// Writes raw bytes verbatim (no length prefix).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes an unsigned LEB128 varint.
    pub fn write_varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a signed integer (zigzag + varint).
    pub fn write_signed(&mut self, value: i64) {
        self.write_varint(((value << 1) ^ (value >> 63)) as u64);
    }

    /// Writes a collection length (varint).
    pub fn write_len(&mut self, len: usize) {
        self.write_varint(len as u64);
    }

    /// Writes an enum variant index (varint).
    pub fn write_variant(&mut self, index: u32) {
        self.write_varint(u64::from(index));
    }

    /// Writes a length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_len(bytes.len());
        self.write_raw(bytes);
    }
}

/// Typed decode failure. Every malformed input maps to one of these —
/// decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value did.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A varint ran past its maximum width (corrupt stream).
    VarintOverflow,
    /// A decoded integer did not fit the target type.
    IntOutOfRange {
        /// The offending decoded value.
        value: u64,
        /// Name of the target type.
        target: &'static str,
    },
    /// A `bool` byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A string's bytes were not valid UTF-8.
    InvalidUtf8,
    /// An enum variant index was out of range for the type.
    InvalidVariant {
        /// Name of the enum being decoded.
        type_name: &'static str,
        /// The unknown variant index.
        index: u32,
    },
    /// A collection length exceeded the bytes remaining in the input.
    LengthOverflow {
        /// The claimed element count.
        len: u64,
        /// Bytes remaining (each element needs at least one).
        remaining: usize,
    },
    /// Bytes remained after the value was fully decoded.
    TrailingBytes {
        /// Number of unread bytes.
        count: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} byte(s), {remaining} remaining"
            ),
            DecodeError::VarintOverflow => write!(f, "varint exceeds 64 bits (corrupt stream)"),
            DecodeError::IntOutOfRange { value, target } => {
                write!(f, "integer {value} does not fit {target}")
            }
            DecodeError::InvalidBool(b) => write!(f, "invalid bool byte {b:#04x}"),
            DecodeError::InvalidUtf8 => write!(f, "string bytes are not valid UTF-8"),
            DecodeError::InvalidVariant { type_name, index } => {
                write!(f, "unknown variant index {index} for enum {type_name}")
            }
            DecodeError::LengthOverflow { len, remaining } => write!(
                f,
                "collection claims {len} element(s) but only {remaining} byte(s) remain"
            ),
            DecodeError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after value")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl DecodeError {
    /// Builds the error for an unknown enum variant (used by derived
    /// `Deserialize` impls).
    pub fn invalid_variant(type_name: &'static str, index: u32) -> DecodeError {
        DecodeError::InvalidVariant { type_name, index }
    }
}

/// Cursor over an input byte slice.
#[derive(Debug)]
pub struct Decoder<'de> {
    bytes: &'de [u8],
    pos: usize,
}

impl<'de> Decoder<'de> {
    /// Creates a decoder over `bytes`.
    pub fn new(bytes: &'de [u8]) -> Decoder<'de> {
        Decoder { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Asserts the input is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TrailingBytes`] if unread bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        match self.remaining() {
            0 => Ok(()),
            count => Err(DecodeError::TrailingBytes { count }),
        }
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer remain.
    pub fn read_raw(&mut self, n: usize) -> Result<&'de [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] at end of input.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.read_raw(1)?[0])
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] or [`DecodeError::VarintOverflow`].
    pub fn read_varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.read_u8()?;
            let bits = u64::from(byte & 0x7f);
            if shift == 63 && bits > 1 {
                return Err(DecodeError::VarintOverflow);
            }
            value |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(DecodeError::VarintOverflow)
    }

    /// Reads a signed integer (varint + zigzag).
    ///
    /// # Errors
    ///
    /// Same as [`Decoder::read_varint`].
    pub fn read_signed(&mut self) -> Result<i64, DecodeError> {
        let raw = self.read_varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    /// Reads a collection length, bounds-checked against the remaining
    /// input (each element costs ≥ 1 byte on this format).
    ///
    /// # Errors
    ///
    /// [`DecodeError::LengthOverflow`] for lengths the input cannot hold.
    pub fn read_len(&mut self) -> Result<usize, DecodeError> {
        let len = self.read_varint()?;
        if len > self.remaining() as u64 {
            return Err(DecodeError::LengthOverflow {
                len,
                remaining: self.remaining(),
            });
        }
        Ok(len as usize)
    }

    /// Reads an enum variant index.
    ///
    /// # Errors
    ///
    /// [`DecodeError::IntOutOfRange`] if the index exceeds `u32`.
    pub fn read_variant(&mut self) -> Result<u32, DecodeError> {
        let raw = self.read_varint()?;
        u32::try_from(raw).map_err(|_| DecodeError::IntOutOfRange {
            value: raw,
            target: "u32 (variant index)",
        })
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self, enc: &mut Encoder) {
                enc.write_varint(*self as u64);
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
                let raw = dec.read_varint()?;
                <$ty>::try_from(raw).map_err(|_| DecodeError::IntOutOfRange {
                    value: raw,
                    target: stringify!($ty),
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self, enc: &mut Encoder) {
                enc.write_signed(*self as i64);
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
                let raw = dec.read_signed()?;
                <$ty>::try_from(raw).map_err(|_| DecodeError::IntOutOfRange {
                    value: raw as u64,
                    target: stringify!($ty),
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self, enc: &mut Encoder) {
        enc.write_u8(u8::from(*self));
    }
}
impl<'de> Deserialize<'de> for bool {
    fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
        match dec.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::InvalidBool(other)),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self, enc: &mut Encoder) {
        enc.write_raw(&self.to_bits().to_le_bytes());
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
        let raw = dec.read_raw(8)?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }
}

impl Serialize for f32 {
    fn serialize(&self, enc: &mut Encoder) {
        enc.write_raw(&self.to_bits().to_le_bytes());
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
        let raw = dec.read_raw(4)?;
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(raw);
        Ok(f32::from_bits(u32::from_le_bytes(bytes)))
    }
}

impl Serialize for char {
    fn serialize(&self, enc: &mut Encoder) {
        enc.write_varint(u64::from(u32::from(*self)));
    }
}
impl<'de> Deserialize<'de> for char {
    fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
        let raw = dec.read_varint()?;
        u32::try_from(raw)
            .ok()
            .and_then(char::from_u32)
            .ok_or(DecodeError::IntOutOfRange {
                value: raw,
                target: "char",
            })
    }
}

impl Serialize for str {
    fn serialize(&self, enc: &mut Encoder) {
        enc.write_bytes(self.as_bytes());
    }
}
impl Serialize for String {
    fn serialize(&self, enc: &mut Encoder) {
        self.as_str().serialize(enc);
    }
}
impl<'de> Deserialize<'de> for String {
    fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
        let len = dec.read_len()?;
        let bytes = dec.read_raw(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| DecodeError::InvalidUtf8)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, enc: &mut Encoder) {
        (**self).serialize(enc);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self, enc: &mut Encoder) {
        (**self).serialize(enc);
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
        T::deserialize(dec).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, enc: &mut Encoder) {
        enc.write_len(self.len());
        for item in self {
            item.serialize(enc);
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, enc: &mut Encoder) {
        self.as_slice().serialize(enc);
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
        let len = dec.read_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::deserialize(dec)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, enc: &mut Encoder) {
        match self {
            None => enc.write_u8(0),
            Some(value) => {
                enc.write_u8(1);
                value.serialize(enc);
            }
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
        match dec.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(dec)?)),
            other => Err(DecodeError::InvalidBool(other)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, enc: &mut Encoder) {
        enc.write_len(self.len());
        for (k, v) in self {
            k.serialize(enc);
            v.serialize(enc);
        }
    }
}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
        let len = dec.read_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize(dec)?;
            let v = V::deserialize(dec)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self, enc: &mut Encoder) {
        enc.write_len(self.len());
        for item in self {
            item.serialize(enc);
        }
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
        let len = dec.read_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::deserialize(dec)?);
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, enc: &mut Encoder) {
                $(self.$idx.serialize(enc);)+
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize(dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
                Ok(($($name::deserialize(dec)?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

impl Serialize for () {
    fn serialize(&self, _enc: &mut Encoder) {}
}
impl<'de> Deserialize<'de> for () {
    fn deserialize(_dec: &mut Decoder<'de>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut enc = Encoder::new();
            enc.write_varint(v);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(dec.read_varint().unwrap(), v);
            dec.finish().unwrap();
        }
    }

    #[test]
    fn varint_overlong_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let bytes = [0xffu8; 11];
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            dec.read_varint(),
            Err(DecodeError::VarintOverflow) | Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            let mut enc = Encoder::new();
            enc.write_signed(v);
            let bytes = enc.into_bytes();
            assert_eq!(Decoder::new(&bytes).read_signed().unwrap(), v);
        }
    }

    #[test]
    fn length_overflow_guard() {
        // Claim 1000 elements with 2 bytes of input.
        let mut enc = Encoder::new();
        enc.write_varint(1000);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            dec.read_len(),
            Err(DecodeError::LengthOverflow { len: 1000, .. })
        ));
    }

    #[test]
    fn u8_range_checked() {
        let mut enc = Encoder::new();
        enc.write_varint(300);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            <u8 as Deserialize>::deserialize(&mut dec),
            Err(DecodeError::IntOutOfRange { value: 300, .. })
        ));
    }

    #[test]
    fn bad_bool_rejected() {
        let bytes = [7u8];
        let mut dec = Decoder::new(&bytes);
        assert_eq!(
            <bool as Deserialize>::deserialize(&mut dec),
            Err(DecodeError::InvalidBool(7))
        );
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut enc = Encoder::new();
        enc.write_bytes(&[0xff, 0xfe]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(
            <String as Deserialize>::deserialize(&mut dec),
            Err(DecodeError::InvalidUtf8)
        );
    }
}
