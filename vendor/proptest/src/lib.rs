//! Offline API-subset shim of
//! [`proptest`](https://crates.io/crates/proptest), vendored because this
//! workspace builds in a network-less container (see `vendor/README.md`).
//!
//! Implements the surface the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//!   `prop_filter` / `prop_filter_map` / `boxed`, implemented for integer
//!   ranges and tuples of strategies;
//! * [`prop_oneof!`] unions, [`collection::vec`];
//! * the [`proptest!`] test macro with `#![proptest_config(...)]`,
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * a deterministic per-test RNG ([`test_runner::TestRng`]) so failures
//!   reproduce run-to-run.
//!
//! Unlike real proptest there is **no shrinking** and no failure
//! persistence: a failing case reports its case number and message, and
//! the deterministic seeding (derived from the test name) makes it
//! reproducible. That trade-off keeps the shim tiny while preserving the
//! "hold for arbitrary inputs" power of the tests.
//!
//! ```
//! use proptest::prelude::*;
//!
//! // Strategies compose exactly as in real proptest...
//! let strategy = (0u32..1000, 1usize..=4)
//!     .prop_map(|(base, reps)| vec![base; reps])
//!     .prop_filter("non-empty", |v| !v.is_empty());
//!
//! // ...and generate from a deterministic per-test RNG.
//! let mut rng = TestRng::for_test("doc_example");
//! let v = strategy.generate(&mut rng);
//! assert!((1..=4).contains(&v.len()));
//! ```
//!
//! Tests use the macro form (`proptest! { #[test] fn prop(x in 0u32..10)
//! { ... } }`) exactly as with the real crate; see this workspace's
//! `tests/tests/properties.rs` for full examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Picks uniformly among several strategies with a common value type.
///
/// Each arm is boxed, so arms may be different concrete strategy types as
/// long as their `Value`s agree.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current test case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs its body against `cases` generated inputs (default 256, override
/// with `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (
        ($config:expr);
        $(
            #[test]
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let __strategies = ( $($strategy,)+ );
                for __case in 0..__config.cases {
                    let ( $(ref $arg,)+ ) = __strategies;
                    let ( $($arg,)+ ) = (
                        $($crate::strategy::Strategy::generate($arg, &mut __rng),)+
                    );
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__err) = __result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn oneof_union_covers_all_arms() {
        let strategy = prop_oneof![0u32..1, 10u32..11, 20u32..21];
        let mut rng = crate::test_runner::TestRng::for_test("arms");
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strategy.generate(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("impossible value {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn combinators_compose() {
        let strategy = (2u32..5, 1usize..=3).prop_flat_map(|(n, len)| {
            crate::collection::vec((0..n).prop_map(move |q| q * 2), 1..=len)
        });
        let mut rng = crate::test_runner::TestRng::for_test("compose");
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&x| x % 2 == 0 && x < 8));
        }
    }

    #[test]
    fn filter_map_rejects_and_retries() {
        let strategy =
            (0u32..10, 0u32..10).prop_filter_map("distinct", |(a, b)| (a != b).then_some((a, b)));
        let mut rng = crate::test_runner::TestRng::for_test("filter");
        for _ in 0..100 {
            let (a, b) = strategy.generate(&mut rng);
            assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_within_bounds(x in 5u64..50, y in 0usize..=3) {
            prop_assert!((5..50).contains(&x));
            prop_assert!(y <= 3);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }
    }
}
