//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is a recipe for generating values of one type from the test
//! RNG. Unlike real proptest there is no shrinking, so a strategy is just
//! a generation function; combinators compose those functions.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// How many times a filtering combinator retries before giving up.
const FILTER_RETRIES: usize = 1_000;

/// A recipe for generating values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values for which `f` returns `false`,
    /// retrying (up to an internal limit) until one passes.
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Combined filter + map: keeps only values for which `f` returns
    /// `Some`, unwrapping them.
    fn prop_filter_map<O, F>(self, reason: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Type-erases this strategy (needed to mix different strategy types
    /// in [`Union`] / [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..FILTER_RETRIES {
            let value = self.inner.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter `{}` rejected {FILTER_RETRIES} candidates",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(value) = (self.f)(self.inner.generate(rng)) {
                return value;
            }
        }
        panic!(
            "prop_filter_map `{}` rejected {FILTER_RETRIES} candidates",
            self.reason
        );
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among same-valued strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given variants (at least one required).
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! requires at least one variant"
        );
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.rng().gen_range(0..self.variants.len());
        self.variants[index].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
