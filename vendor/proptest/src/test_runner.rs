//! Test execution support: configuration, errors and the deterministic
//! per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Per-test configuration; today only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property check (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG driving generation, seeded deterministically from the test
/// name so every run explores the same inputs (no shrinking means
/// reproducibility must come from the seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Builds the deterministic RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut hasher = DefaultHasher::new();
        0xC1ACu16.hash(&mut hasher);
        name.hash(&mut hasher);
        TestRng {
            rng: StdRng::seed_from_u64(hasher.finish()),
        }
    }

    /// Access to the underlying generator for strategies.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
