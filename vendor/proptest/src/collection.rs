//! Strategies for collections (only `Vec` is needed in this workspace).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Vec`s whose length is drawn from `size` and
/// whose elements are drawn from `element`; see [`vec()`].
pub struct VecStrategy<E, Z> {
    element: E,
    size: Z,
}

/// Generates vectors of values from `element` with lengths from `size`
/// (any usize-valued strategy — in practice a range like `1..=20`).
pub fn vec<E, Z>(element: E, size: Z) -> VecStrategy<E, Z>
where
    E: Strategy,
    Z: Strategy<Value = usize>,
{
    VecStrategy { element, size }
}

impl<E, Z> Strategy for VecStrategy<E, Z>
where
    E: Strategy,
    Z: Strategy<Value = usize>,
{
    type Value = Vec<E::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
