//! Offline API-subset shim of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API surface), vendored because this workspace builds in a
//! network-less container (see `vendor/README.md`).
//!
//! Provides exactly what the workspace uses: [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen`] for `f64`/`f32`/`bool`/`u64`,
//! [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_entropy`], and
//! [`rngs::StdRng`] backed by xoshiro256++ with SplitMix64 seeding.
//!
//! Determinism contract: the same seed always yields the same stream, so
//! seeded experiments in this workspace are reproducible. Streams do
//! **not** match the real `rand` crate's `StdRng` (ChaCha12) — only the
//! API is compatible, not the bit-exact output.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let a = rng.gen_range(0..10u32);
//! assert!(a < 10);
//! let b: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports `Range` and `RangeInclusive` over the primitive integer
    /// types plus `Range<f64>` / `Range<f32>`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from the "standard" distribution: `f64`/`f32`
    /// uniform in `[0, 1)`, `bool` fair coin, integers uniform over the
    /// full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from ambient entropy (wall clock — good enough
    /// for non-cryptographic experiment sampling).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples a single value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform sampling below a bound, bias-reduced via 128-bit widening
/// multiply (Lemire's method, without the rejection loop — the residual
/// bias is < 2⁻⁶⁴, irrelevant for simulation workloads).
fn below<R: RngCore + ?Sized>(bound: u128, rng: &mut R) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        (rng.next_u64() as u128 * bound) >> 64
    } else {
        // Bound exceeds 64 bits (only reachable via u128/i128 spans):
        // fall back to modulo of a 128-bit draw.
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        wide % bound
    }
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + below(span, rng) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + below(span as u128, rng) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                let value = self.start + (self.end - self.start) * unit;
                // `start + span * unit` can round up to `end` for narrow
                // ranges; clamp to keep the half-open contract.
                if value < self.end {
                    value
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna), seeded through SplitMix64 as its authors
    /// recommend. Fast, tiny state, passes BigCrush — more than adequate
    /// for Monte-Carlo noise sampling and randomized circuit generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..7u32);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_range_excludes_end_even_when_one_ulp_wide() {
        let mut rng = StdRng::seed_from_u64(3);
        let (lo, hi) = (1.0f64, 1.0f64 + f64::EPSILON);
        for _ in 0..100 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "{v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn from_entropy_produces_a_working_generator() {
        let mut rng = StdRng::from_entropy();
        let v = rng.gen_range(0..10u32);
        assert!(v < 10);
    }
}
