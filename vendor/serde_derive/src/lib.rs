//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! vendored serde shim.
//!
//! The workspace derives serde traits on its data types so downstream
//! consumers *can* wire up real serialization, but nothing in-tree
//! serializes through serde today (the CLI's `.tlk` sidecar is a
//! hand-rolled text format). In this network-less build the derives
//! therefore expand to nothing; swapping the real `serde`/`serde_derive`
//! back in (see `vendor/README.md`) restores full codegen without any
//! source change.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
