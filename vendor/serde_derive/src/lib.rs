//! Real `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! Earlier revisions of this crate expanded both derives to *nothing*,
//! which meant a struct could appear to "support serialization" while
//! silently serializing to zero bytes the moment anyone wired up a
//! format. This version generates working field-by-field
//! implementations against the shim's binary codec
//! (`serde::codec::{Encoder, Decoder}`).
//!
//! Because the container has no network access, this derive cannot use
//! `syn`/`quote`; it hand-parses the item's token stream. That keeps it
//! honest but limited, and the limits are enforced loudly:
//!
//! * **Supported**: non-generic structs (named, tuple, unit) and enums
//!   (unit, tuple, and struct variants, in any mix). `#[default]`, doc
//!   comments, and other attributes are skipped. Field *types* are
//!   never inspected — generated code leans on type inference
//!   (`::serde::Deserialize::deserialize(dec)?` in field position), so
//!   anything implementing the shim traits works.
//! * **Rejected with `compile_error!`**: generic types, unions,
//!   `#[serde(...)]` attributes (silently ignoring `#[serde(skip)]`
//!   would corrupt the wire format), and anything the parser cannot
//!   make sense of. A derive that cannot emit a real impl never again
//!   degrades to a no-op.
//!
//! Wire format (must match the hand-written impls in `serde::codec`):
//! struct fields in declaration order with no framing; enums as a
//! varint variant index (declaration order, starting at 0) followed by
//! the variant's fields. Reordering fields or variants is therefore a
//! breaking format change — bump `qcir::persist::FORMAT_VERSION` when
//! you do it.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;
use std::str::FromStr;

/// Derives `serde::Serialize`: encodes fields in declaration order;
/// enums are prefixed with their variant index.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, serialize_impl)
}

/// Derives `serde::Deserialize`: the exact mirror of
/// [`macro@Serialize`], returning a typed `DecodeError` on malformed
/// input (unknown variant index, truncation, ...).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, deserialize_impl)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    let code = match parse(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    TokenStream::from_str(&code).expect("serde shim derive generated invalid Rust")
}

struct Input {
    name: String,
    body: Body,
}

enum Body {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips any number of outer attributes (`#[...]`) — doc comments,
/// `#[default]`, etc. — but rejects `#[serde(...)]`: this derive has no
/// attribute support, and silently ignoring `#[serde(skip)]` or
/// `#[serde(rename)]` would corrupt the wire format without a whisper.
fn skip_attrs(iter: &mut Tokens) -> Result<(), String> {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        if matches!(
                            g.stream().into_iter().next(),
                            Some(TokenTree::Ident(i)) if i.to_string() == "serde"
                        ) {
                            return Err("serde shim derive: `#[serde(...)]` attributes are not \
                                 supported — all fields encode in declaration order \
                                 (see vendor/README.md)"
                                .to_string());
                        }
                        iter.next();
                        continue;
                    }
                }
                return Ok(());
            }
            _ => return Ok(()),
        }
    }
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, `pub(in ...)`).
fn skip_vis(iter: &mut Tokens) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs(&mut iter)?;
    skip_vis(&mut iter);
    let kw = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".to_string()),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("serde shim derive: expected a type name".to_string()),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported; \
             implement Serialize/Deserialize by hand (see vendor/README.md)"
        ));
    }
    let body = match kw.as_str() {
        "struct" => match iter.next() {
            None => Body::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(tuple_arity(g.stream()))
            }
            _ => return Err(format!("serde shim derive: malformed struct `{name}`")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("serde shim derive: malformed enum `{name}`")),
        },
        other => {
            return Err(format!(
                "serde shim derive: `{other} {name}` is not supported (structs and enums only)"
            ))
        }
    };
    Ok(Input { name, body })
}

/// Parses `name: Type, ...` field lists, returning the field names in
/// declaration order. Types are skipped with angle-bracket-aware comma
/// scanning (so `BTreeMap<K, V>` counts as one field).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut iter)?;
        skip_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => {
                return Err(format!(
                    "serde shim derive: unexpected `{other}` in field list"
                ))
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{name}`"
                ))
            }
        }
        let mut depth = 0i64;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct/variant: depth-0 commas with
/// angle-bracket tracking, tolerant of a trailing comma.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut depth = 0i64;
    let mut arity = 0usize;
    let mut pending = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    pending = true;
                }
                '>' => {
                    depth -= 1;
                    pending = true;
                }
                ',' if depth == 0 => {
                    arity += 1;
                    pending = false;
                }
                _ => pending = true,
            },
            _ => pending = true,
        }
    }
    if pending {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut iter)?;
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => {
                return Err(format!(
                    "serde shim derive: unexpected `{other}` in enum body"
                ))
            }
        };
        let payload = match iter.peek() {
            Some(TokenTree::Group(g)) => Some((g.delimiter(), g.stream())),
            _ => None,
        };
        let kind = match payload {
            Some((Delimiter::Parenthesis, inner)) => {
                iter.next();
                VariantKind::Tuple(tuple_arity(inner))
            }
            Some((Delimiter::Brace, inner)) => {
                iter.next();
                VariantKind::Named(parse_named_fields(inner)?)
            }
            _ => VariantKind::Unit,
        };
        // Skip to the separating comma (tolerates `= discriminant`).
        let mut depth = 0i64;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn serialize_impl(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::UnitStruct => "let _ = enc;".to_string(),
        Body::NamedStruct(fields) => fields
            .iter()
            .map(|f| format!("::serde::Serialize::serialize(&self.{f}, enc);"))
            .collect(),
        Body::TupleStruct(arity) => (0..*arity)
            .map(|i| format!("::serde::Serialize::serialize(&self.{i}, enc);"))
            .collect(),
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(idx, v)| {
                    let vname = &v.name;
                    let tag = format!("::serde::codec::Encoder::write_variant(enc, {idx}u32);");
                    match &v.kind {
                        VariantKind::Unit => format!("{name}::{vname} => {{ {tag} }}"),
                        VariantKind::Tuple(arity) => {
                            let binds = (0..*arity)
                                .map(|i| format!("__f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let writes: String = (0..*arity)
                                .map(|i| format!("::serde::Serialize::serialize(__f{i}, enc);"))
                                .collect();
                            format!("{name}::{vname}({binds}) => {{ {tag} {writes} }}")
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let writes: String = fields
                                .iter()
                                .map(|f| format!("::serde::Serialize::serialize({f}, enc);"))
                                .collect();
                            format!("{name}::{vname} {{ {binds} }} => {{ {tag} {writes} }}")
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
             fn serialize(&self, enc: &mut ::serde::codec::Encoder) {{ {body} }} \
         }}"
    )
}

fn deserialize_impl(input: &Input) -> String {
    let name = &input.name;
    let read = "::serde::Deserialize::deserialize(dec)?";
    let body = match &input.body {
        Body::UnitStruct => {
            format!("let _ = dec; ::core::result::Result::Ok({name})")
        }
        Body::NamedStruct(fields) => {
            let inits: String = fields.iter().map(|f| format!("{f}: {read},")).collect();
            format!("::core::result::Result::Ok({name} {{ {inits} }})")
        }
        Body::TupleStruct(arity) => {
            let inits: String = (0..*arity).map(|_| format!("{read},")).collect();
            format!("::core::result::Result::Ok({name}({inits}))")
        }
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(idx, v)| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{idx}u32 => ::core::result::Result::Ok({name}::{vname}),")
                        }
                        VariantKind::Tuple(arity) => {
                            let inits: String = (0..*arity).map(|_| format!("{read},")).collect();
                            format!(
                                "{idx}u32 => \
                                 ::core::result::Result::Ok({name}::{vname}({inits})),"
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: String =
                                fields.iter().map(|f| format!("{f}: {read},")).collect();
                            format!(
                                "{idx}u32 => \
                                 ::core::result::Result::Ok({name}::{vname} {{ {inits} }}),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match ::serde::codec::Decoder::read_variant(dec)? {{ \
                     {arms} \
                     __other => ::core::result::Result::Err(\
                         ::serde::codec::DecodeError::invalid_variant({name:?}, __other)), \
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl<'de> ::serde::Deserialize<'de> for {name} {{ \
             fn deserialize(dec: &mut ::serde::codec::Decoder<'de>) \
                 -> ::core::result::Result<Self, ::serde::codec::DecodeError> {{ {body} }} \
         }}"
    )
}
