//! Offline API-subset shim of
//! [`criterion`](https://crates.io/crates/criterion), vendored because
//! this workspace builds in a network-less container (see
//! `vendor/README.md`).
//!
//! Implements the surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`] / [`criterion_main!`], [`black_box`] — as a
//! small but genuine wall-clock harness: each benchmark is warmed up,
//! then timed over enough iterations to fill a measurement window, and
//! the per-iteration mean / min / max are printed. No statistics
//! beyond that, no HTML reports, no baselines.
//!
//! ```
//! use criterion::{BenchmarkId, Criterion};
//!
//! let mut c = Criterion::default().with_measurement_millis(5);
//! let mut group = c.benchmark_group("sums");
//! group.bench_with_input(BenchmarkId::from_parameter(1000), &1000u64, |b, &n| {
//!     b.iter(|| (0..n).sum::<u64>());
//! });
//! group.finish();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, e.g. by its input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id labelled by the input parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The benchmark driver handed to `criterion_group!` target functions.
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(200),
            measurement: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Overrides the measurement window (useful to keep doctests fast).
    pub fn with_measurement_millis(mut self, millis: u64) -> Self {
        self.measurement = Duration::from_millis(millis);
        self.warmup = Duration::from_millis(millis.div_ceil(4));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Times a standalone (ungrouped) benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(self.warmup, self.measurement, &name.into(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes measurement by
    /// wall-clock window rather than sample count, so it is a no-op.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Times `f` against one `input`, labelled `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            self.criterion.warmup,
            self.criterion.measurement,
            &label,
            &mut |b| f(b, input),
        );
        self
    }

    /// Times a benchmark with no explicit input.
    pub fn bench_function(
        &mut self,
        id: BenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            self.criterion.warmup,
            self.criterion.measurement,
            &label,
            &mut f,
        );
        self
    }

    /// Ends the group (report lines are emitted eagerly, so this only
    /// exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    mode: BencherMode,
    samples: Vec<Duration>,
}

#[derive(Debug, Default, PartialEq, Eq, Clone, Copy)]
enum BencherMode {
    /// Run the routine once per call, untimed, to warm caches.
    #[default]
    Warmup,
    /// Record one timed sample per `iter` call.
    Measure,
}

impl Bencher {
    /// Runs the benchmark routine and (in measurement mode) records one
    /// timing sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            BencherMode::Warmup => {
                black_box(routine());
            }
            BencherMode::Measure => {
                let start = Instant::now();
                black_box(routine());
                self.samples.push(start.elapsed());
            }
        }
    }
}

fn run_one(warmup: Duration, window: Duration, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        mode: BencherMode::Warmup,
        samples: Vec::new(),
    };
    let start = Instant::now();
    loop {
        f(&mut bencher);
        if start.elapsed() >= warmup {
            break;
        }
    }

    bencher.mode = BencherMode::Measure;
    let start = Instant::now();
    while start.elapsed() < window {
        f(&mut bencher);
    }

    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<40} {:>12} mean {:>12} min {:>12} max  ({} samples)",
        format_duration(mean),
        format_duration(min),
        format_duration(max),
        samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function that runs each target in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_records_samples() {
        let mut c = Criterion::default().with_measurement_millis(5);
        let mut group = c.benchmark_group("test");
        group.bench_with_input(BenchmarkId::from_parameter("sum"), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(12).to_string(), "12");
        assert_eq!(BenchmarkId::new("routing", 5).to_string(), "routing/5");
    }

    #[test]
    fn duration_formatting_covers_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
