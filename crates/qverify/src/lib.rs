//! # qverify — scalable circuit equivalence verification
//!
//! Every claim the TetrisLock reproduction makes — that
//! obfuscate→split→compile→recombine restores the original circuit, and
//! that a wrong interlock key does *not* — reduces to one question: do
//! two circuits implement the same unitary (up to global phase)? Dense
//! unitary extraction answers it exactly but dies at
//! [`MAX_UNITARY_QUBITS`] qubits. This crate answers it through a
//! *tiered* strategy instead, picking the cheapest decision procedure
//! that applies:
//!
//! | Tier | Applies when | Cost | Verdict quality |
//! |---|---|---|---|
//! | [`Tier::Classical`] | both circuits are classical reversible, ≤ [`CLASSICAL_EXHAUSTIVE_MAX_QUBITS`] qubits | `O(2ⁿ·gates)` bit ops | exact (exhaustive) |
//! | [`Tier::Tableau`] | both circuits are Clifford | `O(n·gates)` words | exact (stabilizer) |
//! | [`Tier::Zx`] | the miter diagram reduces to the identity, or its residue yields a replay-confirmed witness | `O(gates²)` graph rewriting (+ a few replays) | exact, two-sided |
//! | [`Tier::Dense`] | ≤ [`MAX_UNITARY_QUBITS`] qubits | `O(4ⁿ·gates)` | exact (full unitary) |
//! | [`Tier::Stimulus`] | ≤ [`MAX_STIMULUS_QUBITS`] qubits | `O(trials·2ⁿ·gates)`, parallel | statistical (miter) |
//!
//! The **tableau** tier is an Aaronson–Gottesman stabilizer engine: it
//! conjugates the `2n` Pauli generators through `C₂†C₁` in `O(n)` per
//! gate and accepts iff every generator returns to itself with positive
//! sign — exact for Clifford circuits at hundreds of qubits. The **ZX**
//! tier translates the miter `C₂†C₁` into a spider graph — every spider
//! phase an exact dyadic-plus-symbolic [`Phase`], so no rewrite ever
//! fires on a float tolerance — and rewrites it with spider fusion,
//! identity removal, Hadamard-edge cancellation, local complementation,
//! pivoting, phase-gadget moves and phase-polynomial completion. Full
//! reduction to bare wires is an exact proof of equivalence with no
//! dense state and no qubit cap, which is what certifies Clifford+T
//! round-trips past every simulation tier. A *stalled* reduction proves
//! nothing by itself, but its residue proposes candidate basis inputs;
//! a candidate confirmed by an independent replay — limb-backed
//! classical bit evaluation for reversible circuits at **any** register
//! width, or a sharded out-of-core basis-column replay of the miter up
//! to [`MAX_COLUMN_QUBITS`] wires (with a dense statevector fallback
//! for branchy miters within [`MAX_STIMULUS_QUBITS`]) — certifies
//! **inequivalence** with a concrete [`Witness::BasisInput`] /
//! [`Witness::BasisColumn`] / [`Witness::RelativePhase`]. With no
//! confirmed candidate the tier falls through. The **stimulus** tier
//! builds the same miter but runs it on randomized product-state inputs
//! (seeded, reproducible) in parallel batches across threads; any input
//! that fails to return to itself is a concrete counterexample
//! [`Witness::Stimulus`].
//!
//! # Example
//!
//! ```
//! use qcir::Circuit;
//! use qverify::{Tier, Verdict, Verifier};
//!
//! // A 50-qubit Clifford pair: far beyond dense unitary reach.
//! let mut a = Circuit::new(50);
//! let mut b = Circuit::new(50);
//! for q in 0..49 {
//!     a.h(q).cx(q, q + 1);
//!     b.h(q).cx(q, q + 1);
//! }
//! b.s(0).sdg(0); // extra canceling pair
//! let verifier = Verifier::new();
//! let report = verifier.check_report(&a, &b);
//! assert_eq!(report.tier, Tier::Tableau);
//! assert!(matches!(report.verdict, Verdict::Equivalent));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod classical;
mod clifford;
mod dense;
mod stimulus;
mod tableau;
mod zx;

pub use zx::phase::{Phase, DYADIC_GRID_LOG};
pub use zx::MAX_MCX_CONTROLS;

use qcir::{BasisBits, Circuit};
use std::fmt;

pub use qsim::statevector::MAX_QUBITS as MAX_STIMULUS_QUBITS;
pub use qsim::unitary::MAX_UNITARY_QUBITS;
pub use qsim::MAX_COLUMN_QUBITS;

/// Largest register for which the classical tier enumerates every basis
/// input (`2¹⁶` evaluations per circuit); beyond it classical circuits
/// fall through to the quantum tiers.
pub const CLASSICAL_EXHAUSTIVE_MAX_QUBITS: u32 = 16;

/// Most *branching* gates (H/CH/√X/Rx/Ry/U — the gates that split one
/// basis amplitude into two) a miter may contain for the ZX tier's
/// sharded basis-column replay to apply. Each branching gate at most
/// doubles the column's amplitude support, so `2^MAX_COLUMN_BRANCHING`
/// bounds the live amplitudes and keeps the replay's memory envelope
/// within its shard budget at any width up to [`MAX_COLUMN_QUBITS`].
/// Branchier miters fall back to one dense statevector replay within
/// [`MAX_STIMULUS_QUBITS`], and are replay-infeasible past it.
pub const MAX_COLUMN_BRANCHING: u32 = 10;

// Tier dispatch telemetry: every tier attempt in `check_report` ticks
// its entered counter, records its elapsed time, and — when tracing at
// `QOBS=spans`+ — emits a `verify.tier` span whose `outcome` attribute
// marks whether the tier decided or fell through.
static TIER_CLASSICAL_ENTERED: qobs::Counter = qobs::Counter::new("qverify.tier.classical.entered");
static TIER_CLASSICAL_DECIDED: qobs::Counter = qobs::Counter::new("qverify.tier.classical.decided");
static TIER_TABLEAU_ENTERED: qobs::Counter = qobs::Counter::new("qverify.tier.tableau.entered");
static TIER_TABLEAU_DECIDED: qobs::Counter = qobs::Counter::new("qverify.tier.tableau.decided");
static TIER_ZX_ENTERED: qobs::Counter = qobs::Counter::new("qverify.tier.zx.entered");
static TIER_ZX_DECIDED: qobs::Counter = qobs::Counter::new("qverify.tier.zx.decided");
static TIER_DENSE_ENTERED: qobs::Counter = qobs::Counter::new("qverify.tier.dense.entered");
static TIER_DENSE_DECIDED: qobs::Counter = qobs::Counter::new("qverify.tier.dense.decided");
static TIER_STIMULUS_ENTERED: qobs::Counter = qobs::Counter::new("qverify.tier.stimulus.entered");
static TIER_STIMULUS_DECIDED: qobs::Counter = qobs::Counter::new("qverify.tier.stimulus.decided");
static TIER_CLASSICAL_ELAPSED: qobs::Histogram =
    qobs::Histogram::new("qverify.tier.classical.elapsed_us");
static TIER_TABLEAU_ELAPSED: qobs::Histogram =
    qobs::Histogram::new("qverify.tier.tableau.elapsed_us");
static TIER_ZX_ELAPSED: qobs::Histogram = qobs::Histogram::new("qverify.tier.zx.elapsed_us");
static TIER_DENSE_ELAPSED: qobs::Histogram = qobs::Histogram::new("qverify.tier.dense.elapsed_us");
static TIER_STIMULUS_ELAPSED: qobs::Histogram =
    qobs::Histogram::new("qverify.tier.stimulus.elapsed_us");

/// Short machine key for trace attributes (`Display` stays the
/// human-facing spelling).
fn tier_key(tier: Tier) -> &'static str {
    match tier {
        Tier::Structural => "structural",
        Tier::Classical => "classical",
        Tier::Tableau => "tableau",
        Tier::Zx => "zx",
        Tier::Dense => "dense",
        Tier::Stimulus => "stimulus",
    }
}

fn verdict_key(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Equivalent => "equivalent",
        Verdict::Inequivalent { .. } => "inequivalent",
        Verdict::Inconclusive { .. } => "inconclusive",
    }
}

/// Runs one tier attempt with entered/decided counters, an elapsed
/// histogram, and a `verify.tier` span. `f` returns `Some` when the
/// tier decides.
fn tier_attempt(tier: Tier, f: impl FnOnce() -> Option<Report>) -> Option<Report> {
    let (entered, decided_counter, elapsed) = match tier {
        Tier::Classical => (
            &TIER_CLASSICAL_ENTERED,
            &TIER_CLASSICAL_DECIDED,
            &TIER_CLASSICAL_ELAPSED,
        ),
        Tier::Tableau => (
            &TIER_TABLEAU_ENTERED,
            &TIER_TABLEAU_DECIDED,
            &TIER_TABLEAU_ELAPSED,
        ),
        Tier::Zx => (&TIER_ZX_ENTERED, &TIER_ZX_DECIDED, &TIER_ZX_ELAPSED),
        Tier::Dense => (
            &TIER_DENSE_ENTERED,
            &TIER_DENSE_DECIDED,
            &TIER_DENSE_ELAPSED,
        ),
        Tier::Stimulus => (
            &TIER_STIMULUS_ENTERED,
            &TIER_STIMULUS_DECIDED,
            &TIER_STIMULUS_ELAPSED,
        ),
        Tier::Structural => unreachable!("the structural screen is not an attempted tier"),
    };
    entered.incr();
    let span = qobs::span("verify.tier").attr("tier", tier_key(tier));
    let start = std::time::Instant::now();
    let out = f();
    elapsed.record_us(start.elapsed().as_micros() as u64);
    let decided = out.is_some();
    if decided {
        decided_counter.incr();
    }
    let _span = span.attr("outcome", if decided { "decided" } else { "fell_through" });
    out
}

/// The decision procedure that produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Register-shape screening only (mismatched sizes, or no tier
    /// applicable).
    Structural,
    /// Exhaustive classical permutation comparison.
    Classical,
    /// Aaronson–Gottesman stabilizer tableau.
    Tableau,
    /// ZX-calculus miter reduction: exact, no qubit cap, two-sided —
    /// full reduction certifies [`Verdict::Equivalent`]; a stalled
    /// residue can certify [`Verdict::Inequivalent`], but only through
    /// a replay-confirmed basis witness.
    Zx,
    /// Dense full-unitary extraction (the ≤ [`MAX_UNITARY_QUBITS`]-qubit
    /// fallback).
    Dense,
    /// Randomized product-state miter, parallel across threads.
    Stimulus,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tier::Structural => "structural",
            Tier::Classical => "classical",
            Tier::Tableau => "tableau",
            Tier::Zx => "zx-calculus",
            Tier::Dense => "dense-unitary",
            Tier::Stimulus => "stimulus",
        })
    }
}

/// Concrete evidence of inequivalence.
#[derive(Debug, Clone, PartialEq)]
pub enum Witness {
    /// The circuits act on different register sizes.
    RegisterMismatch {
        /// Register of the first circuit.
        left: u32,
        /// Register of the second circuit.
        right: u32,
    },
    /// A basis input the two classical circuits map differently
    /// (classical tier, or a ZX residue confirmed by bit-level replay).
    /// The limb-backed [`BasisBits`] encoding makes the witness exact
    /// at **any** register width — 64+ wires included.
    BasisInput {
        /// The diverging basis input.
        input: BasisBits,
        /// Image under the first circuit.
        left_output: BasisBits,
        /// Image under the second circuit.
        right_output: BasisBits,
    },
    /// A basis input whose output states have overlap below 1 (dense
    /// tier, or a ZX residue confirmed by a basis-column replay of the
    /// miter — sharded out-of-core up to [`MAX_COLUMN_QUBITS`] wires).
    BasisColumn {
        /// The diverging basis input (unitary column).
        input: u64,
        /// `|⟨C₁·input|C₂·input⟩|`, strictly below 1.
        overlap: f64,
    },
    /// Two basis inputs picking up different phases — the circuits agree
    /// columnwise but only up to a *relative* phase (dense tier, or a ZX
    /// diagonal residue confirmed by phase replay of two miter basis
    /// eigenvectors — the shape `T` vs `T†` produces).
    RelativePhase {
        /// First basis input.
        input_a: u64,
        /// Second basis input, with a different phase.
        input_b: u64,
    },
    /// A Pauli generator the miter `C₂†C₁` fails to fix (tableau tier).
    Generator {
        /// Qubit the generator acts on.
        qubit: u32,
        /// `true` for the `X` (destabilizer) generator, `false` for `Z`.
        destabilizer: bool,
    },
    /// A randomized product-state input that did not return to itself
    /// through the miter (stimulus tier). Reproducible: re-seeding the
    /// preparation layer with `seed` rebuilds the exact input state.
    Stimulus {
        /// Trial index within the run.
        trial: u64,
        /// Seed of the per-qubit preparation layer.
        seed: u64,
        /// Measured return fidelity, strictly below 1.
        fidelity: f64,
    },
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Witness::RegisterMismatch { left, right } => {
                write!(f, "register mismatch: {left} vs {right} qubits")
            }
            Witness::BasisInput {
                input,
                left_output,
                right_output,
            } => write!(
                f,
                "basis input {input} maps to {left_output} vs {right_output}"
            ),
            Witness::BasisColumn { input, overlap } => write!(
                f,
                "basis input {input:#b} yields diverging outputs (overlap {overlap:.6})"
            ),
            Witness::RelativePhase { input_a, input_b } => write!(
                f,
                "basis inputs {input_a:#b} and {input_b:#b} acquire different phases"
            ),
            Witness::Generator {
                qubit,
                destabilizer,
            } => write!(
                f,
                "miter does not fix Pauli {}{}",
                if *destabilizer { "X" } else { "Z" },
                qubit
            ),
            Witness::Stimulus {
                trial,
                seed,
                fidelity,
            } => write!(
                f,
                "stimulus trial {trial} (prep seed {seed:#x}) returned with fidelity {fidelity:.9}"
            ),
        }
    }
}

/// The outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The circuits implement the same unitary up to global phase. Exact
    /// for the classical/tableau/dense tiers; statistical for the
    /// stimulus tier (see [`Report::confidence`]).
    Equivalent,
    /// The circuits differ, with concrete evidence.
    Inequivalent {
        /// Why the circuits are not equivalent.
        witness: Witness,
    },
    /// No applicable tier could decide (register too large, or zero
    /// trials configured).
    Inconclusive {
        /// Confidence in equivalence accumulated before giving up
        /// (`0.0` when nothing ran).
        confidence: f64,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent)
    }

    /// `true` for [`Verdict::Inequivalent`].
    pub fn is_inequivalent(&self) -> bool {
        matches!(self, Verdict::Inequivalent { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Equivalent => f.write_str("equivalent"),
            Verdict::Inequivalent { witness } => write!(f, "NOT equivalent ({witness})"),
            Verdict::Inconclusive { confidence } => {
                write!(f, "inconclusive (confidence {confidence:.4})")
            }
        }
    }
}

/// A verdict together with how it was reached.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The verdict.
    pub verdict: Verdict,
    /// Which tier decided.
    pub tier: Tier,
    /// Stimulus trials executed (0 for the exact tiers).
    pub trials: u64,
}

impl Report {
    /// Confidence in the verdict: `1.0` for the exact tiers, and the
    /// `1 − 2^{−trials}` Monte-Carlo heuristic for a stimulus
    /// [`Verdict::Equivalent`] (each independent random product state
    /// exposes a fixed non-identity miter with probability ≥ ½).
    pub fn confidence(&self) -> f64 {
        match (&self.verdict, self.tier) {
            (Verdict::Inconclusive { confidence }, _) => *confidence,
            (Verdict::Equivalent, Tier::Stimulus) => 1.0 - 0.5f64.powi(self.trials as i32),
            _ => 1.0,
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} tier", self.verdict, self.tier)?;
        if self.tier == Tier::Stimulus {
            write!(f, ", {} trials", self.trials)?;
        }
        f.write_str("]")
    }
}

/// Tiered equivalence verifier.
///
/// Construction is cheap; a `Verifier` holds only configuration and can
/// be reused across checks.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qverify::Verifier;
///
/// let mut a = Circuit::new(2);
/// a.h(0).cx(0, 1);
/// let mut b = Circuit::new(2);
/// b.h(0).cx(0, 1);
/// assert!(Verifier::new().check(&a, &b).is_equivalent());
/// b.x(0);
/// assert!(Verifier::new().check(&a, &b).is_inequivalent());
/// ```
#[derive(Debug, Clone)]
pub struct Verifier {
    eps: f64,
    trials: u64,
    threads: usize,
    seed: u64,
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier {
            eps: 1e-9,
            trials: 8,
            threads: 0,
            seed: 0x7e7_1257,
        }
    }
}

impl Verifier {
    /// Creates a verifier with the default configuration (ε = 1e-9,
    /// 8 stimulus trials, auto thread count).
    pub fn new() -> Self {
        Verifier::default()
    }

    /// Sets the numeric tolerance used by the dense and stimulus tiers.
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets the number of randomized stimulus trials.
    pub fn with_trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the stimulus worker-thread count (`0` = derive from
    /// available parallelism, capped by a per-register memory budget).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the base seed of the stimulus preparation layers.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Decides whether `original` and `candidate` implement the same
    /// unitary up to global phase, via the cheapest applicable tier.
    ///
    /// # Examples
    ///
    /// Small circuits are decided exactly; the tier is an internal
    /// detail unless you ask for it with [`Verifier::check_report`]:
    ///
    /// ```
    /// use qcir::Circuit;
    /// use qverify::{Verdict, Verifier};
    ///
    /// let mut bell = Circuit::new(2);
    /// bell.h(0).cx(0, 1);
    /// let mut alt = Circuit::new(2);
    /// alt.h(0).cx(0, 1).z(0).z(0); // extra canceling pair
    /// let verifier = Verifier::new();
    /// assert!(verifier.check(&bell, &alt).is_equivalent());
    /// ```
    ///
    /// A 30-qubit Clifford+T pair is past the statevector cap, but the
    /// ZX tier still certifies it exactly — and a corrupted candidate
    /// is rejected with a concrete witness from a lower tier:
    ///
    /// ```
    /// use qcir::Circuit;
    /// use qverify::{Tier, Verdict, Verifier};
    ///
    /// let mut a = Circuit::new(30);
    /// for q in 0..29 {
    ///     a.h(q).t(q).cx(q, q + 1);
    /// }
    /// let mut b = a.clone();
    /// b.s(7).sdg(7); // syntactic noise, same unitary
    /// let verifier = Verifier::new();
    /// let report = verifier.check_report(&a, &b);
    /// assert_eq!(report.tier, Tier::Zx);
    /// assert!(report.verdict.is_equivalent());
    /// assert_eq!(report.confidence(), 1.0);
    /// ```
    ///
    /// The mirror image at the same width: a 30-qubit reversible pair
    /// under a *wrong key* (here: a stray inverter) is past the
    /// classical-exhaustive, dense **and** stimulus caps, yet the ZX
    /// tier rejects it exactly — the stalled miter residue proposes a
    /// basis input, and a bit-level replay of both circuits confirms it
    /// as a [`Witness::BasisInput`]:
    ///
    /// ```
    /// use qcir::Circuit;
    /// use qverify::{Tier, Verdict, Verifier, Witness};
    ///
    /// let mut a = Circuit::new(30);
    /// for q in 0..28 {
    ///     a.cx(q, q + 1).ccx(q, q + 1, q + 2);
    /// }
    /// let mut b = a.clone();
    /// b.x(12); // wrong key: one stray inverter
    /// let report = Verifier::new().check_report(&a, &b);
    /// assert_eq!(report.tier, Tier::Zx);
    /// assert_eq!(report.confidence(), 1.0);
    /// let Verdict::Inequivalent {
    ///     witness: Witness::BasisInput { input, left_output, right_output },
    /// } = report.verdict
    /// else {
    ///     panic!("expected a replay-confirmed basis witness");
    /// };
    /// // The witness is independently checkable with plain bit ops.
    /// assert_eq!(revlib::classical_eval_bits(&a, &input).unwrap(), left_output);
    /// assert_eq!(revlib::classical_eval_bits(&b, &input).unwrap(), right_output);
    /// assert_ne!(left_output, right_output);
    /// ```
    pub fn check(&self, original: &Circuit, candidate: &Circuit) -> Verdict {
        self.check_report(original, candidate).verdict
    }

    /// Like [`Verifier::check`], but also reports which tier decided and
    /// how many stimulus trials ran.
    pub fn check_report(&self, original: &Circuit, candidate: &Circuit) -> Report {
        let span = qobs::span("verify.check")
            .attr("circuit", original.name())
            .attr("wires", original.num_qubits())
            .attr("gates_left", original.gate_count())
            .attr("gates_right", candidate.gate_count());
        let report = self.check_report_tiers(original, candidate);
        let _span = span
            .attr("tier", tier_key(report.tier))
            .attr("verdict", verdict_key(&report.verdict))
            .attr("trials", report.trials);
        report
    }

    /// The tier cascade behind [`Verifier::check_report`], with each
    /// attempt routed through [`tier_attempt`] for telemetry.
    fn check_report_tiers(&self, original: &Circuit, candidate: &Circuit) -> Report {
        let n = original.num_qubits();
        if n != candidate.num_qubits() {
            return Report {
                verdict: Verdict::Inequivalent {
                    witness: Witness::RegisterMismatch {
                        left: n,
                        right: candidate.num_qubits(),
                    },
                },
                tier: Tier::Structural,
                trials: 0,
            };
        }
        let all_classical = |c: &Circuit| c.iter().all(|i| i.gate().is_classical());
        if n <= CLASSICAL_EXHAUSTIVE_MAX_QUBITS
            && all_classical(original)
            && all_classical(candidate)
        {
            if let Some(report) = tier_attempt(Tier::Classical, || {
                Some(classical::check(original, candidate))
            }) {
                return report;
            }
        }
        if let Some(report) =
            tier_attempt(Tier::Tableau, || self.check_tableau(original, candidate))
        {
            return report;
        }
        if let Some(report) = tier_attempt(Tier::Zx, || self.check_zx(original, candidate)) {
            return report;
        }
        if n <= MAX_UNITARY_QUBITS {
            if let Some(report) =
                tier_attempt(Tier::Dense, || self.check_dense(original, candidate).ok())
            {
                return report;
            }
        }
        if n <= MAX_STIMULUS_QUBITS {
            if let Some(report) = tier_attempt(Tier::Stimulus, || {
                self.check_stimulus(original, candidate).ok()
            }) {
                return report;
            }
        }
        Report {
            verdict: Verdict::Inconclusive { confidence: 0.0 },
            tier: Tier::Structural,
            trials: 0,
        }
    }

    /// Forces the stabilizer-tableau tier. Returns `None` unless both
    /// circuits compile to Clifford operations (H/S/CX plus the gates
    /// expressible through them, including right-angle rotations).
    pub fn check_tableau(&self, original: &Circuit, candidate: &Circuit) -> Option<Report> {
        if original.num_qubits() != candidate.num_qubits() {
            return None;
        }
        let ops_a = clifford::compile(original)?;
        let ops_b_inv = clifford::compile(&candidate.inverse())?;
        Some(tableau::check(original.num_qubits(), &ops_a, &ops_b_inv))
    }

    /// Forces the ZX-calculus graph-rewriting tier.
    ///
    /// Builds the miter `C₂†C₁` as a ZX spider graph — all phases exact
    /// [`Phase`] values — and rewrites it (spider fusion, identity
    /// removal, Hadamard-edge cancellation, local complementation,
    /// pivoting, phase-gadget moves, phase-polynomial completion)
    /// toward the bare-wire identity. Returns `Some(Equivalent)` with
    /// tier [`Tier::Zx`] iff the diagram fully reduces — an exact proof
    /// with no qubit cap. A stalled non-identity residue proposes
    /// candidate basis inputs; if one is confirmed by an independent
    /// replay (classical bit evaluation when both circuits are
    /// reversible — up to 63 wires — or a single statevector basis replay
    /// within [`MAX_STIMULUS_QUBITS`]), this returns
    /// `Some(Inequivalent)` with that concrete witness. Returns `None`
    /// when the registers mismatch, a gate does not translate (an
    /// [`qcir::Gate::Mcx`] with more than [`MAX_MCX_CONTROLS`]
    /// controls), or rewriting stalls with no replay-confirmed
    /// candidate — a stall alone carries **no** evidence either way, so
    /// an engine bug can cost completeness but never a false verdict.
    pub fn check_zx(&self, original: &Circuit, candidate: &Circuit) -> Option<Report> {
        zx::check(original, candidate, self.eps)
    }

    /// Forces the dense-unitary tier (the exhaustive ≤
    /// [`MAX_UNITARY_QUBITS`]-qubit fallback).
    ///
    /// # Errors
    ///
    /// Returns [`qsim::SimError::TooManyQubits`] past the dense cap.
    pub fn check_dense(
        &self,
        original: &Circuit,
        candidate: &Circuit,
    ) -> Result<Report, qsim::SimError> {
        if original.num_qubits() != candidate.num_qubits() {
            return Ok(mismatch_report(original, candidate));
        }
        dense::check(original, candidate, self.eps)
    }

    /// Forces the randomized product-state stimulus tier.
    ///
    /// # Errors
    ///
    /// Returns [`qsim::SimError::TooManyQubits`] past the statevector
    /// cap ([`MAX_STIMULUS_QUBITS`]).
    pub fn check_stimulus(
        &self,
        original: &Circuit,
        candidate: &Circuit,
    ) -> Result<Report, qsim::SimError> {
        if original.num_qubits() != candidate.num_qubits() {
            return Ok(mismatch_report(original, candidate));
        }
        stimulus::check(
            original,
            candidate,
            self.eps,
            self.trials,
            self.threads,
            self.seed,
        )
    }
}

fn mismatch_report(a: &Circuit, b: &Circuit) -> Report {
    Report {
        verdict: Verdict::Inequivalent {
            witness: Witness::RegisterMismatch {
                left: a.num_qubits(),
                right: b.num_qubits(),
            },
        },
        tier: Tier::Structural,
        trials: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An *inequivalent* pair on which the ZX tier must fall through —
    /// the 8-control `Mcx` exceeds [`MAX_MCX_CONTROLS`], so the miter
    /// never even translates to a diagram — and tier selection falls
    /// through to the simulation tiers. The `T`/`T†` garnish keeps the
    /// pair non-classical and non-Clifford, so neither exact bit tier
    /// applies. (A plain `T` vs `T†` pair no longer works here: the ZX
    /// tier certifies it with a phase-replay witness.)
    fn zx_stalling_pair(n: u32) -> (Circuit, Circuit) {
        assert!(n >= 9, "fixture needs 8 controls plus a target");
        let controls: Vec<u32> = (0..8).collect();
        let mut a = Circuit::new(n);
        a.mcx(&controls, 8).t(8);
        let mut b = Circuit::new(n);
        b.mcx(&controls, 8).tdg(8);
        (a, b)
    }

    #[test]
    fn register_mismatch_is_structural() {
        let report = Verifier::new().check_report(&Circuit::new(2), &Circuit::new(3));
        assert_eq!(report.tier, Tier::Structural);
        assert!(matches!(
            report.verdict,
            Verdict::Inequivalent {
                witness: Witness::RegisterMismatch { left: 2, right: 3 }
            }
        ));
    }

    #[test]
    fn classical_tier_selected_for_reversible_circuits() {
        let mut a = Circuit::new(4);
        a.x(0).ccx(0, 1, 2).cx(2, 3);
        let report = Verifier::new().check_report(&a, &a.clone());
        assert_eq!(report.tier, Tier::Classical);
        assert!(report.verdict.is_equivalent());
        assert_eq!(report.confidence(), 1.0);
    }

    #[test]
    fn tableau_tier_selected_for_clifford_circuits() {
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).s(2).cz(1, 2);
        let report = Verifier::new().check_report(&a, &a.clone());
        assert_eq!(report.tier, Tier::Tableau);
        assert!(report.verdict.is_equivalent());
    }

    #[test]
    fn zx_tier_selected_for_non_clifford_identity_pair() {
        // Non-Clifford (T, CCX) and syntactically different: tableau
        // refuses, ZX reduces the miter and decides before dense.
        let mut a = Circuit::new(3);
        a.h(0).t(1).ccx(0, 1, 2);
        let mut b = a.clone();
        b.s(2).sdg(2);
        let report = Verifier::new().check_report(&a, &b);
        assert_eq!(report.tier, Tier::Zx);
        assert!(report.verdict.is_equivalent());
        assert_eq!(report.confidence(), 1.0);
    }

    #[test]
    fn zx_tier_reaches_past_every_simulation_cap() {
        let n = MAX_STIMULUS_QUBITS + 14; // 42 qubits
        let mut a = Circuit::new(n);
        for q in 0..n - 1 {
            a.h(q).t(q).cx(q, q + 1);
        }
        let report = Verifier::new().check_report(&a, &a.clone());
        assert_eq!(report.tier, Tier::Zx);
        assert!(report.verdict.is_equivalent());
    }

    #[test]
    fn dense_tier_selected_for_small_non_clifford() {
        // ZX stalls on this pair (the miter never translates), so the
        // dense tier decides it — with a concrete witness ZX could
        // never produce here.
        let (a, b) = zx_stalling_pair(9);
        let report = Verifier::new().check_report(&a, &b);
        assert_eq!(report.tier, Tier::Dense);
        assert!(report.verdict.is_inequivalent());
    }

    #[test]
    fn stimulus_tier_selected_beyond_dense_cap() {
        let n = MAX_UNITARY_QUBITS + 2;
        let (a, b) = zx_stalling_pair(n);
        let verifier = Verifier::new().with_trials(4);
        let report = verifier.check_report(&a, &b);
        assert_eq!(report.tier, Tier::Stimulus);
        assert!(
            matches!(
                report.verdict,
                Verdict::Inequivalent {
                    witness: Witness::Stimulus { .. }
                }
            ),
            "{report}"
        );
    }

    #[test]
    fn oversized_register_is_inconclusive() {
        // Past the statevector cap AND stalling the ZX tier: nothing
        // can decide, and the verifier must say so rather than guess.
        let (a, b) = zx_stalling_pair(MAX_STIMULUS_QUBITS + 1);
        let report = Verifier::new().check_report(&a, &b);
        assert!(matches!(
            report.verdict,
            Verdict::Inconclusive { confidence } if confidence == 0.0
        ));
    }

    #[test]
    fn verdict_display_is_informative() {
        let v = Verdict::Inequivalent {
            witness: Witness::Stimulus {
                trial: 3,
                seed: 0xAB,
                fidelity: 0.25,
            },
        };
        let text = v.to_string();
        assert!(text.contains("NOT equivalent"));
        assert!(text.contains("trial 3"));
        assert!(Verdict::Equivalent.to_string().contains("equivalent"));
        assert!(Tier::Tableau.to_string().contains("tableau"));
        assert!(Tier::Zx.to_string().contains("zx"));
    }

    #[test]
    fn zero_trials_is_inconclusive() {
        let (a, b) = zx_stalling_pair(MAX_UNITARY_QUBITS + 1);
        let report = Verifier::new().with_trials(0).check_report(&a, &b);
        assert_eq!(report.tier, Tier::Stimulus);
        assert!(matches!(report.verdict, Verdict::Inconclusive { .. }));
    }

    #[test]
    fn zx_tier_certifies_diagonal_residues_by_phase_replay() {
        // A genuinely different pair whose residue is purely diagonal:
        // no single basis input can see it (every basis ray is fixed),
        // but two basis eigenvectors pick up *different* phases, and
        // the phase replay certifies exactly that. Historically this
        // shape fell through to the dense tier; now ZX decides it.
        let mut a = Circuit::new(2);
        a.t(0);
        let mut b = Circuit::new(2);
        b.t(1);
        let report = Verifier::new().check_report(&a, &b);
        assert_eq!(report.tier, Tier::Zx, "{report}");
        assert!(
            matches!(
                report.verdict,
                Verdict::Inequivalent {
                    witness: Witness::RelativePhase {
                        input_a: 0,
                        input_b: 0b01
                    }
                }
            ),
            "{report}"
        );
        assert_eq!(report.confidence(), 1.0);
    }

    #[test]
    fn diagonal_residue_past_the_column_cap_is_inconclusive() {
        // T vs T† at 64 wires: past MAX_COLUMN_QUBITS no replay backend
        // can address the basis column, so the ZX tier must fall
        // through rather than guess — and with every simulation tier
        // also out of reach, the verdict is honestly Inconclusive.
        let n = MAX_COLUMN_QUBITS + 1;
        let mut a = Circuit::new(n);
        a.t(0);
        let mut b = Circuit::new(n);
        b.tdg(0);
        let report = Verifier::new().check_report(&a, &b);
        assert!(
            matches!(
                report.verdict,
                Verdict::Inconclusive { confidence } if confidence == 0.0
            ),
            "{report}"
        );
    }

    #[test]
    fn zx_tier_witnesses_wide_wrong_key_pairs_exactly() {
        // A 30-qubit reversible pair differing by one stray X: past the
        // classical-exhaustive, dense and stimulus caps, previously
        // Inconclusive. The ZX tier now rejects it with a bit-replay
        // witness, through the normal dispatch.
        let n = 30u32;
        let mut a = Circuit::new(n);
        for q in 0..n - 2 {
            a.cx(q, q + 1).ccx(q, q + 1, q + 2);
        }
        assert!(n > MAX_STIMULUS_QUBITS);
        let mut b = a.clone();
        b.x(12);
        let report = Verifier::new().check_report(&a, &b);
        assert_eq!(report.tier, Tier::Zx, "{report}");
        assert!(
            matches!(
                report.verdict,
                Verdict::Inequivalent {
                    witness: Witness::BasisInput { .. }
                }
            ),
            "{report}"
        );
        assert_eq!(report.confidence(), 1.0);
    }

    #[test]
    fn dense_cap_reexported_for_tier_selection() {
        // The dense tier's reach is exactly qsim's documented cap, and
        // the classical tier extends beyond it.
        assert_eq!(MAX_UNITARY_QUBITS, qsim::unitary::MAX_UNITARY_QUBITS);
        const _: () = assert!(CLASSICAL_EXHAUSTIVE_MAX_QUBITS > MAX_UNITARY_QUBITS);
    }
}
