//! Aaronson–Gottesman stabilizer tableau (Phys. Rev. A 70, 052328).
//!
//! The tableau tracks the images of the `2n` Pauli generators
//! `X₀…Xₙ₋₁, Z₀…Zₙ₋₁` under conjugation by the circuit applied so far.
//! Columns (one pair of bit-columns per qubit, plus a sign column) are
//! stored as packed `u64` words over the `2n` generator rows, so each
//! H/S/CX update is a handful of word operations per 64 generators —
//! `O(n²)` per gate in bits, hundreds of qubits in microseconds.
//!
//! Equivalence: a Clifford `U` equals the identity up to global phase
//! iff conjugation fixes every generator with positive sign, because the
//! Paulis span the full matrix algebra. So `C₁ ≃ C₂` iff the miter
//! `C₂†C₁` leaves the tableau in its initial state.

use crate::clifford::CliffordOp;
use crate::{Report, Tier, Verdict, Witness};

/// Packed bit-columns over the `2n` generator rows.
#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    n: usize,
    words: usize,
    /// `x[q]`: X-component of each generator on qubit `q`.
    x: Vec<Vec<u64>>,
    /// `z[q]`: Z-component of each generator on qubit `q`.
    z: Vec<Vec<u64>>,
    /// Sign bit of each generator (`1` = negative).
    r: Vec<u64>,
}

impl Tableau {
    /// The identity tableau: generator row `i` is `Xᵢ` (destabilizer)
    /// and row `n+i` is `Zᵢ` (stabilizer), all with positive sign.
    pub(crate) fn identity(n: usize) -> Self {
        let rows = 2 * n;
        let words = rows.div_ceil(64);
        let mut x = vec![vec![0u64; words]; n];
        let mut z = vec![vec![0u64; words]; n];
        for q in 0..n {
            x[q][q / 64] |= 1 << (q % 64);
            let zr = n + q;
            z[q][zr / 64] |= 1 << (zr % 64);
        }
        Tableau {
            n,
            words,
            x,
            z,
            r: vec![0u64; words],
        }
    }

    /// Applies one Clifford generator to every tracked Pauli.
    pub(crate) fn apply(&mut self, op: &CliffordOp) {
        match *op {
            CliffordOp::H(q) => {
                for w in 0..self.words {
                    self.r[w] ^= self.x[q][w] & self.z[q][w];
                }
                std::mem::swap(&mut self.x[q], &mut self.z[q]);
            }
            CliffordOp::S(q) => {
                for w in 0..self.words {
                    self.r[w] ^= self.x[q][w] & self.z[q][w];
                    self.z[q][w] ^= self.x[q][w];
                }
            }
            CliffordOp::Cx(c, t) => {
                for w in 0..self.words {
                    let xc = self.x[c][w];
                    let zc = self.z[c][w];
                    let xt = self.x[t][w];
                    let zt = self.z[t][w];
                    self.r[w] ^= xc & zt & !(xt ^ zc);
                    self.x[t][w] = xt ^ xc;
                    self.z[c][w] = zc ^ zt;
                }
            }
        }
    }

    /// `None` if the tableau is back to the identity; otherwise the
    /// index of the first generator row that moved.
    pub(crate) fn deviation(&self) -> Option<usize> {
        let rows = 2 * self.n;
        for row in 0..rows {
            let (w, bit) = (row / 64, 1u64 << (row % 64));
            if self.r[w] & bit != 0 {
                return Some(row);
            }
            for q in 0..self.n {
                let want_x = row < self.n && q == row;
                let want_z = row >= self.n && q == row - self.n;
                if ((self.x[q][w] & bit != 0) != want_x) || ((self.z[q][w] & bit != 0) != want_z) {
                    return Some(row);
                }
            }
        }
        None
    }
}

/// Runs the miter `C₂†C₁` through the tableau and reports.
pub(crate) fn check(
    num_qubits: u32,
    original_ops: &[CliffordOp],
    candidate_inverse_ops: &[CliffordOp],
) -> Report {
    let n = num_qubits as usize;
    let mut tableau = Tableau::identity(n);
    for op in original_ops.iter().chain(candidate_inverse_ops) {
        tableau.apply(op);
    }
    let verdict = match tableau.deviation() {
        None => Verdict::Equivalent,
        Some(row) => Verdict::Inequivalent {
            witness: Witness::Generator {
                qubit: (row % n) as u32,
                destabilizer: row < n,
            },
        },
    };
    Report {
        verdict,
        tier: Tier::Tableau,
        trials: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clifford::compile;
    use qcir::random::{random_unitary_circuit, RandomCircuitConfig};
    use qcir::Circuit;
    use qsim::unitary::equivalent_up_to_phase;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tableau_verdict(a: &Circuit, b: &Circuit) -> bool {
        let ops_a = compile(a).expect("clifford");
        let ops_b = compile(&b.inverse()).expect("clifford");
        check(a.num_qubits(), &ops_a, &ops_b)
            .verdict
            .is_equivalent()
    }

    fn random_clifford(n: u32, gates: usize, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for _ in 0..gates {
            match rng.gen_range(0..3u8) {
                0 => {
                    c.h(rng.gen_range(0..n));
                }
                1 => {
                    c.s(rng.gen_range(0..n));
                }
                _ => {
                    let a = rng.gen_range(0..n);
                    let mut b = rng.gen_range(0..n);
                    while b == a {
                        b = rng.gen_range(0..n);
                    }
                    c.cx(a, b);
                }
            }
        }
        c
    }

    #[test]
    fn identity_tableau_has_no_deviation() {
        assert_eq!(Tableau::identity(5).deviation(), None);
    }

    #[test]
    fn single_gate_deviates() {
        let mut t = Tableau::identity(3);
        t.apply(&CliffordOp::H(1));
        assert!(t.deviation().is_some());
        // H is self-inverse: applying it again restores the identity.
        t.apply(&CliffordOp::H(1));
        assert_eq!(t.deviation(), None);
    }

    #[test]
    fn s_has_order_four() {
        let mut t = Tableau::identity(2);
        for k in 1..=4 {
            t.apply(&CliffordOp::S(0));
            if k < 4 {
                assert!(t.deviation().is_some(), "S^{k} should not be identity");
            }
        }
        assert_eq!(t.deviation(), None);
    }

    #[test]
    fn matches_dense_verdict_on_random_clifford_pairs() {
        for seed in 0..20u64 {
            let a = random_clifford(5, 30, seed);
            let b = random_clifford(5, 30, seed + 1000);
            let dense = equivalent_up_to_phase(&a, &b, 1e-9).unwrap();
            assert_eq!(tableau_verdict(&a, &b), dense, "seed {seed}");
            // And every circuit is equivalent to itself.
            assert!(tableau_verdict(&a, &a), "seed {seed} self");
        }
    }

    #[test]
    fn detects_sign_only_differences() {
        // X·Z vs Z·X differ by a global phase only — equivalent.
        let mut a = Circuit::new(1);
        a.x(0).z(0);
        let mut b = Circuit::new(1);
        b.z(0).x(0);
        assert!(tableau_verdict(&a, &b));
        // X vs Y differ by more than phase.
        let mut a = Circuit::new(1);
        a.x(0);
        let mut b = Circuit::new(1);
        b.y(0);
        assert!(!tableau_verdict(&a, &b));
    }

    #[test]
    fn scales_past_the_dense_cap() {
        let a = random_clifford(100, 400, 9);
        let mut b = a.clone();
        b.h(50).h(50); // canceling pair
        assert!(tableau_verdict(&a, &b));
        b.s(77);
        assert!(!tableau_verdict(&a, &b));
    }

    #[test]
    fn rejects_non_clifford_input_via_compile() {
        let c = random_unitary_circuit(&RandomCircuitConfig::new(4, 30, 3));
        // The random unitary pool contains T/rotations, so compile
        // (almost surely) refuses; this documents the contract that
        // callers gate on `compile`.
        if let Some(ops) = compile(&c) {
            // In the unlikely all-Clifford draw, the tableau must agree
            // with dense equivalence of the circuit with itself.
            let inv = compile(&c.inverse()).unwrap();
            assert!(check(4, &ops, &inv).verdict.is_equivalent());
        }
    }
}
