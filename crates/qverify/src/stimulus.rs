//! Stimulus tier: randomized product-state miter, parallel across
//! threads.
//!
//! For each trial a seeded preparation layer puts every qubit in an
//! independent random pure state (Haar-like `U(θ,φ,λ)` angles), the
//! miter `C₂†C₁` runs on the product state, and the return fidelity
//! `|⟨ψ|C₂†C₁|ψ⟩|²` is compared against 1. Equivalent circuits return
//! every input exactly; a fidelity deficit beyond tolerance is a
//! concrete, reproducible counterexample. Trials are distributed over
//! `std::thread::scope` workers (each owning its statevectors), with an
//! early-exit flag once any worker finds a witness.
//!
//! A clean pass is *statistical* evidence, not proof: the verdict is
//! [`Verdict::Equivalent`] with confidence `1 − 2^{−trials}` recorded in
//! the [`Report`].

use crate::{Report, Tier, Verdict, Witness, MAX_COLUMN_BRANCHING, MAX_STIMULUS_QUBITS};
use qcir::{Circuit, Gate};
use qsim::column::{basis_column_amplitude, ColumnConfig};
use qsim::{SimError, Statevector, C64, MAX_COLUMN_QUBITS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::{PI, TAU};
use std::sync::atomic::{AtomicBool, Ordering};

/// Runs `trials` randomized miter trials over `threads` workers
/// (`0` = auto).
pub(crate) fn check(
    original: &Circuit,
    candidate: &Circuit,
    eps: f64,
    trials: u64,
    threads: usize,
    seed: u64,
) -> Result<Report, SimError> {
    let n = original.num_qubits();
    if trials == 0 {
        return Ok(Report {
            verdict: Verdict::Inconclusive { confidence: 0.0 },
            tier: Tier::Stimulus,
            trials: 0,
        });
    }
    let candidate_inverse = candidate.inverse();
    let workers = effective_workers(threads, trials, n);
    let stop = AtomicBool::new(false);

    let worker_results: Vec<Result<Option<Witness>, SimError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let candidate_inverse = &candidate_inverse;
                let stop = &stop;
                scope.spawn(move || -> Result<Option<Witness>, SimError> {
                    let mut found: Option<Witness> = None;
                    let mut trial = worker as u64;
                    while trial < trials && !stop.load(Ordering::Relaxed) {
                        let trial_seed = mix(seed, trial);
                        let prep = product_state_prep(n, trial_seed);
                        let input = Statevector::from_circuit(&prep)?;
                        let mut output = input.clone();
                        output.apply_circuit(original)?;
                        output.apply_circuit(candidate_inverse)?;
                        let fidelity = input.fidelity(&output);
                        if fidelity < 1.0 - eps {
                            found = Some(Witness::Stimulus {
                                trial,
                                seed: trial_seed,
                                fidelity,
                            });
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                        trial += workers as u64;
                    }
                    Ok(found)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stimulus worker panicked"))
            .collect()
    });

    // The verdict kind is scheduling-independent (a witness exists iff
    // some trial fails, and every trial is deterministic in its seed).
    // The *reported* trial is the smallest among those found this run;
    // early exit means a different interleaving may surface a different
    // failing trial — each is an equally valid, reproducible witness.
    let mut witness: Option<Witness> = None;
    for result in worker_results {
        if let Some(w) = result? {
            let replace = match (&witness, &w) {
                (None, _) => true,
                (
                    Some(Witness::Stimulus { trial: have, .. }),
                    Witness::Stimulus { trial: new, .. },
                ) => new < have,
                _ => false,
            };
            if replace {
                witness = Some(w);
            }
        }
    }
    let verdict = match witness {
        Some(witness) => Verdict::Inequivalent { witness },
        None => Verdict::Equivalent,
    };
    Ok(Report {
        verdict,
        tier: Tier::Stimulus,
        trials,
    })
}

/// `true` when `gate` can *branch* a basis column — a 2×2 action with
/// all four entries non-zero for generic angles, the only class that
/// can grow the column's amplitude support. Conservative: an `Rx(π)`
/// is really antidiagonal, but still counts.
fn is_branching(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::H | Gate::CH | Gate::Sx | Gate::Sxdg | Gate::Rx(_) | Gate::Ry(_) | Gate::U(..)
    )
}

/// Shard envelope for witness basis replay: small 4 KiB shards (2⁸
/// amplitudes) so support is tracked at fine grain, and a budget the
/// branching screen can never overrun — with at most
/// [`MAX_COLUMN_BRANCHING`] branching gates the column's support is
/// ≤ 2^[`MAX_COLUMN_BRANCHING`] amplitudes, hence at most 1024 shards,
/// comfortably under the 2048 budget. The budget is defense in depth,
/// not the expected abort path.
fn witness_column_config() -> ColumnConfig {
    ColumnConfig {
        shard_qubits: 8,
        resident_shards: 256,
        max_shards: 2048,
    }
}

/// `true` when the sharded-column replay is guaranteed cheap for this
/// miter: within the `u64` addressing cap and with a bounded number of
/// branching gates (support ≤ 2^[`MAX_COLUMN_BRANCHING`] amplitudes).
pub(crate) fn column_replay_feasible(miter: &Circuit) -> bool {
    miter.num_qubits() <= MAX_COLUMN_QUBITS
        && miter.iter().filter(|i| is_branching(i.gate())).count() as u32 <= MAX_COLUMN_BRANCHING
}

/// One diagonal entry of the miter: the complex amplitude
/// `⟨x|C₂†C₁|x⟩`. A magnitude strictly below 1 means the input does not
/// return to its own ray — exact evidence of inequivalence; a *unit*
/// magnitude pins the input as an eigenvector whose exact phase can be
/// compared across inputs (two different phases certify a diagonal
/// residue).
///
/// This is the certification half of the ZX tier's witness extraction
/// (`zx::witness`): the graph reduction only *proposes* basis inputs,
/// and this replay — which never looks at the ZX graph — is what turns
/// a proposal into a [`Witness::BasisColumn`] or
/// [`Witness::RelativePhase`]. Dispatch: a support-bounded miter
/// (screened by [`column_replay_feasible`]) streams through the sharded
/// out-of-core column at any width up to [`MAX_COLUMN_QUBITS`] — memory
/// scales with amplitude support, not `2ⁿ`; a branchy miter within the
/// statevector cap falls back to one dense basis replay.
///
/// # Errors
///
/// [`SimError::ShardBudgetExceeded`] when the miter is too branchy for
/// the column and too wide for a statevector — the caller treats any
/// error as "replay infeasible" and falls through.
pub(crate) fn miter_basis_amplitude(miter: &Circuit, input: u64) -> Result<C64, SimError> {
    if column_replay_feasible(miter) {
        return basis_column_amplitude(miter, input, witness_column_config());
    }
    let n = miter.num_qubits();
    if n <= MAX_STIMULUS_QUBITS {
        let mut state = Statevector::basis(n, input as usize)?;
        state.apply_circuit(miter)?;
        return Ok(state.amplitudes()[input as usize]);
    }
    let branching = miter.iter().filter(|i| is_branching(i.gate())).count();
    Err(SimError::ShardBudgetExceeded {
        shards: 1usize << (branching.min(32) as u32),
        max: witness_column_config().max_shards,
    })
}

/// Worker count: requested (or available parallelism), capped by the
/// trial count and by a per-register memory budget — each worker owns
/// two `2ⁿ`-amplitude statevectors, so wide registers get fewer
/// threads; at the `qsim::statevector::MAX_QUBITS` cap (28 qubits,
/// 4 GiB per state) a single worker runs, and the parallelism moves
/// *inside* each gate application via qsim's chunked kernels instead.
fn effective_workers(threads: usize, trials: u64, num_qubits: u32) -> usize {
    let requested = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(8)
    } else {
        threads
    };
    let memory_cap = match num_qubits {
        0..=19 => 8,
        20..=22 => 4,
        23..=24 => 2,
        _ => 1,
    };
    requested.min(memory_cap).min(trials.max(1) as usize).max(1)
}

/// SplitMix64-style mixing of the base seed with the trial index, so
/// each trial draws an independent, reproducible preparation layer.
/// Also reused by the ZX witness extraction for its classical probe
/// stream (`zx::witness`).
pub(crate) fn mix(seed: u64, trial: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(trial.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A layer of independent random single-qubit states.
fn product_state_prep(num_qubits: u32, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(num_qubits, "stimulus_prep");
    for q in 0..num_qubits {
        let theta = rng.gen_range(0.0..PI);
        let phi = rng.gen_range(0.0..TAU);
        let lambda = rng.gen_range(0.0..TAU);
        c.u(theta, phi, lambda, q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn equivalent_circuits_pass_all_trials() {
        let mut a = Circuit::new(4);
        a.h(0).cx(0, 1).t(2).ccx(1, 2, 3);
        let report = check(&a, &a.clone(), EPS, 6, 2, 11).unwrap();
        assert!(report.verdict.is_equivalent());
        assert_eq!(report.tier, Tier::Stimulus);
        assert_eq!(report.trials, 6);
        assert!(report.confidence() > 0.98);
    }

    #[test]
    fn differing_circuits_yield_reproducible_witness() {
        let mut a = Circuit::new(4);
        a.h(0).cx(0, 1).ccx(1, 2, 3);
        let mut b = a.clone();
        b.x(2);
        let report = check(&a, &b, EPS, 8, 3, 11).unwrap();
        let Verdict::Inequivalent {
            witness:
                Witness::Stimulus {
                    trial,
                    seed,
                    fidelity,
                },
        } = report.verdict
        else {
            panic!("expected stimulus witness, got {:?}", report.verdict);
        };
        assert!(fidelity < 1.0 - EPS);
        // Reproduce the counterexample from the recorded seed.
        let prep = product_state_prep(4, seed);
        let input = Statevector::from_circuit(&prep).unwrap();
        let mut output = input.clone();
        output.apply_circuit(&a).unwrap();
        output.apply_circuit(&b.inverse()).unwrap();
        assert!(
            (input.fidelity(&output) - fidelity).abs() < 1e-12,
            "trial {trial}"
        );
    }

    #[test]
    fn verdict_is_thread_count_invariant() {
        let mut a = Circuit::new(5);
        a.h(0).cx(0, 1).t(1).cx(1, 2).ccx(2, 3, 4);
        let mut b = a.clone();
        b.z(3);
        let one = check(&a, &b, EPS, 8, 1, 5).unwrap();
        let four = check(&a, &b, EPS, 8, 4, 5).unwrap();
        // Early exit may surface different trials, but the verdict kind
        // and the smallest failing trial must match.
        assert_eq!(
            one.verdict.is_inequivalent(),
            four.verdict.is_inequivalent()
        );
    }

    #[test]
    fn phase_only_difference_passes() {
        // rz vs p differ by a global phase: the miter fixes every state.
        let mut a = Circuit::new(2);
        a.rz(1.1, 0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.p(1.1, 0).cx(0, 1);
        assert!(check(&a, &b, EPS, 4, 2, 3).unwrap().verdict.is_equivalent());
    }

    #[test]
    fn zero_trials_inconclusive() {
        let a = Circuit::new(2);
        let report = check(&a, &a.clone(), EPS, 0, 0, 1).unwrap();
        assert!(matches!(report.verdict, Verdict::Inconclusive { .. }));
        assert_eq!(report.confidence(), 0.0);
    }

    #[test]
    fn miter_amplitude_column_path_matches_dense_replay() {
        let mut m = Circuit::new(6);
        m.h(0).t(1).cx(1, 2).swap(2, 5).tdg(3);
        assert!(column_replay_feasible(&m));
        for input in [0u64, 0b100110, 0b111111] {
            let sparse = miter_basis_amplitude(&m, input).unwrap();
            let mut sv = Statevector::basis(6, input as usize).unwrap();
            sv.apply_circuit(&m).unwrap();
            assert!(
                sparse.approx_eq(sv.amplitudes()[input as usize], 1e-12),
                "input {input:#b}"
            );
        }
    }

    #[test]
    fn branchy_wide_miter_is_replay_infeasible() {
        // Too many branching gates for the column AND too wide for a
        // statevector: the replay must refuse with a typed error, never
        // attempt an exponential stream.
        let mut m = Circuit::new(MAX_STIMULUS_QUBITS + 2);
        for q in 0..=MAX_COLUMN_BRANCHING {
            m.h(q);
        }
        assert!(!column_replay_feasible(&m));
        assert!(matches!(
            miter_basis_amplitude(&m, 0),
            Err(SimError::ShardBudgetExceeded { .. })
        ));
    }

    #[test]
    fn worker_budget_respects_register_width() {
        assert_eq!(
            effective_workers(0, 100, 24).max(1),
            effective_workers(0, 100, 24)
        );
        assert!(effective_workers(8, 100, 24) <= 2);
        assert!(effective_workers(8, 100, 10) <= 8);
        assert_eq!(effective_workers(4, 1, 5), 1);
        assert_eq!(effective_workers(0, 0, 5), 1);
    }
}
