//! Clifford recognition: compiling circuits to the {H, S, CX} generator
//! set the tableau engine natively updates.
//!
//! Every gate of the workspace gate set that lies in the Clifford group
//! is rewritten (up to global phase, which conjugation cannot see) into
//! a short H/S/CX word. Parametric rotations qualify when their angle is
//! a right-angle multiple within [`ANGLE_TOLERANCE`]; anything else
//! (T, CCX, CH, generic U, …) makes [`compile`] return `None` and the
//! verifier falls through to the non-Clifford tiers.

use qcir::{Circuit, Gate};
use std::f64::consts::{FRAC_PI_2, PI};

/// Tolerance when matching rotation angles against right-angle
/// multiples.
pub(crate) const ANGLE_TOLERANCE: f64 = 1e-9;

/// A generator of the Clifford group, on concrete wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CliffordOp {
    /// Hadamard.
    H(usize),
    /// Phase gate S.
    S(usize),
    /// Controlled-X (control, target).
    Cx(usize, usize),
}

/// Compiles a circuit to Clifford generators, or `None` if any gate is
/// outside the Clifford group.
pub(crate) fn compile(circuit: &Circuit) -> Option<Vec<CliffordOp>> {
    let mut ops = Vec::with_capacity(circuit.gate_count() * 3);
    for inst in circuit.iter() {
        let q: Vec<usize> = inst.qubits().iter().map(|w| w.index()).collect();
        match inst.gate() {
            Gate::I => {}
            Gate::X => {
                h(&mut ops, q[0]);
                s_pow(&mut ops, q[0], 2);
                h(&mut ops, q[0]);
            }
            Gate::Y => {
                // Y ≃ X·Z up to phase: conjugation by Z then X.
                s_pow(&mut ops, q[0], 2);
                h(&mut ops, q[0]);
                s_pow(&mut ops, q[0], 2);
                h(&mut ops, q[0]);
            }
            Gate::Z => s_pow(&mut ops, q[0], 2),
            Gate::H => h(&mut ops, q[0]),
            Gate::S => s_pow(&mut ops, q[0], 1),
            Gate::Sdg => s_pow(&mut ops, q[0], 3),
            Gate::Sx => {
                // √X = H·S·H exactly.
                h(&mut ops, q[0]);
                s_pow(&mut ops, q[0], 1);
                h(&mut ops, q[0]);
            }
            Gate::Sxdg => {
                h(&mut ops, q[0]);
                s_pow(&mut ops, q[0], 3);
                h(&mut ops, q[0]);
            }
            Gate::Rz(a) | Gate::P(a) => s_pow(&mut ops, q[0], turns(*a, FRAC_PI_2, 4)?),
            Gate::Rx(a) => {
                let k = turns(*a, FRAC_PI_2, 4)?;
                h(&mut ops, q[0]);
                s_pow(&mut ops, q[0], k);
                h(&mut ops, q[0]);
            }
            Gate::Ry(a) => {
                // Ry(θ) = S·Rx(θ)·S†, listed target-first.
                let k = turns(*a, FRAC_PI_2, 4)?;
                s_pow(&mut ops, q[0], 3);
                h(&mut ops, q[0]);
                s_pow(&mut ops, q[0], k);
                h(&mut ops, q[0]);
                s_pow(&mut ops, q[0], 1);
            }
            Gate::CX => ops.push(CliffordOp::Cx(q[0], q[1])),
            Gate::CY => {
                // CY = S(t)·CX·S†(t).
                s_pow(&mut ops, q[1], 3);
                ops.push(CliffordOp::Cx(q[0], q[1]));
                s_pow(&mut ops, q[1], 1);
            }
            Gate::CZ => cz(&mut ops, q[0], q[1]),
            Gate::CP(a) => {
                if turns(*a, PI, 2)? == 1 {
                    cz(&mut ops, q[0], q[1]);
                }
            }
            Gate::CRz(a) => {
                // CRz(kπ) on the control/target phase lattice has period
                // 4π: CRz(π) = S†(c)·CZ, CRz(2π) = Z(c), CRz(3π) = S(c)·CZ.
                match turns(*a, PI, 4)? {
                    0 => {}
                    1 => {
                        s_pow(&mut ops, q[0], 3);
                        cz(&mut ops, q[0], q[1]);
                    }
                    2 => s_pow(&mut ops, q[0], 2),
                    _ => {
                        s_pow(&mut ops, q[0], 1);
                        cz(&mut ops, q[0], q[1]);
                    }
                }
            }
            Gate::Swap => {
                ops.push(CliffordOp::Cx(q[0], q[1]));
                ops.push(CliffordOp::Cx(q[1], q[0]));
                ops.push(CliffordOp::Cx(q[0], q[1]));
            }
            Gate::T
            | Gate::Tdg
            | Gate::U(..)
            | Gate::CH
            | Gate::CCX
            | Gate::CSwap
            | Gate::Mcx(_) => return None,
        }
    }
    Some(ops)
}

fn h(ops: &mut Vec<CliffordOp>, q: usize) {
    ops.push(CliffordOp::H(q));
}

fn s_pow(ops: &mut Vec<CliffordOp>, q: usize, k: u32) {
    for _ in 0..k {
        ops.push(CliffordOp::S(q));
    }
}

fn cz(ops: &mut Vec<CliffordOp>, c: usize, t: usize) {
    ops.push(CliffordOp::H(t));
    ops.push(CliffordOp::Cx(c, t));
    ops.push(CliffordOp::H(t));
}

/// `θ / unit` rounded to the nearest integer, reduced mod `period` —
/// `None` unless `θ` is a multiple of `unit` within [`ANGLE_TOLERANCE`].
fn turns(theta: f64, unit: f64, period: i64) -> Option<u32> {
    let k = (theta / unit).round();
    if (theta - k * unit).abs() > ANGLE_TOLERANCE {
        return None;
    }
    Some((k as i64).rem_euclid(period) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::unitary::equivalent_up_to_phase;

    /// Rebuilds a plain circuit from compiled ops, for dense
    /// cross-checking.
    fn reconstruct(n: u32, ops: &[CliffordOp]) -> Circuit {
        let mut c = Circuit::new(n);
        for op in ops {
            match op {
                CliffordOp::H(q) => c.h(*q as u32),
                CliffordOp::S(q) => c.s(*q as u32),
                CliffordOp::Cx(a, b) => c.cx(*a as u32, *b as u32),
            };
        }
        c
    }

    #[test]
    fn every_clifford_gate_compiles_to_its_own_unitary() {
        let mut gates: Vec<Circuit> = Vec::new();
        let single = |f: &dyn Fn(&mut Circuit)| {
            let mut c = Circuit::new(2);
            f(&mut c);
            c
        };
        gates.push(single(&|c| {
            c.x(0);
        }));
        gates.push(single(&|c| {
            c.y(0);
        }));
        gates.push(single(&|c| {
            c.z(0);
        }));
        gates.push(single(&|c| {
            c.h(0);
        }));
        gates.push(single(&|c| {
            c.s(0);
        }));
        gates.push(single(&|c| {
            c.sdg(0);
        }));
        gates.push(single(&|c| {
            c.sx(0);
        }));
        gates.push(single(&|c| {
            c.cx(0, 1);
        }));
        gates.push(single(&|c| {
            c.cy(0, 1);
        }));
        gates.push(single(&|c| {
            c.cz(0, 1);
        }));
        gates.push(single(&|c| {
            c.swap(0, 1);
        }));
        for k in 0..4i32 {
            let a = f64::from(k) * FRAC_PI_2;
            gates.push(single(&|c| {
                c.rz(a, 0);
            }));
            gates.push(single(&|c| {
                c.rx(a, 0);
            }));
            gates.push(single(&|c| {
                c.ry(a, 0);
            }));
            gates.push(single(&|c| {
                c.p(a, 0);
            }));
        }
        for k in 0..4i32 {
            let a = f64::from(k) * PI;
            gates.push(single(&|c| {
                c.crz(a, 0, 1);
            }));
        }
        gates.push(single(&|c| {
            c.cp(PI, 0, 1);
        }));
        for circuit in gates {
            let ops = compile(&circuit).unwrap_or_else(|| {
                panic!("{:?} should compile", circuit.instructions());
            });
            let rebuilt = reconstruct(2, &ops);
            assert!(
                equivalent_up_to_phase(&circuit, &rebuilt, 1e-9).unwrap(),
                "compiled word wrong for {:?}",
                circuit.instructions()
            );
        }
    }

    #[test]
    fn non_clifford_gates_rejected() {
        for f in [
            &(|c: &mut Circuit| {
                c.t(0);
            }) as &dyn Fn(&mut Circuit),
            &|c: &mut Circuit| {
                c.tdg(0);
            },
            &|c: &mut Circuit| {
                c.ccx(0, 1, 2);
            },
            &|c: &mut Circuit| {
                c.ch(0, 1);
            },
            &|c: &mut Circuit| {
                c.rz(0.3, 0);
            },
            &|c: &mut Circuit| {
                c.cp(FRAC_PI_2, 0, 1);
            },
            &|c: &mut Circuit| {
                c.u(0.1, 0.2, 0.3, 0);
            },
        ] {
            let mut c = Circuit::new(3);
            f(&mut c);
            assert!(compile(&c).is_none(), "{:?}", c.instructions());
        }
    }

    #[test]
    fn angle_tolerance_accepts_float_noise() {
        let mut c = Circuit::new(1);
        c.rz(FRAC_PI_2 + 1e-13, 0);
        assert!(compile(&c).is_some());
        let mut c = Circuit::new(1);
        c.rz(FRAC_PI_2 + 1e-4, 0);
        assert!(compile(&c).is_none());
    }

    #[test]
    fn negative_angles_reduce_correctly() {
        let mut a = Circuit::new(1);
        a.rz(-FRAC_PI_2, 0);
        let ops = compile(&a).unwrap();
        let rebuilt = reconstruct(1, &ops);
        assert!(equivalent_up_to_phase(&a, &rebuilt, 1e-9).unwrap());
    }
}
