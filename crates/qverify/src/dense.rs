//! Dense tier: the exhaustive ≤ [`MAX_UNITARY_QUBITS`]-qubit fallback.
//!
//! Compares the circuits column by column: each basis state is pushed
//! through both circuits and the output overlap `⟨C₁·x|C₂·x⟩` is
//! inspected. `C₁ ≃ C₂` up to global phase iff every column pair has
//! unit overlap *and* all overlaps share one phase. Streaming one
//! column at a time keeps memory at two `2ⁿ` statevectors (instead of
//! two `2ⁿ×2ⁿ` matrices — ~512 MiB at the cap), exits early on the
//! first diverging column, and still yields a concrete witness — a
//! basis input with diverging outputs or a pair of basis inputs
//! acquiring different phases.

use crate::{Report, Tier, Verdict, Witness};
use qcir::Circuit;
use qsim::complex::C64;
use qsim::unitary::MAX_UNITARY_QUBITS;
use qsim::{SimError, Statevector};

/// Dense equivalence check with witness extraction and early exit.
pub(crate) fn check(a: &Circuit, b: &Circuit, eps: f64) -> Result<Report, SimError> {
    let n = a.num_qubits();
    if n > MAX_UNITARY_QUBITS {
        return Err(SimError::TooManyQubits {
            requested: n,
            max: MAX_UNITARY_QUBITS,
        });
    }
    let dim = 1usize << n;
    let mut reference: Option<(usize, C64)> = None;
    for col in 0..dim {
        let mut sa = Statevector::basis(n, col)?;
        sa.apply_circuit(a)?;
        let mut sb = Statevector::basis(n, col)?;
        sb.apply_circuit(b)?;
        let overlap = sa.inner(&sb);
        if (overlap.abs() - 1.0).abs() > eps {
            return Ok(report(Verdict::Inequivalent {
                witness: Witness::BasisColumn {
                    input: col as u64,
                    overlap: overlap.abs(),
                },
            }));
        }
        match reference {
            None => reference = Some((col, overlap)),
            Some((first, phase)) => {
                if !overlap.approx_eq(phase, eps.max(1e-12) * 10.0) {
                    return Ok(report(Verdict::Inequivalent {
                        witness: Witness::RelativePhase {
                            input_a: first as u64,
                            input_b: col as u64,
                        },
                    }));
                }
            }
        }
    }
    Ok(report(Verdict::Equivalent))
}

fn report(verdict: Verdict) -> Report {
    Report {
        verdict,
        tier: Tier::Dense,
        trials: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::unitary::equivalent_up_to_phase;

    const EPS: f64 = 1e-9;

    #[test]
    fn agrees_with_qsim_boolean_check() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1).t(1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).t(1);
        assert!(check(&a, &b, EPS).unwrap().verdict.is_equivalent());
        assert!(equivalent_up_to_phase(&a, &b, EPS).unwrap());
        b.s(0);
        assert!(check(&a, &b, EPS).unwrap().verdict.is_inequivalent());
        assert!(!equivalent_up_to_phase(&a, &b, EPS).unwrap());
    }

    #[test]
    fn global_phase_difference_is_equivalent() {
        let mut a = Circuit::new(1);
        a.rz(0.9, 0);
        let mut b = Circuit::new(1);
        b.p(0.9, 0);
        assert!(check(&a, &b, EPS).unwrap().verdict.is_equivalent());
    }

    #[test]
    fn relative_phase_detected_with_witness() {
        // CZ matches identity on every column magnitude but not phase.
        let mut a = Circuit::new(2);
        a.cz(0, 1);
        let b = Circuit::new(2);
        match check(&a, &b, EPS).unwrap().verdict {
            Verdict::Inequivalent {
                witness: Witness::RelativePhase { input_a, input_b },
            } => {
                assert_eq!(input_a, 0);
                assert_eq!(input_b, 0b11);
            }
            other => panic!("expected relative-phase witness, got {other:?}"),
        }
    }

    #[test]
    fn column_divergence_yields_basis_witness() {
        let mut a = Circuit::new(2);
        a.x(1);
        let b = Circuit::new(2);
        match check(&a, &b, EPS).unwrap().verdict {
            Verdict::Inequivalent {
                witness: Witness::BasisColumn { input, overlap },
            } => {
                assert_eq!(input, 0);
                assert!(overlap < 0.5);
            }
            other => panic!("expected basis-column witness, got {other:?}"),
        }
    }

    #[test]
    fn oversized_register_errors() {
        let c = Circuit::new(MAX_UNITARY_QUBITS + 1);
        assert!(matches!(
            check(&c, &c.clone(), EPS),
            Err(SimError::TooManyQubits { .. })
        ));
    }
}
