//! Certified inequivalence from a stalled ZX reduction.
//!
//! A reduced-but-non-identity miter diagram is *suggestive* — it is what
//! survives after everything the rewrite engine can cancel has
//! canceled — but by the tier's own contract it proves nothing on its
//! own: the rule set is incomplete, and a sound verifier must never
//! turn "I could not finish" into "they differ". This module closes the
//! gap with a **propose-then-certify** split:
//!
//! 1. **Propose** (heuristic, untrusted): read the residual diagram's
//!    *active wires* — wires whose input is no longer plain-connected to
//!    its own output — and derive a handful of candidate basis inputs
//!    that would expose the residue if it is what it looks like
//!    (all-zeros for bit-flip residues, single-bit probes for wire
//!    permutations, the all-active pattern for control-gated residues,
//!    plus seeded pseudo-random probes on the cheap classical path).
//! 2. **Certify** (exact, independent): replay each candidate through
//!    machinery that never saw the ZX graph —
//!    * both circuits classical reversible → limb-backed bit-level
//!      evaluation of each circuit ([`revlib::classical_eval_bits`]) at
//!      **any** register width, `O(gates)` per input
//!      ([`Witness::BasisInput`], outputs compared exactly);
//!    * otherwise → the miter's diagonal amplitude `⟨x|C₂†C₁|x⟩` from
//!      [`crate::stimulus::miter_basis_amplitude`] (sharded out-of-core
//!      column for support-bounded miters up to
//!      [`qsim::MAX_COLUMN_QUBITS`] wires, dense basis replay for
//!      branchy miters within the statevector cap). A magnitude deficit
//!      certifies [`Witness::BasisColumn`]; two unit-magnitude
//!      amplitudes with *different phases* certify
//!      [`Witness::RelativePhase`] — this is what catches purely
//!      diagonal residues (`T` vs `T†`, a leftover `CZ`) that no single
//!      basis input can see.
//!
//! A candidate that fails certification is simply dropped; a replay
//! that errors (miter too branchy for the column budget and too wide
//! for a statevector) aborts the quantum path. If nothing survives, the
//! tier falls through exactly as a plain stall does. A rewrite-engine
//! bug can therefore cost completeness, never soundness: every
//! `Inequivalent` the ZX tier emits is backed by a replay witness the
//! caller can re-run.

use super::graph::{Diagram, EdgeKind};
use crate::stimulus::{self, mix};
use crate::Witness;
use qcir::{BasisBits, Circuit};
use qsim::C64;
use revlib::classical_eval_bits;

/// Most miter basis replays attempted per stalled diagram: enough for
/// the all-zeros probe, the all-active probe and a couple of
/// single-bit probes. (Each replay streams the support-bounded column
/// or — for branchy miters within the statevector cap — one full `2ⁿ`
/// simulation, so the budget is tight.)
const MAX_BASIS_REPLAYS: usize = 4;

/// Seeded pseudo-random probes added on the classical path, where one
/// candidate costs only `O(gates)` bit operations.
const CLASSICAL_RANDOM_PROBES: u64 = 32;

/// Base seed of the classical probe stream (the stimulus tier's
/// SplitMix64 on a constant stream, so probe inputs are reproducible).
const CLASSICAL_PROBE_SEED: u64 = 0x05EE_DC1A_C515_1CA1;

// Witness extraction cost telemetry: how many candidate inputs the
// stalled residue proposed, how many replays each confirmation path
// actually paid for, how many unit-magnitude amplitudes entered a
// phase comparison, and how many witnesses were certified.
static WITNESS_CANDIDATES: qobs::Counter = qobs::Counter::new("qverify.zx.witness.candidates");
static WITNESS_BIT_REPLAYS: qobs::Counter = qobs::Counter::new("qverify.zx.witness.bit_replays");
static WITNESS_BASIS_REPLAYS: qobs::Counter =
    qobs::Counter::new("qverify.zx.witness.basis_replays");
static WITNESS_PHASE_REPLAYS: qobs::Counter =
    qobs::Counter::new("qverify.zx.witness.phase_replays");
static WITNESS_CONFIRMED: qobs::Counter = qobs::Counter::new("qverify.zx.witness.confirmed");

/// Attempts to turn a reduced-but-non-identity diagram into a
/// replay-certified witness. `None` means "no confirmed witness" — the
/// caller falls through, exactly as for a plain stall.
pub(crate) fn extract(
    original: &Circuit,
    candidate: &Circuit,
    miter: &Circuit,
    diagram: &Diagram,
    eps: f64,
) -> Option<Witness> {
    if diagram.has_zero_scalar() {
        // The structure is not trustworthy enough even to *propose*
        // candidates from (and it cannot arise from unitary circuits).
        return None;
    }
    let n = original.num_qubits();
    if n == 0 {
        return None;
    }
    let active = active_wires(diagram);
    if active.is_empty() {
        return None;
    }
    let classical = |c: &Circuit| c.iter().all(|i| i.gate().is_classical());
    if classical(original) && classical(candidate) {
        return extract_classical(original, candidate, &active, n);
    }
    if n > qsim::MAX_COLUMN_QUBITS {
        // Quantum certification addresses basis inputs as u64 column
        // indices; past the column cap no replay backend exists, so
        // the tier falls through rather than guess.
        return None;
    }
    extract_quantum(miter, &active, eps)
}

/// Bit-level certification for reversible pairs: limb-backed basis
/// states, so the replay works at any register width — 64+ wires
/// included.
fn extract_classical(
    original: &Circuit,
    candidate: &Circuit,
    active: &[u32],
    n: u32,
) -> Option<Witness> {
    let mut candidates = structured_candidates_bits(active, n, usize::MAX);
    for probe in 0..CLASSICAL_RANDOM_PROBES {
        let x = random_probe_bits(n, probe);
        if !candidates.contains(&x) {
            candidates.push(x);
        }
    }
    WITNESS_CANDIDATES.add(candidates.len() as u64);
    for x in candidates {
        WITNESS_BIT_REPLAYS.incr();
        let left = classical_eval_bits(original, &x).ok()?;
        let right = classical_eval_bits(candidate, &x).ok()?;
        if left != right {
            WITNESS_CONFIRMED.incr();
            return Some(Witness::BasisInput {
                input: x,
                left_output: left,
                right_output: right,
            });
        }
    }
    None
}

/// Quantum certification through the miter's diagonal amplitudes: one
/// unified replay loop covering both witness shapes. A magnitude
/// deficit at any candidate is a [`Witness::BasisColumn`]; when every
/// replayed amplitude has unit magnitude, the candidates are basis
/// eigenvectors and their exact phases are compared — a disagreement is
/// a [`Witness::RelativePhase`], the shape diagonal residues (`T` vs
/// `T†`) produce. Phase tolerance mirrors the dense tier
/// (`eps.max(1e-12) * 10`). Any replay error (miter too branchy for
/// the column budget, too wide for a statevector) aborts: soundness
/// over completeness.
fn extract_quantum(miter: &Circuit, active: &[u32], eps: f64) -> Option<Witness> {
    let candidates = structured_candidates(active, MAX_BASIS_REPLAYS);
    WITNESS_CANDIDATES.add(candidates.len() as u64);
    let phase_tolerance = eps.max(1e-12) * 10.0;
    let mut reference: Option<(u64, C64)> = None;
    for x in candidates {
        WITNESS_BASIS_REPLAYS.incr();
        let Ok(amplitude) = stimulus::miter_basis_amplitude(miter, x) else {
            // Replay infeasible for this miter: no candidate can be
            // certified, so the whole quantum path falls through.
            break;
        };
        let overlap = amplitude.abs();
        if overlap < 1.0 - eps {
            WITNESS_CONFIRMED.incr();
            return Some(Witness::BasisColumn { input: x, overlap });
        }
        // Unit magnitude: `x` is an eigenvector of the miter and its
        // phase is exact evidence. Compare against the first unit
        // candidate seen.
        let phase = amplitude.scale(overlap.recip());
        match reference {
            None => reference = Some((x, phase)),
            Some((first, reference_phase)) => {
                WITNESS_PHASE_REPLAYS.incr();
                if !phase.approx_eq(reference_phase, phase_tolerance) {
                    WITNESS_CONFIRMED.incr();
                    return Some(Witness::RelativePhase {
                        input_a: first,
                        input_b: x,
                    });
                }
            }
        }
    }
    None
}

/// Wires whose identity the reduction did *not* re-establish: wire `i`
/// is clean iff its input boundary is plain-connected straight to its
/// own output boundary.
fn active_wires(d: &Diagram) -> Vec<u32> {
    d.inputs()
        .iter()
        .zip(d.outputs())
        .enumerate()
        .filter(|&(_, (&i, &o))| d.edge(i, o) != Some(EdgeKind::Plain))
        .map(|(wire, _)| wire as u32)
        .collect()
}

/// Candidate basis inputs derived from the active-wire set, most
/// promising first: all-zeros (exposes bit-flip residues), the
/// all-active pattern (satisfies control conjunctions), then single-bit
/// probes per active wire (expose wire permutations) and the all-active
/// pattern with one bit dropped.
fn structured_candidates(active: &[u32], limit: usize) -> Vec<u64> {
    let all: u64 = active.iter().fold(0, |m, &w| m | (1u64 << w));
    let mut out: Vec<u64> = vec![0, all];
    for &w in active {
        out.push(1u64 << w);
        out.push(all & !(1u64 << w));
    }
    let mut seen: Vec<u64> = Vec::new();
    for x in out {
        if !seen.contains(&x) {
            seen.push(x);
        }
    }
    seen.truncate(limit);
    seen
}

/// The same probe shapes as [`structured_candidates`], as limb-backed
/// basis states over a `width`-qubit register — active wires (and the
/// register) may sit past bit 63.
fn structured_candidates_bits(active: &[u32], width: u32, limit: usize) -> Vec<BasisBits> {
    let mut all = BasisBits::zeros(width);
    for &w in active {
        all.set(w, true);
    }
    let mut out: Vec<BasisBits> = vec![BasisBits::zeros(width), all.clone()];
    for &w in active {
        let mut single = BasisBits::zeros(width);
        single.set(w, true);
        out.push(single);
        let mut dropped = all.clone();
        dropped.set(w, false);
        out.push(dropped);
    }
    let mut seen: Vec<BasisBits> = Vec::new();
    for x in out {
        if !seen.contains(&x) {
            seen.push(x);
        }
    }
    seen.truncate(limit);
    seen
}

/// Probe `probe` of the seeded classical stream, at any width: limb `l`
/// draws `mix(seed, probe·limbs + l)`, so a ≤ 64-wire register sees the
/// exact `mix(seed, probe)` stream the `u64` encoding always used, and
/// wider registers extend it limb by limb.
fn random_probe_bits(width: u32, probe: u64) -> BasisBits {
    let limbs = (width as u64).div_ceil(64).max(1);
    let mut out = BasisBits::zeros(width);
    for limb in 0..limbs {
        let value = mix(CLASSICAL_PROBE_SEED, probe * limbs + limb);
        for bit in 0..64u32 {
            let index = limb as u32 * 64 + bit;
            if index >= width {
                break;
            }
            if value >> bit & 1 == 1 {
                out.set(index, true);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_candidates_cover_the_probe_shapes() {
        let c = structured_candidates(&[1, 3], usize::MAX);
        assert_eq!(c[0], 0);
        assert_eq!(c[1], 0b1010);
        assert!(c.contains(&0b0010));
        assert!(c.contains(&0b1000));
        assert_eq!(c.len(), 4); // duplicates (all − bit = other bit) folded
        assert_eq!(structured_candidates(&[1, 3], 2), vec![0, 0b1010]);
    }

    #[test]
    fn bits_candidates_match_u64_candidates_below_the_limb_boundary() {
        for active in [vec![0u32], vec![1, 3], vec![0, 5, 17, 40]] {
            let narrow = structured_candidates(&active, usize::MAX);
            let wide = structured_candidates_bits(&active, 63, usize::MAX);
            assert_eq!(narrow.len(), wide.len());
            for (a, b) in narrow.iter().zip(&wide) {
                assert_eq!(b.to_u64(), Some(*a));
            }
        }
    }

    #[test]
    fn bits_candidates_reach_past_the_limb_boundary() {
        let c = structured_candidates_bits(&[2, 100], 130, usize::MAX);
        assert!(c[0].is_zero());
        assert!(c[1].bit(2) && c[1].bit(100) && c[1].count_ones() == 2);
        assert!(c.iter().any(|x| x.bit(100) && x.count_ones() == 1));
    }

    #[test]
    fn random_probe_stream_is_stable_below_64_wires() {
        // The limb-wise stream must reproduce the historical u64 stream
        // exactly on narrow registers: limb 0 of probe p is mix(seed, p).
        for probe in 0..8u64 {
            let bits = random_probe_bits(40, probe);
            let expected = mix(CLASSICAL_PROBE_SEED, probe) & ((1u64 << 40) - 1);
            assert_eq!(bits.to_u64(), Some(expected), "probe {probe}");
        }
    }

    #[test]
    fn random_probes_populate_high_limbs() {
        let wide = random_probe_bits(200, 3);
        let high_bits = (64..200).filter(|&i| wide.bit(i)).count();
        assert!(high_bits > 30, "high limbs must not stay zero");
    }
}
