//! Certified inequivalence from a stalled ZX reduction.
//!
//! A reduced-but-non-identity miter diagram is *suggestive* — it is what
//! survives after everything the rewrite engine can cancel has
//! canceled — but by the tier's own contract it proves nothing on its
//! own: the rule set is incomplete, and a sound verifier must never
//! turn "I could not finish" into "they differ". This module closes the
//! gap with a **propose-then-certify** split:
//!
//! 1. **Propose** (heuristic, untrusted): read the residual diagram's
//!    *active wires* — wires whose input is no longer plain-connected to
//!    its own output — and derive a handful of candidate basis inputs
//!    that would expose the residue if it is what it looks like
//!    (all-zeros for bit-flip residues, single-bit probes for wire
//!    permutations, the all-active pattern for control-gated residues,
//!    plus seeded pseudo-random probes on the cheap classical path).
//! 2. **Certify** (exact, independent): replay each candidate through
//!    machinery that never saw the ZX graph —
//!    * both circuits classical reversible → bit-level evaluation of
//!      each circuit at any register width the `u64` basis encoding
//!      covers (≤ 63 wires), `O(gates)` per input
//!      ([`Witness::BasisInput`], outputs compared exactly);
//!    * otherwise, registers within the statevector cap → one basis
//!      replay of the miter through `qsim`
//!      ([`crate::stimulus::basis_refutation`]), yielding
//!      [`Witness::BasisColumn`] with the deficient overlap.
//!
//! A candidate that fails certification is simply dropped; if none
//! survives, the tier falls through exactly as a plain stall does. A
//! rewrite-engine bug can therefore cost completeness, never soundness:
//! every `Inequivalent` the ZX tier emits is backed by a replay witness
//! the caller can re-run.
//!
//! Purely *diagonal* residues (`T` vs `T†`, a leftover `CZ`) are
//! invisible to any single basis input — `|⟨x|D|x⟩| = 1` for diagonal
//! `D` — so extraction skips the statevector replay when the residue
//! looks diagonal ([`basis_visible`]) and those pairs keep falling
//! through to the dense/stimulus tiers, which can see relative phases.

use super::graph::{Diagram, EdgeKind, VKind};
use crate::stimulus::{self, mix};
use crate::{Witness, MAX_STIMULUS_QUBITS};
use qcir::Circuit;
use revlib::classical_eval;

/// Most statevector basis replays attempted per stalled diagram: each
/// one costs a full `2ⁿ` miter simulation, so the budget is tight —
/// enough for the all-zeros probe, the all-active probe and a couple of
/// single-bit probes.
const MAX_BASIS_REPLAYS: usize = 4;

/// Seeded pseudo-random probes added on the classical path, where one
/// candidate costs only `O(gates)` bit operations.
const CLASSICAL_RANDOM_PROBES: u64 = 32;

// Witness extraction cost telemetry: how many candidate inputs the
// stalled residue proposed, how many replays each confirmation path
// actually paid for, and how many witnesses were certified.
static WITNESS_CANDIDATES: qobs::Counter = qobs::Counter::new("qverify.zx.witness.candidates");
static WITNESS_BIT_REPLAYS: qobs::Counter = qobs::Counter::new("qverify.zx.witness.bit_replays");
static WITNESS_BASIS_REPLAYS: qobs::Counter =
    qobs::Counter::new("qverify.zx.witness.basis_replays");
static WITNESS_CONFIRMED: qobs::Counter = qobs::Counter::new("qverify.zx.witness.confirmed");

/// Attempts to turn a reduced-but-non-identity diagram into a
/// replay-certified witness. `None` means "no confirmed witness" — the
/// caller falls through, exactly as for a plain stall.
pub(crate) fn extract(
    original: &Circuit,
    candidate: &Circuit,
    miter: &Circuit,
    diagram: &Diagram,
    eps: f64,
) -> Option<Witness> {
    if diagram.has_zero_scalar() {
        // The structure is not trustworthy enough even to *propose*
        // candidates from (and it cannot arise from unitary circuits).
        return None;
    }
    let n = original.num_qubits();
    if n == 0 || n > 63 {
        // Basis inputs are encoded as u64 bit patterns.
        return None;
    }
    let active = active_wires(diagram);
    if active.is_empty() {
        return None;
    }
    let classical = |c: &Circuit| c.iter().all(|i| i.gate().is_classical());
    if classical(original) && classical(candidate) {
        let mut candidates = structured_candidates(&active, usize::MAX);
        let mask = (1u64 << n) - 1;
        for probe in 0..CLASSICAL_RANDOM_PROBES {
            // The stimulus tier's SplitMix64, on a constant stream, so
            // probe inputs are reproducible.
            let x = mix(0x05EE_DC1A_C515_1CA1, probe) & mask;
            if !candidates.contains(&x) {
                candidates.push(x);
            }
        }
        WITNESS_CANDIDATES.add(candidates.len() as u64);
        for x in candidates {
            WITNESS_BIT_REPLAYS.incr();
            let left = classical_eval(original, x as usize).ok()? as u64;
            let right = classical_eval(candidate, x as usize).ok()? as u64;
            if left != right {
                WITNESS_CONFIRMED.incr();
                return Some(Witness::BasisInput {
                    input: x,
                    left_output: left,
                    right_output: right,
                });
            }
        }
        return None;
    }
    if n <= MAX_STIMULUS_QUBITS && basis_visible(diagram) {
        let candidates = structured_candidates(&active, MAX_BASIS_REPLAYS);
        WITNESS_CANDIDATES.add(candidates.len() as u64);
        for x in candidates {
            WITNESS_BASIS_REPLAYS.incr();
            if let Ok(Some(overlap)) = stimulus::basis_refutation(miter, x, eps) {
                WITNESS_CONFIRMED.incr();
                return Some(Witness::BasisColumn { input: x, overlap });
            }
        }
    }
    None
}

/// Wires whose identity the reduction did *not* re-establish: wire `i`
/// is clean iff its input boundary is plain-connected straight to its
/// own output boundary.
fn active_wires(d: &Diagram) -> Vec<u32> {
    d.inputs()
        .iter()
        .zip(d.outputs())
        .enumerate()
        .filter(|&(_, (&i, &o))| d.edge(i, o) != Some(EdgeKind::Plain))
        .map(|(wire, _)| wire as u32)
        .collect()
}

/// Candidate basis inputs derived from the active-wire set, most
/// promising first: all-zeros (exposes bit-flip residues), the
/// all-active pattern (satisfies control conjunctions), then single-bit
/// probes per active wire (expose wire permutations) and the all-active
/// pattern with one bit dropped.
fn structured_candidates(active: &[u32], limit: usize) -> Vec<u64> {
    let all: u64 = active.iter().fold(0, |m, &w| m | (1u64 << w));
    let mut out: Vec<u64> = vec![0, all];
    for &w in active {
        out.push(1u64 << w);
        out.push(all & !(1u64 << w));
    }
    let mut seen: Vec<u64> = Vec::new();
    for x in out {
        if !seen.contains(&x) {
            seen.push(x);
        }
    }
    seen.truncate(limit);
    seen
}

/// `true` if the residue can plausibly be seen by a single basis input.
/// Diagonal operators fix every basis ray, so a residue whose boundary
/// structure is all plain wires into spiders (the shape of leftover
/// phases and `CZ`s) is skipped; Hadamard edges at a boundary or
/// boundary-to-boundary cross-wiring are the signatures worth paying a
/// statevector replay for.
fn basis_visible(d: &Diagram) -> bool {
    let boundary_edges = d
        .inputs()
        .iter()
        .chain(d.outputs())
        .flat_map(|&b| d.neighbors(b).into_iter().map(move |(n, k)| (b, n, k)));
    for (b, neighbor, kind) in boundary_edges {
        if kind == EdgeKind::Had {
            return true;
        }
        if d.vkind(neighbor) == VKind::Boundary {
            // A boundary-to-boundary plain edge is fine only between an
            // input and its own output (a clean wire); anything else is
            // a wire permutation — very visible.
            let partnered = d
                .inputs()
                .iter()
                .zip(d.outputs())
                .any(|(&i, &o)| (i == b && o == neighbor) || (i == neighbor && o == b));
            if !partnered {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_candidates_cover_the_probe_shapes() {
        let c = structured_candidates(&[1, 3], usize::MAX);
        assert_eq!(c[0], 0);
        assert_eq!(c[1], 0b1010);
        assert!(c.contains(&0b0010));
        assert!(c.contains(&0b1000));
        assert_eq!(c.len(), 4); // duplicates (all − bit = other bit) folded
        assert_eq!(structured_candidates(&[1, 3], 2), vec![0, 0b1010]);
    }
}
