//! ZX-calculus tier: exact equivalence by graph rewriting, with no
//! dense state and no qubit cap.
//!
//! The tier builds the miter `C₂† · C₁` as an open ZX diagram — a graph
//! of phase-carrying Z/X spiders joined by plain and Hadamard edges
//! ([`graph`]) — and rewrites it toward the bare-wire identity with
//! spider fusion, identity removal, Hadamard-edge (Hopf) cancellation,
//! local complementation and pivoting ([`rewrite`]). Translation
//! ([`translate`]) covers the full workspace gate set through exact
//! decompositions, so the tier reaches Clifford+T and arbitrary-angle
//! circuits at register sizes far past the statevector cap; its cost
//! scales with gate count, not with `2ⁿ`.
//!
//! The verdict contract is deliberately one-sided:
//!
//! * **full reduction to the identity diagram certifies equivalence** —
//!   every rewrite is a sound ZX equality up to a non-zero scalar;
//! * **a stall certifies nothing** — the rule set is complete for
//!   Clifford structure but not for arbitrary diagrams, so [`check`]
//!   returns `None` and the verifier falls through to the dense or
//!   stimulus tier. The ZX tier never produces an `Inequivalent`
//!   verdict, so it can never produce a *false* one.

mod graph;
mod rewrite;
mod translate;

use crate::{Report, Tier, Verdict};
use qcir::Circuit;

pub use translate::MAX_MCX_CONTROLS;

/// Attempts to certify `original ≃ candidate` by reducing the miter
/// diagram to the identity. `Some(report)` — always `Equivalent`, tier
/// [`Tier::Zx`] — on full reduction; `None` when the circuits do not
/// translate (an `Mcx` beyond [`MAX_MCX_CONTROLS`] controls) or when
/// rewriting stalls short of the identity.
pub(crate) fn check(original: &Circuit, candidate: &Circuit) -> Option<Report> {
    if original.num_qubits() != candidate.num_qubits() {
        return None;
    }
    let miter = original.then(&candidate.inverse()).ok()?;
    let mut diagram = translate::diagram_of(&miter)?;
    rewrite::simplify(&mut diagram);
    diagram.is_identity().then_some(Report {
        verdict: Verdict::Equivalent,
        tier: Tier::Zx,
        trials: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::random::{random_unitary_circuit, RandomCircuitConfig};
    use qsim::unitary::equivalent_up_to_phase;

    #[test]
    fn self_miter_of_random_unitary_circuits_reduces() {
        for seed in 0..10u64 {
            let c = random_unitary_circuit(&RandomCircuitConfig::new(5, 40, seed));
            let report = check(&c, &c.clone()).expect("self-pair must fully reduce");
            assert!(report.verdict.is_equivalent());
            assert_eq!(report.tier, Tier::Zx);
        }
    }

    #[test]
    fn zx_equivalent_always_agrees_with_dense_ground_truth() {
        // Soundness: whenever ZX claims equivalence on pairs the dense
        // tier can also decide, dense must agree. (Stalls are fine.)
        let mut zx_decided = 0u32;
        for seed in 0..40u64 {
            let a = random_unitary_circuit(&RandomCircuitConfig::new(4, 25, seed));
            let b = random_unitary_circuit(&RandomCircuitConfig::new(4, 25, seed + 5000));
            for (x, y) in [(&a, &b), (&a, &a), (&b, &b)] {
                if let Some(report) = check(x, y) {
                    zx_decided += 1;
                    assert!(report.verdict.is_equivalent());
                    assert!(
                        equivalent_up_to_phase(x, y, 1e-9).unwrap(),
                        "seed {seed}: ZX certified a pair dense rejects"
                    );
                }
            }
        }
        assert!(zx_decided >= 80, "cross-check must not be vacuous");
    }

    #[test]
    fn stall_returns_none_rather_than_inequivalent() {
        // A lone T gate differs from the empty circuit; ZX must stall
        // and prove nothing — it has no Inequivalent verdict at all.
        let mut a = Circuit::new(2);
        a.t(0);
        let b = Circuit::new(2);
        assert!(check(&a, &b).is_none());
    }

    #[test]
    fn register_mismatch_is_not_for_this_tier() {
        assert!(check(&Circuit::new(2), &Circuit::new(3)).is_none());
    }

    #[test]
    fn commuted_diagonal_gates_reduce() {
        // Same gates, different order on commuting wires.
        let mut a = Circuit::new(3);
        a.t(0).s(1).cz(1, 2).t(0);
        let mut b = Circuit::new(3);
        b.t(0).t(0).cz(1, 2).s(1);
        let report = check(&a, &b).expect("commuted diagonals reduce");
        assert!(report.verdict.is_equivalent());
    }

    #[test]
    fn pauli_conjugated_rotation_reduces_via_pivot_gadget() {
        // X·Rz(−θ)·X = Rz(θ): plain fusion cannot see it (the π
        // spiders block the wire), so this exercises the pivot-gadget
        // route that extracts the rotation into a phase gadget.
        let mut a = Circuit::new(1);
        a.rz(0.2, 0);
        let mut b = Circuit::new(1);
        b.x(0).rz(-0.2, 0).x(0);
        assert!(equivalent_up_to_phase(&a, &b, 1e-9).unwrap());
        let report = check(&a, &b).expect("pivot-gadget closes this pair");
        assert!(report.verdict.is_equivalent());
    }

    #[test]
    fn t_versus_tdg_stalls_but_never_lies() {
        // T vs T† leaves a lone π/4 wire spider in the miter: no rule
        // applies, and the genuinely inequivalent pair must fall
        // through with `None` rather than any verdict.
        let mut a = Circuit::new(1);
        a.t(0);
        let mut b = Circuit::new(1);
        b.tdg(0);
        assert!(!equivalent_up_to_phase(&a, &b, 1e-9).unwrap());
        assert!(check(&a, &b).is_none());
    }
}
