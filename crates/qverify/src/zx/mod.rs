//! ZX-calculus tier: exact equivalence by graph rewriting, with no
//! dense state, no qubit cap — and, since the witness extension, no
//! one-sidedness and no float tolerance.
//!
//! The tier builds the miter `C₂† · C₁` as an open ZX diagram — a graph
//! of phase-carrying Z/X spiders joined by plain and Hadamard edges
//! ([`graph`]), with every phase an exact [`phase::Phase`] — and
//! rewrites it toward the bare-wire identity with spider fusion,
//! identity removal, Hadamard-edge (Hopf) cancellation, local
//! complementation, pivoting, phase-gadget moves and phase-polynomial
//! completion ([`rewrite`]). Translation ([`translate`]) covers the
//! full workspace gate set through exact decompositions, so the tier
//! reaches Clifford+T and arbitrary-angle circuits at register sizes
//! far past the statevector cap; its cost scales with gate count, not
//! with `2ⁿ`.
//!
//! The verdict contract is **two-sided but asymmetric** in how each
//! side is established:
//!
//! * **full reduction to the identity diagram certifies equivalence** —
//!   every rewrite is a sound ZX equality up to a non-zero scalar, and
//!   every phase comparison along the way is exact integer arithmetic;
//! * **a stalled non-identity diagram proves nothing by itself** — the
//!   rule set is deliberately incomplete — but it *proposes* candidate
//!   basis inputs, and a candidate confirmed by an independent replay
//!   ([`witness`]: limb-backed classical bit evaluation for reversible
//!   pairs at any width, or sharded basis-column replays of the miter
//!   up to [`qsim::MAX_COLUMN_QUBITS`] wires — magnitude deficits
//!   certify basis-column witnesses, and diverging unit phases certify
//!   relative-phase witnesses) certifies **inequivalence** with a
//!   concrete witness;
//! * **a stall with no confirmed candidate still certifies nothing** —
//!   [`check`] returns `None` and the verifier falls through to the
//!   dense or stimulus tier. The replay gate means a rewrite-engine bug
//!   can cost completeness, never a false verdict in either direction.

mod graph;
pub(crate) mod phase;
mod rewrite;
mod translate;
mod witness;

use crate::{Report, Tier, Verdict};
use qcir::Circuit;

pub use translate::MAX_MCX_CONTROLS;

/// Attempts to decide `original ≃ candidate` through the miter diagram.
///
/// * `Some(Equivalent)` (tier [`Tier::Zx`]) on full reduction to the
///   identity — exact at any register size;
/// * `Some(Inequivalent)` with a replay-confirmed witness when the
///   reduction stalls short of the identity and [`witness`] certifies a
///   distinguishing basis input, a deficient basis column, or a
///   relative phase between two basis eigenvectors (the shape purely
///   diagonal residues produce);
/// * `None` when the circuits do not translate (an `Mcx` beyond
///   [`MAX_MCX_CONTROLS`] controls), or rewriting stalls and no
///   candidate input survives replay.
pub(crate) fn check(original: &Circuit, candidate: &Circuit, eps: f64) -> Option<Report> {
    if original.num_qubits() != candidate.num_qubits() {
        return None;
    }
    let miter = original.then(&candidate.inverse()).ok()?;
    let mut diagram = translate::diagram_of(&miter)?;
    rewrite::simplify(&mut diagram);
    if diagram.is_identity() {
        return Some(Report {
            verdict: Verdict::Equivalent,
            tier: Tier::Zx,
            trials: 0,
        });
    }
    let witness = witness::extract(original, candidate, &miter, &diagram, eps)?;
    Some(Report {
        verdict: Verdict::Inequivalent { witness },
        tier: Tier::Zx,
        trials: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Witness;
    use qcir::random::{random_unitary_circuit, RandomCircuitConfig};
    use qsim::unitary::equivalent_up_to_phase;

    const EPS: f64 = 1e-9;

    #[test]
    fn self_miter_of_random_unitary_circuits_reduces() {
        for seed in 0..10u64 {
            let c = random_unitary_circuit(&RandomCircuitConfig::new(5, 40, seed));
            let report = check(&c, &c.clone(), EPS).expect("self-pair must fully reduce");
            assert!(report.verdict.is_equivalent());
            assert_eq!(report.tier, Tier::Zx);
        }
    }

    #[test]
    fn zx_verdicts_always_agree_with_dense_ground_truth() {
        // Soundness both ways: whenever ZX decides a pair the dense
        // tier can also decide, dense must agree — equivalences must be
        // real, and every witness-backed inequivalence must be real.
        // (Stalls are fine.)
        let mut equivalences = 0u32;
        let mut witnesses = 0u32;
        for seed in 0..40u64 {
            let a = random_unitary_circuit(&RandomCircuitConfig::new(4, 25, seed));
            let b = random_unitary_circuit(&RandomCircuitConfig::new(4, 25, seed + 5000));
            for (x, y) in [(&a, &b), (&a, &a), (&b, &b)] {
                if let Some(report) = check(x, y, EPS) {
                    let dense = equivalent_up_to_phase(x, y, EPS).unwrap();
                    if report.verdict.is_equivalent() {
                        equivalences += 1;
                        assert!(dense, "seed {seed}: ZX certified a pair dense rejects");
                    } else {
                        witnesses += 1;
                        assert!(!dense, "seed {seed}: ZX witnessed a pair dense accepts");
                    }
                }
            }
        }
        assert!(equivalences >= 80, "cross-check must not be vacuous");
        assert!(witnesses >= 10, "witness path must not be vacuous");
    }

    #[test]
    fn diagonal_residue_yields_relative_phase_witness() {
        // A lone T gate differs from the empty circuit, but the residue
        // is diagonal — invisible to any *single* basis input. Two
        // basis eigenvectors still disagree in phase (⟨0|T|0⟩ = 1 vs
        // ⟨1|T|1⟩ = e^{iπ/4}), and the phase replay certifies exactly
        // that.
        let mut a = Circuit::new(2);
        a.t(0);
        let b = Circuit::new(2);
        let report = check(&a, &b, EPS).expect("phase replay must certify");
        assert_eq!(report.tier, Tier::Zx);
        assert!(matches!(
            report.verdict,
            Verdict::Inequivalent {
                witness: Witness::RelativePhase {
                    input_a: 0,
                    input_b: 1
                }
            }
        ));
    }

    #[test]
    fn register_mismatch_is_not_for_this_tier() {
        assert!(check(&Circuit::new(2), &Circuit::new(3), EPS).is_none());
    }

    #[test]
    fn commuted_diagonal_gates_reduce() {
        // Same gates, different order on commuting wires.
        let mut a = Circuit::new(3);
        a.t(0).s(1).cz(1, 2).t(0);
        let mut b = Circuit::new(3);
        b.t(0).t(0).cz(1, 2).s(1);
        let report = check(&a, &b, EPS).expect("commuted diagonals reduce");
        assert!(report.verdict.is_equivalent());
    }

    #[test]
    fn pauli_conjugated_rotation_reduces_via_pivot_gadget() {
        // X·Rz(−θ)·X = Rz(θ): plain fusion cannot see it (the π
        // spiders block the wire), so this exercises the pivot-gadget
        // route that extracts the rotation into a phase gadget — and
        // the θ/−θ atoms cancel exactly, with no tolerance.
        let mut a = Circuit::new(1);
        a.rz(0.2, 0);
        let mut b = Circuit::new(1);
        b.x(0).rz(-0.2, 0).x(0);
        assert!(equivalent_up_to_phase(&a, &b, EPS).unwrap());
        let report = check(&a, &b, EPS).expect("pivot-gadget closes this pair");
        assert!(report.verdict.is_equivalent());
    }

    #[test]
    fn t_versus_tdg_yields_relative_phase_witness() {
        // T vs T† leaves a lone π/2 wire spider in the miter: diagonal,
        // so no single basis input sees it — this pair was the tier's
        // canonical blind spot. The phase replay closes it: the miter
        // is S, and ⟨0|S|0⟩ = 1 disagrees with ⟨1|S|1⟩ = i.
        let mut a = Circuit::new(1);
        a.t(0);
        let mut b = Circuit::new(1);
        b.tdg(0);
        assert!(!equivalent_up_to_phase(&a, &b, EPS).unwrap());
        let report = check(&a, &b, EPS).expect("phase replay must certify");
        assert!(matches!(
            report.verdict,
            Verdict::Inequivalent {
                witness: Witness::RelativePhase {
                    input_a: 0,
                    input_b: 1
                }
            }
        ));
    }

    #[test]
    fn hadamard_residue_yields_replay_confirmed_basis_witness() {
        // H vs I: the residue is a Hadamard wire — very basis-visible —
        // and the replay confirms |⟨0|H|0⟩| = 1/√2.
        let mut a = Circuit::new(1);
        a.h(0);
        let b = Circuit::new(1);
        let report = check(&a, &b, EPS).expect("witness extraction must fire");
        assert_eq!(report.tier, Tier::Zx);
        let Verdict::Inequivalent {
            witness: Witness::BasisColumn { input, overlap },
        } = report.verdict
        else {
            panic!("expected a basis-column witness, got {}", report.verdict);
        };
        assert_eq!(input, 0);
        assert!((overlap - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn wide_classical_wrong_pair_yields_bit_replay_witness() {
        // 40 qubits: past every simulation cap. Both circuits are
        // classical reversible, so the certification replay is plain
        // bit evaluation — exact at any translatable width.
        let n = 40u32;
        let mut a = Circuit::new(n);
        for q in 0..n - 2 {
            a.cx(q, q + 1).ccx(q, q + 1, q + 2);
        }
        let mut b = a.clone();
        b.x(17);
        let report = check(&a, &b, EPS).expect("classical replay must confirm");
        assert_eq!(report.tier, Tier::Zx);
        let Verdict::Inequivalent {
            witness:
                Witness::BasisInput {
                    input,
                    left_output,
                    right_output,
                },
        } = report.verdict
        else {
            panic!("expected a basis-input witness, got {}", report.verdict);
        };
        assert_ne!(left_output, right_output);
        // The witness is independently checkable.
        assert_eq!(
            revlib::classical_eval_bits(&a, &input).unwrap(),
            left_output
        );
        assert_eq!(
            revlib::classical_eval_bits(&b, &input).unwrap(),
            right_output
        );
    }

    #[test]
    fn wire_swap_residue_yields_permutation_witness() {
        // Swap vs identity at 20 qubits (non-classical garnish keeps it
        // off the classical path): a single-bit probe sees the crossed
        // wires.
        let n = 20u32;
        let mut a = Circuit::new(n);
        a.swap(3, 7).t(0).tdg(0);
        let b = Circuit::new(n);
        let report = check(&a, &b, EPS).expect("permutation residue is basis-visible");
        assert!(matches!(
            report.verdict,
            Verdict::Inequivalent {
                witness: Witness::BasisColumn { .. }
            }
        ));
    }
}
