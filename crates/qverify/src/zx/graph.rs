//! The spider-graph representation underlying the ZX tier.
//!
//! A [`Diagram`] is an open graph: `Boundary` vertices mark the circuit's
//! inputs and outputs, interior vertices are phase-carrying Z or X
//! spiders, and every edge is either a plain wire or a Hadamard edge.
//! Spider phases are exact [`Phase`] values (dyadic multiples of π plus
//! symbolic atoms — see [`super::phase`]), so every structural question
//! the rewrite engine asks is decided by integer arithmetic with no
//! float tolerance anywhere.
//!
//! The representation is a *simple* graph — at most one edge per vertex
//! pair — because every situation that would create a parallel edge or a
//! self-loop resolves immediately through a sound local rule:
//!
//! * a plain self-loop on a Z spider disappears;
//! * a Hadamard self-loop on a Z spider disappears and adds π to its
//!   phase;
//! * two parallel Hadamard edges between Z spiders cancel (the Hopf
//!   law — this is the "Hadamard-edge cancellation" rewrite);
//! * a plain edge in parallel with anything marks the pair for fusion,
//!   folding a parallel Hadamard edge into a π phase on the merged
//!   spider.
//!
//! All rules hold up to a non-zero scalar factor, which is exactly the
//! "equal up to global phase" equivalence the verifier decides.

use super::phase::Phase;
use std::collections::BTreeMap;

/// Vertex kind: an open wire end, or a phase-carrying spider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VKind {
    /// Circuit input/output marker (degree 1, no phase).
    Boundary,
    /// Z (green) spider.
    Z,
    /// X (red) spider. Translation produces these; the rewrite engine's
    /// first pass recolors them all to Z spiders.
    X,
}

/// Edge kind: a plain wire or a Hadamard edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EdgeKind {
    /// Plain wire.
    Plain,
    /// Wire with a Hadamard box on it.
    Had,
}

impl EdgeKind {
    /// The other kind (composing with one Hadamard).
    pub(crate) fn toggled(self) -> EdgeKind {
        match self {
            EdgeKind::Plain => EdgeKind::Had,
            EdgeKind::Had => EdgeKind::Plain,
        }
    }

    /// Kind of the single edge replacing two edges in series (through a
    /// removed identity spider): Hadamards compose mod 2.
    pub(crate) fn through(self, other: EdgeKind) -> EdgeKind {
        if self == other {
            EdgeKind::Plain
        } else {
            EdgeKind::Had
        }
    }
}

/// An open ZX diagram over a fixed set of circuit wires.
#[derive(Debug, Clone)]
pub(crate) struct Diagram {
    kind: Vec<VKind>,
    phase: Vec<Phase>,
    adj: Vec<BTreeMap<usize, EdgeKind>>,
    alive: Vec<bool>,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    /// Set when a rewrite would have to delete a zero scalar (a
    /// degree-0 π spider). Cannot arise from a unitary diagram, but if
    /// it ever does the engine must stall rather than decide.
    zero_scalar: bool,
}

impl Diagram {
    /// Creates a diagram of `n` bare wires: input `i` is vertex `i`,
    /// output `i` is vertex `n + i`, initially unconnected.
    pub(crate) fn new(n: usize) -> Self {
        let mut d = Diagram {
            kind: Vec::with_capacity(2 * n),
            phase: Vec::with_capacity(2 * n),
            adj: Vec::with_capacity(2 * n),
            alive: Vec::with_capacity(2 * n),
            inputs: Vec::with_capacity(n),
            outputs: Vec::with_capacity(n),
            zero_scalar: false,
        };
        for _ in 0..n {
            let v = d.add_vertex(VKind::Boundary, Phase::ZERO);
            d.inputs.push(v);
        }
        for _ in 0..n {
            let v = d.add_vertex(VKind::Boundary, Phase::ZERO);
            d.outputs.push(v);
        }
        d
    }

    /// Number of vertex slots ever allocated (including dead ones).
    pub(crate) fn slots(&self) -> usize {
        self.kind.len()
    }

    /// Number of live vertices.
    pub(crate) fn live_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Number of live interior spiders (non-boundary vertices).
    pub(crate) fn spider_count(&self) -> usize {
        (0..self.slots())
            .filter(|&v| self.alive[v] && self.kind[v] != VKind::Boundary)
            .count()
    }

    /// Input boundary vertices, in wire order.
    pub(crate) fn inputs(&self) -> &[usize] {
        &self.inputs
    }

    /// Output boundary vertices, in wire order.
    pub(crate) fn outputs(&self) -> &[usize] {
        &self.outputs
    }

    /// Allocates a fresh vertex.
    pub(crate) fn add_vertex(&mut self, kind: VKind, phase: Phase) -> usize {
        self.kind.push(kind);
        self.phase.push(phase);
        self.adj.push(BTreeMap::new());
        self.alive.push(true);
        self.kind.len() - 1
    }

    /// `true` if the vertex has not been removed.
    pub(crate) fn is_alive(&self, v: usize) -> bool {
        self.alive[v]
    }

    /// The vertex's kind.
    pub(crate) fn vkind(&self, v: usize) -> VKind {
        self.kind[v]
    }

    /// Recolors a spider (used by the X→Z color-change pass).
    pub(crate) fn set_vkind(&mut self, v: usize, kind: VKind) {
        self.kind[v] = kind;
    }

    /// `true` if the vertex is a live Z spider.
    pub(crate) fn is_z(&self, v: usize) -> bool {
        self.alive[v] && self.kind[v] == VKind::Z
    }

    /// The vertex's exact phase.
    pub(crate) fn phase(&self, v: usize) -> &Phase {
        &self.phase[v]
    }

    /// Adds `delta` to the vertex's phase (exact, mod 2π).
    pub(crate) fn add_phase(&mut self, v: usize, delta: Phase) {
        self.phase[v] += delta;
    }

    /// Overwrites the vertex's phase (gadget normalization, and the
    /// phase-polynomial completion zeroing a canceled family).
    pub(crate) fn set_phase(&mut self, v: usize, phase: Phase) {
        self.phase[v] = phase;
    }

    /// The edge between `a` and `b`, if any.
    pub(crate) fn edge(&self, a: usize, b: usize) -> Option<EdgeKind> {
        self.adj[a].get(&b).copied()
    }

    /// Degree of `v` (number of distinct neighbors).
    pub(crate) fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Snapshot of `v`'s incident edges (neighbor, kind).
    pub(crate) fn neighbors(&self, v: usize) -> Vec<(usize, EdgeKind)> {
        self.adj[v].iter().map(|(&n, &k)| (n, k)).collect()
    }

    /// Inserts an edge that is known not to exist yet (translation-time
    /// connections between fresh vertices).
    pub(crate) fn connect(&mut self, a: usize, b: usize, kind: EdgeKind) {
        debug_assert_ne!(a, b, "translation never builds self-loops");
        debug_assert!(self.edge(a, b).is_none(), "translation edge collision");
        self.adj[a].insert(b, kind);
        self.adj[b].insert(a, kind);
    }

    fn remove_edge(&mut self, a: usize, b: usize) {
        self.adj[a].remove(&b);
        self.adj[b].remove(&a);
    }

    /// Removes the edge between two vertices (used when a rewrite
    /// re-routes a connection through freshly inserted vertices).
    pub(crate) fn kill_edge_between(&mut self, a: usize, b: usize) {
        self.remove_edge(a, b);
    }

    fn set_edge(&mut self, a: usize, b: usize, kind: EdgeKind) {
        self.adj[a].insert(b, kind);
        self.adj[b].insert(a, kind);
    }

    /// Flips the kind of an existing edge (Plain ↔ Had) in place, as
    /// the color-change rule does to every leg of a recolored spider.
    pub(crate) fn toggle_edge_kind(&mut self, a: usize, b: usize) {
        let kind = self
            .edge(a, b)
            .expect("toggle_edge_kind requires an existing edge")
            .toggled();
        self.set_edge(a, b, kind);
    }

    /// Toggles the presence of a Hadamard edge between two Z spiders
    /// (used by local complementation and pivoting, whose neighborhoods
    /// carry only Hadamard edges).
    pub(crate) fn toggle_had(&mut self, a: usize, b: usize) {
        match self.edge(a, b) {
            None => self.set_edge(a, b, EdgeKind::Had),
            Some(EdgeKind::Had) => self.remove_edge(a, b),
            Some(EdgeKind::Plain) => {
                // Cannot occur between interior spiders once the diagram
                // is graph-like (fusion runs to fixpoint first). If it
                // ever does, resolve it exactly like [`Diagram::merge_edge`]
                // does for a parallel plain+Hadamard pair: the plain edge
                // stays (the pair fuses later) and the Hadamard edge folds
                // into a π phase — never delete connectivity, which could
                // push a non-identity diagram toward a false certificate.
                debug_assert!(false, "plain edge inside a complemented neighborhood");
                self.add_phase(a, Phase::pi());
            }
        }
    }

    /// Connects `u` and `n` with an edge of kind `k`, resolving
    /// self-loops and parallel edges by the local rules listed in the
    /// module docs. Both endpoints must be Z spiders whenever a parallel
    /// edge can arise (boundaries have degree 1, so they never do).
    pub(crate) fn merge_edge(&mut self, u: usize, n: usize, k: EdgeKind) {
        if u == n {
            if k == EdgeKind::Had {
                self.add_phase(u, Phase::pi());
            }
            return;
        }
        match (self.edge(u, n), k) {
            (None, k) => self.set_edge(u, n, k),
            // Hopf law: parallel Hadamard edges cancel mod 2.
            (Some(EdgeKind::Had), EdgeKind::Had) => self.remove_edge(u, n),
            // Plain ∥ Hadamard: the plain edge will fuse the pair, and
            // the Hadamard edge then becomes a Hadamard self-loop = π.
            (Some(EdgeKind::Had), EdgeKind::Plain) => {
                self.set_edge(u, n, EdgeKind::Plain);
                self.add_phase(u, Phase::pi());
            }
            (Some(EdgeKind::Plain), EdgeKind::Had) => self.add_phase(u, Phase::pi()),
            // Plain ∥ plain: fusing along one leaves a plain self-loop,
            // which disappears — identical to keeping a single edge.
            (Some(EdgeKind::Plain), EdgeKind::Plain) => {}
        }
    }

    /// Fuses Z spider `v` into Z spider `u` along the plain edge between
    /// them: phases add, `v`'s remaining edges transfer to `u` under
    /// [`Diagram::merge_edge`], and `v` dies.
    pub(crate) fn fuse(&mut self, u: usize, v: usize) {
        debug_assert!(self.is_z(u) && self.is_z(v));
        debug_assert_eq!(self.edge(u, v), Some(EdgeKind::Plain));
        self.remove_edge(u, v);
        let vphase = self.phase[v].clone();
        self.add_phase(u, vphase);
        for (n, k) in self.neighbors(v) {
            self.remove_edge(v, n);
            self.merge_edge(u, n, k);
        }
        self.kill(v);
    }

    /// Removes a vertex and all its edges.
    pub(crate) fn kill(&mut self, v: usize) {
        for (n, _) in self.neighbors(v) {
            self.remove_edge(v, n);
        }
        self.alive[v] = false;
    }

    /// Records that a rewrite ran into a would-be zero scalar; the
    /// diagram can no longer certify anything
    /// ([`Diagram::is_identity`] returns `false` from then on, and
    /// witness extraction refuses to read the structure).
    pub(crate) fn mark_zero_scalar(&mut self) {
        self.zero_scalar = true;
    }

    /// `true` if a rewrite ever ran into a would-be zero scalar.
    pub(crate) fn has_zero_scalar(&self) -> bool {
        self.zero_scalar
    }

    /// `true` iff the diagram is the identity on its wires up to a
    /// non-zero scalar: no spiders remain and input `i` is connected to
    /// output `i` by a plain wire, for every `i`.
    pub(crate) fn is_identity(&self) -> bool {
        if self.zero_scalar {
            return false;
        }
        if self.live_count() != self.inputs.len() + self.outputs.len() {
            return false;
        }
        self.inputs
            .iter()
            .zip(&self.outputs)
            .all(|(&i, &o)| self.degree(i) == 1 && self.edge(i, o) == Some(EdgeKind::Plain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_wires_are_not_identity_until_connected() {
        let mut d = Diagram::new(2);
        assert!(!d.is_identity());
        let (i0, i1) = (d.inputs()[0], d.inputs()[1]);
        let (o0, o1) = (d.outputs()[0], d.outputs()[1]);
        d.connect(i0, o0, EdgeKind::Plain);
        d.connect(i1, o1, EdgeKind::Plain);
        assert!(d.is_identity());
    }

    #[test]
    fn hadamard_wire_is_not_identity() {
        let mut d = Diagram::new(1);
        d.connect(d.inputs()[0], d.outputs()[0], EdgeKind::Had);
        assert!(!d.is_identity());
    }

    #[test]
    fn crossed_wires_are_not_identity() {
        let mut d = Diagram::new(2);
        let (i0, i1) = (d.inputs()[0], d.inputs()[1]);
        let (o0, o1) = (d.outputs()[0], d.outputs()[1]);
        d.connect(i0, o1, EdgeKind::Plain);
        d.connect(i1, o0, EdgeKind::Plain);
        assert!(!d.is_identity());
    }

    #[test]
    fn merge_edge_cancels_parallel_hadamards() {
        let mut d = Diagram::new(1);
        let a = d.add_vertex(VKind::Z, Phase::ZERO);
        let b = d.add_vertex(VKind::Z, Phase::ZERO);
        d.merge_edge(a, b, EdgeKind::Had);
        assert_eq!(d.edge(a, b), Some(EdgeKind::Had));
        d.merge_edge(a, b, EdgeKind::Had);
        assert_eq!(d.edge(a, b), None);
    }

    #[test]
    fn hadamard_self_loop_adds_pi() {
        let mut d = Diagram::new(1);
        let a = d.add_vertex(VKind::Z, Phase::ZERO);
        d.merge_edge(a, a, EdgeKind::Had);
        assert!(d.phase(a).is_pi());
        d.merge_edge(a, a, EdgeKind::Plain);
        assert!(d.phase(a).is_pi());
    }

    #[test]
    fn fusion_adds_phases_exactly_and_transfers_edges() {
        let mut d = Diagram::new(1);
        let a = d.add_vertex(VKind::Z, Phase::from_radians(0.3));
        let b = d.add_vertex(VKind::Z, Phase::from_radians(-0.3));
        let c = d.add_vertex(VKind::Z, Phase::ZERO);
        d.connect(a, b, EdgeKind::Plain);
        d.connect(b, c, EdgeKind::Had);
        d.fuse(a, b);
        assert!(!d.is_alive(b));
        // 0.3 + (−0.3) cancels *exactly* — no tolerance anywhere.
        assert!(d.phase(a).is_zero());
        assert_eq!(d.edge(a, c), Some(EdgeKind::Had));
    }

    #[test]
    fn set_phase_overwrites() {
        let mut d = Diagram::new(1);
        let a = d.add_vertex(VKind::Z, Phase::dyadic(1, 2));
        d.set_phase(a, Phase::ZERO);
        assert!(d.phase(a).is_zero());
    }

    #[test]
    fn zero_scalar_blocks_identity() {
        let mut d = Diagram::new(1);
        d.connect(d.inputs()[0], d.outputs()[0], EdgeKind::Plain);
        assert!(d.is_identity());
        d.mark_zero_scalar();
        assert!(d.has_zero_scalar());
        assert!(!d.is_identity());
    }

    #[test]
    fn edge_kind_composition() {
        assert_eq!(EdgeKind::Had.through(EdgeKind::Had), EdgeKind::Plain);
        assert_eq!(EdgeKind::Had.through(EdgeKind::Plain), EdgeKind::Had);
        assert_eq!(EdgeKind::Plain.toggled(), EdgeKind::Had);
    }
}
