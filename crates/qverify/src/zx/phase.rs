//! Exact spider-phase arithmetic for the ZX tier.
//!
//! PR 3's engine stored spider phases as `f64` radians and compared them
//! with a `1e-9` tolerance — good enough to certify, but a standing
//! soundness caveat: a tolerance that *accepts* can, in principle, also
//! accept wrongly. This module removes the caveat. A [`Phase`] is an
//! exact element of the circle group `ℝ/2πℤ`, written as
//!
//! ```text
//!     num·π / 2^k   +   Σᵢ cᵢ·aᵢ           (mod 2π)
//!     ─────────────     ────────
//!     dyadic part       atom part
//! ```
//!
//! * The **dyadic part** covers every phase the gate set produces
//!   structurally — Pauli (π), Clifford (π/2), T (π/4), the `π/2^{m−1}`
//!   parity-term angles of the `Mcx` expansion — as an integer numerator
//!   over a power-of-two denominator, reduced mod 2π with pure integer
//!   arithmetic. `8 × π/4` is *exactly* zero, not `≈ 6.28…`.
//! * The **atom part** covers arbitrary-angle rotations (`Rz(0.3)`,
//!   `U(θ,φ,λ)`, …). Each distinct angle magnitude is an opaque
//!   generator ("atom") of a free abelian group, keyed by its `f64` bit
//!   pattern, with an integer coefficient. `0.3 − 0.3` cancels to the
//!   empty sum — exactly, with no epsilon — while `0.1 + 0.2` simply
//!   stays symbolic instead of being float-collapsed to `0.3…`.
//!
//! Everything the rewrite engine asks of a phase — is it zero? is it
//! π? is it ±π/2? — is decided by integer comparison, so no rewrite
//! rule ever fires on a tolerance. The price is deliberate
//! incompleteness: relations between *different* real angles
//! (`0.1 + 0.2 = 0.3`) are invisible, the reduction stalls, and the
//! verifier falls through to a simulation tier — a sound trade, since a
//! stall proves nothing.
//!
//! Constructors classify an incoming `f64` angle onto the dyadic grid
//! only on **bit-exact** equality with `m·(π/2^k)` (see
//! [`Phase::from_radians`]); there is no snapping window.

use std::collections::BTreeMap;
use std::f64::consts::PI;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg};

/// Largest `k` probed when classifying a raw radian angle onto the
/// dyadic grid `m·π/2^k` (bit-exact match only). `2^8`-th roots cover
/// every structural angle the workspace gate set emits — T gates need
/// `k = 2`, the widest accepted `Mcx` parity expansion needs
/// `k =` [`crate::MAX_MCX_CONTROLS`] — with headroom for hand-written
/// `Rz(π/128)`-style circuits.
pub const DYADIC_GRID_LOG: u32 = 8;

/// An exact phase in `ℝ/2πℤ`: a dyadic multiple of π plus an integer
/// combination of opaque real "atoms".
///
/// All arithmetic ([`Add`], [`Neg`], [`Sum`]) and every predicate
/// ([`Phase::is_zero`], [`Phase::is_pi`], …) is exact integer
/// arithmetic — no float comparison, no tolerance.
///
/// # Examples
///
/// Dyadic phases reduce mod 2π exactly — eight T-gate phases make a
/// full turn:
///
/// ```
/// use qverify::Phase;
/// use std::f64::consts::FRAC_PI_4;
///
/// let t = Phase::from_radians(FRAC_PI_4);
/// let full_turn: Phase = std::iter::repeat_n(t.clone(), 8).sum();
/// assert!(full_turn.is_zero());
/// let s = t.clone() + t;
/// assert_eq!(s, Phase::from_radians(std::f64::consts::FRAC_PI_2));
/// assert_eq!(s.half_turn_sign(), Some(1));
/// ```
///
/// Arbitrary angles stay symbolic, and mirrored pairs cancel exactly
/// (this is what lets a miter's `Rz(θ)`/`Rz(−θ)` meet with no
/// tolerance):
///
/// ```
/// use qverify::Phase;
///
/// let a = Phase::from_radians(0.3);
/// assert!(!a.is_zero());
/// assert!((a.clone() + (-a)).is_zero());
/// ```
///
/// Relations *between* distinct angles are deliberately invisible — the
/// sum below is nonzero as a formal object even though the real values
/// cancel to ~1e-17, so the rewrite engine stalls (soundly) instead of
/// guessing:
///
/// ```
/// use qverify::Phase;
///
/// let formal = Phase::from_radians(0.1) + Phase::from_radians(0.2)
///     + (-Phase::from_radians(0.30000000000000004));
/// assert!(!formal.is_zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Phase {
    /// Numerator of the dyadic part: the phase contributes
    /// `num·π/2^k`, kept normalized to `0 ≤ num < 2^{k+1}` with `num`
    /// odd unless `k == 0`.
    num: i64,
    /// Log-denominator of the dyadic part.
    k: u32,
    /// Atom part: bit pattern of a positive finite `f64` angle → its
    /// (non-zero) integer coefficient.
    atoms: BTreeMap<u64, i64>,
}

impl Phase {
    /// The zero phase.
    pub const ZERO: Phase = Phase {
        num: 0,
        k: 0,
        atoms: BTreeMap::new(),
    };

    /// The half-turn phase π (a Pauli-Z spider).
    pub fn pi() -> Phase {
        Phase::dyadic(1, 0)
    }

    /// The exact dyadic phase `num·π/2^k`, reduced mod 2π.
    ///
    /// ```
    /// use qverify::Phase;
    ///
    /// assert_eq!(Phase::dyadic(9, 2), Phase::dyadic(1, 2)); // 9π/4 ≡ π/4
    /// assert_eq!(Phase::dyadic(-1, 1), Phase::dyadic(3, 1)); // −π/2 ≡ 3π/2
    /// assert!(Phase::dyadic(4, 1).is_zero()); // 2π ≡ 0
    /// ```
    pub fn dyadic(num: i64, k: u32) -> Phase {
        // The mod-2π modulus is 2^{k+1} (in units of π/2^k), which must
        // fit in i64 — so k ≤ 61, far above any translation denominator
        // (classification stops at DYADIC_GRID_LOG = 8).
        assert!(k <= 61, "dyadic denominator 2^{k} out of range");
        let mut p = Phase {
            num: num.rem_euclid(2i64 << k),
            k,
            atoms: BTreeMap::new(),
        };
        p.reduce();
        p
    }

    /// Classifies a raw radian angle: a **bit-exact** match with some
    /// `m·(π/2^k)` for `k ≤` [`DYADIC_GRID_LOG`] becomes the exact
    /// dyadic phase; anything else becomes a single opaque atom. There
    /// is no tolerance window — `std::f64::consts::FRAC_PI_4` is
    /// recognized as exactly π/4 (it is the one `f64` the constant
    /// folding of `π/2^k` produces), while an angle one ULP away is a
    /// distinct symbolic atom.
    pub fn from_radians(angle: f64) -> Phase {
        if angle.is_finite() {
            for k in 0..=DYADIC_GRID_LOG {
                let base = PI / f64::from(1u32 << k);
                let m = (angle / base).round();
                if m.abs() < 1e15 && m * base == angle {
                    return Phase::dyadic(m as i64, k);
                }
            }
        }
        let mut atoms = BTreeMap::new();
        atoms.insert(angle.abs().to_bits(), if angle < 0.0 { -1 } else { 1 });
        Phase {
            num: 0,
            k: 0,
            atoms,
        }
    }

    /// Restores the invariants after raw numerator arithmetic.
    fn reduce(&mut self) {
        debug_assert!(self.num >= 0 && self.num < (2i64 << self.k));
        while self.k > 0 && self.num % 2 == 0 {
            self.num /= 2;
            self.k -= 1;
        }
    }

    /// `true` iff the phase is exactly 0 (mod 2π).
    pub fn is_zero(&self) -> bool {
        self.num == 0 && self.atoms.is_empty()
    }

    /// `true` iff the phase is exactly π.
    pub fn is_pi(&self) -> bool {
        self.num == 1 && self.k == 0 && self.atoms.is_empty()
    }

    /// `true` iff the phase is exactly 0 or π (a Pauli spider).
    pub fn is_pauli(&self) -> bool {
        self.k == 0 && self.atoms.is_empty()
    }

    /// `Some(+1)` for exactly π/2, `Some(−1)` for exactly 3π/2 (= −π/2)
    /// — the proper-Clifford spiders local complementation removes —
    /// `None` otherwise.
    pub fn half_turn_sign(&self) -> Option<i32> {
        if self.k == 1 && self.atoms.is_empty() {
            match self.num {
                1 => Some(1),
                3 => Some(-1),
                _ => unreachable!("normalized k=1 numerator is odd mod 4"),
            }
        } else {
            None
        }
    }

    /// The nearest `f64` radian value in `[0, 2π)` — **lossy**, for
    /// display and cross-checks against the float-based tiers only;
    /// never used inside the rewrite engine.
    pub fn to_radians(&self) -> f64 {
        let dyadic = self.num as f64 * PI / f64::from(1u32 << self.k.min(31));
        let atoms: f64 = self
            .atoms
            .iter()
            .map(|(&bits, &c)| c as f64 * f64::from_bits(bits))
            .sum();
        (dyadic + atoms).rem_euclid(2.0 * PI)
    }
}

impl Add for Phase {
    type Output = Phase;

    fn add(mut self, rhs: Phase) -> Phase {
        self += rhs;
        self
    }
}

impl AddAssign for Phase {
    fn add_assign(&mut self, rhs: Phase) {
        let k = self.k.max(rhs.k);
        let num = (self.num << (k - self.k)) + (rhs.num << (k - rhs.k));
        self.num = num.rem_euclid(2i64 << k);
        self.k = k;
        self.reduce();
        for (bits, c) in rhs.atoms {
            let entry = self.atoms.entry(bits).or_insert(0);
            *entry += c;
            if *entry == 0 {
                self.atoms.remove(&bits);
            }
        }
    }
}

impl Neg for Phase {
    type Output = Phase;

    fn neg(mut self) -> Phase {
        self.num = (-self.num).rem_euclid(2i64 << self.k);
        self.reduce();
        for c in self.atoms.values_mut() {
            *c = -*c;
        }
        self
    }
}

impl Sum for Phase {
    fn sum<I: Iterator<Item = Phase>>(iter: I) -> Phase {
        iter.fold(Phase::ZERO, Add::add)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut first = true;
        if self.num != 0 {
            first = false;
            match (self.num, self.k) {
                (1, 0) => f.write_str("π")?,
                (1, k) => write!(f, "π/{}", 1u64 << k)?,
                (n, 0) => write!(f, "{n}π")?,
                (n, k) => write!(f, "{n}π/{}", 1u64 << k)?,
            }
        }
        for (&bits, &c) in &self.atoms {
            let value = f64::from_bits(bits);
            if first {
                first = false;
                if c == 1 {
                    write!(f, "{value}")?;
                } else if c == -1 {
                    write!(f, "-{value}")?;
                } else {
                    write!(f, "{c}·{value}")?;
                }
            } else if c == 1 {
                write!(f, " + {value}")?;
            } else if c == -1 {
                write!(f, " - {value}")?;
            } else if c > 0 {
                write!(f, " + {c}·{value}")?;
            } else {
                write!(f, " - {}·{value}", -c)?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Phase({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, TAU};

    #[test]
    fn structural_constants_classify_onto_the_dyadic_grid() {
        assert_eq!(Phase::from_radians(PI), Phase::pi());
        assert_eq!(Phase::from_radians(FRAC_PI_2), Phase::dyadic(1, 1));
        assert_eq!(Phase::from_radians(FRAC_PI_4), Phase::dyadic(1, 2));
        assert_eq!(Phase::from_radians(-FRAC_PI_4), Phase::dyadic(7, 2));
        assert_eq!(Phase::from_radians(PI / 64.0), Phase::dyadic(1, 6));
        assert!(Phase::from_radians(0.0).is_zero());
        assert!(Phase::from_radians(-0.0).is_zero());
        assert!(Phase::from_radians(TAU).is_zero());
    }

    #[test]
    fn near_grid_angles_are_atoms_not_snapped() {
        // One ULP off π/4: the float tier's 1e-9 window would have
        // snapped it; the exact tier keeps it symbolic.
        let off = f64::from_bits(FRAC_PI_4.to_bits() + 1);
        let p = Phase::from_radians(off);
        assert_ne!(p, Phase::dyadic(1, 2));
        assert!(!p.is_pauli());
        assert!((p + Phase::from_radians(-off)).is_zero());
    }

    #[test]
    fn dyadic_arithmetic_is_exact_mod_two_pi() {
        let t = Phase::dyadic(1, 2);
        let sum: Phase = std::iter::repeat_n(t.clone(), 8).sum();
        assert!(sum.is_zero());
        let seven: Phase = std::iter::repeat_n(t, 7).sum();
        assert_eq!(seven, Phase::dyadic(7, 2));
        assert_eq!(-Phase::dyadic(1, 2), Phase::dyadic(7, 2));
        assert_eq!(
            Phase::dyadic(1, 0) + Phase::dyadic(1, 1),
            Phase::dyadic(3, 1)
        );
    }

    #[test]
    fn predicates_are_integer_decisions() {
        assert!(Phase::ZERO.is_zero());
        assert!(Phase::ZERO.is_pauli());
        assert!(Phase::pi().is_pi());
        assert!(Phase::pi().is_pauli());
        assert!(!Phase::dyadic(1, 1).is_pauli());
        assert_eq!(Phase::dyadic(1, 1).half_turn_sign(), Some(1));
        assert_eq!(Phase::dyadic(3, 1).half_turn_sign(), Some(-1));
        assert_eq!(Phase::dyadic(-1, 1).half_turn_sign(), Some(-1));
        assert_eq!(Phase::dyadic(1, 2).half_turn_sign(), None);
        assert_eq!(Phase::pi().half_turn_sign(), None);
        assert_eq!((Phase::from_radians(0.7)).half_turn_sign(), None);
    }

    #[test]
    fn atoms_cancel_exactly_and_scale_by_integers() {
        let a = Phase::from_radians(0.3);
        let b = Phase::from_radians(-0.3);
        assert!((a.clone() + b).is_zero());
        let doubled = a.clone() + a.clone();
        assert!(!doubled.is_zero());
        assert!((doubled + Phase::from_radians(-0.3) + Phase::from_radians(-0.3)).is_zero());
        // Mixed dyadic + atom: the parts cancel independently.
        let mixed = Phase::dyadic(1, 2) + a;
        assert!(!mixed.is_zero());
        assert!(!mixed.is_pauli());
        assert!((mixed + Phase::dyadic(-1, 2) + Phase::from_radians(-0.3)).is_zero());
    }

    #[test]
    fn distinct_angles_do_not_alias() {
        // 0.1 + 0.2 is formally ≠ 0.3 even though the reals are ~equal:
        // exactness over completeness.
        let sum = Phase::from_radians(0.1) + Phase::from_radians(0.2);
        assert_ne!(sum, Phase::from_radians(0.1 + 0.2));
        assert!(!(sum + (-Phase::from_radians(0.30000000000000004))).is_zero());
    }

    #[test]
    fn to_radians_round_trips_within_float_error() {
        for p in [
            Phase::dyadic(1, 0),
            Phase::dyadic(3, 1),
            Phase::dyadic(5, 3),
            Phase::from_radians(1.234),
            Phase::dyadic(1, 2) + Phase::from_radians(0.5),
        ] {
            let r = p.to_radians();
            assert!((0.0..TAU).contains(&r), "{p}: {r}");
        }
        assert!((Phase::dyadic(1, 2).to_radians() - FRAC_PI_4).abs() < 1e-15);
        assert!((Phase::from_radians(-0.25).to_radians() - (TAU - 0.25)).abs() < 1e-15);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Phase::ZERO.to_string(), "0");
        assert_eq!(Phase::pi().to_string(), "π");
        assert_eq!(Phase::dyadic(1, 2).to_string(), "π/4");
        assert_eq!(Phase::dyadic(3, 1).to_string(), "3π/2");
        assert_eq!(Phase::from_radians(0.5).to_string(), "0.5");
        assert_eq!(Phase::from_radians(-0.5).to_string(), "-0.5");
        assert_eq!(
            (Phase::pi() + Phase::from_radians(0.5)).to_string(),
            "π + 0.5"
        );
        assert_eq!(
            (Phase::from_radians(-0.5) + Phase::from_radians(-0.5)).to_string(),
            "-2·0.5"
        );
    }
}
