//! Circuit → ZX-diagram translation for the full workspace gate set.
//!
//! Each wire carries a growing chain of spiders; a per-wire "pending
//! Hadamard" flag absorbs `H` gates into the kind of the next edge
//! instead of materializing Hadamard boxes as vertices. The primitive
//! vocabulary is tiny — Z-phase spiders (`P(α)` semantics), X-phase
//! spiders, `H` toggles, `CX` (Z spider plain-connected to X spider) and
//! `CZ` (two Z spiders on a Hadamard edge) — and every other gate lowers
//! onto it by an *exact* textbook decomposition (exact up to global
//! phase, which the equivalence relation quotients out anyway):
//!
//! * `Ry(θ) = S · Rx(θ) · S†`, `U(θ,φ,λ) = P(φ) · Ry(θ) · P(λ)`;
//! * `CY = S(t) · CX · S†(t)`, `CH = Ry(π/4)(t) · CZ · Ry(−π/4)(t)`;
//! * `CP(λ) = P(λ/2)(c) · P(λ/2)(t) · CX · P(−λ/2)(t) · CX`, and
//!   `CRz(λ) = P(−λ/2)(c) · CP(λ)`;
//! * `CCX` via the standard 7-T decomposition, `CSwap` via `CCX`
//!   conjugated by `CX`, `Swap` as three `CX`;
//! * `Mcx(k)` as `H(t) · C^k Z · H(t)`, with the multi-controlled phase
//!   expanded over the `2^{k+1}−1` parity terms of the Fourier identity
//!   `x₁⋯x_m = 2^{1−m} Σ_{∅≠S} (−1)^{|S|+1} (⊕_{i∈S} x_i)` — exact but
//!   exponential in `k`, so translation refuses more than
//!   [`MAX_MCX_CONTROLS`] controls and the verifier falls through to a
//!   lower tier.

use super::graph::{Diagram, EdgeKind, VKind};
use qcir::{Circuit, Gate};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// Largest `Mcx` control count the parity-term expansion accepts before
/// the exponential gate count stops being worth it.
pub const MAX_MCX_CONTROLS: usize = 6;

/// Translation state: the diagram under construction plus each wire's
/// frontier vertex and pending-Hadamard edge kind.
struct Builder {
    diagram: Diagram,
    front: Vec<usize>,
    pending: Vec<EdgeKind>,
}

impl Builder {
    fn new(n: usize) -> Self {
        let diagram = Diagram::new(n);
        Builder {
            front: diagram.inputs().to_vec(),
            pending: vec![EdgeKind::Plain; n],
            diagram,
        }
    }

    /// Appends a spider to wire `w`, consuming the pending edge kind.
    fn place(&mut self, w: usize, kind: VKind, phase: f64) -> usize {
        let v = self.diagram.add_vertex(kind, phase);
        self.diagram.connect(self.front[w], v, self.pending[w]);
        self.front[w] = v;
        self.pending[w] = EdgeKind::Plain;
        v
    }

    /// `P(α)` = diag(1, e^{iα}): a Z spider with phase α.
    fn zphase(&mut self, w: usize, phase: f64) {
        self.place(w, VKind::Z, phase);
    }

    /// `X^{α/π}` up to phase: an X spider with phase α.
    fn xphase(&mut self, w: usize, phase: f64) {
        self.place(w, VKind::X, phase);
    }

    /// Hadamard: toggles the wire's pending edge kind (H² = I).
    fn had(&mut self, w: usize) {
        self.pending[w] = self.pending[w].toggled();
    }

    /// `CX`: phase-free Z spider on the control, X spider on the
    /// target, plain edge between them.
    fn cx(&mut self, c: usize, t: usize) {
        let zc = self.place(c, VKind::Z, 0.0);
        let xt = self.place(t, VKind::X, 0.0);
        self.diagram.connect(zc, xt, EdgeKind::Plain);
    }

    /// `CZ`: two phase-free Z spiders on a Hadamard edge.
    fn cz(&mut self, a: usize, b: usize) {
        let za = self.place(a, VKind::Z, 0.0);
        let zb = self.place(b, VKind::Z, 0.0);
        self.diagram.connect(za, zb, EdgeKind::Had);
    }

    /// `Ry(θ) = S · Rx(θ) · S†` (applied right to left).
    fn ry(&mut self, w: usize, theta: f64) {
        self.zphase(w, -FRAC_PI_2);
        self.xphase(w, theta);
        self.zphase(w, FRAC_PI_2);
    }

    /// Multi-controlled Z over `wires` via the parity-term expansion.
    fn mcz(&mut self, wires: &[usize]) {
        let m = wires.len();
        let scale = PI / f64::from(1u32 << (m - 1));
        for mask in 1u32..(1 << m) {
            let subset: Vec<usize> = (0..m)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| wires[i])
                .collect();
            let sign = if subset.len() % 2 == 1 { 1.0 } else { -1.0 };
            let (&last, rest) = subset.split_last().expect("non-empty subset");
            for &w in rest {
                self.cx(w, last);
            }
            self.zphase(last, sign * scale);
            for &w in rest.iter().rev() {
                self.cx(w, last);
            }
        }
    }

    /// Lowers one gate onto the primitive vocabulary. `None` only for
    /// `Mcx` beyond [`MAX_MCX_CONTROLS`] controls.
    fn gate(&mut self, gate: &Gate, q: &[usize]) -> Option<()> {
        match gate {
            Gate::I => {}
            Gate::X => self.xphase(q[0], PI),
            Gate::Y => {
                // Y = i·X·Z: Z first, then X.
                self.zphase(q[0], PI);
                self.xphase(q[0], PI);
            }
            Gate::Z => self.zphase(q[0], PI),
            Gate::H => self.had(q[0]),
            Gate::S => self.zphase(q[0], FRAC_PI_2),
            Gate::Sdg => self.zphase(q[0], -FRAC_PI_2),
            Gate::T => self.zphase(q[0], FRAC_PI_4),
            Gate::Tdg => self.zphase(q[0], -FRAC_PI_4),
            Gate::Sx => self.xphase(q[0], FRAC_PI_2),
            Gate::Sxdg => self.xphase(q[0], -FRAC_PI_2),
            Gate::Rx(a) => self.xphase(q[0], *a),
            Gate::Ry(a) => self.ry(q[0], *a),
            Gate::Rz(a) | Gate::P(a) => self.zphase(q[0], *a),
            Gate::U(theta, phi, lambda) => {
                self.zphase(q[0], *lambda);
                self.ry(q[0], *theta);
                self.zphase(q[0], *phi);
            }
            Gate::CX => self.cx(q[0], q[1]),
            Gate::CY => {
                self.zphase(q[1], -FRAC_PI_2);
                self.cx(q[0], q[1]);
                self.zphase(q[1], FRAC_PI_2);
            }
            Gate::CZ => self.cz(q[0], q[1]),
            Gate::CH => {
                self.ry(q[1], -FRAC_PI_4);
                self.cz(q[0], q[1]);
                self.ry(q[1], FRAC_PI_4);
            }
            Gate::CP(a) => self.cp(q[0], q[1], *a),
            Gate::CRz(a) => {
                self.zphase(q[0], -a / 2.0);
                self.cp(q[0], q[1], *a);
            }
            Gate::Swap => {
                self.cx(q[0], q[1]);
                self.cx(q[1], q[0]);
                self.cx(q[0], q[1]);
            }
            Gate::CCX => self.ccx(q[0], q[1], q[2]),
            Gate::CSwap => {
                self.cx(q[2], q[1]);
                self.ccx(q[0], q[1], q[2]);
                self.cx(q[2], q[1]);
            }
            Gate::Mcx(_) => {
                let (&t, controls) = q.split_last().expect("mcx has a target");
                if controls.len() > MAX_MCX_CONTROLS {
                    return None;
                }
                self.had(t);
                let mut wires = controls.to_vec();
                wires.push(t);
                self.mcz(&wires);
                self.had(t);
            }
        }
        Some(())
    }

    /// `CP(λ)` = `P(λ/2)(c) · P(λ/2)(t) · CX · P(−λ/2)(t) · CX`.
    fn cp(&mut self, c: usize, t: usize, lambda: f64) {
        self.zphase(c, lambda / 2.0);
        self.zphase(t, lambda / 2.0);
        self.cx(c, t);
        self.zphase(t, -lambda / 2.0);
        self.cx(c, t);
    }

    /// The standard exact 7-T Toffoli decomposition.
    fn ccx(&mut self, c0: usize, c1: usize, t: usize) {
        self.had(t);
        self.cx(c1, t);
        self.zphase(t, -FRAC_PI_4);
        self.cx(c0, t);
        self.zphase(t, FRAC_PI_4);
        self.cx(c1, t);
        self.zphase(t, -FRAC_PI_4);
        self.cx(c0, t);
        self.zphase(c1, FRAC_PI_4);
        self.zphase(t, FRAC_PI_4);
        self.had(t);
        self.cx(c0, c1);
        self.zphase(c0, FRAC_PI_4);
        self.zphase(c1, -FRAC_PI_4);
        self.cx(c0, c1);
    }

    /// Closes every wire onto its output boundary.
    fn finish(mut self) -> Diagram {
        for w in 0..self.front.len() {
            let out = self.diagram.outputs()[w];
            let kind = self.pending[w];
            let front = self.front[w];
            self.diagram.connect(front, out, kind);
        }
        self.diagram
    }
}

/// Translates a circuit into an open ZX diagram. Returns `None` iff the
/// circuit contains an `Mcx` with more than [`MAX_MCX_CONTROLS`]
/// controls (the only gate without a polynomial-size exact lowering
/// here).
pub(crate) fn diagram_of(circuit: &Circuit) -> Option<Diagram> {
    let mut b = Builder::new(circuit.num_qubits() as usize);
    for inst in circuit.iter() {
        let q: Vec<usize> = inst.qubits().iter().map(|w| w.index()).collect();
        b.gate(inst.gate(), &q)?;
    }
    Some(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_circuit_translates_to_identity_wires() {
        let d = diagram_of(&Circuit::new(3)).unwrap();
        assert!(d.is_identity());
    }

    #[test]
    fn double_hadamard_is_identity_without_rewriting() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert!(diagram_of(&c).unwrap().is_identity());
    }

    #[test]
    fn single_hadamard_leaves_a_hadamard_wire() {
        let mut c = Circuit::new(1);
        c.h(0);
        let d = diagram_of(&c).unwrap();
        assert!(!d.is_identity());
        assert_eq!(d.spider_count(), 0);
    }

    #[test]
    fn cx_builds_connected_spider_pair() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let d = diagram_of(&c).unwrap();
        assert_eq!(d.spider_count(), 2);
    }

    #[test]
    fn wide_mcx_is_refused() {
        let mut c = Circuit::new(9);
        c.mcx(&[0, 1, 2, 3, 4, 5, 6], 8);
        assert!(diagram_of(&c).is_none());
        let mut c = Circuit::new(8);
        c.mcx(&[0, 1, 2, 3, 4, 5], 7);
        assert!(diagram_of(&c).is_some());
    }

    #[test]
    fn spider_counts_scale_with_gates() {
        let mut c = Circuit::new(3);
        c.t(0).cx(0, 1).ccx(0, 1, 2);
        let d = diagram_of(&c).unwrap();
        // 1 (T) + 2 (CX) + 19 (CCX: 6 CX + 7 phases; H absorbed into edges).
        assert_eq!(d.spider_count(), 1 + 2 + 19);
    }
}
