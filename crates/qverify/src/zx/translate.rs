//! Circuit → ZX-diagram translation for the full workspace gate set.
//!
//! Each wire carries a growing chain of spiders; a per-wire "pending
//! Hadamard" flag absorbs `H` gates into the kind of the next edge
//! instead of materializing Hadamard boxes as vertices. The primitive
//! vocabulary is tiny — Z-phase spiders (`P(α)` semantics), X-phase
//! spiders, `H` toggles, `CX` (Z spider plain-connected to X spider) and
//! `CZ` (two Z spiders on a Hadamard edge) — and every other gate lowers
//! onto it by an *exact* textbook decomposition (exact up to global
//! phase, which the equivalence relation quotients out anyway):
//!
//! * `Ry(θ) = S · Rx(θ) · S†`, `U(θ,φ,λ) = P(φ) · Ry(θ) · P(λ)`;
//! * `CY = S(t) · CX · S†(t)`, `CH = Ry(π/4)(t) · CZ · Ry(−π/4)(t)`;
//! * `CP(λ) = P(λ/2)(c) · P(λ/2)(t) · CX · P(−λ/2)(t) · CX`, and
//!   `CRz(λ) = P(−λ/2)(c) · CP(λ)`;
//! * `CCX` via the standard 7-T decomposition, `CSwap` via `CCX`
//!   conjugated by `CX`, `Swap` as three `CX`;
//! * `Mcx(k)` as `H(t) · C^k Z · H(t)`, with the multi-controlled phase
//!   expanded over the `2^{k+1}−1` parity terms of the Fourier identity
//!   `x₁⋯x_m = 2^{1−m} Σ_{∅≠S} (−1)^{|S|+1} (⊕_{i∈S} x_i)` — exact but
//!   exponential in `k`, so translation refuses more than
//!   [`MAX_MCX_CONTROLS`] controls and the verifier falls through to a
//!   lower tier.
//!
//! Every *structural* phase — Pauli π, Clifford ±π/2, the T-ladder
//! ±π/4 of the `CCX` lowering, the `±π/2^{m−1}` parity-term angles of
//! the `Mcx` expansion — is constructed **symbolically** as an exact
//! dyadic [`Phase`], never routed through a float. Only the free-angle
//! rotation parameters (`Rx`/`Ry`/`Rz`/`P`/`U`/`CP`/`CRz`) pass through
//! [`Phase::from_radians`], which classifies bit-exact grid values and
//! keeps everything else as an exact symbolic atom. Halvings of raw
//! parameters (`λ/2` in the `CP`/`CRz` lowerings) happen on the `f64`
//! *before* construction — a power-of-two scaling is exact in binary
//! floating point, so mirrored `λ/2` atoms still cancel exactly.

use super::graph::{Diagram, EdgeKind, VKind};
use super::phase::Phase;
use qcir::{Circuit, Gate};

/// Largest `Mcx` control count the parity-term expansion accepts before
/// the exponential gate count stops being worth it.
pub const MAX_MCX_CONTROLS: usize = 6;

/// Translation state: the diagram under construction plus each wire's
/// frontier vertex and pending-Hadamard edge kind.
struct Builder {
    diagram: Diagram,
    front: Vec<usize>,
    pending: Vec<EdgeKind>,
}

impl Builder {
    fn new(n: usize) -> Self {
        let diagram = Diagram::new(n);
        Builder {
            front: diagram.inputs().to_vec(),
            pending: vec![EdgeKind::Plain; n],
            diagram,
        }
    }

    /// Appends a spider to wire `w`, consuming the pending edge kind.
    fn place(&mut self, w: usize, kind: VKind, phase: Phase) -> usize {
        let v = self.diagram.add_vertex(kind, phase);
        self.diagram.connect(self.front[w], v, self.pending[w]);
        self.front[w] = v;
        self.pending[w] = EdgeKind::Plain;
        v
    }

    /// `P(α)` = diag(1, e^{iα}): a Z spider with phase α.
    fn zphase(&mut self, w: usize, phase: Phase) {
        self.place(w, VKind::Z, phase);
    }

    /// `X^{α/π}` up to phase: an X spider with phase α.
    fn xphase(&mut self, w: usize, phase: Phase) {
        self.place(w, VKind::X, phase);
    }

    /// Hadamard: toggles the wire's pending edge kind (H² = I).
    fn had(&mut self, w: usize) {
        self.pending[w] = self.pending[w].toggled();
    }

    /// `CX`: phase-free Z spider on the control, X spider on the
    /// target, plain edge between them.
    fn cx(&mut self, c: usize, t: usize) {
        let zc = self.place(c, VKind::Z, Phase::ZERO);
        let xt = self.place(t, VKind::X, Phase::ZERO);
        self.diagram.connect(zc, xt, EdgeKind::Plain);
    }

    /// `CZ`: two phase-free Z spiders on a Hadamard edge.
    fn cz(&mut self, a: usize, b: usize) {
        let za = self.place(a, VKind::Z, Phase::ZERO);
        let zb = self.place(b, VKind::Z, Phase::ZERO);
        self.diagram.connect(za, zb, EdgeKind::Had);
    }

    /// `Ry(θ) = S · Rx(θ) · S†` (applied right to left).
    fn ry(&mut self, w: usize, theta: Phase) {
        self.zphase(w, Phase::dyadic(-1, 1));
        self.xphase(w, theta);
        self.zphase(w, Phase::dyadic(1, 1));
    }

    /// Multi-controlled Z over `wires` via the parity-term expansion.
    /// The per-term angle `±π/2^{m−1}` is an exact dyadic phase.
    fn mcz(&mut self, wires: &[usize]) {
        let m = wires.len();
        for mask in 1u32..(1 << m) {
            let subset: Vec<usize> = (0..m)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| wires[i])
                .collect();
            let sign = if subset.len() % 2 == 1 { 1 } else { -1 };
            let (&last, rest) = subset.split_last().expect("non-empty subset");
            for &w in rest {
                self.cx(w, last);
            }
            self.zphase(last, Phase::dyadic(sign, m as u32 - 1));
            for &w in rest.iter().rev() {
                self.cx(w, last);
            }
        }
    }

    /// Lowers one gate onto the primitive vocabulary. `None` only for
    /// `Mcx` beyond [`MAX_MCX_CONTROLS`] controls.
    fn gate(&mut self, gate: &Gate, q: &[usize]) -> Option<()> {
        match gate {
            Gate::I => {}
            Gate::X => self.xphase(q[0], Phase::pi()),
            Gate::Y => {
                // Y = i·X·Z: Z first, then X.
                self.zphase(q[0], Phase::pi());
                self.xphase(q[0], Phase::pi());
            }
            Gate::Z => self.zphase(q[0], Phase::pi()),
            Gate::H => self.had(q[0]),
            Gate::S => self.zphase(q[0], Phase::dyadic(1, 1)),
            Gate::Sdg => self.zphase(q[0], Phase::dyadic(-1, 1)),
            Gate::T => self.zphase(q[0], Phase::dyadic(1, 2)),
            Gate::Tdg => self.zphase(q[0], Phase::dyadic(-1, 2)),
            Gate::Sx => self.xphase(q[0], Phase::dyadic(1, 1)),
            Gate::Sxdg => self.xphase(q[0], Phase::dyadic(-1, 1)),
            Gate::Rx(a) => self.xphase(q[0], Phase::from_radians(*a)),
            Gate::Ry(a) => self.ry(q[0], Phase::from_radians(*a)),
            Gate::Rz(a) | Gate::P(a) => self.zphase(q[0], Phase::from_radians(*a)),
            Gate::U(theta, phi, lambda) => {
                self.zphase(q[0], Phase::from_radians(*lambda));
                self.ry(q[0], Phase::from_radians(*theta));
                self.zphase(q[0], Phase::from_radians(*phi));
            }
            Gate::CX => self.cx(q[0], q[1]),
            Gate::CY => {
                self.zphase(q[1], Phase::dyadic(-1, 1));
                self.cx(q[0], q[1]);
                self.zphase(q[1], Phase::dyadic(1, 1));
            }
            Gate::CZ => self.cz(q[0], q[1]),
            Gate::CH => {
                self.ry(q[1], Phase::dyadic(-1, 2));
                self.cz(q[0], q[1]);
                self.ry(q[1], Phase::dyadic(1, 2));
            }
            Gate::CP(a) => self.cp(q[0], q[1], *a),
            Gate::CRz(a) => {
                self.zphase(q[0], Phase::from_radians(-a / 2.0));
                self.cp(q[0], q[1], *a);
            }
            Gate::Swap => {
                self.cx(q[0], q[1]);
                self.cx(q[1], q[0]);
                self.cx(q[0], q[1]);
            }
            Gate::CCX => self.ccx(q[0], q[1], q[2]),
            Gate::CSwap => {
                self.cx(q[2], q[1]);
                self.ccx(q[0], q[1], q[2]);
                self.cx(q[2], q[1]);
            }
            Gate::Mcx(_) => {
                let (&t, controls) = q.split_last().expect("mcx has a target");
                if controls.len() > MAX_MCX_CONTROLS {
                    return None;
                }
                self.had(t);
                let mut wires = controls.to_vec();
                wires.push(t);
                self.mcz(&wires);
                self.had(t);
            }
        }
        Some(())
    }

    /// `CP(λ)` = `P(λ/2)(c) · P(λ/2)(t) · CX · P(−λ/2)(t) · CX`. The
    /// halving happens on the raw `f64` (exact power-of-two scaling),
    /// so a mirrored `CP(−λ)` produces the exactly-canceling atoms.
    fn cp(&mut self, c: usize, t: usize, lambda: f64) {
        let half = Phase::from_radians(lambda / 2.0);
        let neg_half = Phase::from_radians(-lambda / 2.0);
        self.zphase(c, half.clone());
        self.zphase(t, half);
        self.cx(c, t);
        self.zphase(t, neg_half);
        self.cx(c, t);
    }

    /// The standard exact 7-T Toffoli decomposition (±π/4 phases are
    /// exact dyadic quarter-turns).
    fn ccx(&mut self, c0: usize, c1: usize, t: usize) {
        let t_up = || Phase::dyadic(1, 2);
        let t_dn = || Phase::dyadic(-1, 2);
        self.had(t);
        self.cx(c1, t);
        self.zphase(t, t_dn());
        self.cx(c0, t);
        self.zphase(t, t_up());
        self.cx(c1, t);
        self.zphase(t, t_dn());
        self.cx(c0, t);
        self.zphase(c1, t_up());
        self.zphase(t, t_up());
        self.had(t);
        self.cx(c0, c1);
        self.zphase(c0, t_up());
        self.zphase(c1, t_dn());
        self.cx(c0, c1);
    }

    /// Closes every wire onto its output boundary.
    fn finish(mut self) -> Diagram {
        for w in 0..self.front.len() {
            let out = self.diagram.outputs()[w];
            let kind = self.pending[w];
            let front = self.front[w];
            self.diagram.connect(front, out, kind);
        }
        self.diagram
    }
}

/// Translates a circuit into an open ZX diagram. Returns `None` iff the
/// circuit contains an `Mcx` with more than [`MAX_MCX_CONTROLS`]
/// controls (the only gate without a polynomial-size exact lowering
/// here).
pub(crate) fn diagram_of(circuit: &Circuit) -> Option<Diagram> {
    let mut b = Builder::new(circuit.num_qubits() as usize);
    for inst in circuit.iter() {
        let q: Vec<usize> = inst.qubits().iter().map(|w| w.index()).collect();
        b.gate(inst.gate(), &q)?;
    }
    Some(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_circuit_translates_to_identity_wires() {
        let d = diagram_of(&Circuit::new(3)).unwrap();
        assert!(d.is_identity());
    }

    #[test]
    fn double_hadamard_is_identity_without_rewriting() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert!(diagram_of(&c).unwrap().is_identity());
    }

    #[test]
    fn single_hadamard_leaves_a_hadamard_wire() {
        let mut c = Circuit::new(1);
        c.h(0);
        let d = diagram_of(&c).unwrap();
        assert!(!d.is_identity());
        assert_eq!(d.spider_count(), 0);
    }

    #[test]
    fn cx_builds_connected_spider_pair() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let d = diagram_of(&c).unwrap();
        assert_eq!(d.spider_count(), 2);
    }

    #[test]
    fn wide_mcx_is_refused() {
        let mut c = Circuit::new(9);
        c.mcx(&[0, 1, 2, 3, 4, 5, 6], 8);
        assert!(diagram_of(&c).is_none());
        let mut c = Circuit::new(8);
        c.mcx(&[0, 1, 2, 3, 4, 5], 7);
        assert!(diagram_of(&c).is_some());
    }

    #[test]
    fn spider_counts_scale_with_gates() {
        let mut c = Circuit::new(3);
        c.t(0).cx(0, 1).ccx(0, 1, 2);
        let d = diagram_of(&c).unwrap();
        // 1 (T) + 2 (CX) + 19 (CCX: 6 CX + 7 phases; H absorbed into edges).
        assert_eq!(d.spider_count(), 1 + 2 + 19);
    }

    #[test]
    fn structural_phases_are_exact_dyadics() {
        // A T spider carries exactly π/4 — dyadic, not an atom — so
        // eight of them fused would cancel exactly.
        let mut c = Circuit::new(1);
        c.t(0);
        let d = diagram_of(&c).unwrap();
        let spider = (0..d.slots())
            .find(|&v| d.is_alive(v) && d.vkind(v) == VKind::Z)
            .unwrap();
        assert_eq!(*d.phase(spider), Phase::dyadic(1, 2));
    }

    #[test]
    fn rotation_parameters_become_symbolic_atoms() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0);
        let d = diagram_of(&c).unwrap();
        let spider = (0..d.slots())
            .find(|&v| d.is_alive(v) && d.vkind(v) == VKind::Z)
            .unwrap();
        assert_eq!(*d.phase(spider), Phase::from_radians(0.3));
        assert!(!d.phase(spider).is_pauli());
    }
}
