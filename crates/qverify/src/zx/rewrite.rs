//! The ZX rewrite engine: sound, terminating graph simplification.
//!
//! The engine drives a translated miter diagram toward the bare-wire
//! identity with standard ZX-calculus equalities, each holding up to a
//! non-zero scalar:
//!
//! 1. **color change** — every X spider becomes a Z spider with all
//!    incident edges toggled (run once up front; nothing reintroduces X
//!    spiders);
//! 2. **spider fusion** — Z spiders joined by a plain edge merge, adding
//!    phases (parallel-edge fallout resolves through the Hopf law:
//!    parallel Hadamard edges cancel mod 2 — "Hadamard-edge
//!    cancellation");
//! 3. **identity removal** — a phase-free degree-2 Z spider drops out,
//!    its two edges composing (H·H = wire);
//! 4. **local complementation** — an interior ±π/2 spider is removed
//!    after complementing its neighborhood and shifting ∓π/2 onto each
//!    neighbor;
//! 5. **pivoting** — an interior adjacent pair of Pauli (0/π) spiders is
//!    removed after complementing between the three neighborhood classes
//!    and exchanging phases;
//! 6. **phase-gadget normalization / fusion / elimination** — gadgets
//!    over identical target sets merge, and a zero-phase gadget
//!    disappears (see [`gadget_pass`]);
//! 7. **boundary pivot** and **pivot-gadget** — vertex-*creating*
//!    enablers that unblock pivoting next to boundaries and next to
//!    non-Pauli phases; metered so they cannot ping-pong forever;
//! 8. **phase-polynomial completion** — when everything else stalls,
//!    gadget families are read as a parity phase polynomial and removed
//!    wholesale if the polynomial is *pointwise* zero mod 2π (see
//!    [`completion_pass`]). This is what closes `Mcx(k ≥ 3)` self-pairs,
//!    whose fused parity gadgets carry doubled non-Clifford phases that
//!    cancel only jointly, never gadget-by-gadget.
//!
//! Every phase comparison in every guard is an exact integer decision on
//! [`Phase`] values — the engine contains no float tolerance at all.
//!
//! Rules 1–6 strictly shrink the diagram, rule 8 strictly shrinks
//! (vertices die, non-zero phases become zero), and the rule-7 meter is
//! finite, so [`simplify`] terminates unconditionally. Together rules
//! 1–5 are the Duncan–Kissinger–Perdrix–van de Wetering interior
//! Clifford simplification; 6–8 extend it with the phase-gadget moves
//! that let mirrored non-Clifford phases (`T`/`T†`, `CCX`/`Mcx` pairs)
//! cancel. The rule set is deliberately not complete for every
//! equivalent pair: the engine's contract is that a full reduction to
//! [`Diagram::is_identity`] certifies equivalence, while a stall
//! certifies nothing — the caller must fall through to witness
//! extraction (whose replay is independently sound) or to another tier,
//! and must never read a stall as inequivalence.

use super::graph::{Diagram, EdgeKind, VKind};
use super::phase::Phase;

// Rewrite-rule firing counters (one tick per pass that made progress)
// plus exhaustion markers for the gadget-move meter and the round
// budget — the two ways a reduction can be cut off rather than stall
// naturally.
static RULE_FUSE: qobs::Counter = qobs::Counter::new("qverify.zx.rule.fuse");
static RULE_IDENTITY: qobs::Counter = qobs::Counter::new("qverify.zx.rule.identity");
static RULE_LOCAL_COMPLEMENT: qobs::Counter =
    qobs::Counter::new("qverify.zx.rule.local_complement");
static RULE_PIVOT: qobs::Counter = qobs::Counter::new("qverify.zx.rule.pivot");
static RULE_GADGET: qobs::Counter = qobs::Counter::new("qverify.zx.rule.gadget");
static RULE_BOUNDARY_PIVOT: qobs::Counter = qobs::Counter::new("qverify.zx.rule.boundary_pivot");
static RULE_PIVOT_GADGET: qobs::Counter = qobs::Counter::new("qverify.zx.rule.pivot_gadget");
static RULE_COMPLETION: qobs::Counter = qobs::Counter::new("qverify.zx.rule.completion");
static METER_EXHAUSTED: qobs::Counter = qobs::Counter::new("qverify.zx.meter_exhausted");
static BUDGET_EXHAUSTED: qobs::Counter = qobs::Counter::new("qverify.zx.budget_exhausted");

/// Most variables a phase-polynomial component may span before the
/// pointwise check (2^vars exact evaluations) is considered too
/// expensive and the component is skipped — skipping only stalls, which
/// is always safe. The widest accepted `Mcx` parity family spans
/// [`super::MAX_MCX_CONTROLS`]` + 1 = 7` variables, well inside.
pub(crate) const COMPLETION_MAX_VARS: usize = 12;

/// Runs the rewrite loop to a fixpoint.
///
/// The first five passes strictly shrink the vertex count, so they
/// terminate on their own. The two vertex-*creating* moves (boundary
/// pivot, pivot-gadget) are metered: extracting every original phase
/// into a gadget needs at most one move per initial spider, so once the
/// meter runs out further firing is unproductive ping-pong and the loop
/// is cut off. Phase-polynomial completion runs last — only when every
/// cheaper rule has nothing left — and strictly shrinks when it fires.
/// Exhausting the meter (or the belt-and-braces round budget) just
/// stalls the reduction, which is always safe.
pub(crate) fn simplify(d: &mut Diagram) {
    color_change(d);
    let mut gadget_moves = d.spider_count() + 16;
    let budget = 100 + 8 * d.slots();
    let mut stalled = false;
    for _ in 0..budget {
        if fuse_pass(d) {
            RULE_FUSE.incr();
            continue;
        }
        if identity_pass(d) {
            RULE_IDENTITY.incr();
            continue;
        }
        if local_complement_pass(d) {
            RULE_LOCAL_COMPLEMENT.incr();
            continue;
        }
        if pivot_pass(d) {
            RULE_PIVOT.incr();
            continue;
        }
        if gadget_pass(d) {
            RULE_GADGET.incr();
            continue;
        }
        if gadget_moves > 0 && boundary_pivot_pass(d) {
            RULE_BOUNDARY_PIVOT.incr();
            gadget_moves -= 1;
            continue;
        }
        if gadget_moves > 0 && pivot_gadget_pass(d) {
            RULE_PIVOT_GADGET.incr();
            gadget_moves -= 1;
            continue;
        }
        if completion_pass(d) {
            RULE_COMPLETION.incr();
            continue;
        }
        stalled = true;
        break;
    }
    if stalled {
        if gadget_moves == 0 && !d.is_identity() {
            METER_EXHAUSTED.incr();
        }
    } else {
        // The round budget ran dry while rules were still firing — the
        // belt-and-braces cutoff, not a natural fixpoint.
        BUDGET_EXHAUSTED.incr();
    }
}

/// Recolors every X spider to Z, toggling all its incident edges. An
/// edge between two X spiders is toggled twice and keeps its kind,
/// which is exactly the color-change rule applied at both ends.
fn color_change(d: &mut Diagram) {
    for v in 0..d.slots() {
        if !d.is_alive(v) || d.vkind(v) != VKind::X {
            continue;
        }
        for (n, _) in d.neighbors(v) {
            d.toggle_edge_kind(v, n);
        }
        d.set_vkind(v, VKind::Z);
    }
}

/// One sweep of spider fusion: merges every plain-connected pair of Z
/// spiders until none remain. Returns whether anything changed.
fn fuse_pass(d: &mut Diagram) -> bool {
    let mut changed = false;
    let mut again = true;
    while again {
        again = false;
        for v in 0..d.slots() {
            if !d.is_z(v) {
                continue;
            }
            while let Some(n) = d
                .neighbors(v)
                .into_iter()
                .find(|&(n, k)| k == EdgeKind::Plain && d.is_z(n))
                .map(|(n, _)| n)
            {
                d.fuse(v, n);
                changed = true;
                again = true;
            }
        }
    }
    changed
}

/// One sweep of identity removal (plus scalar-spider cleanup).
fn identity_pass(d: &mut Diagram) -> bool {
    let mut changed = false;
    for v in 0..d.slots() {
        if !d.is_z(v) {
            continue;
        }
        match d.degree(v) {
            0 => {
                // A disconnected spider is the scalar 1 + e^{iφ}. That
                // is non-zero (and thus droppable) unless φ = π, which
                // cannot arise from a unitary diagram; stall if it does.
                if d.phase(v).is_pi() {
                    d.mark_zero_scalar();
                } else {
                    d.kill(v);
                    changed = true;
                }
            }
            2 if d.phase(v).is_zero() => {
                let ns = d.neighbors(v);
                let (n1, k1) = ns[0];
                let (n2, k2) = ns[1];
                d.kill(v);
                let kind = k1.through(k2);
                if d.is_z(n1) && d.is_z(n2) {
                    d.merge_edge(n1, n2, kind);
                } else {
                    // At least one boundary endpoint: boundaries have
                    // degree ≤ 1, so no parallel edge can exist.
                    d.connect(n1, n2, kind);
                }
                changed = true;
            }
            _ => {}
        }
    }
    changed
}

/// `true` if `v` is interior (every neighbor is a Z spider) with only
/// Hadamard edges — the applicability condition shared by local
/// complementation and pivoting.
fn interior_on_hadamard_edges(d: &Diagram, v: usize) -> bool {
    d.neighbors(v)
        .into_iter()
        .all(|(n, k)| k == EdgeKind::Had && d.is_z(n))
}

/// One sweep of local complementation: removes interior ±π/2 spiders.
fn local_complement_pass(d: &mut Diagram) -> bool {
    let mut changed = false;
    for v in 0..d.slots() {
        if !d.is_z(v) {
            continue;
        }
        let Some(sign) = d.phase(v).half_turn_sign() else {
            continue;
        };
        if d.degree(v) == 0 || !interior_on_hadamard_edges(d, v) {
            continue;
        }
        let ns: Vec<usize> = d.neighbors(v).into_iter().map(|(n, _)| n).collect();
        d.kill(v);
        for i in 0..ns.len() {
            for j in (i + 1)..ns.len() {
                d.toggle_had(ns[i], ns[j]);
            }
        }
        for &n in &ns {
            d.add_phase(n, Phase::dyadic(-i64::from(sign), 1));
        }
        changed = true;
    }
    changed
}

/// One sweep of pivoting: removes interior adjacent Pauli-spider pairs.
fn pivot_pass(d: &mut Diagram) -> bool {
    let mut changed = false;
    for u in 0..d.slots() {
        if !d.is_z(u) || !d.phase(u).is_pauli() || !interior_on_hadamard_edges(d, u) {
            continue;
        }
        let Some(v) = d
            .neighbors(u)
            .into_iter()
            .map(|(n, _)| n)
            .find(|&n| d.phase(n).is_pauli() && interior_on_hadamard_edges(d, n))
        else {
            continue;
        };
        apply_pivot(d, u, v);
        changed = true;
    }
    changed
}

/// The pivot rule along the Hadamard edge `u—v` (both Pauli, both
/// interior): complement between the exclusive-`u`, exclusive-`v` and
/// common neighborhoods, exchange phases, and remove the pair.
fn apply_pivot(d: &mut Diagram, u: usize, v: usize) {
    let pu = d.phase(u).clone();
    let pv = d.phase(v).clone();
    let nu: Vec<usize> = d
        .neighbors(u)
        .into_iter()
        .map(|(n, _)| n)
        .filter(|&n| n != v)
        .collect();
    let nv: Vec<usize> = d
        .neighbors(v)
        .into_iter()
        .map(|(n, _)| n)
        .filter(|&n| n != u)
        .collect();
    let common: Vec<usize> = nu.iter().copied().filter(|n| nv.contains(n)).collect();
    let only_u: Vec<usize> = nu.iter().copied().filter(|n| !common.contains(n)).collect();
    let only_v: Vec<usize> = nv.iter().copied().filter(|n| !common.contains(n)).collect();
    d.kill(u);
    d.kill(v);
    for &a in &only_u {
        for &b in &only_v {
            d.toggle_had(a, b);
        }
    }
    for &a in &only_u {
        for &c in &common {
            d.toggle_had(a, c);
        }
    }
    for &b in &only_v {
        for &c in &common {
            d.toggle_had(b, c);
        }
    }
    for &a in &only_u {
        d.add_phase(a, pv.clone());
    }
    for &b in &only_v {
        d.add_phase(b, pu.clone());
    }
    let common_shift = pu + pv + Phase::pi();
    for &c in &common {
        d.add_phase(c, common_shift.clone());
    }
}

/// One sweep of phase-gadget rewriting.
///
/// A *phase gadget* is the graph-like form of `exp(iα·(⊕_{t∈T} x_t))`:
/// a degree-1 *leaf* spider carrying α, Hadamard-connected to a
/// phase-free *hub* spider whose remaining Hadamard edges reach the
/// target spiders `T`. This is how non-Clifford phases survive once
/// pivoting has pulled them off the wires, and the only way ±π/4 pairs
/// from mirrored `CCX`/`Mcx` decompositions meet again. Three sound
/// moves:
///
/// * **normalization** — a hub with phase π folds into the leaf
///   (`gadget(α, π) ∝ gadget(−α, 0)`);
/// * **fusion** — two gadgets over the *same* target set merge, adding
///   leaf phases;
/// * **elimination** — a gadget whose leaf phase is 0 is the identity
///   (`exp(0) = 1`) and disappears entirely.
fn gadget_pass(d: &mut Diagram) -> bool {
    use std::collections::BTreeMap;
    let mut changed = false;
    // target set → (leaf, hub) of the first gadget seen with it.
    let mut seen: BTreeMap<Vec<usize>, (usize, usize)> = BTreeMap::new();
    for leaf in 0..d.slots() {
        if !d.is_z(leaf) || d.degree(leaf) != 1 {
            continue;
        }
        let (hub, kind) = d.neighbors(leaf)[0];
        if kind != EdgeKind::Had || !d.is_z(hub) || d.degree(hub) < 2 {
            continue;
        }
        if !interior_on_hadamard_edges(d, hub) {
            continue;
        }
        // Fold a π hub into the leaf; other hub phases mean this is not
        // a gadget at all.
        if d.phase(hub).is_pi() {
            let negated = -d.phase(leaf).clone();
            d.set_phase(leaf, negated);
            d.add_phase(hub, Phase::pi());
            changed = true;
        } else if !d.phase(hub).is_zero() {
            continue;
        }
        let targets: Vec<usize> = d
            .neighbors(hub)
            .into_iter()
            .map(|(n, _)| n)
            .filter(|&n| n != leaf)
            .collect();
        let mut key = targets;
        key.sort_unstable();
        if let Some(&(leaf0, _)) = seen.get(&key) {
            let p = d.phase(leaf).clone();
            d.add_phase(leaf0, p);
            d.kill(leaf);
            d.kill(hub);
            changed = true;
            // leaf0's gadget may now be eliminable; the next sweep of
            // this pass (driven by `changed`) picks it up.
            continue;
        }
        if d.phase(leaf).is_zero() {
            d.kill(leaf);
            d.kill(hub);
            changed = true;
            continue;
        }
        seen.insert(key, (leaf, hub));
    }
    changed
}

/// Extracts a spider's phase into a fresh single-target phase gadget:
/// `Z(α) = Z(0)` with `exp(iα·x)` applied to its variable. The inverse
/// of singleton-gadget absorption, so exactly sound.
fn gadgetize(d: &mut Diagram, v: usize) {
    let alpha = d.phase(v).clone();
    let hub = d.add_vertex(VKind::Z, Phase::ZERO);
    let leaf = d.add_vertex(VKind::Z, alpha);
    d.connect(v, hub, EdgeKind::Had);
    d.connect(hub, leaf, EdgeKind::Had);
    d.set_phase(v, Phase::ZERO);
}

/// One sweep of pivot-gadget: an interior Pauli spider `u` whose only
/// Hadamard partners carry non-Pauli phases cannot pivot directly, so
/// one partner `v` is gadgetized first (its phase moves onto a fresh
/// gadget leaf) and the now-Pauli pair pivots. This is the move that
/// pulls T phases off the wires so mirrored ±π/4 pairs can meet in
/// [`gadget_pass`]. Degree-1 partners are skipped — they are gadget
/// leaves already, and re-gadgetizing them would cycle.
fn pivot_gadget_pass(d: &mut Diagram) -> bool {
    for u in 0..d.slots() {
        if !d.is_z(u) || !d.phase(u).is_pauli() || !interior_on_hadamard_edges(d, u) {
            continue;
        }
        let Some(v) = d.neighbors(u).into_iter().map(|(n, _)| n).find(|&n| {
            !d.phase(n).is_pauli() && d.degree(n) > 1 && interior_on_hadamard_edges(d, n)
        }) else {
            continue;
        };
        gadgetize(d, v);
        apply_pivot(d, u, v);
        return true;
    }
    false
}

/// One sweep of boundary pivoting: a Pauli spider `v` blocked from
/// pivoting only by its boundary edges becomes interior by splitting
/// each boundary edge with a fresh phase-free spider (the inverse of
/// identity removal, with edge kinds composing back to the original),
/// after which the pair pivots normally.
fn boundary_pivot_pass(d: &mut Diagram) -> bool {
    for u in 0..d.slots() {
        if !d.is_z(u) || !d.phase(u).is_pauli() || !interior_on_hadamard_edges(d, u) {
            continue;
        }
        let candidate = d.neighbors(u).into_iter().map(|(n, _)| n).find(|&v| {
            d.phase(v).is_pauli()
                && d.neighbors(v).into_iter().any(|(n, _)| !d.is_z(n))
                && d.neighbors(v)
                    .into_iter()
                    .all(|(n, k)| !d.is_z(n) || k == EdgeKind::Had)
        });
        let Some(v) = candidate else {
            continue;
        };
        for (b, kind) in d.neighbors(v) {
            if d.is_z(b) {
                continue;
            }
            // b —kind— v  ⇒  b —kind.toggled()— new —Had— v, composing
            // back to `kind` through the inserted identity spider.
            d.kill_edge_between(b, v);
            let mid = d.add_vertex(VKind::Z, Phase::ZERO);
            d.connect(b, mid, kind.toggled());
            d.connect(mid, v, EdgeKind::Had);
        }
        apply_pivot(d, u, v);
        return true;
    }
    false
}

/// A phase gadget as read by [`completion_pass`]: its two private
/// vertices plus the target spiders its parity ranges over.
struct PolyGadget {
    leaf: usize,
    hub: usize,
    targets: Vec<usize>,
}

/// Phase-polynomial completion: removes a whole *family* of gadgets
/// (plus the phases sitting on their target spiders) when the family's
/// parity phase polynomial is pointwise zero mod 2π.
///
/// Semantics: in a graph-like diagram each gadget `(ℓ, h, T)` with leaf
/// phase θ contracts — summing its two private vertices out — to the
/// scalar factor `2·exp(iθ·(⊕_{t∈T} x_t))`, and each spider phase α on
/// a vertex `v` is the factor `exp(iα·x_v)`. Over a component of
/// gadgets connected through shared targets, the product of all those
/// factors is `exp(i·f(x))` for the phase polynomial
///
/// ```text
///     f(x) = Σ_gadgets θ_g·(⊕_{t∈T_g} x_t)  +  Σ_vars α_v·x_v
/// ```
///
/// If `f(x) ≡ 0 (mod 2π)` for *every* assignment of the component's
/// variables — checked exhaustively with exact [`Phase`] sums, at most
/// `2^`[`COMPLETION_MAX_VARS`] evaluations — the whole family is a
/// (non-zero) scalar and is removed: every gadget's leaf and hub die,
/// every variable's phase is set to zero. The contraction above is only
/// valid when each gadget's leaf and hub are *private* (no other
/// collected gadget targets them), so candidates violating that are
/// discarded before evaluation.
///
/// This is the rule that closes `Mcx(k ≥ 3)` self-pairs: the doubled
/// miter expands into one parity gadget per non-empty control subset
/// with phase `±2π/2^{m−1}`, no two of which cancel pairwise — but the
/// polynomial is `2·(C^kZ phase function) = 2π·x₁⋯x_m ≡ 0` pointwise.
fn completion_pass(d: &mut Diagram) -> bool {
    // Collect candidate gadgets, one per hub (extra degree-1 neighbors
    // of the same hub are treated as targets and keep their own phase).
    let mut hub_taken = vec![false; d.slots()];
    let mut gadgets: Vec<PolyGadget> = Vec::new();
    for leaf in 0..d.slots() {
        if !d.is_z(leaf) || d.degree(leaf) != 1 {
            continue;
        }
        let (hub, kind) = d.neighbors(leaf)[0];
        if kind != EdgeKind::Had
            || !d.is_z(hub)
            || d.degree(hub) < 2
            || hub_taken[hub]
            || !d.phase(hub).is_zero()
            || !interior_on_hadamard_edges(d, hub)
            || d.phase(leaf).is_zero()
        {
            continue;
        }
        hub_taken[hub] = true;
        let targets: Vec<usize> = d
            .neighbors(hub)
            .into_iter()
            .map(|(n, _)| n)
            .filter(|&n| n != leaf)
            .collect();
        gadgets.push(PolyGadget { leaf, hub, targets });
    }
    // Privacy fixpoint: a gadget whose leaf or hub is another gadget's
    // target cannot be contracted independently — drop it (and re-check,
    // since dropping shrinks the variable set).
    loop {
        let mut is_var = vec![false; d.slots()];
        for g in &gadgets {
            for &t in &g.targets {
                is_var[t] = true;
            }
        }
        let before = gadgets.len();
        gadgets.retain(|g| !is_var[g.hub] && !is_var[g.leaf]);
        if gadgets.len() == before {
            break;
        }
    }
    if gadgets.is_empty() {
        return false;
    }
    // Union-find over variables: gadgets sharing a target must be
    // judged jointly.
    let mut parent: Vec<usize> = (0..d.slots()).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    for g in &gadgets {
        let root = find(&mut parent, g.targets[0]);
        for &t in &g.targets[1..] {
            let r = find(&mut parent, t);
            parent[r] = root;
        }
    }
    use std::collections::BTreeMap;
    let mut components: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (index, g) in gadgets.iter().enumerate() {
        let root = find(&mut parent, g.targets[0]);
        components.entry(root).or_default().push(index);
    }
    let mut changed = false;
    for members in components.values() {
        let mut vars: Vec<usize> = members
            .iter()
            .flat_map(|&i| gadgets[i].targets.iter().copied())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        if vars.len() > COMPLETION_MAX_VARS {
            continue;
        }
        let bit_of = |v: usize| vars.binary_search(&v).expect("target is a variable") as u32;
        // The polynomial's terms: each gadget over its parity mask, plus
        // each variable's own phase as a singleton term.
        let mut terms: Vec<(u32, Phase)> = Vec::new();
        for &i in members {
            let mask = gadgets[i]
                .targets
                .iter()
                .fold(0u32, |m, &t| m | (1 << bit_of(t)));
            terms.push((mask, d.phase(gadgets[i].leaf).clone()));
        }
        for &v in &vars {
            if !d.phase(v).is_zero() {
                terms.push((1 << bit_of(v), d.phase(v).clone()));
            }
        }
        // Exact pointwise check (f(0) = 0 trivially: every term is a
        // parity, and parities vanish on the all-zero assignment).
        let pointwise_zero = (1u32..1 << vars.len()).all(|x| {
            terms
                .iter()
                .filter(|(mask, _)| (mask & x).count_ones() % 2 == 1)
                .map(|(_, p)| p.clone())
                .sum::<Phase>()
                .is_zero()
        });
        if !pointwise_zero {
            continue;
        }
        for &i in members {
            d.kill(gadgets[i].leaf);
            d.kill(gadgets[i].hub);
        }
        for &v in &vars {
            d.set_phase(v, Phase::ZERO);
        }
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::super::translate::diagram_of;
    use super::*;
    use qcir::Circuit;

    fn reduces(c: &Circuit) -> bool {
        let mut d = diagram_of(c).expect("translatable");
        simplify(&mut d);
        d.is_identity()
    }

    #[test]
    fn canceling_pairs_reduce_to_identity() {
        let mut c = Circuit::new(2);
        c.t(0)
            .tdg(0)
            .s(1)
            .sdg(1)
            .cx(0, 1)
            .cx(0, 1)
            .cz(0, 1)
            .cz(0, 1);
        assert!(reduces(&c));
    }

    #[test]
    fn palindromic_toffoli_reduces() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).h(0).t(1).tdg(1).h(0).ccx(0, 1, 2);
        assert!(reduces(&c));
    }

    #[test]
    fn rx_equals_conjugated_rz_reduces() {
        // Rx(θ) · (H · Rz(θ) · H)† = I: exercises color change + fusion,
        // with the arbitrary angle canceling as an exact symbolic atom.
        let mut c = Circuit::new(1);
        c.rx(0.3, 0).h(0).rz(-0.3, 0).h(0);
        assert!(reduces(&c));
    }

    #[test]
    fn swap_pair_reduces() {
        let mut c = Circuit::new(2);
        c.swap(0, 1).swap(0, 1);
        assert!(reduces(&c));
    }

    #[test]
    fn mcx_pair_reduces_up_to_two_controls() {
        let mut c = Circuit::new(3);
        c.mcx(&[0, 1], 2).mcx(&[0, 1], 2);
        assert!(reduces(&c));
    }

    #[test]
    fn wide_mcx_pairs_reduce_via_phase_polynomial_completion() {
        // Mcx(k ≥ 3) self-pairs expand to identical parity-gadget sets,
        // so the fused gadgets carry *doubled* (non-Clifford) phases
        // that cancel only pointwise mod 2π — invisible to pairwise
        // gadget fusion, closed by the completion pass. These stalled
        // before completion landed (the ROADMAP follow-up).
        for k in 3..=4 {
            let n = k as u32 + 1;
            let controls: Vec<u32> = (0..k as u32).collect();
            let mut c = Circuit::new(n);
            c.mcx(&controls, n - 1).mcx(&controls, n - 1);
            assert!(reduces(&c), "Mcx({k}) self-pair must now reduce");
        }
    }

    #[test]
    fn widest_translatable_mcx_pair_reduces() {
        // k = MAX_MCX_CONTROLS = 6: 127 parity gadgets per Mcx, judged
        // jointly over 7 variables by the completion pass.
        let mut c = Circuit::new(7);
        c.mcx(&[0, 1, 2, 3, 4, 5], 6).mcx(&[0, 1, 2, 3, 4, 5], 6);
        assert!(reduces(&c));
    }

    #[test]
    fn mcx_conjugated_by_x_reduces() {
        // X(c)·Mcx·X(c) ≠ Mcx, but wrapped as a self-miter the pair
        // still cancels — exercises completion next to π spiders.
        let mut c = Circuit::new(5);
        c.x(0)
            .mcx(&[0, 1, 2, 3], 4)
            .mcx(&[0, 1, 2, 3], 4)
            .x(0)
            .x(2)
            .x(2);
        assert!(reduces(&c));
    }

    #[test]
    fn euler_resynthesis_reduces_via_local_complementation() {
        // H·S·H = e^{iπ/4}·S†·H·S†: syntactically disjoint words for
        // the same operator. No plain edge ever joins the three ±π/2
        // spiders of the miter, so fusion alone stalls — local
        // complementation must fire to clear them.
        let mut a = Circuit::new(1);
        a.h(0).s(0).h(0);
        let mut b = Circuit::new(1);
        b.sdg(0).h(0).sdg(0);
        assert!(
            qsim::unitary::equivalent_up_to_phase(&a, &b, 1e-9).unwrap(),
            "test precondition: the Euler identity holds"
        );
        let miter = a.then(&b.inverse()).unwrap();
        assert!(reduces(&miter));
    }

    #[test]
    fn single_t_gate_does_not_reduce() {
        let mut c = Circuit::new(1);
        c.t(0);
        assert!(!reduces(&c));
    }

    #[test]
    fn single_wide_mcx_does_not_reduce() {
        // Completion must only fire on families that *jointly* cancel:
        // one Mcx alone is not the identity and must stall.
        let mut c = Circuit::new(5);
        c.mcx(&[0, 1, 2, 3], 4);
        assert!(!reduces(&c));
    }

    #[test]
    fn wire_permutation_does_not_reduce() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert!(!reduces(&c));
    }

    #[test]
    fn interior_clifford_spiders_are_eliminated() {
        // A Clifford-only self-miter written to leave interior ±π/2 and
        // Pauli spiders after fusion; LC + pivot must clear them all.
        let mut c = Circuit::new(3);
        c.h(0).s(0).cx(0, 1).cz(1, 2).s(2).h(2).cx(2, 0);
        let mut miter = c.clone();
        miter.compose(&c.inverse()).unwrap();
        assert!(reduces(&miter));
    }
}
