//! Classical tier: exhaustive permutation comparison for reversible
//! circuits.
//!
//! Classical reversible circuits (X/CX/CCX/MCX/SWAP/CSWAP — the RevLib
//! domain) act as permutations of basis states, so equivalence is
//! decidable by evaluating both circuits on every basis input with plain
//! bit operations — exact at register sizes where even the statevector
//! is out of reach, and far cheaper than any amplitude arithmetic below
//! [`crate::CLASSICAL_EXHAUSTIVE_MAX_QUBITS`].

use crate::{Report, Tier, Verdict, Witness};
use qcir::{BasisBits, Circuit};
use revlib::classical_eval;

/// Exhaustively compares two classical circuits on every basis input.
///
/// Callers guarantee both circuits contain only classical gates; if a
/// non-classical gate slips through, the tier degrades to
/// [`Verdict::Inconclusive`] rather than panicking.
pub(crate) fn check(a: &Circuit, b: &Circuit) -> Report {
    let n = a.num_qubits();
    for input in 0..1usize << n {
        let (left, right) = match (classical_eval(a, input), classical_eval(b, input)) {
            (Ok(left), Ok(right)) => (left, right),
            _ => {
                return Report {
                    verdict: Verdict::Inconclusive { confidence: 0.0 },
                    tier: Tier::Classical,
                    trials: 0,
                }
            }
        };
        if left != right {
            return Report {
                verdict: Verdict::Inequivalent {
                    witness: Witness::BasisInput {
                        input: BasisBits::from_u64(n, input as u64),
                        left_output: BasisBits::from_u64(n, left as u64),
                        right_output: BasisBits::from_u64(n, right as u64),
                    },
                },
                tier: Tier::Classical,
                trials: 0,
            };
        }
    }
    Report {
        verdict: Verdict::Equivalent,
        tier: Tier::Classical,
        trials: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_permutations_accepted() {
        let mut a = Circuit::new(3);
        a.cx(0, 1).ccx(0, 1, 2);
        let report = check(&a, &a.clone());
        assert!(report.verdict.is_equivalent());
        assert_eq!(report.tier, Tier::Classical);
    }

    #[test]
    fn differing_permutations_yield_basis_witness() {
        let mut a = Circuit::new(3);
        a.ccx(0, 1, 2);
        let b = Circuit::new(3);
        let report = check(&a, &b);
        match report.verdict {
            Verdict::Inequivalent {
                witness:
                    Witness::BasisInput {
                        input,
                        left_output,
                        right_output,
                    },
            } => {
                assert_eq!(input, BasisBits::from_u64(3, 0b011));
                assert_eq!(left_output, BasisBits::from_u64(3, 0b111));
                assert_eq!(right_output, BasisBits::from_u64(3, 0b011));
            }
            other => panic!("expected basis witness, got {other:?}"),
        }
    }

    #[test]
    fn non_classical_gate_degrades_to_inconclusive() {
        let mut a = Circuit::new(1);
        a.h(0);
        assert!(matches!(
            check(&a, &a.clone()).verdict,
            Verdict::Inconclusive { .. }
        ));
    }
}
