//! Iteration statistics (Table I values are 20-iteration averages).

/// Summary statistics over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Summarizes a slice of samples.
///
/// Returns a zeroed summary for an empty slice.
///
/// # Example
///
/// ```
/// use qmetrics::stats::summarize;
///
/// let s = summarize(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// assert!((s.std - 1.0).abs() < 1e-12);
/// ```
pub fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary {
            n: 0,
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Summary {
        n,
        mean,
        std: var.sqrt(),
        min,
        max,
    }
}

/// Relative change `(after − before) / before` in percent, the form of
/// Table I's "gate change (%)" and "accuracy change (%)" columns.
///
/// Returns 0 when `before` is 0.
pub fn percent_change(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        0.0
    } else {
        (after - before) / before * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = summarize(&[5.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn known_distribution() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn percent_change_cases() {
        assert!((percent_change(10.0, 12.0) - 20.0).abs() < 1e-12);
        assert!((percent_change(0.974, 0.974)).abs() < 1e-12);
        assert_eq!(percent_change(0.0, 5.0), 0.0);
        assert!((percent_change(4.0, 6.7) - 67.5).abs() < 1e-12);
    }
}
