//! # qmetrics — evaluation metrics
//!
//! The metrics the paper's evaluation section is built on:
//!
//! * [`tvd`] — Total Variation Distance between two counts dictionaries
//!   (paper Eq. 2), the headline obfuscation-quality metric of Figure 4.
//! * [`accuracy`] — fraction of shots landing on the expected outcome,
//!   the fidelity proxy of Table I.
//! * [`hellinger`] — Hellinger distance, a secondary distribution metric.
//! * [`stats`] — mean/std summaries over experiment iterations (Table I
//!   reports 20-iteration averages).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;

use qsim::Counts;

/// Total Variation Distance between two counts dictionaries:
///
/// `TVD = Σᵢ |y_{i,a} − y_{i,b}| / (2·N)`
///
/// where the counts are first normalized to the same total `N` (the paper
/// uses equal shot counts on both sides; unequal totals are handled by
/// comparing empirical probabilities). Result is in `[0, 1]`; 0 means
/// identical distributions, 1 means disjoint support.
///
/// # Example
///
/// ```
/// use qsim::Counts;
/// use qmetrics::tvd;
///
/// let mut a = Counts::new(1);
/// a.record(0, 95);
/// a.record(1, 5);
/// let mut b = Counts::new(1);
/// b.record(0, 100);
/// assert!((tvd(&a, &b) - 0.05).abs() < 1e-12);
/// ```
pub fn tvd(a: &Counts, b: &Counts) -> f64 {
    let ta = a.total();
    let tb = b.total();
    if ta == 0 || tb == 0 {
        return if ta == tb { 0.0 } else { 1.0 };
    }
    let keys: std::collections::BTreeSet<usize> = a
        .iter()
        .map(|(k, _)| k)
        .chain(b.iter().map(|(k, _)| k))
        .collect();
    let mut acc = 0.0;
    for k in keys {
        let pa = a.count(k) as f64 / ta as f64;
        let pb = b.count(k) as f64 / tb as f64;
        acc += (pa - pb).abs();
    }
    acc / 2.0
}

/// TVD of measured counts against a single theoretical outcome (the form
/// used for Figure 4, where the reference is e.g. `{"0": 100%}`).
///
/// Equivalent to `1 − P(expected)`.
pub fn tvd_vs_ideal(counts: &Counts, expected: usize) -> f64 {
    1.0 - counts.probability(expected)
}

/// Accuracy: the ratio of correct outcomes to the total number of shots
/// (Table I's metric).
///
/// Returns 0 for an empty counts table.
///
/// # Example
///
/// ```
/// use qsim::Counts;
/// use qmetrics::accuracy;
///
/// let mut counts = Counts::new(2);
/// counts.record(0b11, 974);
/// counts.record(0b01, 26);
/// assert!((accuracy(&counts, 0b11) - 0.974).abs() < 1e-12);
/// ```
pub fn accuracy(counts: &Counts, expected: usize) -> f64 {
    counts.probability(expected)
}

/// Hellinger distance between two counts dictionaries, in `[0, 1]`.
pub fn hellinger(a: &Counts, b: &Counts) -> f64 {
    let ta = a.total();
    let tb = b.total();
    if ta == 0 || tb == 0 {
        return if ta == tb { 0.0 } else { 1.0 };
    }
    let keys: std::collections::BTreeSet<usize> = a
        .iter()
        .map(|(k, _)| k)
        .chain(b.iter().map(|(k, _)| k))
        .collect();
    let mut bc = 0.0;
    for k in keys {
        let pa = a.count(k) as f64 / ta as f64;
        let pb = b.count(k) as f64 / tb as f64;
        bc += (pa * pb).sqrt();
    }
    (1.0 - bc.min(1.0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(usize, u64)]) -> Counts {
        let mut c = Counts::new(4);
        for &(k, v) in pairs {
            c.record(k, v);
        }
        c
    }

    #[test]
    fn tvd_identical_is_zero() {
        let a = counts(&[(0, 50), (3, 50)]);
        assert_eq!(tvd(&a, &a), 0.0);
    }

    #[test]
    fn tvd_disjoint_is_one() {
        let a = counts(&[(0, 100)]);
        let b = counts(&[(1, 100)]);
        assert_eq!(tvd(&a, &b), 1.0);
    }

    #[test]
    fn tvd_matches_paper_formula() {
        // Paper example: {"0": 95, "1": 5} vs ideal {"0": 100}.
        let a = counts(&[(0, 95), (1, 5)]);
        let b = counts(&[(0, 100)]);
        assert!((tvd(&a, &b) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn tvd_symmetric() {
        let a = counts(&[(0, 70), (1, 30)]);
        let b = counts(&[(0, 20), (2, 80)]);
        assert!((tvd(&a, &b) - tvd(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn tvd_handles_unequal_totals() {
        let a = counts(&[(0, 50)]);
        let b = counts(&[(0, 500)]);
        assert_eq!(tvd(&a, &b), 0.0);
    }

    #[test]
    fn tvd_empty_counts() {
        let empty = counts(&[]);
        let full = counts(&[(0, 10)]);
        assert_eq!(tvd(&empty, &empty), 0.0);
        assert_eq!(tvd(&empty, &full), 1.0);
    }

    #[test]
    fn tvd_vs_ideal_is_miss_probability() {
        let a = counts(&[(5, 900), (2, 100)]);
        assert!((tvd_vs_ideal(&a, 5) - 0.1).abs() < 1e-12);
        assert_eq!(tvd_vs_ideal(&a, 9), 1.0);
    }

    #[test]
    fn accuracy_fraction() {
        let a = counts(&[(7, 974), (3, 26)]);
        assert!((accuracy(&a, 7) - 0.974).abs() < 1e-12);
        assert_eq!(accuracy(&counts(&[]), 0), 0.0);
    }

    #[test]
    fn hellinger_bounds() {
        let a = counts(&[(0, 100)]);
        let b = counts(&[(1, 100)]);
        assert!((hellinger(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(hellinger(&a, &a), 0.0);
        let c = counts(&[(0, 50), (1, 50)]);
        let h = hellinger(&a, &c);
        assert!(h > 0.0 && h < 1.0);
    }

    #[test]
    fn tvd_range_invariant() {
        // TVD stays in [0,1] for assorted distributions.
        let cases = [
            counts(&[(0, 1)]),
            counts(&[(0, 3), (1, 7), (2, 11)]),
            counts(&[(15, 1000)]),
            counts(&[(0, 1), (1, 1), (2, 1), (3, 1)]),
        ];
        for a in &cases {
            for b in &cases {
                let d = tvd(a, b);
                assert!((0.0..=1.0).contains(&d));
            }
        }
    }
}
