//! Dependency DAG and ASAP layering.
//!
//! TetrisLock's Algorithm 1 starts by "converting the circuit to a DAG
//! representation and extracting layers", then scanning each layer for
//! unused qubits. [`CircuitDag`] implements exactly that: nodes are
//! instructions, edges follow wire order, and [`CircuitDag::layers`] groups
//! nodes into as-soon-as-possible columns.

use crate::circuit::{Circuit, Instruction};
use crate::qubit::Qubit;
use std::collections::BTreeSet;

/// Identifier of a node (instruction) in a [`CircuitDag`]. Equal to the
/// instruction's index in the originating circuit.
pub type NodeId = usize;

/// One ASAP layer: the node ids scheduled in this column plus the qubits
/// they occupy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Column index, starting at 0.
    pub index: usize,
    /// Instruction indices scheduled in this column.
    pub nodes: Vec<NodeId>,
    /// Qubits occupied by a gate in this column.
    pub used_qubits: BTreeSet<Qubit>,
}

impl Layer {
    /// Qubits of the circuit that are idle in this column, ascending — the
    /// "empty positions" of the paper's Algorithm 1.
    pub fn empty_qubits(&self, num_qubits: u32) -> Vec<Qubit> {
        (0..num_qubits)
            .map(Qubit::new)
            .filter(|q| !self.used_qubits.contains(q))
            .collect()
    }
}

/// Wire-dependency DAG over a circuit's instructions.
///
/// # Example
///
/// ```
/// use qcir::{Circuit, CircuitDag};
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).x(2);
/// let dag = CircuitDag::new(&c);
/// assert_eq!(dag.num_layers(), 2);
/// // Layer 0 holds `h q0` and `x q2`; qubit 1 is empty there.
/// assert_eq!(dag.layers()[0].empty_qubits(3).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitDag {
    num_qubits: u32,
    /// predecessors[i] = nodes that must run before node i.
    predecessors: Vec<Vec<NodeId>>,
    /// successors[i] = nodes that depend on node i.
    successors: Vec<Vec<NodeId>>,
    /// ASAP column of each node.
    node_layer: Vec<usize>,
    layers: Vec<Layer>,
}

impl CircuitDag {
    /// Builds the DAG and ASAP layering for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.gate_count();
        let mut predecessors = vec![Vec::new(); n];
        let mut successors = vec![Vec::new(); n];
        let mut node_layer = vec![0usize; n];

        // Last node seen on each wire.
        let mut wire_front: Vec<Option<NodeId>> = vec![None; circuit.num_qubits() as usize];
        // Next free column on each wire.
        let mut wire_col = vec![0usize; circuit.num_qubits() as usize];

        for (id, inst) in circuit.iter().enumerate() {
            let mut col = 0;
            for q in inst.qubits() {
                if let Some(prev) = wire_front[q.index()] {
                    if !predecessors[id].contains(&prev) {
                        predecessors[id].push(prev);
                        successors[prev].push(id);
                    }
                }
                col = col.max(wire_col[q.index()]);
            }
            node_layer[id] = col;
            for q in inst.qubits() {
                wire_front[q.index()] = Some(id);
                wire_col[q.index()] = col + 1;
            }
        }

        let depth = node_layer.iter().map(|&c| c + 1).max().unwrap_or(0);
        let mut layers: Vec<Layer> = (0..depth)
            .map(|index| Layer {
                index,
                nodes: Vec::new(),
                used_qubits: BTreeSet::new(),
            })
            .collect();
        for (id, inst) in circuit.iter().enumerate() {
            let layer = &mut layers[node_layer[id]];
            layer.nodes.push(id);
            layer.used_qubits.extend(inst.qubits().iter().copied());
        }

        CircuitDag {
            num_qubits: circuit.num_qubits(),
            predecessors,
            successors,
            node_layer,
            layers,
        }
    }

    /// Number of qubit wires in the underlying circuit.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of ASAP layers (equals [`Circuit::depth`]).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The ASAP layers in column order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The ASAP column assigned to instruction `node`.
    pub fn layer_of(&self, node: NodeId) -> usize {
        self.node_layer[node]
    }

    /// Direct predecessors of `node` (instructions it depends on).
    pub fn predecessors(&self, node: NodeId) -> &[NodeId] {
        &self.predecessors[node]
    }

    /// Direct successors of `node`.
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        &self.successors[node]
    }

    /// Nodes with no predecessors (the circuit's input frontier).
    pub fn front_layer(&self) -> Vec<NodeId> {
        (0..self.predecessors.len())
            .filter(|&id| self.predecessors[id].is_empty())
            .collect()
    }

    /// For each layer, the list of idle qubits — the paper's
    /// `empty_positions` table (Algorithm 1, step 1).
    pub fn empty_positions(&self) -> Vec<Vec<Qubit>> {
        self.layers
            .iter()
            .map(|layer| layer.empty_qubits(self.num_qubits))
            .collect()
    }

    /// Qubits idle in *every* column of `0..=last_layer` — candidates for a
    /// front-region insertion that provably cancels (no intervening gates).
    pub fn idle_through(&self, last_layer: usize) -> Vec<Qubit> {
        let mut idle: BTreeSet<Qubit> = (0..self.num_qubits).map(Qubit::new).collect();
        for layer in self.layers.iter().take(last_layer + 1) {
            for q in &layer.used_qubits {
                idle.remove(q);
            }
        }
        idle.into_iter().collect()
    }

    /// First column in which `qubit` is used by a gate, or `None` if the
    /// wire is idle for the whole circuit.
    pub fn first_use(&self, qubit: Qubit) -> Option<usize> {
        self.layers
            .iter()
            .position(|layer| layer.used_qubits.contains(&qubit))
    }

    /// Last column in which `qubit` is used, or `None` if never used.
    pub fn last_use(&self, qubit: Qubit) -> Option<usize> {
        self.layers
            .iter()
            .rposition(|layer| layer.used_qubits.contains(&qubit))
    }
}

/// Convenience: schedule a circuit into layers of instructions (cloned).
///
/// # Example
///
/// ```
/// use qcir::{Circuit, dag::layered_instructions};
///
/// let mut c = Circuit::new(2);
/// c.h(0).h(1).cx(0, 1);
/// let layers = layered_instructions(&c);
/// assert_eq!(layers.len(), 2);
/// assert_eq!(layers[0].len(), 2);
/// ```
pub fn layered_instructions(circuit: &Circuit) -> Vec<Vec<Instruction>> {
    let dag = CircuitDag::new(circuit);
    dag.layers()
        .iter()
        .map(|layer| {
            layer
                .nodes
                .iter()
                .map(|&id| circuit.instructions()[id].clone())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0) // layer 0
            .x(2) // layer 0
            .cx(0, 1) // layer 1
            .cx(2, 3) // layer 1
            .ccx(0, 1, 2); // layer 2
        c
    }

    #[test]
    fn layering_matches_depth() {
        let c = sample();
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.num_layers(), c.depth());
        assert_eq!(dag.num_layers(), 3);
        assert_eq!(dag.layers()[0].nodes, vec![0, 1]);
        assert_eq!(dag.layers()[1].nodes, vec![2, 3]);
        assert_eq!(dag.layers()[2].nodes, vec![4]);
    }

    #[test]
    fn dependencies_follow_wires() {
        let c = sample();
        let dag = CircuitDag::new(&c);
        // cx(0,1) depends on h(0) only.
        assert_eq!(dag.predecessors(2), &[0]);
        // ccx depends on both cx gates.
        let mut preds = dag.predecessors(4).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![2, 3]);
        assert_eq!(dag.successors(0), &[2]);
    }

    #[test]
    fn front_layer_has_no_predecessors() {
        let c = sample();
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.front_layer(), vec![0, 1]);
    }

    #[test]
    fn empty_positions_per_layer() {
        let c = sample();
        let dag = CircuitDag::new(&c);
        let empties = dag.empty_positions();
        // Layer 0 uses {0, 2}: qubits 1 and 3 empty.
        assert_eq!(empties[0], vec![Qubit::new(1), Qubit::new(3)]);
        // Layer 1 uses {0,1,2,3}: none empty.
        assert!(empties[1].is_empty());
        // Layer 2 uses {0,1,2}: qubit 3 empty.
        assert_eq!(empties[2], vec![Qubit::new(3)]);
    }

    #[test]
    fn idle_through_prefix() {
        let c = sample();
        let dag = CircuitDag::new(&c);
        // Through layer 0, qubits 1 and 3 are untouched.
        assert_eq!(dag.idle_through(0), vec![Qubit::new(1), Qubit::new(3)]);
        // Through layer 1 everything has been used.
        assert!(dag.idle_through(1).is_empty());
    }

    #[test]
    fn first_and_last_use() {
        let c = sample();
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.first_use(Qubit::new(0)), Some(0));
        assert_eq!(dag.first_use(Qubit::new(1)), Some(1));
        assert_eq!(dag.last_use(Qubit::new(3)), Some(1));
        let mut c5 = Circuit::new(5);
        c5.x(0);
        let dag5 = CircuitDag::new(&c5);
        assert_eq!(dag5.first_use(Qubit::new(4)), None);
        assert_eq!(dag5.last_use(Qubit::new(4)), None);
    }

    #[test]
    fn empty_circuit_has_no_layers() {
        let c = Circuit::new(3);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.num_layers(), 0);
        assert!(dag.empty_positions().is_empty());
        assert_eq!(
            dag.idle_through(0),
            vec![Qubit::new(0), Qubit::new(1), Qubit::new(2)]
        );
    }

    #[test]
    fn layered_instructions_clone_gates() {
        let c = sample();
        let layers = layered_instructions(&c);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[2][0].gate().name(), "ccx");
    }
}
