//! Wide computational-basis states as limb-backed bit vectors.
//!
//! The verification stack replays candidate basis inputs through
//! classical bit evaluation at whatever register width a circuit uses.
//! A bare `u64` caps that replay at 63 wires; [`BasisBits`] removes the
//! cap by storing the basis index as little-endian 64-bit limbs
//! (bit `k` of the state is qubit `k`, exactly like the `usize`
//! encoding used everywhere else in the workspace).
//!
//! The type is deliberately tiny: constructors, bit get/set/toggle, a
//! lossless narrowing back to `u64` when the width allows it, and a
//! binary `Display` matching the `{:#b}` spelling witnesses have always
//! used. No arithmetic — basis states are labels, not numbers.
//!
//! # Example
//!
//! ```
//! use qcir::BasisBits;
//!
//! let mut x = BasisBits::zeros(96);
//! x.set(95, true);
//! x.set(2, true);
//! assert!(x.bit(95) && x.bit(2) && !x.bit(50));
//! assert_eq!(x.count_ones(), 2);
//! assert_eq!(x.to_u64(), None); // bit 95 does not fit
//! x.set(95, false);
//! assert_eq!(x.to_u64(), Some(0b100));
//! ```

use std::fmt;

/// A computational-basis state over `width` qubits, bit `k` = qubit `k`.
///
/// Stored as little-endian `u64` limbs; bits at or above `width` are
/// kept zero as an invariant, so equality and hashing are structural.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BasisBits {
    width: u32,
    limbs: Vec<u64>,
}

/// Number of limbs needed for `width` bits.
fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(64).max(1)
}

impl BasisBits {
    /// The all-zeros basis state over `width` qubits.
    pub fn zeros(width: u32) -> Self {
        BasisBits {
            width,
            limbs: vec![0; limbs_for(width)],
        }
    }

    /// Embeds a `u64` basis index into a `width`-qubit register.
    ///
    /// # Panics
    ///
    /// Panics if `value` has a bit set at or above `width` — that would
    /// not name a basis state of the register.
    pub fn from_u64(width: u32, value: u64) -> Self {
        if width < 64 {
            assert!(
                width == 0 && value == 0 || value >> width == 0,
                "basis index {value:#b} does not fit {width} qubits"
            );
        }
        let mut out = Self::zeros(width);
        out.limbs[0] = value;
        out
    }

    /// Register width in qubits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Bit `index` (qubit `index`); `false` beyond the width.
    pub fn bit(&self, index: u32) -> bool {
        if index >= self.width {
            return false;
        }
        self.limbs[index as usize / 64] >> (index % 64) & 1 == 1
    }

    /// Sets bit `index` (qubit `index`) to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the register.
    pub fn set(&mut self, index: u32, value: bool) {
        assert!(
            index < self.width,
            "bit {index} outside {} qubits",
            self.width
        );
        let limb = &mut self.limbs[index as usize / 64];
        let mask = 1u64 << (index % 64);
        if value {
            *limb |= mask;
        } else {
            *limb &= !mask;
        }
    }

    /// Flips bit `index` (qubit `index`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the register.
    pub fn toggle(&mut self, index: u32) {
        assert!(
            index < self.width,
            "bit {index} outside {} qubits",
            self.width
        );
        self.limbs[index as usize / 64] ^= 1u64 << (index % 64);
    }

    /// `true` for the all-zeros state.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }

    /// The state as a `u64` basis index, when every set bit fits —
    /// i.e. the lossless narrowing back to the legacy encoding.
    pub fn to_u64(&self) -> Option<u64> {
        if self.limbs[1..].iter().any(|&l| l != 0) {
            return None;
        }
        Some(self.limbs[0])
    }
}

impl fmt::Display for BasisBits {
    /// Binary with a `0b` prefix and no leading zeros (`0b0` for the
    /// all-zeros state) — the same spelling `{:#b}` gives a `u64`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let top = (0..self.width).rev().find(|&i| self.bit(i));
        match top {
            None => f.write_str("0b0"),
            Some(top) => {
                f.write_str("0b")?;
                for i in (0..=top).rev() {
                    f.write_str(if self.bit(i) { "1" } else { "0" })?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_of_any_width() {
        for width in [0, 1, 63, 64, 65, 128, 200] {
            let x = BasisBits::zeros(width);
            assert_eq!(x.width(), width);
            assert!(x.is_zero());
            assert_eq!(x.count_ones(), 0);
            assert_eq!(x.to_u64(), Some(0));
        }
    }

    #[test]
    fn from_u64_round_trips() {
        for width in [5, 63, 64, 65, 128] {
            let value = 0b10110 & ((1u64 << width.min(63)) - 1);
            let x = BasisBits::from_u64(width, value);
            assert_eq!(x.to_u64(), Some(value));
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u64_rejects_overflow() {
        BasisBits::from_u64(3, 0b1000);
    }

    #[test]
    fn set_toggle_bit_across_limb_boundary() {
        let mut x = BasisBits::zeros(130);
        for i in [0, 63, 64, 65, 127, 128, 129] {
            assert!(!x.bit(i));
            x.set(i, true);
            assert!(x.bit(i), "bit {i}");
            x.toggle(i);
            assert!(!x.bit(i), "bit {i}");
            x.toggle(i);
            assert!(x.bit(i), "bit {i}");
            x.set(i, false);
        }
        assert!(x.is_zero());
    }

    #[test]
    fn to_u64_refuses_high_bits() {
        let mut x = BasisBits::zeros(70);
        x.set(65, true);
        assert_eq!(x.to_u64(), None);
        x.set(65, false);
        x.set(63, true);
        assert_eq!(x.to_u64(), Some(1u64 << 63));
    }

    #[test]
    fn display_matches_u64_binary_format() {
        for value in [0u64, 1, 0b1010, 0x5EED] {
            let x = BasisBits::from_u64(40, value);
            assert_eq!(x.to_string(), format!("{value:#b}"));
        }
        let mut wide = BasisBits::zeros(100);
        wide.set(64, true);
        wide.set(0, true);
        let text = wide.to_string();
        assert!(text.starts_with("0b1"));
        assert_eq!(text.len(), 2 + 65);
        assert!(text.ends_with('1'));
    }

    #[test]
    fn equality_is_structural() {
        let mut a = BasisBits::zeros(90);
        let mut b = BasisBits::zeros(90);
        a.set(88, true);
        assert_ne!(a, b);
        b.set(88, true);
        assert_eq!(a, b);
        // Different widths are different states even with equal bits.
        assert_ne!(BasisBits::zeros(64), BasisBits::zeros(65));
    }
}
