//! Error types for circuit construction and parsing.

use std::fmt;

/// Errors raised while building, transforming or parsing circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a qubit index outside the circuit's register.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: u32,
        /// Number of qubits in the circuit.
        num_qubits: u32,
    },
    /// The same qubit was used twice in one instruction (e.g. `cx q0, q0`).
    DuplicateQubit {
        /// The duplicated qubit index.
        qubit: u32,
    },
    /// An instruction supplied the wrong number of operands for its gate.
    ArityMismatch {
        /// Gate mnemonic.
        gate: String,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        actual: usize,
    },
    /// A parser failed; carries line number (1-based) and message.
    Parse {
        /// Line at which parsing failed.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A circuit-level validation failed (empty register, mismatched
    /// composition, ...).
    Invalid(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "qubit index {qubit} out of range for circuit with {num_qubits} qubits"
            ),
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "qubit {qubit} appears more than once in one instruction")
            }
            CircuitError::ArityMismatch {
                gate,
                expected,
                actual,
            } => write!(f, "gate {gate} expects {expected} operand(s), got {actual}"),
            CircuitError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            CircuitError::Invalid(message) => write!(f, "invalid circuit: {message}"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 9,
            num_qubits: 4,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));

        let e = CircuitError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<CircuitError>();
    }
}
