//! Circuits and instructions.

use crate::error::CircuitError;
use crate::gate::Gate;
use crate::qubit::Qubit;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One gate application: a [`Gate`] plus its ordered qubit operands.
///
/// # Example
///
/// ```
/// use qcir::{Gate, Instruction, Qubit};
///
/// let inst = Instruction::new(Gate::CX, vec![Qubit::new(0), Qubit::new(1)])?;
/// assert_eq!(inst.gate(), &Gate::CX);
/// assert_eq!(inst.qubits().len(), 2);
/// # Ok::<(), qcir::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    gate: Gate,
    qubits: Vec<Qubit>,
}

impl Instruction {
    /// Creates an instruction, validating operand count and uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ArityMismatch`] if the operand count does not
    /// match [`Gate::arity`], or [`CircuitError::DuplicateQubit`] if the same
    /// qubit appears twice.
    pub fn new(gate: Gate, qubits: Vec<Qubit>) -> Result<Self, CircuitError> {
        if qubits.len() != gate.arity() {
            return Err(CircuitError::ArityMismatch {
                gate: gate.name().to_string(),
                expected: gate.arity(),
                actual: qubits.len(),
            });
        }
        for (i, q) in qubits.iter().enumerate() {
            if qubits[..i].contains(q) {
                return Err(CircuitError::DuplicateQubit { qubit: q.raw() });
            }
        }
        Ok(Instruction { gate, qubits })
    }

    /// The gate being applied.
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// Ordered operand qubits (controls first, target last for controlled
    /// gates).
    pub fn qubits(&self) -> &[Qubit] {
        &self.qubits
    }

    /// The target qubit (last operand).
    pub fn target(&self) -> Qubit {
        *self.qubits.last().expect("instructions have >=1 operand")
    }

    /// Control qubits (all operands except the target), empty for
    /// uncontrolled gates. For [`Gate::Swap`] this returns the first operand,
    /// which has no control semantics; prefer [`Instruction::qubits`] there.
    pub fn controls(&self) -> &[Qubit] {
        let n = self.gate.num_controls();
        &self.qubits[..n]
    }

    /// Returns the adjoint instruction (same wires, adjoint gate).
    pub fn adjoint(&self) -> Instruction {
        Instruction {
            gate: self.gate.adjoint(),
            qubits: self.qubits.clone(),
        }
    }

    /// `true` if the instruction touches `qubit`.
    pub fn acts_on(&self, qubit: Qubit) -> bool {
        self.qubits.contains(&qubit)
    }

    /// Returns a copy with every operand remapped through `map`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Invalid`] if a qubit is missing from `map`.
    pub fn remapped(&self, map: &BTreeMap<Qubit, Qubit>) -> Result<Instruction, CircuitError> {
        let qubits = self
            .qubits
            .iter()
            .map(|q| {
                map.get(q).copied().ok_or_else(|| {
                    CircuitError::Invalid(format!("qubit {q} missing from remapping"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Instruction {
            gate: self.gate.clone(),
            qubits,
        })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.gate)?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

/// An ordered sequence of gate applications over a fixed qubit register.
///
/// `Circuit` is the unit of everything in this workspace: RevLib benchmarks
/// are circuits, the TetrisLock obfuscator transforms circuits, the splits
/// are circuits, the transpiler consumes and produces circuits.
///
/// Builder methods (`h`, `cx`, `ccx`, ...) take raw `u32` indices for
/// ergonomics and panic on out-of-range wires; the checked [`Circuit::push`]
/// returns errors instead.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
///
/// let mut c = Circuit::with_name(3, "ghz");
/// c.h(0).cx(0, 1).cx(1, 2);
/// assert_eq!(c.depth(), 3);
/// assert_eq!(c.count_multi_qubit_gates(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: u32,
    name: String,
    instructions: Vec<Instruction>,
    // Count of arity-1 instructions, maintained on every mutation so
    // `single_qubit_gate_count` is O(1) — the statevector engine reads
    // it per `apply_circuit` call to skip the fusion rewrite outright
    // for circuits that cannot contain a fusable run.
    oneq_gates: usize,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` wires.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0`.
    pub fn new(num_qubits: u32) -> Self {
        assert!(num_qubits > 0, "circuit must have at least one qubit");
        Circuit {
            num_qubits,
            name: String::new(),
            instructions: Vec::new(),
            oneq_gates: 0,
        }
    }

    /// Creates an empty named circuit.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0`.
    pub fn with_name(num_qubits: u32, name: impl Into<String>) -> Self {
        let mut c = Circuit::new(num_qubits);
        c.name = name.into();
        c
    }

    /// Number of qubit wires.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The circuit's name (empty if unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// All instructions in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The instruction at `index`, if any.
    pub fn instruction(&self, index: usize) -> Option<&Instruction> {
        self.instructions.get(index)
    }

    /// Total number of gates.
    pub fn gate_count(&self) -> usize {
        self.instructions.len()
    }

    /// Number of single-qubit (arity-1) gates, maintained incrementally
    /// so the check is O(1).
    ///
    /// The statevector engine uses this to skip the fusion stream
    /// rewrite for circuits that cannot contain a fusable run — e.g.
    /// the purely classical X/CX/CCX RevLib circuits.
    ///
    /// # Example
    ///
    /// ```
    /// let mut c = qcir::Circuit::new(3);
    /// c.h(0).cx(0, 1).t(2);
    /// assert_eq!(c.single_qubit_gate_count(), 2);
    /// ```
    pub fn single_qubit_gate_count(&self) -> usize {
        self.oneq_gates
    }

    /// `true` if the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends a validated instruction.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if an operand exceeds the
    /// register size.
    pub fn push(&mut self, instruction: Instruction) -> Result<(), CircuitError> {
        for q in instruction.qubits() {
            if q.raw() >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q.raw(),
                    num_qubits: self.num_qubits,
                });
            }
        }
        if instruction.gate().arity() == 1 {
            self.oneq_gates += 1;
        }
        self.instructions.push(instruction);
        Ok(())
    }

    /// Builds and appends an instruction from a gate and raw wire indices.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`Instruction::new`] and
    /// [`Circuit::push`].
    pub fn append(&mut self, gate: Gate, qubits: &[u32]) -> Result<(), CircuitError> {
        let inst = Instruction::new(gate, qubits.iter().copied().map(Qubit::new).collect())?;
        self.push(inst)
    }

    /// Inserts a validated instruction at `index`, shifting later gates.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::push`]; additionally `index` must be ≤
    /// [`Circuit::gate_count`] or [`CircuitError::Invalid`] is returned.
    pub fn insert(&mut self, index: usize, instruction: Instruction) -> Result<(), CircuitError> {
        if index > self.instructions.len() {
            return Err(CircuitError::Invalid(format!(
                "insertion index {index} beyond circuit length {}",
                self.instructions.len()
            )));
        }
        for q in instruction.qubits() {
            if q.raw() >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q.raw(),
                    num_qubits: self.num_qubits,
                });
            }
        }
        if instruction.gate().arity() == 1 {
            self.oneq_gates += 1;
        }
        self.instructions.insert(index, instruction);
        Ok(())
    }

    fn must(&mut self, gate: Gate, qubits: &[u32]) -> &mut Self {
        self.append(gate, qubits)
            .expect("builder methods take validated indices");
        self
    }

    /// Appends Pauli-X on `q`. Panics if `q` is out of range.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.must(Gate::X, &[q])
    }

    /// Appends Pauli-Y on `q`. Panics if `q` is out of range.
    pub fn y(&mut self, q: u32) -> &mut Self {
        self.must(Gate::Y, &[q])
    }

    /// Appends Pauli-Z on `q`. Panics if `q` is out of range.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.must(Gate::Z, &[q])
    }

    /// Appends Hadamard on `q`. Panics if `q` is out of range.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.must(Gate::H, &[q])
    }

    /// Appends S on `q`. Panics if `q` is out of range.
    pub fn s(&mut self, q: u32) -> &mut Self {
        self.must(Gate::S, &[q])
    }

    /// Appends S† on `q`. Panics if `q` is out of range.
    pub fn sdg(&mut self, q: u32) -> &mut Self {
        self.must(Gate::Sdg, &[q])
    }

    /// Appends T on `q`. Panics if `q` is out of range.
    pub fn t(&mut self, q: u32) -> &mut Self {
        self.must(Gate::T, &[q])
    }

    /// Appends T† on `q`. Panics if `q` is out of range.
    pub fn tdg(&mut self, q: u32) -> &mut Self {
        self.must(Gate::Tdg, &[q])
    }

    /// Appends √X on `q`. Panics if `q` is out of range.
    pub fn sx(&mut self, q: u32) -> &mut Self {
        self.must(Gate::Sx, &[q])
    }

    /// Appends Rx(angle) on `q`. Panics if `q` is out of range.
    pub fn rx(&mut self, angle: f64, q: u32) -> &mut Self {
        self.must(Gate::Rx(angle), &[q])
    }

    /// Appends Ry(angle) on `q`. Panics if `q` is out of range.
    pub fn ry(&mut self, angle: f64, q: u32) -> &mut Self {
        self.must(Gate::Ry(angle), &[q])
    }

    /// Appends Rz(angle) on `q`. Panics if `q` is out of range.
    pub fn rz(&mut self, angle: f64, q: u32) -> &mut Self {
        self.must(Gate::Rz(angle), &[q])
    }

    /// Appends the phase gate P(angle) on `q`. Panics if `q` is out of range.
    pub fn p(&mut self, angle: f64, q: u32) -> &mut Self {
        self.must(Gate::P(angle), &[q])
    }

    /// Appends U(θ, φ, λ) on `q`. Panics if `q` is out of range.
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: u32) -> &mut Self {
        self.must(Gate::U(theta, phi, lambda), &[q])
    }

    /// Appends CX with `control` and `target`. Panics on invalid wires.
    pub fn cx(&mut self, control: u32, target: u32) -> &mut Self {
        self.must(Gate::CX, &[control, target])
    }

    /// Appends CY with `control` and `target`. Panics on invalid wires.
    pub fn cy(&mut self, control: u32, target: u32) -> &mut Self {
        self.must(Gate::CY, &[control, target])
    }

    /// Appends CZ on the pair. Panics on invalid wires.
    pub fn cz(&mut self, control: u32, target: u32) -> &mut Self {
        self.must(Gate::CZ, &[control, target])
    }

    /// Appends controlled-H. Panics on invalid wires.
    pub fn ch(&mut self, control: u32, target: u32) -> &mut Self {
        self.must(Gate::CH, &[control, target])
    }

    /// Appends controlled-phase CP(angle). Panics on invalid wires.
    pub fn cp(&mut self, angle: f64, control: u32, target: u32) -> &mut Self {
        self.must(Gate::CP(angle), &[control, target])
    }

    /// Appends controlled-Rz. Panics on invalid wires.
    pub fn crz(&mut self, angle: f64, control: u32, target: u32) -> &mut Self {
        self.must(Gate::CRz(angle), &[control, target])
    }

    /// Appends SWAP. Panics on invalid wires.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.must(Gate::Swap, &[a, b])
    }

    /// Appends a Toffoli gate. Panics on invalid wires.
    pub fn ccx(&mut self, c0: u32, c1: u32, target: u32) -> &mut Self {
        self.must(Gate::CCX, &[c0, c1, target])
    }

    /// Appends a Fredkin (controlled-swap) gate. Panics on invalid wires.
    pub fn cswap(&mut self, control: u32, a: u32, b: u32) -> &mut Self {
        self.must(Gate::CSwap, &[control, a, b])
    }

    /// Appends a multi-controlled X; `controls` may be empty (plain X) or of
    /// any length. One and two controls normalize to CX/CCX.
    ///
    /// # Panics
    ///
    /// Panics on invalid or duplicate wires.
    pub fn mcx(&mut self, controls: &[u32], target: u32) -> &mut Self {
        match controls.len() {
            0 => self.x(target),
            1 => self.cx(controls[0], target),
            2 => self.ccx(controls[0], controls[1], target),
            n => {
                let mut operands: Vec<u32> = controls.to_vec();
                operands.push(target);
                self.must(Gate::Mcx(n as u32), &operands)
            }
        }
    }

    /// Circuit depth: length of the longest wire-dependency chain (the
    /// number of ASAP layers). An empty circuit has depth 0.
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.num_qubits as usize];
        let mut depth = 0;
        for inst in &self.instructions {
            let layer = inst
                .qubits()
                .iter()
                .map(|q| frontier[q.index()])
                .max()
                .unwrap_or(0)
                + 1;
            for q in inst.qubits() {
                frontier[q.index()] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// Returns the inverse circuit: adjoint gates in reverse order, so that
    /// `c.compose(&c.inverse())` is the identity. This is the paper's
    /// `R → R⁻¹` primitive (§II-B3).
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::with_name(
            self.num_qubits,
            if self.name.is_empty() {
                String::new()
            } else {
                format!("{}_dg", self.name)
            },
        );
        inv.instructions = self
            .instructions
            .iter()
            .rev()
            .map(Instruction::adjoint)
            .collect();
        // Adjoints preserve arity, so the count carries over.
        inv.oneq_gates = self.oneq_gates;
        inv
    }

    /// Appends all of `other`'s instructions to `self`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Invalid`] if `other` has more qubits than
    /// `self`.
    pub fn compose(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        if other.num_qubits > self.num_qubits {
            return Err(CircuitError::Invalid(format!(
                "cannot compose {}-qubit circuit onto {}-qubit circuit",
                other.num_qubits, self.num_qubits
            )));
        }
        self.instructions.extend(other.instructions.iter().cloned());
        self.oneq_gates += other.oneq_gates;
        Ok(())
    }

    /// Returns `self` followed by `other` as a new circuit (register size is
    /// the max of the two).
    ///
    /// # Errors
    ///
    /// Currently infallible but kept fallible for symmetry with
    /// [`Circuit::compose`].
    pub fn then(&self, other: &Circuit) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::with_name(self.num_qubits.max(other.num_qubits), self.name.clone());
        out.instructions = self.instructions.clone();
        out.instructions.extend(other.instructions.iter().cloned());
        out.oneq_gates = self.oneq_gates + other.oneq_gates;
        Ok(out)
    }

    /// Per-gate-kind histogram, keyed by [`Gate::name`].
    pub fn gate_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut histogram = BTreeMap::new();
        for inst in &self.instructions {
            *histogram.entry(inst.gate().name()).or_insert(0) += 1;
        }
        histogram
    }

    /// Number of gates acting on two or more qubits.
    pub fn count_multi_qubit_gates(&self) -> usize {
        self.instructions
            .iter()
            .filter(|inst| inst.gate().arity() > 1)
            .count()
    }

    /// Qubits that are touched by at least one gate, ascending.
    pub fn active_qubits(&self) -> Vec<Qubit> {
        let mut used = vec![false; self.num_qubits as usize];
        for inst in &self.instructions {
            for q in inst.qubits() {
                used[q.index()] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| Qubit::new(i as u32))
            .collect()
    }

    /// Builds a new circuit containing only the active wires, renumbered
    /// densely from zero. Returns the compacted circuit together with the
    /// mapping `old qubit → new qubit`.
    ///
    /// This is how TetrisLock split segments end up with *different* qubit
    /// counts: wires a segment never touches are dropped entirely.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Invalid`] if the circuit has no active qubits.
    pub fn compacted(&self) -> Result<(Circuit, BTreeMap<Qubit, Qubit>), CircuitError> {
        let active = self.active_qubits();
        if active.is_empty() {
            return Err(CircuitError::Invalid(
                "cannot compact a circuit with no gates".into(),
            ));
        }
        let map: BTreeMap<Qubit, Qubit> = active
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, Qubit::new(new as u32)))
            .collect();
        let mut out = Circuit::with_name(active.len() as u32, self.name.clone());
        for inst in &self.instructions {
            out.push(inst.remapped(&map)?)?;
        }
        Ok((out, map))
    }

    /// Returns a copy with all wires remapped through `map` onto a register
    /// of `num_qubits` wires.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Invalid`] if a wire is missing from `map`, or
    /// [`CircuitError::QubitOutOfRange`] if a mapped wire exceeds the new
    /// register.
    pub fn remapped(
        &self,
        num_qubits: u32,
        map: &BTreeMap<Qubit, Qubit>,
    ) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::with_name(num_qubits, self.name.clone());
        for inst in &self.instructions {
            out.push(inst.remapped(map)?)?;
        }
        Ok(out)
    }

    /// Iterates over instructions (alias for `instructions().iter()`).
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit {} ({} qubits, {} gates, depth {})",
            if self.name.is_empty() {
                "<anon>"
            } else {
                &self.name
            },
            self.num_qubits,
            self.gate_count(),
            self.depth()
        )?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

impl Extend<Instruction> for Circuit {
    /// Extends the circuit, skipping validation (operands are assumed to be
    /// in range; out-of-range operands will surface as panics downstream).
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        for inst in iter {
            self.push(inst).expect("extended instruction out of range");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2).rz(0.3, 2);
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.num_qubits(), 3);
    }

    #[test]
    fn single_qubit_gate_count_tracks_every_mutation() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1);
        assert_eq!(c.single_qubit_gate_count(), 2);

        c.insert(1, Instruction::new(Gate::S, vec![Qubit::new(2)]).unwrap())
            .unwrap();
        c.insert(
            0,
            Instruction::new(Gate::CZ, vec![Qubit::new(0), Qubit::new(1)]).unwrap(),
        )
        .unwrap();
        assert_eq!(c.single_qubit_gate_count(), 3);

        assert_eq!(c.inverse().single_qubit_gate_count(), 3);

        let mut other = Circuit::new(3);
        other.x(2).ccx(0, 1, 2);
        c.compose(&other).unwrap();
        assert_eq!(c.single_qubit_gate_count(), 4);

        let chained = c.then(&other).unwrap();
        assert_eq!(chained.single_qubit_gate_count(), 5);

        // The purely classical RevLib shape: no single-qubit gates.
        let mut classical = Circuit::new(3);
        classical.x(0).cx(0, 1).ccx(0, 1, 2);
        assert_eq!(classical.single_qubit_gate_count(), 1); // X is arity 1
    }

    #[test]
    #[should_panic(expected = "validated indices")]
    fn builder_panics_out_of_range() {
        let mut c = Circuit::new(2);
        c.x(5);
    }

    #[test]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        let inst = Instruction::new(Gate::X, vec![Qubit::new(4)]).unwrap();
        assert_eq!(
            c.push(inst),
            Err(CircuitError::QubitOutOfRange {
                qubit: 4,
                num_qubits: 2
            })
        );
    }

    #[test]
    fn instruction_rejects_duplicates_and_arity() {
        assert!(matches!(
            Instruction::new(Gate::CX, vec![Qubit::new(1), Qubit::new(1)]),
            Err(CircuitError::DuplicateQubit { qubit: 1 })
        ));
        assert!(matches!(
            Instruction::new(Gate::CX, vec![Qubit::new(1)]),
            Err(CircuitError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn depth_counts_longest_chain() {
        let mut c = Circuit::new(3);
        assert_eq!(c.depth(), 0);
        c.h(0).h(1).h(2); // one layer
        assert_eq!(c.depth(), 1);
        c.cx(0, 1); // second layer
        assert_eq!(c.depth(), 2);
        c.x(2); // fits in layer 2
        assert_eq!(c.depth(), 2);
        c.ccx(0, 1, 2); // third layer
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn parallel_gates_share_layer() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn inverse_reverses_and_adjoints() {
        let mut c = Circuit::with_name(2, "test");
        c.h(0).s(1).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.gate_count(), 3);
        assert_eq!(inv.instruction(0).unwrap().gate(), &Gate::CX);
        assert_eq!(inv.instruction(1).unwrap().gate(), &Gate::Sdg);
        assert_eq!(inv.instruction(2).unwrap().gate(), &Gate::H);
        assert_eq!(inv.name(), "test_dg");
    }

    #[test]
    fn double_inverse_is_identity_structurally() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).cx(1, 2).rz(0.25, 0).ccx(0, 1, 2);
        let back = c.inverse().inverse();
        assert_eq!(back.instructions(), c.instructions());
    }

    #[test]
    fn compose_and_then() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.compose(&b).unwrap();
        assert_eq!(a.gate_count(), 2);

        let joined = a.then(&b).unwrap();
        assert_eq!(joined.gate_count(), 3);
    }

    #[test]
    fn compose_rejects_larger_register() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        assert!(a.compose(&b).is_err());
    }

    #[test]
    fn histogram_counts_by_name() {
        let mut c = Circuit::new(3);
        c.x(0).x(1).cx(0, 1).ccx(0, 1, 2);
        let h = c.gate_histogram();
        assert_eq!(h["x"], 2);
        assert_eq!(h["cx"], 1);
        assert_eq!(h["ccx"], 1);
    }

    #[test]
    fn active_qubits_and_compaction() {
        let mut c = Circuit::new(6);
        c.x(1).cx(1, 4);
        assert_eq!(c.active_qubits(), vec![Qubit::new(1), Qubit::new(4)]);

        let (compact, map) = c.compacted().unwrap();
        assert_eq!(compact.num_qubits(), 2);
        assert_eq!(map[&Qubit::new(1)], Qubit::new(0));
        assert_eq!(map[&Qubit::new(4)], Qubit::new(1));
        assert_eq!(
            compact.instruction(1).unwrap().qubits(),
            &[Qubit::new(0), Qubit::new(1)]
        );
    }

    #[test]
    fn compacting_empty_circuit_errors() {
        let c = Circuit::new(3);
        assert!(c.compacted().is_err());
    }

    #[test]
    fn mcx_normalizes_small_arities() {
        let mut c = Circuit::new(5);
        c.mcx(&[], 0);
        c.mcx(&[0], 1);
        c.mcx(&[0, 1], 2);
        c.mcx(&[0, 1, 2], 3);
        assert_eq!(c.instruction(0).unwrap().gate(), &Gate::X);
        assert_eq!(c.instruction(1).unwrap().gate(), &Gate::CX);
        assert_eq!(c.instruction(2).unwrap().gate(), &Gate::CCX);
        assert_eq!(c.instruction(3).unwrap().gate(), &Gate::Mcx(3));
    }

    #[test]
    fn insert_places_gate_at_index() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let inst = Instruction::new(Gate::X, vec![Qubit::new(1)]).unwrap();
        c.insert(1, inst).unwrap();
        assert_eq!(c.instruction(1).unwrap().gate(), &Gate::X);
        assert_eq!(c.gate_count(), 3);
        let bad = Instruction::new(Gate::X, vec![Qubit::new(1)]).unwrap();
        assert!(c.insert(99, bad).is_err());
    }

    #[test]
    fn controls_and_target_accessors() {
        let mut c = Circuit::new(3);
        c.ccx(2, 0, 1);
        let inst = c.instruction(0).unwrap();
        assert_eq!(inst.controls(), &[Qubit::new(2), Qubit::new(0)]);
        assert_eq!(inst.target(), Qubit::new(1));
    }
}
