//! Single-qubit gate fusion pre-pass.
//!
//! Deep circuits — transpiled Euler-angle chains, obfuscation padding,
//! stimulus preparation layers — spend most of their length in runs of
//! single-qubit gates on the same wire. A simulator that applies them
//! one at a time pays one full pass over the amplitude array per gate;
//! fusing each run into a single composite operation cuts that to one
//! pass per *run*.
//!
//! [`fused_stream`] performs the structural half of that optimisation:
//! it rewrites the instruction stream into [`FusedOp`]s, grouping every
//! maximal chain of adjacent single-qubit gates on one wire into a
//! [`WireRun`]. In the wire-dependency DAG of [`crate::dag::CircuitDag`]
//! these chains are exactly the maximal paths whose nodes are all
//! single-qubit: a run is broken only by a multi-qubit gate touching the
//! wire (a DAG node with that wire among its operands), never by gates
//! on other wires. Because a pending run commutes with every gate that
//! does not touch its wire, emitting the run immediately before the
//! first gate that *does* touch it preserves the circuit's unitary
//! exactly.
//!
//! The numeric half — multiplying the run's 2×2 matrices and applying
//! the product with one kernel — lives in the simulator (`qsim`), which
//! owns complex arithmetic.
//!
//! Identity gates ([`Gate::I`]) are dropped from the stream entirely,
//! matching the simulator's dispatch.

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;
use crate::qubit::Qubit;

/// A maximal run of adjacent single-qubit gates on one wire, in
/// application order (`gates[0]` acts first).
#[derive(Debug, Clone, PartialEq)]
pub struct WireRun<'c> {
    /// The wire every gate of the run acts on.
    pub qubit: Qubit,
    /// The gates of the run, earliest first. Always length ≥ 1; a lone
    /// single-qubit gate becomes a unit run, which the simulator
    /// applies through its ordinary per-gate dispatch.
    pub gates: Vec<&'c Gate>,
}

/// One element of the fused instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp<'c> {
    /// A run of single-qubit gates on one wire (length ≥ 1).
    Run(WireRun<'c>),
    /// A multi-qubit instruction, kept as-is.
    Single(&'c Instruction),
}

impl FusedOp<'_> {
    /// Number of original instructions this op covers.
    pub fn len(&self) -> usize {
        match self {
            FusedOp::Run(run) => run.gates.len(),
            FusedOp::Single(_) => 1,
        }
    }

    /// `true` if the op covers no instructions (never produced by
    /// [`fused_stream`]; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Rewrites `circuit`'s instruction stream into a fused op stream.
///
/// The result is a valid topological reordering of the original
/// instructions: per-wire gate order is preserved exactly, multi-qubit
/// gates keep their relative order, and every emitted [`FusedOp::Run`]
/// is a maximal single-qubit chain of the wire-dependency DAG. Applying
/// the ops in order therefore implements the same unitary as the
/// original circuit.
///
/// [`Gate::I`] instructions are dropped.
///
/// # Example
///
/// ```
/// use qcir::fusion::{fused_stream, FusedOp};
/// use qcir::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).t(0).s(0).cx(0, 1).h(1).z(1);
/// let ops = fused_stream(&c);
/// // h·t·s on wire 0 fuse; cx stays single; h·z on wire 1 fuse.
/// assert_eq!(ops.len(), 3);
/// assert!(matches!(&ops[0], FusedOp::Run(run) if run.gates.len() == 3));
/// assert!(matches!(ops[1], FusedOp::Single(_)));
/// assert!(matches!(&ops[2], FusedOp::Run(run) if run.gates.len() == 2));
/// ```
pub fn fused_stream(circuit: &Circuit) -> Vec<FusedOp<'_>> {
    let n = circuit.num_qubits() as usize;
    let mut pending: Vec<Vec<&Gate>> = vec![Vec::new(); n];
    let mut out = Vec::with_capacity(circuit.gate_count());
    for inst in circuit.iter() {
        let gate = inst.gate();
        if matches!(gate, Gate::I) {
            continue;
        }
        if gate.arity() == 1 {
            pending[inst.qubits()[0].index()].push(gate);
            continue;
        }
        for q in inst.qubits() {
            flush(&mut pending[q.index()], *q, &mut out);
        }
        out.push(FusedOp::Single(inst));
    }
    for (q, run) in pending.iter_mut().enumerate() {
        flush(run, Qubit::new(q as u32), &mut out);
    }
    out
}

/// Emits the pending run on `qubit` (if any) into `out`.
fn flush<'c>(pending: &mut Vec<&'c Gate>, qubit: Qubit, out: &mut Vec<FusedOp<'c>>) {
    if !pending.is_empty() {
        out.push(FusedOp::Run(WireRun {
            qubit,
            gates: std::mem::take(pending),
        }));
    }
}

// ---------------------------------------------------------------------
// Kernel cost model
// ---------------------------------------------------------------------
//
// Fusing a run is only a win when the single fused pass is cheaper than
// the specialized per-gate passes it displaces. A diagonal gate is a
// phase scan touching half the amplitude array; an X is a swap walk
// with no arithmetic; only genuinely dense 2×2 gates pay the full
// pair-rotation kernel. The PR-4 engine fused unconditionally and
// *lost* on Clifford+T workloads whose runs are mostly cheap gates
// (e.g. `X·T` fused into a dense kernel costs more compute than a swap
// plus a half-array phase scan). The functions below let the simulator
// predict, structurally and without any complex arithmetic, both the
// kernel class of a run's 2×2 product and the relative sweep cost of
// fused vs unfused application — and skip fusion when it loses.

/// Structural kernel class of a single-qubit gate or fused-run product.
///
/// The class of a product follows from the factors alone — no matrix
/// arithmetic needed: diagonal·diagonal and an even number of
/// antidiagonal factors stay diagonal, an odd antidiagonal count makes
/// the product antidiagonal, and any dense factor makes it dense.
///
/// # Example
///
/// ```
/// use qcir::fusion::{run_kernel_class, KernelClass};
/// use qcir::Gate;
///
/// // X·T is antidiagonal: one swap-with-phase pass, not a dense kernel.
/// assert_eq!(
///     run_kernel_class(&[&Gate::X, &Gate::T]),
///     KernelClass::Antidiagonal
/// );
/// // X·T·X is diagonal again (even antidiagonal parity).
/// assert_eq!(
///     run_kernel_class(&[&Gate::X, &Gate::T, &Gate::X]),
///     KernelClass::Diagonal
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// Both off-diagonal entries exactly zero: a pure phase scan.
    Diagonal,
    /// Both diagonal entries exactly zero: a swap-with-phase pass.
    Antidiagonal,
    /// Dense 2×2: the full pair-rotation kernel.
    General,
}

/// Execution regime the cost model prices for.
///
/// Below the last-level cache the kernels are compute-bound and the
/// arithmetic per amplitude dominates; once the state outgrows cache
/// they are memory-bound and the number of full-array sweeps is all
/// that matters (every pass streams the same bytes, so fusing always
/// saves traffic). The simulator picks the regime from the register
/// size; see `qsim::statevector::MEM_BOUND_MIN_QUBITS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostRegime {
    /// State fits in cache: weight arithmetic, sweeps are cheap.
    ComputeBound,
    /// State streams from memory: weight sweeps, arithmetic is free.
    MemoryBound,
}

/// Kernel class of a single-qubit gate, or `None` for multi-qubit
/// gates (which never participate in runs).
pub fn gate_kernel_class(gate: &Gate) -> Option<KernelClass> {
    match gate {
        Gate::I
        | Gate::Z
        | Gate::S
        | Gate::Sdg
        | Gate::T
        | Gate::Tdg
        | Gate::P(_)
        | Gate::Rz(_) => Some(KernelClass::Diagonal),
        Gate::X | Gate::Y => Some(KernelClass::Antidiagonal),
        Gate::H | Gate::Sx | Gate::Sxdg | Gate::Rx(_) | Gate::Ry(_) | Gate::U(..) => {
            Some(KernelClass::General)
        }
        _ => None,
    }
}

/// Kernel class of the 2×2 product of a run (`gates[0]` acts first).
///
/// # Panics
///
/// Panics if any gate is not single-qubit.
pub fn run_kernel_class(gates: &[&Gate]) -> KernelClass {
    let mut anti_parity = false;
    for gate in gates {
        match gate_kernel_class(gate).expect("runs contain only single-qubit gates") {
            KernelClass::General => return KernelClass::General,
            KernelClass::Antidiagonal => anti_parity = !anti_parity,
            KernelClass::Diagonal => {}
        }
    }
    if anti_parity {
        KernelClass::Antidiagonal
    } else {
        KernelClass::Diagonal
    }
}

/// `true` for diagonal gates whose `|0⟩` entry is exactly 1 (Z, S, T,
/// P…), i.e. the phase scan touches only the `|1⟩` half of the array.
fn is_pure_phase(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::I | Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::P(_)
    )
}

/// Relative cost of one application of `gate` through its specialized
/// kernel path, in sweeps-of-the-array units (1.0 ≈ one full
/// read-modify-write pass with one complex multiply per amplitude).
///
/// Multi-qubit gates are priced too so [`plan_cost`] can compare whole
/// circuits; their cost is identical under both plans, so only the
/// single-qubit entries affect fusion decisions.
pub fn gate_sweep_cost(gate: &Gate, regime: CostRegime) -> f64 {
    // Dense kernels pay four complex multiplies per pair;
    // compute-bound that is ~2 sweeps' worth of work, memory-bound it
    // is still just one pass.
    let dense = match regime {
        CostRegime::ComputeBound => 2.0,
        CostRegime::MemoryBound => 1.0,
    };
    match gate {
        Gate::I => 0.0,
        // Phase-only diagonals touch the |1⟩ half of the array.
        Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::P(_) => 0.5,
        // Rz multiplies both halves.
        Gate::Rz(_) => 1.0,
        // X is a swap walk: full traffic but zero arithmetic.
        Gate::X => match regime {
            CostRegime::ComputeBound => 0.4,
            CostRegime::MemoryBound => 1.0,
        },
        // Y is an antidiagonal pass: one multiply per amplitude.
        Gate::Y => 1.0,
        // Dense single-qubit kernels (pair-rotation path).
        Gate::H | Gate::Sx | Gate::Sxdg | Gate::Rx(_) | Gate::Ry(_) | Gate::U(..) => dense,
        // Controlled phases touch a quarter of the array.
        Gate::CZ | Gate::CP(_) => 0.25,
        // CRz is two controlled-phase passes.
        Gate::CRz(_) => 0.5,
        // Permutation walks: swaps over the controlled subset.
        Gate::CX | Gate::CCX | Gate::Mcx(_) | Gate::Swap | Gate::CSwap => 0.5,
        // Dense two-qubit kernel (CY/CH).
        Gate::CY | Gate::CH => dense,
    }
}

/// Relative cost of applying a run's 2×2 product with the kernel its
/// [`run_kernel_class`] routes to.
pub fn fused_sweep_cost(gates: &[&Gate], regime: CostRegime) -> f64 {
    match run_kernel_class(gates) {
        KernelClass::Diagonal => {
            // A product of pure-phase gates keeps d0 = 1 exactly, so
            // the fused scan still touches only the |1⟩ half.
            if gates.iter().all(|g| is_pure_phase(g)) {
                0.5
            } else {
                1.0
            }
        }
        KernelClass::Antidiagonal => 1.0,
        KernelClass::General => match regime {
            CostRegime::ComputeBound => 2.0,
            CostRegime::MemoryBound => 1.0,
        },
    }
}

/// `true` if applying the run as one fused kernel is strictly cheaper
/// than the specialized per-gate paths it displaces. Unit runs never
/// fuse (there is nothing to save).
///
/// # Example
///
/// ```
/// use qcir::fusion::{fusion_wins, CostRegime};
/// use qcir::Gate;
///
/// // In cache, a swap walk plus a half-array phase scan beats one
/// // antidiagonal multiply pass — fusion is skipped…
/// assert!(!fusion_wins(&[&Gate::X, &Gate::T], CostRegime::ComputeBound));
/// // …but once the state streams from memory, fewer sweeps always win.
/// assert!(fusion_wins(&[&Gate::X, &Gate::T], CostRegime::MemoryBound));
/// // Dense runs fuse in both regimes.
/// assert!(fusion_wins(&[&Gate::H, &Gate::T], CostRegime::ComputeBound));
/// ```
pub fn fusion_wins(gates: &[&Gate], regime: CostRegime) -> bool {
    if gates.len() < 2 {
        return false;
    }
    let individual: f64 = gates.iter().map(|g| gate_sweep_cost(g, regime)).sum();
    fused_sweep_cost(gates, regime) < individual
}

/// Model cost of executing `circuit` with (`fuse = true`) or without
/// the cost-gated fusion pre-pass, in [`gate_sweep_cost`] units.
///
/// Because a run is fused only when [`fusion_wins`], the fused plan is
/// never costlier than the unfused one — the invariant the regression
/// suite pins so the 16-qubit fusion loss of the ungated engine cannot
/// return.
pub fn plan_cost(circuit: &Circuit, fuse: bool, regime: CostRegime) -> f64 {
    let mut total = 0.0;
    for op in fused_stream(circuit) {
        match op {
            FusedOp::Single(inst) => total += gate_sweep_cost(inst.gate(), regime),
            FusedOp::Run(run) => {
                let individual: f64 = run.gates.iter().map(|g| gate_sweep_cost(g, regime)).sum();
                if fuse && fusion_wins(&run.gates, regime) {
                    total += fused_sweep_cost(&run.gates, regime);
                } else {
                    total += individual;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flatten_per_wire(ops: &[FusedOp<'_>], n: u32) -> Vec<Vec<Gate>> {
        let mut wires: Vec<Vec<Gate>> = vec![Vec::new(); n as usize];
        for op in ops {
            match op {
                FusedOp::Run(run) => {
                    for g in &run.gates {
                        wires[run.qubit.index()].push((*g).clone());
                    }
                }
                FusedOp::Single(inst) => {
                    for q in inst.qubits() {
                        wires[q.index()].push(inst.gate().clone());
                    }
                }
            }
        }
        wires
    }

    #[test]
    fn adjacent_gates_on_one_wire_fuse() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).s(0).x(0);
        let ops = fused_stream(&c);
        assert_eq!(ops.len(), 1);
        assert!(matches!(&ops[0], FusedOp::Run(run) if run.gates.len() == 4));
    }

    #[test]
    fn multi_qubit_gate_breaks_runs_on_its_wires_only() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).cx(0, 1).t(0).t(1).t(2);
        let ops = fused_stream(&c);
        // Wire 2's h…t survives as one run across the cx.
        let wire2_runs: Vec<_> = ops
            .iter()
            .filter(|op| matches!(op, FusedOp::Run(run) if run.qubit == Qubit::new(2)))
            .collect();
        assert_eq!(wire2_runs.len(), 1);
        assert_eq!(wire2_runs[0].len(), 2);
        // Wires 0 and 1 each broke into two emissions around the cx.
        let wire0_ops: Vec<_> = ops
            .iter()
            .filter(|op| matches!(op, FusedOp::Run(run) if run.qubit == Qubit::new(0)))
            .collect();
        assert_eq!(wire0_ops.len(), 2);
    }

    #[test]
    fn per_wire_order_is_preserved() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).cx(0, 1).s(0).ccx(0, 1, 2).z(2).x(0);
        let ops = fused_stream(&c);
        let wires = flatten_per_wire(&ops, 3);
        assert_eq!(
            wires[0],
            vec![Gate::H, Gate::CX, Gate::S, Gate::CCX, Gate::X]
        );
        assert_eq!(wires[1], vec![Gate::T, Gate::CX, Gate::CCX]);
        assert_eq!(wires[2], vec![Gate::CCX, Gate::Z]);
    }

    #[test]
    fn every_instruction_appears_exactly_once() {
        let mut c = Circuit::new(4);
        c.h(0)
            .rz(0.3, 1)
            .cx(1, 2)
            .t(2)
            .tdg(2)
            .swap(0, 3)
            .u(0.1, 0.2, 0.3, 3)
            .ccx(0, 1, 3);
        let ops = fused_stream(&c);
        let covered: usize = ops.iter().map(FusedOp::len).sum();
        assert_eq!(covered, c.gate_count());
    }

    #[test]
    fn runs_are_broken_before_the_dependent_gate() {
        // The run on wire 0 must be emitted before the cx consuming it.
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1);
        let ops = fused_stream(&c);
        assert!(matches!(&ops[0], FusedOp::Run(run) if run.gates.len() == 2));
        assert!(matches!(&ops[1], FusedOp::Single(inst) if inst.gate() == &Gate::CX));
    }

    #[test]
    fn identity_gates_are_dropped() {
        let mut c = Circuit::new(2);
        c.append(Gate::I, &[0]).unwrap();
        c.h(1);
        let ops = fused_stream(&c);
        assert_eq!(ops.len(), 1);
        assert!(matches!(&ops[0], FusedOp::Run(run) if run.qubit == Qubit::new(1)));
    }

    #[test]
    fn lone_single_qubit_gate_is_a_unit_run() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let ops = fused_stream(&c);
        assert_eq!(ops.len(), 2);
        assert!(matches!(&ops[0], FusedOp::Run(run) if run.gates == vec![&Gate::H]));
    }

    #[test]
    fn empty_circuit_yields_empty_stream() {
        assert!(fused_stream(&Circuit::new(3)).is_empty());
    }

    #[test]
    fn kernel_class_algebra_tracks_antidiagonal_parity() {
        use KernelClass::*;
        assert_eq!(run_kernel_class(&[&Gate::T, &Gate::S]), Diagonal);
        assert_eq!(run_kernel_class(&[&Gate::X, &Gate::T]), Antidiagonal);
        assert_eq!(run_kernel_class(&[&Gate::X, &Gate::Y]), Diagonal);
        assert_eq!(
            run_kernel_class(&[&Gate::X, &Gate::T, &Gate::Y, &Gate::Z]),
            Diagonal
        );
        assert_eq!(run_kernel_class(&[&Gate::X, &Gate::H]), General);
        assert_eq!(run_kernel_class(&[&Gate::Rz(0.2), &Gate::Y]), Antidiagonal);
        assert_eq!(gate_kernel_class(&Gate::CX), None);
        assert_eq!(gate_kernel_class(&Gate::Sx), Some(General));
    }

    #[test]
    fn fusion_decisions_follow_the_regime() {
        use CostRegime::*;
        // Diagonal runs always win: one half-array scan replaces two.
        assert!(fusion_wins(&[&Gate::S, &Gate::T], ComputeBound));
        assert!(fusion_wins(&[&Gate::S, &Gate::T], MemoryBound));
        // The PR-4 regression case: X·T fused into a dense/antidiagonal
        // kernel loses to swap + half-scan while the state is in cache…
        assert!(!fusion_wins(&[&Gate::X, &Gate::T], ComputeBound));
        assert!(!fusion_wins(&[&Gate::T, &Gate::X], ComputeBound));
        // …but wins once every pass streams from DRAM.
        assert!(fusion_wins(&[&Gate::X, &Gate::T], MemoryBound));
        // Dense runs win in both regimes.
        assert!(fusion_wins(&[&Gate::H, &Gate::T], ComputeBound));
        assert!(fusion_wins(&[&Gate::H, &Gate::T], MemoryBound));
        assert!(fusion_wins(
            &[&Gate::H, &Gate::X, &Gate::Rz(0.5)],
            ComputeBound
        ));
        // Unit runs never fuse.
        assert!(!fusion_wins(&[&Gate::H], ComputeBound));
        assert!(!fusion_wins(&[&Gate::H], MemoryBound));
    }

    #[test]
    fn fused_cost_distinguishes_pure_phase_from_general_diagonal() {
        use CostRegime::*;
        // S·T keeps d0 = 1 exactly: still a half-array scan.
        assert_eq!(fused_sweep_cost(&[&Gate::S, &Gate::T], ComputeBound), 0.5);
        // An Rz factor scales both halves.
        assert_eq!(
            fused_sweep_cost(&[&Gate::S, &Gate::Rz(0.1)], ComputeBound),
            1.0
        );
        // Antidiagonal product: one multiply per amplitude.
        assert_eq!(fused_sweep_cost(&[&Gate::X, &Gate::T], MemoryBound), 1.0);
    }

    #[test]
    fn plan_cost_fused_never_exceeds_unfused() {
        // By construction (each run takes min(fused, unfused)), but pin
        // it: the bench regression suite relies on this invariant.
        let mut c = Circuit::new(6);
        c.x(0)
            .t(0)
            .cx(0, 1)
            .h(2)
            .t(2)
            .s(2)
            .x(3)
            .z(3)
            .rz(0.3, 3)
            .ccx(1, 2, 3)
            .y(4)
            .x(4)
            .t(5)
            .tdg(5)
            .crz(0.7, 4, 5);
        for regime in [CostRegime::ComputeBound, CostRegime::MemoryBound] {
            let fused = plan_cost(&c, true, regime);
            let unfused = plan_cost(&c, false, regime);
            assert!(
                fused <= unfused,
                "fused {fused} > unfused {unfused} in {regime:?}"
            );
        }
        // And the gate-cost table keeps multi-qubit costs regime-comparable.
        assert_eq!(gate_sweep_cost(&Gate::I, CostRegime::ComputeBound), 0.0);
        assert_eq!(gate_sweep_cost(&Gate::CZ, CostRegime::MemoryBound), 0.25);
    }

    #[test]
    fn trailing_runs_flush_in_wire_order() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).t(2).s(0);
        let ops = fused_stream(&c);
        assert!(matches!(ops[0], FusedOp::Single(_)));
        // Trailing flush: wire 0's s, then wire 2's h·t.
        let tail: Vec<Qubit> = ops[1..]
            .iter()
            .map(|op| match op {
                FusedOp::Run(run) => run.qubit,
                FusedOp::Single(inst) => inst.qubits()[0],
            })
            .collect();
        assert_eq!(tail, vec![Qubit::new(0), Qubit::new(2)]);
    }
}
