//! Single-qubit gate fusion pre-pass.
//!
//! Deep circuits — transpiled Euler-angle chains, obfuscation padding,
//! stimulus preparation layers — spend most of their length in runs of
//! single-qubit gates on the same wire. A simulator that applies them
//! one at a time pays one full pass over the amplitude array per gate;
//! fusing each run into a single composite operation cuts that to one
//! pass per *run*.
//!
//! [`fused_stream`] performs the structural half of that optimisation:
//! it rewrites the instruction stream into [`FusedOp`]s, grouping every
//! maximal chain of adjacent single-qubit gates on one wire into a
//! [`WireRun`]. In the wire-dependency DAG of [`crate::dag::CircuitDag`]
//! these chains are exactly the maximal paths whose nodes are all
//! single-qubit: a run is broken only by a multi-qubit gate touching the
//! wire (a DAG node with that wire among its operands), never by gates
//! on other wires. Because a pending run commutes with every gate that
//! does not touch its wire, emitting the run immediately before the
//! first gate that *does* touch it preserves the circuit's unitary
//! exactly.
//!
//! The numeric half — multiplying the run's 2×2 matrices and applying
//! the product with one kernel — lives in the simulator (`qsim`), which
//! owns complex arithmetic.
//!
//! Identity gates ([`Gate::I`]) are dropped from the stream entirely,
//! matching the simulator's dispatch.

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;
use crate::qubit::Qubit;

/// A maximal run of adjacent single-qubit gates on one wire, in
/// application order (`gates[0]` acts first).
#[derive(Debug, Clone, PartialEq)]
pub struct WireRun<'c> {
    /// The wire every gate of the run acts on.
    pub qubit: Qubit,
    /// The gates of the run, earliest first. Always length ≥ 1; a lone
    /// single-qubit gate becomes a unit run, which the simulator
    /// applies through its ordinary per-gate dispatch.
    pub gates: Vec<&'c Gate>,
}

/// One element of the fused instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp<'c> {
    /// A run of single-qubit gates on one wire (length ≥ 1).
    Run(WireRun<'c>),
    /// A multi-qubit instruction, kept as-is.
    Single(&'c Instruction),
}

impl FusedOp<'_> {
    /// Number of original instructions this op covers.
    pub fn len(&self) -> usize {
        match self {
            FusedOp::Run(run) => run.gates.len(),
            FusedOp::Single(_) => 1,
        }
    }

    /// `true` if the op covers no instructions (never produced by
    /// [`fused_stream`]; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Rewrites `circuit`'s instruction stream into a fused op stream.
///
/// The result is a valid topological reordering of the original
/// instructions: per-wire gate order is preserved exactly, multi-qubit
/// gates keep their relative order, and every emitted [`FusedOp::Run`]
/// is a maximal single-qubit chain of the wire-dependency DAG. Applying
/// the ops in order therefore implements the same unitary as the
/// original circuit.
///
/// [`Gate::I`] instructions are dropped.
///
/// # Example
///
/// ```
/// use qcir::fusion::{fused_stream, FusedOp};
/// use qcir::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).t(0).s(0).cx(0, 1).h(1).z(1);
/// let ops = fused_stream(&c);
/// // h·t·s on wire 0 fuse; cx stays single; h·z on wire 1 fuse.
/// assert_eq!(ops.len(), 3);
/// assert!(matches!(&ops[0], FusedOp::Run(run) if run.gates.len() == 3));
/// assert!(matches!(ops[1], FusedOp::Single(_)));
/// assert!(matches!(&ops[2], FusedOp::Run(run) if run.gates.len() == 2));
/// ```
pub fn fused_stream(circuit: &Circuit) -> Vec<FusedOp<'_>> {
    let n = circuit.num_qubits() as usize;
    let mut pending: Vec<Vec<&Gate>> = vec![Vec::new(); n];
    let mut out = Vec::with_capacity(circuit.gate_count());
    for inst in circuit.iter() {
        let gate = inst.gate();
        if matches!(gate, Gate::I) {
            continue;
        }
        if gate.arity() == 1 {
            pending[inst.qubits()[0].index()].push(gate);
            continue;
        }
        for q in inst.qubits() {
            flush(&mut pending[q.index()], *q, &mut out);
        }
        out.push(FusedOp::Single(inst));
    }
    for (q, run) in pending.iter_mut().enumerate() {
        flush(run, Qubit::new(q as u32), &mut out);
    }
    out
}

/// Emits the pending run on `qubit` (if any) into `out`.
fn flush<'c>(pending: &mut Vec<&'c Gate>, qubit: Qubit, out: &mut Vec<FusedOp<'c>>) {
    if !pending.is_empty() {
        out.push(FusedOp::Run(WireRun {
            qubit,
            gates: std::mem::take(pending),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flatten_per_wire(ops: &[FusedOp<'_>], n: u32) -> Vec<Vec<Gate>> {
        let mut wires: Vec<Vec<Gate>> = vec![Vec::new(); n as usize];
        for op in ops {
            match op {
                FusedOp::Run(run) => {
                    for g in &run.gates {
                        wires[run.qubit.index()].push((*g).clone());
                    }
                }
                FusedOp::Single(inst) => {
                    for q in inst.qubits() {
                        wires[q.index()].push(inst.gate().clone());
                    }
                }
            }
        }
        wires
    }

    #[test]
    fn adjacent_gates_on_one_wire_fuse() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).s(0).x(0);
        let ops = fused_stream(&c);
        assert_eq!(ops.len(), 1);
        assert!(matches!(&ops[0], FusedOp::Run(run) if run.gates.len() == 4));
    }

    #[test]
    fn multi_qubit_gate_breaks_runs_on_its_wires_only() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).cx(0, 1).t(0).t(1).t(2);
        let ops = fused_stream(&c);
        // Wire 2's h…t survives as one run across the cx.
        let wire2_runs: Vec<_> = ops
            .iter()
            .filter(|op| matches!(op, FusedOp::Run(run) if run.qubit == Qubit::new(2)))
            .collect();
        assert_eq!(wire2_runs.len(), 1);
        assert_eq!(wire2_runs[0].len(), 2);
        // Wires 0 and 1 each broke into two emissions around the cx.
        let wire0_ops: Vec<_> = ops
            .iter()
            .filter(|op| matches!(op, FusedOp::Run(run) if run.qubit == Qubit::new(0)))
            .collect();
        assert_eq!(wire0_ops.len(), 2);
    }

    #[test]
    fn per_wire_order_is_preserved() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).cx(0, 1).s(0).ccx(0, 1, 2).z(2).x(0);
        let ops = fused_stream(&c);
        let wires = flatten_per_wire(&ops, 3);
        assert_eq!(
            wires[0],
            vec![Gate::H, Gate::CX, Gate::S, Gate::CCX, Gate::X]
        );
        assert_eq!(wires[1], vec![Gate::T, Gate::CX, Gate::CCX]);
        assert_eq!(wires[2], vec![Gate::CCX, Gate::Z]);
    }

    #[test]
    fn every_instruction_appears_exactly_once() {
        let mut c = Circuit::new(4);
        c.h(0)
            .rz(0.3, 1)
            .cx(1, 2)
            .t(2)
            .tdg(2)
            .swap(0, 3)
            .u(0.1, 0.2, 0.3, 3)
            .ccx(0, 1, 3);
        let ops = fused_stream(&c);
        let covered: usize = ops.iter().map(FusedOp::len).sum();
        assert_eq!(covered, c.gate_count());
    }

    #[test]
    fn runs_are_broken_before_the_dependent_gate() {
        // The run on wire 0 must be emitted before the cx consuming it.
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1);
        let ops = fused_stream(&c);
        assert!(matches!(&ops[0], FusedOp::Run(run) if run.gates.len() == 2));
        assert!(matches!(&ops[1], FusedOp::Single(inst) if inst.gate() == &Gate::CX));
    }

    #[test]
    fn identity_gates_are_dropped() {
        let mut c = Circuit::new(2);
        c.append(Gate::I, &[0]).unwrap();
        c.h(1);
        let ops = fused_stream(&c);
        assert_eq!(ops.len(), 1);
        assert!(matches!(&ops[0], FusedOp::Run(run) if run.qubit == Qubit::new(1)));
    }

    #[test]
    fn lone_single_qubit_gate_is_a_unit_run() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let ops = fused_stream(&c);
        assert_eq!(ops.len(), 2);
        assert!(matches!(&ops[0], FusedOp::Run(run) if run.gates == vec![&Gate::H]));
    }

    #[test]
    fn empty_circuit_yields_empty_stream() {
        assert!(fused_stream(&Circuit::new(3)).is_empty());
    }

    #[test]
    fn trailing_runs_flush_in_wire_order() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).t(2).s(0);
        let ops = fused_stream(&c);
        assert!(matches!(ops[0], FusedOp::Single(_)));
        // Trailing flush: wire 0's s, then wire 2's h·t.
        let tail: Vec<Qubit> = ops[1..]
            .iter()
            .map(|op| match op {
                FusedOp::Run(run) => run.qubit,
                FusedOp::Single(inst) => inst.qubits()[0],
            })
            .collect();
        assert_eq!(tail, vec![Qubit::new(0), Qubit::new(2)]);
    }
}
