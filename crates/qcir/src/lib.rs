//! # qcir — quantum circuit intermediate representation
//!
//! This crate is the foundation of the TetrisLock reproduction: a small,
//! dependency-light IR for gate-level quantum circuits.
//!
//! It provides:
//!
//! * [`Gate`] — the gate set used by the RevLib benchmarks and the
//!   TetrisLock obfuscator (Pauli, Hadamard, phase, rotation, controlled and
//!   multi-controlled gates), with exact adjoints via [`Gate::adjoint`].
//! * [`Circuit`] — an ordered list of [`Instruction`]s over `n` qubits with a
//!   fluent builder API, structural helpers and [`Circuit::inverse`].
//! * [`BasisBits`] — limb-backed computational-basis states for registers
//!   wider than a `u64` index (witness replay at 64+ wires).
//! * [`dag`] — a dependency DAG over instructions with ASAP layering, the
//!   basis for depth computation and TetrisLock's empty-slot analysis.
//! * [`fusion`] — a pre-pass grouping maximal runs of adjacent
//!   single-qubit gates per wire, so simulators can apply one fused
//!   kernel per run instead of one pass per gate.
//! * [`persist`] — versioned, checksummed binary persistence for any
//!   serde-encodable type (the batch service's checkpoint envelope).
//! * [`qasm`] — OpenQASM 2.0 emission and a parser for the subset this
//!   workspace produces.
//! * [`real`] — a parser/writer for the RevLib `.real` reversible-circuit
//!   format used by the paper's benchmark suite.
//! * [`display`] — ASCII rendering of circuits (used to reproduce the look of
//!   the paper's Figures 2 and 3 in the examples).
//!
//! # Example
//!
//! ```
//! use qcir::{Circuit, Gate};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! assert_eq!(bell.depth(), 2);
//! assert_eq!(bell.gate_count(), 2);
//!
//! // The inverse circuit undoes the Bell preparation.
//! let inv = bell.inverse();
//! assert_eq!(inv.instruction(0).unwrap().gate(), &Gate::CX);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bits;
pub mod circuit;
pub mod dag;
pub mod display;
pub mod error;
pub mod fusion;
pub mod gate;
pub mod persist;
pub mod qasm;
pub mod qubit;
pub mod random;
pub mod real;
pub mod stats;

pub use bits::BasisBits;
pub use circuit::{Circuit, Instruction};
pub use dag::{CircuitDag, Layer};
pub use error::CircuitError;
pub use gate::Gate;
pub use qubit::Qubit;
