//! RevLib `.real` reversible-circuit format.
//!
//! The RevLib benchmark suite (Wille et al., ISMVL 2008) distributes
//! reversible functions in the `.real` format: a header declaring variables
//! followed by a gate list of multi-controlled Toffoli (`t<n>`), Fredkin
//! (`f<n>`) and related gates. The paper evaluates TetrisLock on RevLib
//! circuits, so this module gives the workspace first-class `.real` I/O.
//!
//! Supported gate lines:
//!
//! * `t1 a` — NOT on `a`
//! * `t2 a b` — CNOT (control `a`, target `b`)
//! * `t<n> c… t` — multi-controlled Toffoli, controls first
//! * `f2 a b` — SWAP; `f3 c a b` — Fredkin
//! * `v2`/`v+2` lines are rejected (not used by the paper's benchmarks)

use crate::circuit::Circuit;
use crate::error::CircuitError;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parses a RevLib `.real` source into a [`Circuit`].
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] for malformed headers, unknown gate
/// kinds, or references to undeclared variables.
///
/// # Example
///
/// ```
/// use qcir::real;
///
/// let src = "# toy adder\n.version 2.0\n.numvars 3\n.variables a b c\n\
///            .begin\nt3 a b c\nt2 a b\nt1 a\n.end\n";
/// let circuit = real::from_real(src)?;
/// assert_eq!(circuit.num_qubits(), 3);
/// assert_eq!(circuit.gate_count(), 3);
/// # Ok::<(), qcir::CircuitError>(())
/// ```
pub fn from_real(source: &str) -> Result<Circuit, CircuitError> {
    let mut num_vars: Option<u32> = None;
    let mut var_index: BTreeMap<String, u32> = BTreeMap::new();
    let mut circuit: Option<Circuit> = None;
    let mut in_body = false;
    let mut name = String::new();

    for (lineno, raw_line) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw_line.trim();
        if text.is_empty() {
            continue;
        }
        if let Some(comment) = text.strip_prefix('#') {
            if name.is_empty() {
                name = comment.trim().to_string();
            }
            continue;
        }
        if let Some(rest) = text.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let keyword = parts.next().unwrap_or_default();
            match keyword {
                "version" | "mode" | "inputs" | "outputs" | "constants" | "garbage"
                | "inputbus" | "outputbus" | "state" | "module" => {}
                "numvars" => {
                    let n: u32 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                        CircuitError::Parse {
                            line,
                            message: ".numvars expects a positive integer".into(),
                        }
                    })?;
                    if n == 0 {
                        return Err(CircuitError::Parse {
                            line,
                            message: ".numvars must be positive".into(),
                        });
                    }
                    num_vars = Some(n);
                }
                "variables" => {
                    for (i, v) in parts.enumerate() {
                        var_index.insert(v.to_string(), i as u32);
                    }
                }
                "begin" => {
                    let n = num_vars.or_else(|| {
                        let len = var_index.len() as u32;
                        (len > 0).then_some(len)
                    });
                    let n = n.ok_or_else(|| CircuitError::Parse {
                        line,
                        message: ".begin before .numvars/.variables".into(),
                    })?;
                    if var_index.is_empty() {
                        // Synthesize x0..x{n-1} variable names.
                        for i in 0..n {
                            var_index.insert(format!("x{i}"), i);
                        }
                    }
                    if var_index.len() as u32 != n {
                        return Err(CircuitError::Parse {
                            line,
                            message: format!(
                                ".numvars {} does not match {} declared variables",
                                n,
                                var_index.len()
                            ),
                        });
                    }
                    circuit = Some(Circuit::with_name(n, name.clone()));
                    in_body = true;
                }
                "end" => {
                    in_body = false;
                }
                other => {
                    return Err(CircuitError::Parse {
                        line,
                        message: format!("unknown directive `.{other}`"),
                    });
                }
            }
            continue;
        }

        if !in_body {
            return Err(CircuitError::Parse {
                line,
                message: format!("gate line `{text}` outside .begin/.end"),
            });
        }
        let circuit = circuit.as_mut().expect("in_body implies circuit");

        let mut parts = text.split_whitespace();
        let kind = parts.next().expect("non-empty line");
        let operands: Vec<u32> = parts
            .map(|v| {
                var_index
                    .get(v)
                    .copied()
                    .ok_or_else(|| CircuitError::Parse {
                        line,
                        message: format!("undeclared variable `{v}`"),
                    })
            })
            .collect::<Result<_, _>>()?;

        if let Some(size) = kind.strip_prefix('t') {
            let size: usize = size.parse().map_err(|_| CircuitError::Parse {
                line,
                message: format!("malformed toffoli gate `{kind}`"),
            })?;
            if operands.len() != size {
                return Err(CircuitError::Parse {
                    line,
                    message: format!(
                        "gate {kind} expects {size} operand(s), got {}",
                        operands.len()
                    ),
                });
            }
            let (controls, target) = operands.split_at(size - 1);
            circuit.mcx(controls, target[0]);
        } else if let Some(size) = kind.strip_prefix('f') {
            let size: usize = size.parse().map_err(|_| CircuitError::Parse {
                line,
                message: format!("malformed fredkin gate `{kind}`"),
            })?;
            if operands.len() != size {
                return Err(CircuitError::Parse {
                    line,
                    message: format!(
                        "gate {kind} expects {size} operand(s), got {}",
                        operands.len()
                    ),
                });
            }
            match size {
                2 => {
                    circuit.swap(operands[0], operands[1]);
                }
                3 => {
                    circuit.cswap(operands[0], operands[1], operands[2]);
                }
                _ => {
                    return Err(CircuitError::Parse {
                        line,
                        message: format!("fredkin with {size} operands unsupported"),
                    });
                }
            }
        } else {
            return Err(CircuitError::Parse {
                line,
                message: format!("unknown gate kind `{kind}`"),
            });
        }
    }

    circuit.ok_or_else(|| CircuitError::Parse {
        line: 0,
        message: "no .begin section found".into(),
    })
}

/// Serializes a classical reversible circuit (X/CX/CCX/MCX/SWAP/CSWAP only)
/// to the `.real` format.
///
/// # Errors
///
/// Returns [`CircuitError::Invalid`] if the circuit contains non-classical
/// gates (e.g. H or rotations), which `.real` cannot express.
///
/// # Example
///
/// ```
/// use qcir::{Circuit, real};
///
/// let mut c = Circuit::with_name(3, "demo");
/// c.ccx(0, 1, 2).cx(0, 1).x(0);
/// let text = real::to_real(&c)?;
/// assert!(text.contains("t3 x0 x1 x2"));
/// let back = real::from_real(&text)?;
/// assert_eq!(back.gate_count(), 3);
/// # Ok::<(), qcir::CircuitError>(())
/// ```
pub fn to_real(circuit: &Circuit) -> Result<String, CircuitError> {
    use crate::gate::Gate;
    let mut out = String::new();
    if !circuit.name().is_empty() {
        let _ = writeln!(out, "# {}", circuit.name());
    }
    out.push_str(".version 2.0\n");
    let _ = writeln!(out, ".numvars {}", circuit.num_qubits());
    let vars: Vec<String> = (0..circuit.num_qubits()).map(|i| format!("x{i}")).collect();
    let _ = writeln!(out, ".variables {}", vars.join(" "));
    out.push_str(".begin\n");
    for inst in circuit.iter() {
        let ops: Vec<&str> = inst
            .qubits()
            .iter()
            .map(|q| vars[q.index()].as_str())
            .collect();
        match inst.gate() {
            Gate::X => {
                let _ = writeln!(out, "t1 {}", ops[0]);
            }
            Gate::CX => {
                let _ = writeln!(out, "t2 {} {}", ops[0], ops[1]);
            }
            Gate::CCX => {
                let _ = writeln!(out, "t3 {} {} {}", ops[0], ops[1], ops[2]);
            }
            Gate::Mcx(n) => {
                let _ = writeln!(out, "t{} {}", n + 1, ops.join(" "));
            }
            Gate::Swap => {
                let _ = writeln!(out, "f2 {} {}", ops[0], ops[1]);
            }
            Gate::CSwap => {
                let _ = writeln!(out, "f3 {} {} {}", ops[0], ops[1], ops[2]);
            }
            other => {
                return Err(CircuitError::Invalid(format!(
                    "gate {other} cannot be expressed in .real format"
                )));
            }
        }
    }
    out.push_str(".end\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn parses_minimal_file() {
        let src = ".numvars 2\n.variables a b\n.begin\nt2 a b\nt1 b\n.end\n";
        let c = from_real(src).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.instruction(0).unwrap().gate(), &Gate::CX);
        assert_eq!(c.instruction(1).unwrap().gate(), &Gate::X);
    }

    #[test]
    fn takes_name_from_first_comment() {
        let src = "# my bench\n.numvars 1\n.variables a\n.begin\nt1 a\n.end\n";
        let c = from_real(src).unwrap();
        assert_eq!(c.name(), "my bench");
    }

    #[test]
    fn mct_gates_map_to_mcx() {
        let src = ".numvars 5\n.variables a b c d e\n.begin\nt5 a b c d e\nt4 a b c d\n.end\n";
        let c = from_real(src).unwrap();
        assert_eq!(c.instruction(0).unwrap().gate(), &Gate::Mcx(4));
        assert_eq!(c.instruction(1).unwrap().gate(), &Gate::Mcx(3));
    }

    #[test]
    fn fredkin_and_swap() {
        let src = ".numvars 3\n.variables a b c\n.begin\nf2 a b\nf3 a b c\n.end\n";
        let c = from_real(src).unwrap();
        assert_eq!(c.instruction(0).unwrap().gate(), &Gate::Swap);
        assert_eq!(c.instruction(1).unwrap().gate(), &Gate::CSwap);
    }

    #[test]
    fn numvars_without_variables_synthesizes_names() {
        let src = ".numvars 3\n.begin\nt2 x0 x2\n.end\n";
        let c = from_real(src).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn rejects_undeclared_variable() {
        let src = ".numvars 2\n.variables a b\n.begin\nt2 a z\n.end\n";
        let err = from_real(src).unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn rejects_gate_outside_body() {
        let src = ".numvars 2\n.variables a b\nt2 a b\n.begin\n.end\n";
        assert!(from_real(src).is_err());
    }

    #[test]
    fn rejects_operand_count_mismatch() {
        let src = ".numvars 3\n.variables a b c\n.begin\nt3 a b\n.end\n";
        assert!(from_real(src).is_err());
    }

    #[test]
    fn writer_roundtrip() {
        let mut c = Circuit::with_name(4, "rt");
        c.x(0)
            .cx(0, 1)
            .ccx(1, 2, 3)
            .mcx(&[0, 1, 2], 3)
            .swap(0, 3)
            .cswap(0, 1, 2);
        let text = to_real(&c).unwrap();
        let back = from_real(&text).unwrap();
        assert_eq!(back.instructions(), c.instructions());
    }

    #[test]
    fn writer_rejects_non_classical() {
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(to_real(&c).is_err());
    }
}
