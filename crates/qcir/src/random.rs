//! Random circuit generation.
//!
//! Seeded generators for the circuit families the workspace's tests and
//! benchmarks sweep over: classical reversible networks (the RevLib
//! domain) and general unitary circuits (for the simulator and
//! transpiler).

use crate::circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random circuit generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomCircuitConfig {
    /// Register size.
    pub num_qubits: u32,
    /// Number of gates to draw.
    pub num_gates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomCircuitConfig {
    /// A convenient starting configuration.
    pub fn new(num_qubits: u32, num_gates: usize, seed: u64) -> Self {
        RandomCircuitConfig {
            num_qubits,
            num_gates,
            seed,
        }
    }
}

/// Generates a random *classical reversible* circuit (X/CX/CCX pool),
/// the gate family RevLib benchmarks are built from.
///
/// # Panics
///
/// Panics if `num_qubits == 0`.
///
/// # Example
///
/// ```
/// use qcir::random::{random_reversible, RandomCircuitConfig};
///
/// let c = random_reversible(&RandomCircuitConfig::new(5, 12, 7));
/// assert_eq!(c.gate_count(), 12);
/// assert!(c.iter().all(|i| i.gate().is_classical()));
/// ```
pub fn random_reversible(config: &RandomCircuitConfig) -> Circuit {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_qubits;
    assert!(n > 0, "register must be non-empty");
    let mut c = Circuit::with_name(n, format!("random_reversible_{}", config.seed));
    for _ in 0..config.num_gates {
        let arity = match n {
            1 => 1,
            2 => rng.gen_range(1..=2),
            _ => rng.gen_range(1..=3),
        };
        let wires = distinct_wires(arity, n, &mut rng);
        match arity {
            1 => c.x(wires[0]),
            2 => c.cx(wires[0], wires[1]),
            _ => c.ccx(wires[0], wires[1], wires[2]),
        };
    }
    c
}

/// Generates a random unitary circuit over the pool
/// {H, S, T, X, Rz, Rx, CX, CZ}, useful for exercising the simulator and
/// transpiler beyond classical networks.
///
/// # Panics
///
/// Panics if `num_qubits == 0`.
///
/// # Example
///
/// ```
/// use qcir::random::{random_unitary_circuit, RandomCircuitConfig};
///
/// let c = random_unitary_circuit(&RandomCircuitConfig::new(4, 20, 3));
/// assert_eq!(c.gate_count(), 20);
/// ```
pub fn random_unitary_circuit(config: &RandomCircuitConfig) -> Circuit {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_qubits;
    assert!(n > 0, "register must be non-empty");
    let mut c = Circuit::with_name(n, format!("random_unitary_{}", config.seed));
    for _ in 0..config.num_gates {
        let two_qubit = n >= 2 && rng.gen::<f64>() < 0.4;
        if two_qubit {
            let wires = distinct_wires(2, n, &mut rng);
            if rng.gen::<bool>() {
                c.cx(wires[0], wires[1]);
            } else {
                c.cz(wires[0], wires[1]);
            }
        } else {
            let q = rng.gen_range(0..n);
            match rng.gen_range(0..6u8) {
                0 => c.h(q),
                1 => c.s(q),
                2 => c.t(q),
                3 => c.x(q),
                4 => c.rz(
                    rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
                    q,
                ),
                _ => c.rx(
                    rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
                    q,
                ),
            };
        }
    }
    c
}

fn distinct_wires<R: Rng + ?Sized>(count: usize, n: u32, rng: &mut R) -> Vec<u32> {
    let mut wires = Vec::with_capacity(count);
    while wires.len() < count {
        let w = rng.gen_range(0..n);
        if !wires.contains(&w) {
            wires.push(w);
        }
    }
    wires
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversible_generator_is_deterministic() {
        let cfg = RandomCircuitConfig::new(5, 15, 42);
        let a = random_reversible(&cfg);
        let b = random_reversible(&cfg);
        assert_eq!(a.instructions(), b.instructions());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_reversible(&RandomCircuitConfig::new(5, 15, 1));
        let b = random_reversible(&RandomCircuitConfig::new(5, 15, 2));
        assert_ne!(a.instructions(), b.instructions());
    }

    #[test]
    fn reversible_respects_size_and_pool() {
        let c = random_reversible(&RandomCircuitConfig::new(4, 30, 9));
        assert_eq!(c.gate_count(), 30);
        assert_eq!(c.num_qubits(), 4);
        assert!(c.iter().all(|i| i.gate().is_classical()));
    }

    #[test]
    fn single_qubit_register_only_draws_x() {
        let c = random_reversible(&RandomCircuitConfig::new(1, 8, 3));
        assert!(c.iter().all(|i| i.gate().name() == "x"));
    }

    #[test]
    fn two_qubit_register_avoids_ccx() {
        let c = random_reversible(&RandomCircuitConfig::new(2, 20, 5));
        assert!(c.iter().all(|i| i.gate().arity() <= 2));
    }

    #[test]
    fn unitary_generator_has_requested_length() {
        let c = random_unitary_circuit(&RandomCircuitConfig::new(3, 25, 11));
        assert_eq!(c.gate_count(), 25);
        // And the result is simulable/normalized — checked cheaply by the
        // wire-validity invariants of the builder itself.
        assert!(c.depth() >= 1);
    }

    #[test]
    fn distinct_wires_are_distinct() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let w = distinct_wires(3, 5, &mut rng);
            assert_eq!(w.len(), 3);
            assert!(w[0] != w[1] && w[1] != w[2] && w[0] != w[2]);
        }
    }
}
