//! ASCII circuit rendering.
//!
//! Renders circuits as wire diagrams similar to the figures in the paper
//! (and to Qiskit's text drawer). Used by the examples to visualize the
//! interlocking split of Figures 2 and 3.

use crate::circuit::Circuit;
use crate::dag::CircuitDag;
use crate::gate::Gate;

/// Renders `circuit` as an ASCII wire diagram, one row per qubit, one
/// column per ASAP layer.
///
/// Controls render as `●`, targets of X-like gates as `⊕`, swaps as `x`,
/// other gates by their mnemonic in a box-free compact form.
///
/// # Example
///
/// ```
/// use qcir::{Circuit, display};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let art = display::render(&c);
/// assert!(art.starts_with("q0"));
/// assert!(art.contains("●"));
/// ```
pub fn render(circuit: &Circuit) -> String {
    render_with_cuts(circuit, &[])
}

/// Like [`render`], but draws a `|` boundary marker after the given cut
/// column on each qubit row: `cuts[q]` = number of leading columns of wire
/// `q` that belong to the left segment. Used to visualize interlocking
/// split boundaries. Wires absent from `cuts` get no marker.
pub fn render_with_cuts(circuit: &Circuit, cuts: &[(u32, usize)]) -> String {
    let dag = CircuitDag::new(circuit);
    let n = circuit.num_qubits() as usize;
    let num_layers = dag.num_layers();

    // cell text per (qubit, layer)
    let mut cells: Vec<Vec<String>> = vec![vec![String::new(); num_layers]; n];
    for (layer_idx, layer) in dag.layers().iter().enumerate() {
        for &node in &layer.nodes {
            let inst = &circuit.instructions()[node];
            let qubits = inst.qubits();
            match inst.gate() {
                Gate::CX | Gate::CCX | Gate::Mcx(_) => {
                    for c in inst.controls() {
                        cells[c.index()][layer_idx] = "●".to_string();
                    }
                    cells[inst.target().index()][layer_idx] = "⊕".to_string();
                }
                Gate::CZ | Gate::CP(_) | Gate::CRz(_) | Gate::CY | Gate::CH => {
                    for c in inst.controls() {
                        cells[c.index()][layer_idx] = "●".to_string();
                    }
                    let label = match inst.gate() {
                        Gate::CZ => "Z",
                        Gate::CY => "Y",
                        Gate::CH => "H",
                        Gate::CP(_) => "P",
                        Gate::CRz(_) => "Rz",
                        _ => unreachable!(),
                    };
                    cells[inst.target().index()][layer_idx] = label.to_string();
                }
                Gate::Swap => {
                    cells[qubits[0].index()][layer_idx] = "x".to_string();
                    cells[qubits[1].index()][layer_idx] = "x".to_string();
                }
                Gate::CSwap => {
                    cells[qubits[0].index()][layer_idx] = "●".to_string();
                    cells[qubits[1].index()][layer_idx] = "x".to_string();
                    cells[qubits[2].index()][layer_idx] = "x".to_string();
                }
                g => {
                    let label = match g {
                        Gate::X => "X".to_string(),
                        Gate::Y => "Y".to_string(),
                        Gate::Z => "Z".to_string(),
                        Gate::H => "H".to_string(),
                        Gate::S => "S".to_string(),
                        Gate::Sdg => "S†".to_string(),
                        Gate::T => "T".to_string(),
                        Gate::Tdg => "T†".to_string(),
                        Gate::Sx => "√X".to_string(),
                        Gate::Sxdg => "√X†".to_string(),
                        Gate::I => "I".to_string(),
                        Gate::Rx(_) => "Rx".to_string(),
                        Gate::Ry(_) => "Ry".to_string(),
                        Gate::Rz(_) => "Rz".to_string(),
                        Gate::P(_) => "P".to_string(),
                        Gate::U(..) => "U".to_string(),
                        other => other.name().to_string(),
                    };
                    cells[qubits[0].index()][layer_idx] = label;
                }
            }
        }
    }

    let col_width = 4;
    let mut out = String::new();
    for (q, row) in cells.iter().enumerate() {
        let cut_after = cuts.iter().find(|(w, _)| *w as usize == q).map(|(_, c)| *c);
        out.push_str(&format!("q{q:<2}: "));
        for (layer, cell) in row.iter().enumerate() {
            let body = if cell.is_empty() {
                "─".repeat(col_width)
            } else {
                let pad = col_width.saturating_sub(cell.chars().count());
                let left = pad / 2;
                let right = pad - left;
                format!("{}{}{}", "─".repeat(left), cell, "─".repeat(right))
            };
            out.push_str(&body);
            if cut_after == Some(layer + 1) {
                out.push('|');
            } else {
                out.push('─');
            }
        }
        if cut_after == Some(0) {
            // Whole wire belongs to the right segment.
            out.insert(5, '|');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_each_wire_row() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2);
        let art = render(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("q0"));
        assert!(lines[2].starts_with("q2"));
    }

    #[test]
    fn controls_and_targets_drawn() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let art = render(&c);
        assert!(art.contains('●'));
        assert!(art.contains('⊕'));
    }

    #[test]
    fn swap_renders_as_x_pair() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let art = render(&c);
        assert_eq!(art.matches('x').count(), 2);
    }

    #[test]
    fn cut_marker_appears() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).h(1);
        let art = render_with_cuts(&c, &[(0, 1), (1, 2)]);
        assert!(art.contains('|'));
    }

    #[test]
    fn empty_circuit_renders_bare_wires() {
        let c = Circuit::new(2);
        let art = render(&c);
        assert_eq!(art.lines().count(), 2);
    }
}
