//! OpenQASM 2.0 emission and parsing.
//!
//! The emitter covers the whole [`Gate`] set (multi-controlled gates are
//! emitted via their standard-library names where they exist, otherwise as
//! comments plus decomposed forms are left to `qcompile`). The parser covers
//! the subset that this workspace itself produces, which is what the
//! split-compilation flow needs to hand circuits between "compilers".

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::Gate;
use std::fmt::Write as _;

/// Serializes a circuit as an OpenQASM 2.0 program.
///
/// # Example
///
/// ```
/// use qcir::{Circuit, qasm};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0], q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    if !circuit.name().is_empty() {
        let _ = writeln!(out, "// circuit: {}", circuit.name());
    }
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for inst in circuit.iter() {
        let operands: Vec<String> = inst
            .qubits()
            .iter()
            .map(|q| format!("q[{}]", q.index()))
            .collect();
        let operands = operands.join(", ");
        match inst.gate() {
            Gate::Rx(a) => {
                let _ = writeln!(out, "rx({a}) {operands};");
            }
            Gate::Ry(a) => {
                let _ = writeln!(out, "ry({a}) {operands};");
            }
            Gate::Rz(a) => {
                let _ = writeln!(out, "rz({a}) {operands};");
            }
            Gate::P(a) => {
                let _ = writeln!(out, "p({a}) {operands};");
            }
            Gate::CP(a) => {
                let _ = writeln!(out, "cp({a}) {operands};");
            }
            Gate::CRz(a) => {
                let _ = writeln!(out, "crz({a}) {operands};");
            }
            Gate::U(t, p, l) => {
                let _ = writeln!(out, "u({t},{p},{l}) {operands};");
            }
            Gate::Mcx(n) => {
                // qelib has c3x / c4x; larger fans out as a comment the
                // transpiler must lower first.
                let name = match n {
                    3 => "c3x".to_string(),
                    4 => "c4x".to_string(),
                    n => format!("mcx{n}"),
                };
                let _ = writeln!(out, "{name} {operands};");
            }
            g => {
                let _ = writeln!(out, "{} {operands};", g.name());
            }
        }
    }
    out
}

fn parse_angle(token: &str, line: usize) -> Result<f64, CircuitError> {
    let t = token.trim();
    // Support simple `pi`-expressions: pi, -pi, pi/2, 2*pi, -pi/4 ...
    let normalized = t.replace("pi", &std::f64::consts::PI.to_string());
    eval_simple(&normalized).ok_or_else(|| CircuitError::Parse {
        line,
        message: format!("cannot parse angle `{t}`"),
    })
}

/// Evaluates `a`, `a/b`, `a*b`, with optional leading `-`.
fn eval_simple(expr: &str) -> Option<f64> {
    let expr = expr.trim();
    if let Some(idx) = expr.rfind('/') {
        if idx > 0 {
            let lhs = eval_simple(&expr[..idx])?;
            let rhs = eval_simple(&expr[idx + 1..])?;
            return Some(lhs / rhs);
        }
    }
    if let Some(idx) = expr.rfind('*') {
        if idx > 0 {
            let lhs = eval_simple(&expr[..idx])?;
            let rhs = eval_simple(&expr[idx + 1..])?;
            return Some(lhs * rhs);
        }
    }
    expr.parse::<f64>().ok()
}

fn gate_from_name(name: &str, params: &[f64], line: usize) -> Result<Gate, CircuitError> {
    let need = |n: usize| -> Result<(), CircuitError> {
        if params.len() != n {
            Err(CircuitError::Parse {
                line,
                message: format!("gate {name} expects {n} parameter(s), got {}", params.len()),
            })
        } else {
            Ok(())
        }
    };
    let gate = match name {
        "id" => Gate::I,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "h" => Gate::H,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "sx" => Gate::Sx,
        "sxdg" => Gate::Sxdg,
        "rx" => {
            need(1)?;
            Gate::Rx(params[0])
        }
        "ry" => {
            need(1)?;
            Gate::Ry(params[0])
        }
        "rz" => {
            need(1)?;
            Gate::Rz(params[0])
        }
        "p" | "u1" => {
            need(1)?;
            Gate::P(params[0])
        }
        "u" | "u3" => {
            need(3)?;
            Gate::U(params[0], params[1], params[2])
        }
        "cx" | "CX" => Gate::CX,
        "cy" => Gate::CY,
        "cz" => Gate::CZ,
        "ch" => Gate::CH,
        "cp" | "cu1" => {
            need(1)?;
            Gate::CP(params[0])
        }
        "crz" => {
            need(1)?;
            Gate::CRz(params[0])
        }
        "swap" => Gate::Swap,
        "ccx" => Gate::CCX,
        "cswap" => Gate::CSwap,
        "c3x" => Gate::Mcx(3),
        "c4x" => Gate::Mcx(4),
        other => {
            if let Some(stripped) = other.strip_prefix("mcx") {
                let n: u32 = stripped.parse().map_err(|_| CircuitError::Parse {
                    line,
                    message: format!("unknown gate `{other}`"),
                })?;
                Gate::Mcx(n)
            } else {
                return Err(CircuitError::Parse {
                    line,
                    message: format!("unknown gate `{other}`"),
                });
            }
        }
    };
    Ok(gate)
}

/// Parses the OpenQASM 2.0 subset emitted by [`to_qasm`].
///
/// Supports a single quantum register, the qelib1 gate names used in this
/// workspace, `pi`-expression angles, and `//` comments. `barrier`,
/// `measure` and classical registers are ignored.
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] on malformed input and propagates
/// validation failures from circuit construction.
///
/// # Example
///
/// ```
/// use qcir::qasm;
///
/// let src = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     h q[0];
///     rz(pi/2) q[1];
///     cx q[0], q[1];
/// "#;
/// let c = qasm::from_qasm(src)?;
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.gate_count(), 3);
/// # Ok::<(), qcir::CircuitError>(())
/// ```
pub fn from_qasm(source: &str) -> Result<Circuit, CircuitError> {
    let mut circuit: Option<Circuit> = None;
    let mut name = String::new();

    for (lineno, raw_line) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw_line;
        if let Some(idx) = text.find("//") {
            let comment = text[idx + 2..].trim();
            if let Some(n) = comment.strip_prefix("circuit:") {
                name = n.trim().to_string();
            }
            text = &text[..idx];
        }
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        for stmt in text.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty()
                || stmt.starts_with("OPENQASM")
                || stmt.starts_with("include")
                || stmt.starts_with("barrier")
                || stmt.starts_with("creg")
                || stmt.starts_with("measure")
            {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let rest = rest.trim();
                let open = rest.find('[').ok_or_else(|| CircuitError::Parse {
                    line,
                    message: "qreg missing size".into(),
                })?;
                let close = rest.find(']').ok_or_else(|| CircuitError::Parse {
                    line,
                    message: "qreg missing `]`".into(),
                })?;
                let size: u32 = rest[open + 1..close]
                    .parse()
                    .map_err(|_| CircuitError::Parse {
                        line,
                        message: "qreg size is not an integer".into(),
                    })?;
                if size == 0 {
                    return Err(CircuitError::Parse {
                        line,
                        message: "qreg size must be positive".into(),
                    });
                }
                circuit = Some(Circuit::with_name(size, name.clone()));
                continue;
            }

            // Gate application: `name(params) q[i], q[j]`.
            let circuit = circuit.as_mut().ok_or_else(|| CircuitError::Parse {
                line,
                message: "gate before qreg declaration".into(),
            })?;
            let (head, operand_text) = match stmt.find([' ', '\t']) {
                Some(idx) if !stmt[..idx].contains('(') || stmt[..idx].contains(')') => {
                    (&stmt[..idx], &stmt[idx..])
                }
                _ => {
                    // Parameterized: split after the closing paren.
                    let close = stmt.find(')').ok_or_else(|| CircuitError::Parse {
                        line,
                        message: format!("malformed statement `{stmt}`"),
                    })?;
                    (&stmt[..=close], &stmt[close + 1..])
                }
            };

            let (gate_name, params) = if let Some(open) = head.find('(') {
                let close = head.rfind(')').ok_or_else(|| CircuitError::Parse {
                    line,
                    message: "unclosed parameter list".into(),
                })?;
                let params = head[open + 1..close]
                    .split(',')
                    .map(|p| parse_angle(p, line))
                    .collect::<Result<Vec<_>, _>>()?;
                (&head[..open], params)
            } else {
                (head, Vec::new())
            };

            let gate = gate_from_name(gate_name.trim(), &params, line)?;
            let mut qubits = Vec::new();
            for op in operand_text.split(',') {
                let op = op.trim();
                if op.is_empty() {
                    continue;
                }
                let open = op.find('[').ok_or_else(|| CircuitError::Parse {
                    line,
                    message: format!("operand `{op}` missing index"),
                })?;
                let close = op.find(']').ok_or_else(|| CircuitError::Parse {
                    line,
                    message: format!("operand `{op}` missing `]`"),
                })?;
                let idx: u32 = op[open + 1..close]
                    .parse()
                    .map_err(|_| CircuitError::Parse {
                        line,
                        message: format!("operand index in `{op}` is not an integer"),
                    })?;
                qubits.push(idx);
            }
            circuit.append(gate, &qubits)?;
        }
    }

    circuit.ok_or_else(|| CircuitError::Parse {
        line: 0,
        message: "no qreg declaration found".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn roundtrip(c: &Circuit) -> Circuit {
        from_qasm(&to_qasm(c)).expect("roundtrip parse")
    }

    #[test]
    fn emit_contains_header_and_gates() {
        let mut c = Circuit::with_name(3, "demo");
        c.h(0).cx(0, 1).ccx(0, 1, 2);
        let text = to_qasm(&c);
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("ccx q[0], q[1], q[2];"));
        assert!(text.contains("// circuit: demo"));
    }

    #[test]
    fn roundtrip_plain_gates() {
        let mut c = Circuit::with_name(4, "rt");
        c.h(0)
            .x(1)
            .s(2)
            .tdg(3)
            .cx(0, 1)
            .cz(2, 3)
            .swap(0, 3)
            .ccx(1, 2, 0);
        let back = roundtrip(&c);
        assert_eq!(back.instructions(), c.instructions());
        assert_eq!(back.name(), "rt");
        assert_eq!(back.num_qubits(), 4);
    }

    #[test]
    fn roundtrip_parametric_gates() {
        let mut c = Circuit::new(2);
        c.rx(0.25, 0)
            .ry(-1.5, 1)
            .rz(3.0, 0)
            .p(0.125, 1)
            .cp(0.75, 0, 1)
            .crz(-0.5, 1, 0)
            .u(0.1, 0.2, 0.3, 0);
        let back = roundtrip(&c);
        assert_eq!(back.gate_count(), c.gate_count());
        for (a, b) in back.iter().zip(c.iter()) {
            assert!(a.gate().approx_eq(b.gate()), "{} vs {}", a.gate(), b.gate());
            assert_eq!(a.qubits(), b.qubits());
        }
    }

    #[test]
    fn roundtrip_mcx() {
        let mut c = Circuit::new(6);
        c.mcx(&[0, 1, 2], 3)
            .mcx(&[0, 1, 2, 3], 4)
            .mcx(&[0, 1, 2, 3, 4], 5);
        let back = roundtrip(&c);
        assert_eq!(back.instruction(0).unwrap().gate(), &Gate::Mcx(3));
        assert_eq!(back.instruction(1).unwrap().gate(), &Gate::Mcx(4));
        assert_eq!(back.instruction(2).unwrap().gate(), &Gate::Mcx(5));
    }

    #[test]
    fn parses_pi_expressions() {
        let src = "qreg q[1]; rz(pi) q[0]; rz(-pi/2) q[0]; rz(2*pi) q[0];";
        let c = from_qasm(src).unwrap();
        let angles: Vec<f64> = c
            .iter()
            .map(|i| match i.gate() {
                Gate::Rz(a) => *a,
                _ => panic!("expected rz"),
            })
            .collect();
        assert!((angles[0] - std::f64::consts::PI).abs() < 1e-12);
        assert!((angles[1] + std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((angles[2] - 2.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn rejects_unknown_gate() {
        let src = "qreg q[1]; frobnicate q[0];";
        let err = from_qasm(src).unwrap_err();
        assert!(err.to_string().contains("unknown gate"));
    }

    #[test]
    fn rejects_gate_before_qreg() {
        let src = "h q[0]; qreg q[1];";
        assert!(from_qasm(src).is_err());
    }

    #[test]
    fn rejects_missing_qreg() {
        assert!(from_qasm("OPENQASM 2.0;").is_err());
    }

    #[test]
    fn ignores_measure_and_barrier() {
        let src = "qreg q[2]; creg c[2]; h q[0]; barrier q[0], q[1]; measure q[0] -> c[0];";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.gate_count(), 1);
    }
}
