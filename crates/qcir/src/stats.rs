//! Circuit resource statistics.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::collections::BTreeMap;
use std::fmt;

/// Resource summary of a circuit: the numbers hardware papers (and
/// Table I) report.
///
/// # Example
///
/// ```
/// use qcir::{Circuit, stats::CircuitStats};
///
/// let mut c = Circuit::new(3);
/// c.h(0).t(0).cx(0, 1).ccx(0, 1, 2);
/// let stats = CircuitStats::of(&c);
/// assert_eq!(stats.gates, 4);
/// assert_eq!(stats.two_qubit_gates, 1);
/// assert_eq!(stats.multi_controlled_gates, 1);
/// assert_eq!(stats.t_count, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Register width.
    pub qubits: u32,
    /// Total gate count.
    pub gates: usize,
    /// ASAP depth.
    pub depth: usize,
    /// Single-qubit gates.
    pub single_qubit_gates: usize,
    /// Exactly-two-qubit gates (CX, CZ, SWAP, …).
    pub two_qubit_gates: usize,
    /// Gates with ≥ 3 operands (CCX, MCX, CSWAP).
    pub multi_controlled_gates: usize,
    /// T/T† count (fault-tolerance cost proxy).
    pub t_count: usize,
    /// Per-gate-name histogram.
    pub histogram: BTreeMap<&'static str, usize>,
    /// Fraction of wire-layer cells occupied by gates (1.0 = perfectly
    /// dense; the complement is TetrisLock's insertion budget).
    pub utilization: f64,
}

impl CircuitStats {
    /// Computes the summary for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let depth = circuit.depth();
        let mut single = 0;
        let mut two = 0;
        let mut multi = 0;
        let mut t_count = 0;
        let mut occupied_cells = 0usize;
        for inst in circuit.iter() {
            match inst.gate().arity() {
                1 => single += 1,
                2 => two += 1,
                _ => multi += 1,
            }
            if matches!(inst.gate(), Gate::T | Gate::Tdg) {
                t_count += 1;
            }
            occupied_cells += inst.qubits().len();
        }
        let cells = depth * circuit.num_qubits() as usize;
        // Occupied cells are counted per (gate, wire) pair; a wire-layer
        // cell holds at most one gate, so this is exact.
        CircuitStats {
            qubits: circuit.num_qubits(),
            gates: circuit.gate_count(),
            depth,
            single_qubit_gates: single,
            two_qubit_gates: two,
            multi_controlled_gates: multi,
            t_count,
            histogram: circuit.gate_histogram(),
            utilization: if cells == 0 {
                0.0
            } else {
                occupied_cells as f64 / cells as f64
            },
        }
    }

    /// Number of idle wire-layer cells (TetrisLock's insertion capacity).
    pub fn empty_cells(&self) -> usize {
        let cells = self.depth * self.qubits as usize;
        cells - (self.utilization * cells as f64).round() as usize
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} qubits, {} gates (1q {}, 2q {}, mct {}), depth {}, t-count {}",
            self.qubits,
            self.gates,
            self.single_qubit_gates,
            self.two_qubit_gates,
            self.multi_controlled_gates,
            self.depth,
            self.t_count
        )?;
        write!(f, "utilization {:.0}%", self.utilization * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_arity() {
        let mut c = Circuit::new(4);
        c.h(0)
            .t(1)
            .tdg(2)
            .cx(0, 1)
            .swap(2, 3)
            .ccx(0, 1, 2)
            .mcx(&[0, 1, 2], 3);
        let s = CircuitStats::of(&c);
        assert_eq!(s.single_qubit_gates, 3);
        assert_eq!(s.two_qubit_gates, 2);
        assert_eq!(s.multi_controlled_gates, 2);
        assert_eq!(s.t_count, 2);
        assert_eq!(s.gates, 7);
    }

    #[test]
    fn utilization_bounds() {
        // Fully dense: CX ladder on 2 qubits.
        let mut dense = Circuit::new(2);
        dense.cx(0, 1).cx(0, 1);
        let s = CircuitStats::of(&dense);
        assert!((s.utilization - 1.0).abs() < 1e-12);
        assert_eq!(s.empty_cells(), 0);

        // Half idle: single wire used of two.
        let mut sparse = Circuit::new(2);
        sparse.h(0).h(0);
        let s = CircuitStats::of(&sparse);
        assert!((s.utilization - 0.5).abs() < 1e-12);
        assert_eq!(s.empty_cells(), 2);
    }

    #[test]
    fn empty_circuit() {
        let s = CircuitStats::of(&Circuit::new(3));
        assert_eq!(s.gates, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.utilization, 0.0);
        assert_eq!(s.empty_cells(), 0);
    }

    #[test]
    fn display_is_informative() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let text = CircuitStats::of(&c).to_string();
        assert!(text.contains("2 qubits"));
        assert!(text.contains("depth 2"));
    }
}
