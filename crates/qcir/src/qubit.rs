//! Qubit index newtype.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a qubit wire within a [`crate::Circuit`].
///
/// A `Qubit` is a plain index; it carries no physical meaning until a layout
/// maps it onto a device. The newtype prevents accidentally mixing qubit
/// indices with layer indices, gate counts and other `usize` quantities that
/// circulate through the obfuscation pipeline.
///
/// # Example
///
/// ```
/// use qcir::Qubit;
///
/// let q = Qubit::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(format!("{q}"), "q3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Qubit(u32);

impl Qubit {
    /// Creates a qubit with the given wire index.
    pub const fn new(index: u32) -> Self {
        Qubit(index)
    }

    /// Returns the wire index as a `usize`, convenient for indexing buffers.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` wire index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(index: u32) -> Self {
        Qubit(index)
    }
}

impl From<Qubit> for u32 {
    fn from(q: Qubit) -> Self {
        q.0
    }
}

impl From<Qubit> for usize {
    fn from(q: Qubit) -> Self {
        q.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let q = Qubit::new(7);
        assert_eq!(q.index(), 7);
        assert_eq!(q.raw(), 7);
        assert_eq!(u32::from(q), 7);
        assert_eq!(usize::from(q), 7);
        assert_eq!(Qubit::from(7u32), q);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Qubit::new(1) < Qubit::new(2));
        assert_eq!(Qubit::new(5), Qubit::new(5));
    }

    #[test]
    fn display_format() {
        assert_eq!(Qubit::new(0).to_string(), "q0");
        assert_eq!(Qubit::new(12).to_string(), "q12");
    }
}
