//! The gate set.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Machine-epsilon-scale tolerance used when comparing gate angles.
pub const ANGLE_EPS: f64 = 1e-12;

/// A quantum gate, identified by kind and (for rotations) angle parameters.
///
/// The arity of a gate (how many qubit operands it takes) is fixed per
/// variant except for [`Gate::Mcx`], whose arity is `controls + 1`.
/// Operand order conventions:
///
/// * controlled gates list controls first, target last (`CX = [control,
///   target]`, `CCX = [c0, c1, target]`, `MCX = [c0.., target]`);
/// * [`Gate::Swap`] is symmetric in its two operands;
/// * [`Gate::CSwap`] is `[control, a, b]`.
///
/// # Example
///
/// ```
/// use qcir::Gate;
///
/// assert_eq!(Gate::S.adjoint(), Gate::Sdg);
/// assert_eq!(Gate::CX.adjoint(), Gate::CX); // self-inverse
/// assert_eq!(Gate::Rz(0.5).adjoint(), Gate::Rz(-0.5));
/// assert_eq!(Gate::CCX.arity(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Identity (explicit idle marker; rarely stored).
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// Adjoint of S.
    Sdg,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// Adjoint of T.
    Tdg,
    /// Square root of X.
    Sx,
    /// Adjoint of √X.
    Sxdg,
    /// Rotation about the X axis by the given angle (radians).
    Rx(f64),
    /// Rotation about the Y axis by the given angle (radians).
    Ry(f64),
    /// Rotation about the Z axis by the given angle (radians).
    Rz(f64),
    /// Phase gate diag(1, e^{iλ}).
    P(f64),
    /// Generic single-qubit gate U(θ, φ, λ) in the OpenQASM 2 convention.
    U(f64, f64, f64),
    /// Controlled-X.
    CX,
    /// Controlled-Y.
    CY,
    /// Controlled-Z.
    CZ,
    /// Controlled-Hadamard.
    CH,
    /// Controlled phase diag(1,1,1,e^{iλ}).
    CP(f64),
    /// Controlled Rz.
    CRz(f64),
    /// Swap.
    Swap,
    /// Toffoli (CCX).
    CCX,
    /// Fredkin (controlled swap); operands `[control, a, b]`.
    CSwap,
    /// Multi-controlled X with the given number of controls (≥ 1).
    ///
    /// `Mcx(1)` is equivalent to [`Gate::CX`] and `Mcx(2)` to [`Gate::CCX`];
    /// the dedicated variants are preferred by the builder for those arities.
    Mcx(u32),
}

impl Gate {
    /// Number of qubit operands this gate acts on.
    pub fn arity(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Sxdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::P(_)
            | Gate::U(..) => 1,
            Gate::CX | Gate::CY | Gate::CZ | Gate::CH | Gate::CP(_) | Gate::CRz(_) | Gate::Swap => {
                2
            }
            Gate::CCX | Gate::CSwap => 3,
            Gate::Mcx(controls) => *controls as usize + 1,
        }
    }

    /// Number of control qubits (leading operands that condition the gate).
    pub fn num_controls(&self) -> usize {
        match self {
            Gate::CX | Gate::CY | Gate::CZ | Gate::CH | Gate::CP(_) | Gate::CRz(_) => 1,
            Gate::CCX => 2,
            Gate::CSwap => 1,
            Gate::Mcx(controls) => *controls as usize,
            _ => 0,
        }
    }

    /// Returns the adjoint (conjugate transpose) of this gate.
    ///
    /// Self-inverse gates return themselves; parametric gates negate their
    /// angles. Together with reversing instruction order this realizes the
    /// circuit-inversion property the paper relies on (`(AB)† = B†A†`).
    pub fn adjoint(&self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Rx(a) => Gate::Rx(-a),
            Gate::Ry(a) => Gate::Ry(-a),
            Gate::Rz(a) => Gate::Rz(-a),
            Gate::P(a) => Gate::P(-a),
            Gate::U(theta, phi, lambda) => Gate::U(-theta, -lambda, -phi),
            Gate::CP(a) => Gate::CP(-a),
            Gate::CRz(a) => Gate::CRz(-a),
            other => other.clone(),
        }
    }

    /// `true` if the gate is its own inverse (G·G = I).
    pub fn is_self_inverse(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::X
                | Gate::Y
                | Gate::Z
                | Gate::H
                | Gate::CX
                | Gate::CY
                | Gate::CZ
                | Gate::CH
                | Gate::Swap
                | Gate::CCX
                | Gate::CSwap
                | Gate::Mcx(_)
        )
    }

    /// `true` if the gate carries continuous angle parameters.
    pub fn is_parametric(&self) -> bool {
        matches!(
            self,
            Gate::Rx(_)
                | Gate::Ry(_)
                | Gate::Rz(_)
                | Gate::P(_)
                | Gate::U(..)
                | Gate::CP(_)
                | Gate::CRz(_)
        )
    }

    /// `true` if the gate is diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::P(_)
                | Gate::CZ
                | Gate::CP(_)
                | Gate::CRz(_)
        )
    }

    /// `true` for gates whose action permutes computational basis states
    /// (classical reversible gates: X, CX, CCX, MCX, SWAP, CSWAP).
    pub fn is_classical(&self) -> bool {
        matches!(
            self,
            Gate::I | Gate::X | Gate::CX | Gate::Swap | Gate::CCX | Gate::CSwap | Gate::Mcx(_)
        )
    }

    /// Canonical lowercase mnemonic (matches the OpenQASM 2 name where one
    /// exists).
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::P(_) => "p",
            Gate::U(..) => "u",
            Gate::CX => "cx",
            Gate::CY => "cy",
            Gate::CZ => "cz",
            Gate::CH => "ch",
            Gate::CP(_) => "cp",
            Gate::CRz(_) => "crz",
            Gate::Swap => "swap",
            Gate::CCX => "ccx",
            Gate::CSwap => "cswap",
            Gate::Mcx(_) => "mcx",
        }
    }

    /// Structural equality with angle tolerance [`ANGLE_EPS`].
    ///
    /// Plain `==` on [`Gate`] compares `f64` angles exactly; this helper is
    /// what the optimizer and the tests use after angle arithmetic.
    pub fn approx_eq(&self, other: &Gate) -> bool {
        fn close(a: f64, b: f64) -> bool {
            (a - b).abs() < ANGLE_EPS
        }
        match (self, other) {
            (Gate::Rx(a), Gate::Rx(b))
            | (Gate::Ry(a), Gate::Ry(b))
            | (Gate::Rz(a), Gate::Rz(b))
            | (Gate::P(a), Gate::P(b))
            | (Gate::CP(a), Gate::CP(b))
            | (Gate::CRz(a), Gate::CRz(b)) => close(*a, *b),
            (Gate::U(t1, p1, l1), Gate::U(t2, p2, l2)) => {
                close(*t1, *t2) && close(*p1, *p2) && close(*l1, *l2)
            }
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) | Gate::P(a) | Gate::CP(a) | Gate::CRz(a) => {
                write!(f, "{}({:.6})", self.name(), a)
            }
            Gate::U(t, p, l) => write!(f, "u({t:.6},{p:.6},{l:.6})"),
            Gate::Mcx(c) => write!(f, "mcx{c}"),
            _ => f.write_str(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_variant() {
        assert_eq!(Gate::X.arity(), 1);
        assert_eq!(Gate::U(0.1, 0.2, 0.3).arity(), 1);
        assert_eq!(Gate::CX.arity(), 2);
        assert_eq!(Gate::Swap.arity(), 2);
        assert_eq!(Gate::CCX.arity(), 3);
        assert_eq!(Gate::CSwap.arity(), 3);
        assert_eq!(Gate::Mcx(4).arity(), 5);
    }

    #[test]
    fn adjoint_involution() {
        let gates = [
            Gate::X,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.7),
            Gate::Rz(-1.2),
            Gate::P(0.3),
            Gate::U(0.1, 0.2, 0.3),
            Gate::CX,
            Gate::CP(0.4),
            Gate::CCX,
            Gate::Mcx(3),
        ];
        for g in gates {
            assert!(
                g.adjoint().adjoint().approx_eq(&g),
                "adjoint not involutive for {g}"
            );
        }
    }

    #[test]
    fn self_inverse_gates_have_identity_adjoint() {
        for g in [
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::CX,
            Gate::CCX,
            Gate::Swap,
        ] {
            assert!(g.is_self_inverse());
            assert_eq!(g.adjoint(), g);
        }
        assert!(!Gate::S.is_self_inverse());
        assert!(!Gate::Rz(0.1).is_self_inverse());
    }

    #[test]
    fn u_adjoint_swaps_phi_lambda() {
        assert_eq!(Gate::U(0.1, 0.2, 0.3).adjoint(), Gate::U(-0.1, -0.3, -0.2));
    }

    #[test]
    fn controls_counted() {
        assert_eq!(Gate::X.num_controls(), 0);
        assert_eq!(Gate::CX.num_controls(), 1);
        assert_eq!(Gate::CCX.num_controls(), 2);
        assert_eq!(Gate::Mcx(5).num_controls(), 5);
        assert_eq!(Gate::CSwap.num_controls(), 1);
    }

    #[test]
    fn classical_gate_classification() {
        assert!(Gate::X.is_classical());
        assert!(Gate::CCX.is_classical());
        assert!(Gate::Mcx(3).is_classical());
        assert!(!Gate::H.is_classical());
        assert!(!Gate::Rz(0.1).is_classical());
    }

    #[test]
    fn diagonal_gate_classification() {
        assert!(Gate::Z.is_diagonal());
        assert!(Gate::CP(0.1).is_diagonal());
        assert!(!Gate::X.is_diagonal());
        assert!(!Gate::H.is_diagonal());
    }

    #[test]
    fn approx_eq_tolerates_tiny_angle_noise() {
        assert!(Gate::Rz(0.5).approx_eq(&Gate::Rz(0.5 + 1e-15)));
        assert!(!Gate::Rz(0.5).approx_eq(&Gate::Rz(0.6)));
        assert!(Gate::X.approx_eq(&Gate::X));
        assert!(!Gate::X.approx_eq(&Gate::Y));
    }

    #[test]
    fn display_includes_angles() {
        assert_eq!(Gate::X.to_string(), "x");
        assert!(Gate::Rz(0.5).to_string().starts_with("rz(0.5"));
        assert_eq!(Gate::Mcx(3).to_string(), "mcx3");
    }
}
