//! Versioned, checksummed on-disk persistence for serde-encodable types.
//!
//! The batch service checkpoints job state to disk and must survive two
//! distinct failure modes: *stale readers* (a newer binary wrote a
//! format this binary does not understand) and *torn writes* (the
//! process died mid-write, leaving a truncated or corrupt file). This
//! module wraps the raw [`serde`] codec bytes in a small envelope that
//! detects both:
//!
//! ```text
//! ┌──────────┬─────────────┬──────────────┬─────────┬──────────────┐
//! │ magic 4B │ version u32 │ payload-len  │ payload │ FNV-1a-64    │
//! │ "TLKP"   │ (LE)        │ u64 (LE)     │ bytes   │ checksum (LE)│
//! └──────────┴─────────────┴──────────────┴─────────┴──────────────┘
//! ```
//!
//! The checksum covers everything before it (magic, version, length,
//! payload), so any single-bit flip or truncation anywhere in the file
//! is caught before the payload is decoded.
//!
//! # Version policy
//!
//! [`FORMAT_VERSION`] identifies the envelope *and* payload encoding as
//! a unit. Readers refuse anything but an exact match with
//! [`PersistError::UnsupportedVersion`] — forward-refusal, no silent
//! best-effort decoding of future formats. Any change to the wire
//! encoding of a persisted type (field/variant reorder, type change,
//! codec change) must bump this constant.
//!
//! # Atomicity
//!
//! [`save`] writes to a `.tmp` sibling, calls `sync_all`, then renames
//! over the destination — on POSIX filesystems the destination is
//! always either the complete old file or the complete new file, never
//! a mixture.
//!
//! # Example
//!
//! ```
//! use qcir::{persist, Circuit};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//!
//! let dir = std::env::temp_dir().join("qcir-persist-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("bell.bin");
//! persist::save(&path, &c).unwrap();
//! let back: Circuit = persist::load(&path).unwrap();
//! assert_eq!(back, c);
//! ```

use serde::codec::DecodeError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every persisted file (`TLKP` = TetrisLock
/// Persist).
pub const MAGIC: [u8; 4] = *b"TLKP";

/// Current on-disk format version.
///
/// Bump this whenever the envelope layout *or* the serde encoding of
/// any persisted type changes. Readers hard-refuse any other value.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed-size prefix: magic + version + payload length.
const HEADER_LEN: usize = 4 + 4 + 8;

/// Trailing checksum width.
const CHECKSUM_LEN: usize = 8;

/// Why a persisted file could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file being read or written.
        path: PathBuf,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// The file does not start with [`MAGIC`] — it is not a persist
    /// file at all (or the header itself was destroyed).
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file's version field is not [`FORMAT_VERSION`].
    ///
    /// Raised for *both* older and newer versions: this build only
    /// understands exactly one format, and guessing at others risks
    /// silently mis-decoding job state.
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u32,
        /// The only version this build accepts.
        supported: u32,
    },
    /// The file is truncated, or its checksum does not match — the
    /// write was torn or the bytes rotted.
    Corrupt {
        /// Human-readable detail (what check failed and where).
        detail: String,
    },
    /// The envelope was intact but the payload failed to decode.
    ///
    /// With a valid checksum this indicates a schema mismatch (the
    /// payload was written by code whose types differ from ours despite
    /// the matching version number) and is a bug, not bit-rot.
    Decode(DecodeError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            PersistError::BadMagic { found } => write!(
                f,
                "not a TetrisLock persist file (magic {found:02x?}, expected {MAGIC:02x?})"
            ),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads only version \
                 {supported}); re-run the job from scratch or use a matching binary"
            ),
            PersistError::Corrupt { detail } => write!(f, "corrupt persist file: {detail}"),
            PersistError::Decode(err) => write!(f, "payload decode failed: {err}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Decode(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DecodeError> for PersistError {
    fn from(err: DecodeError) -> Self {
        PersistError::Decode(err)
    }
}

/// FNV-1a 64-bit hash — tiny, dependency-free, and plenty for torn-write
/// detection (this is an integrity check, not a cryptographic seal).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes `value` into a complete envelope (header + payload +
/// checksum) in memory.
pub fn to_envelope<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let payload = serde::to_bytes(value);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes a `T` from envelope `bytes`, validating magic, version,
/// length, and checksum before touching the payload.
///
/// # Errors
///
/// [`PersistError::BadMagic`], [`PersistError::UnsupportedVersion`],
/// [`PersistError::Corrupt`] (truncation / checksum mismatch), or
/// [`PersistError::Decode`]. Never panics, whatever the input.
pub fn from_envelope<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, PersistError> {
    if bytes.len() < 4 {
        return Err(PersistError::Corrupt {
            detail: format!("file is {} byte(s), shorter than the magic", bytes.len()),
        });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&bytes[..4]);
    if magic != MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::Corrupt {
            detail: format!(
                "file is {} byte(s), shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            ),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("slice is 4 bytes"));
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("slice is 8 bytes"));
    let expected_total = (HEADER_LEN as u64)
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN as u64))
        .ok_or_else(|| PersistError::Corrupt {
            detail: format!("payload length {payload_len} overflows"),
        })?;
    if bytes.len() as u64 != expected_total {
        return Err(PersistError::Corrupt {
            detail: format!(
                "file is {} byte(s) but header claims {expected_total} \
                 (payload {payload_len} + framing)",
                bytes.len()
            ),
        });
    }
    let checksummed = &bytes[..bytes.len() - CHECKSUM_LEN];
    let stored = u64::from_le_bytes(
        bytes[bytes.len() - CHECKSUM_LEN..]
            .try_into()
            .expect("slice is 8 bytes"),
    );
    let computed = fnv1a64(checksummed);
    if stored != computed {
        return Err(PersistError::Corrupt {
            detail: format!("checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"),
        });
    }
    let payload = &bytes[HEADER_LEN..bytes.len() - CHECKSUM_LEN];
    Ok(serde::from_bytes(payload)?)
}

/// Atomically writes `value` to `path`.
///
/// The envelope is written to `<path>.tmp`, synced, then renamed over
/// `path`, so a crash at any instant leaves `path` either absent, the
/// previous complete file, or the new complete file.
///
/// # Errors
///
/// [`PersistError::Io`] if any filesystem step fails.
pub fn save<T: Serialize + ?Sized>(path: &Path, value: &T) -> Result<(), PersistError> {
    let bytes = to_envelope(value);
    let tmp = tmp_path(path);
    let io_err = |source| PersistError::Io {
        path: tmp.clone(),
        source,
    };
    let mut file = fs::File::create(&tmp).map_err(io_err)?;
    file.write_all(&bytes).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    drop(file);
    fs::rename(&tmp, path).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Reads and decodes a `T` from `path`.
///
/// # Errors
///
/// [`PersistError::Io`] if the file cannot be read, otherwise any of
/// the [`from_envelope`] errors.
pub fn load<T: for<'de> Deserialize<'de>>(path: &Path) -> Result<T, PersistError> {
    let bytes = fs::read(path).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    from_envelope(&bytes)
}

/// The sibling temp-file path `save` stages its write through.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Removes orphaned `*.tmp` staging files from `dir` and returns the
/// paths it deleted.
///
/// A `.tmp` sibling only exists between [`save`]'s write and its
/// rename; one that outlives its writer is debris from a crashed
/// process. The `min_age` gate (measured against the file's mtime)
/// protects staging files a *concurrent* writer is producing right
/// now — callers pass their tolerance explicitly ([`std::time::Duration::ZERO`]
/// sweeps unconditionally, which is what tests use).
///
/// Non-`.tmp` entries, subdirectories, and files younger than
/// `min_age` are left untouched. Files that vanish mid-sweep (another
/// process won the race) are skipped, not errors.
///
/// # Errors
///
/// Only if `dir` itself cannot be read.
pub fn sweep_orphan_tmps(
    dir: &Path,
    min_age: std::time::Duration,
) -> std::io::Result<Vec<PathBuf>> {
    let now = std::time::SystemTime::now();
    let mut removed = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let is_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".tmp"));
        if !is_tmp || !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        // A future mtime (clock skew) counts as age zero.
        let age = meta
            .modified()
            .ok()
            .and_then(|m| now.duration_since(m).ok())
            .unwrap_or(std::time::Duration::ZERO);
        if age >= min_age && fs::remove_file(&path).is_ok() {
            removed.push(path);
        }
    }
    removed.sort();
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.25, 2).ccx(0, 1, 2);
        c
    }

    #[test]
    fn envelope_roundtrip() {
        let c = sample();
        let bytes = to_envelope(&c);
        let back: Circuit = from_envelope(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = to_envelope(&sample());
        bytes[0] = b'X';
        assert!(matches!(
            from_envelope::<Circuit>(&bytes),
            Err(PersistError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_refused() {
        let mut bytes = to_envelope(&sample());
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        // Re-seal so only the version check can fire.
        let len = bytes.len();
        let checksum = fnv1a64(&bytes[..len - CHECKSUM_LEN]);
        bytes[len - CHECKSUM_LEN..].copy_from_slice(&checksum.to_le_bytes());
        match from_envelope::<Circuit>(&bytes) {
            Err(PersistError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let bytes = to_envelope(&sample());
        for cut in 0..bytes.len() {
            assert!(
                from_envelope::<Circuit>(&bytes[..cut]).is_err(),
                "truncation at byte {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn every_bitflip_is_detected() {
        let bytes = to_envelope(&sample());
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x01;
            assert!(
                from_envelope::<Circuit>(&mutated).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn save_load_roundtrip_and_tmp_cleanup() {
        let dir = std::env::temp_dir().join(format!("qcir-persist-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("circuit.bin");
        let c = sample();
        save(&path, &c).unwrap();
        assert!(!tmp_path(&path).exists(), "tmp file left behind");
        let back: Circuit = load(&path).unwrap();
        assert_eq!(back, c);
        fs::remove_dir_all(&dir).unwrap();
    }
}
