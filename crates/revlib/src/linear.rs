//! Linear-reversible and voting benchmarks (extension workloads).
//!
//! These extend the Table-I set with three more classic reversible
//! families — Gray-code conversion, parity, and majority voting — giving
//! the obfuscation experiments a wider range of structures (pure CX
//! networks, broadcast trees, counter+threshold logic).

use crate::spec::Benchmark;
use qcir::Circuit;

/// `graycode6`: converts a 6-bit binary number to its Gray code in
/// place: `yᵢ = xᵢ ⊕ xᵢ₊₁` (top bit unchanged). A pure CX cascade — the
/// structure of linear-reversible RevLib circuits.
///
/// # Example
///
/// ```
/// use revlib::linear::graycode6;
///
/// let b = graycode6();
/// assert_eq!(b.eval(0b000111), 0b000100); // gray(7) = 7 ⊕ 3 = 4
/// ```
pub fn graycode6() -> Benchmark {
    let mut c = Circuit::with_name(6, "graycode6");
    // Apply low-to-high so every step reads the *original* next bit.
    for i in 0..5 {
        c.cx(i + 1, i);
    }
    Benchmark::new(
        "graycode6",
        "in-place binary→Gray conversion: y_i = x_i ⊕ x_{i+1}",
        c,
        |x| {
            let x6 = x & 0b111111;
            (x & !0b111111) | (x6 ^ (x6 >> 1))
        },
    )
}

/// `parity9`: folds the parity of 8 data bits onto the 9th wire — the
/// RevLib `parity` family (pure CX fan-in).
pub fn parity9() -> Benchmark {
    let mut c = Circuit::with_name(9, "parity9");
    for i in 0..8 {
        c.cx(i, 8);
    }
    Benchmark::new("parity9", "q8 ^= parity(q0..q7)", c, |x| {
        let p = ((x & 0xFF).count_ones() & 1) as usize;
        x ^ (p << 8)
    })
}

/// `majority5`: majority vote of 5 inputs (`q0..q4`) onto `q8`, using a
/// 3-bit counter on `q5..q7` (controlled increments) followed by the
/// threshold test `w ≥ 3 ⟺ c₂ ⊕ c₀·c₁` (since `w ≤ 5`).
///
/// 9 qubits, 17 gates — the counter-plus-threshold structure of larger
/// RevLib voters. Note the counter wires end *dirty* (they hold the
/// weight), as RevLib garbage lines do.
pub fn majority5() -> Benchmark {
    let mut c = Circuit::with_name(9, "majority5");
    // Counter on q5..q7: controlled increment per input.
    for x in 0..5u32 {
        c.mcx(&[x, 5, 6], 7);
        c.ccx(x, 5, 6);
        c.cx(x, 5);
    }
    // Threshold: q8 ^= c2 ⊕ c0·c1 (majority since w ≤ 5 < 8).
    c.cx(7, 8);
    c.ccx(5, 6, 8);
    Benchmark::new(
        "majority5",
        "q8 ^= [weight(q0..q4) ≥ 3]; q5..q7 hold the weight (garbage)",
        c,
        |s| {
            let w = (s & 0b11111).count_ones() as usize;
            let counter = (s >> 5) & 0b111;
            let new_counter = (counter + w) & 0b111;
            let c0 = new_counter & 1;
            let c1 = new_counter >> 1 & 1;
            let c2 = new_counter >> 2 & 1;
            let vote = c2 ^ (c0 & c1);
            (s & 0b1_1111) | (new_counter << 5) | (((s >> 8 & 1) ^ vote) << 8)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graycode_exhaustive() {
        assert_eq!(graycode6().verify_exhaustive(), None);
    }

    #[test]
    fn graycode_known_values() {
        let b = graycode6();
        assert_eq!(b.eval_circuit(0), 0);
        assert_eq!(b.eval_circuit(1), 1);
        assert_eq!(b.eval_circuit(2), 3);
        assert_eq!(b.eval_circuit(7), 4);
        // Successive Gray codes differ in exactly one bit.
        for x in 0..63usize {
            let g1 = b.eval_circuit(x);
            let g2 = b.eval_circuit(x + 1);
            assert_eq!((g1 ^ g2).count_ones(), 1, "x = {x}");
        }
    }

    #[test]
    fn parity_exhaustive() {
        assert_eq!(parity9().verify_exhaustive(), None);
    }

    #[test]
    fn parity_flips_only_target() {
        let b = parity9();
        for x in [0usize, 0b1, 0b1010_1010, 0xFF] {
            let out = b.eval_circuit(x);
            assert_eq!(out & 0xFF, x & 0xFF, "inputs preserved");
            assert_eq!(out >> 8, (x.count_ones() as usize) & 1);
        }
    }

    #[test]
    fn majority_exhaustive() {
        assert_eq!(majority5().verify_exhaustive(), None);
    }

    #[test]
    fn majority_votes_correctly_from_clean_counter() {
        let b = majority5();
        for x in 0..32usize {
            let out = b.eval_circuit(x);
            let expected = usize::from(x.count_ones() >= 3);
            assert_eq!(out >> 8 & 1, expected, "x = {x:05b}");
        }
    }

    #[test]
    fn majority_shape() {
        let b = majority5();
        assert_eq!(b.circuit().num_qubits(), 9);
        assert_eq!(b.circuit().gate_count(), 17);
    }
}
