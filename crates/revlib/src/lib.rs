//! # revlib — reversible benchmark circuits
//!
//! Rust re-implementations of the RevLib benchmark family the TetrisLock
//! paper evaluates on (Wille et al., "RevLib: an online resource for
//! reversible functions and reversible circuits", ISMVL 2008).
//!
//! Each benchmark is a classical reversible circuit (X/CX/CCX/MCX — the
//! multi-controlled-Toffoli library RevLib uses) bundled with an
//! *independently coded* reference permutation; `verify_exhaustive` checks
//! the two against each other on every basis input. Circuit sizes track
//! the paper's Table I (see `EXPERIMENTS.md` for the per-circuit
//! comparison).
//!
//! The eight Table-I benchmarks are returned by [`table1_benchmarks`];
//! extension workloads (2-bit adder, 4gt5, mixers, Grover) are exported
//! individually.
//!
//! # Example
//!
//! ```
//! use revlib::table1_benchmarks;
//!
//! let benches = table1_benchmarks();
//! assert_eq!(benches.len(), 8);
//! for b in &benches {
//!     assert_eq!(b.verify_exhaustive(), None, "{} broken", b.name());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod alu;
pub mod comparators;
pub mod error;
pub mod grover;
pub mod linear;
pub mod modular;
pub mod spec;
pub mod weight;

pub use adder::{adder_1bit, adder_2bit};
pub use alu::mini_alu;
pub use comparators::{comparator_4gt11, comparator_4gt13, comparator_4gt5};
pub use error::RevlibError;
pub use grover::grover;
pub use linear::{graycode6, majority5, parity9};
pub use modular::{mod5_4, mod_mixer};
pub use spec::{classical_eval, classical_eval_bits, toffoli_double, Benchmark};
pub use weight::{rd43, rd53, rd73, rd84};

/// The eight benchmarks of the paper's Table I, in table order.
pub fn table1_benchmarks() -> Vec<Benchmark> {
    vec![
        mini_alu(),
        mod5_4(),
        adder_1bit(),
        comparator_4gt11(),
        comparator_4gt13(),
        rd53(),
        rd73(),
        rd84(),
    ]
}

/// Every benchmark in the crate (Table I plus extensions), for broad test
/// sweeps.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = table1_benchmarks();
    v.push(adder_2bit());
    v.push(comparator_4gt5());
    v.push(mod_mixer());
    v.push(rd43());
    v.push(toffoli_double());
    v.push(graycode6());
    v.push(parity9());
    v.push(majority5());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_verifies_exhaustively() {
        for b in all_benchmarks() {
            assert_eq!(b.verify_exhaustive(), None, "{} broken", b.name());
        }
    }

    #[test]
    fn table1_names_match_paper() {
        let names: Vec<&str> = table1_benchmarks().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "mini ALU",
                "4mod5",
                "1-bit adder",
                "4gt11",
                "4gt13",
                "rd53",
                "rd73",
                "rd84"
            ]
        );
    }

    #[test]
    fn table1_qubit_counts_match_paper_families() {
        // Paper: qubit sizes vary across 4, 5, 7, 10, 12.
        let sizes: std::collections::BTreeSet<u32> = table1_benchmarks()
            .iter()
            .map(|b| b.circuit().num_qubits())
            .collect();
        assert_eq!(sizes, [4u32, 5, 7, 10, 12].into_iter().collect());
    }

    #[test]
    fn table1_gate_counts_in_paper_range() {
        // Paper: "the number of gates ranging from 4 to 32".
        for b in table1_benchmarks() {
            let g = b.circuit().gate_count();
            assert!((4..=32).contains(&g), "{}: {g} gates", b.name());
        }
    }

    #[test]
    fn benchmarks_are_permutations() {
        for b in all_benchmarks() {
            let n = b.circuit().num_qubits();
            if n > 12 {
                continue;
            }
            let mut seen = vec![false; 1 << n];
            for x in 0..1usize << n {
                let y = b.eval(x);
                assert!(!seen[y], "{} not injective at {x}", b.name());
                seen[y] = true;
            }
        }
    }

    #[test]
    fn statevector_agrees_with_classical_eval() {
        use qsim::Statevector;
        // Spot-check on the small benchmarks: quantum simulation of a
        // classical circuit must land exactly on the reference basis state.
        for b in all_benchmarks() {
            let n = b.circuit().num_qubits();
            if n > 7 {
                continue;
            }
            for x in [0usize, 1, (1 << n) - 1] {
                let mut sv = Statevector::basis(n, x).unwrap();
                sv.apply_circuit(b.circuit()).unwrap();
                let expected = b.eval(x);
                assert!(
                    (sv.probability(expected) - 1.0).abs() < 1e-9,
                    "{}: quantum/classical mismatch on input {x}",
                    b.name()
                );
            }
        }
    }
}
