//! Benchmark specification: circuit + independent classical reference.
//!
//! Every RevLib benchmark here is a *classical reversible* circuit (built
//! from X/CX/CCX/MCX), so its action is a permutation of computational
//! basis states. Each [`Benchmark`] carries an independently coded
//! reference permutation; the test suites check the circuit against the
//! reference on **every** input, which is the strongest possible
//! functional validation.

use crate::error::RevlibError;
use qcir::{BasisBits, Circuit, Gate};

/// Reference permutation: maps an input basis index to the output basis
/// index (bit `k` of the index is qubit `k`).
pub type Reference = fn(usize) -> usize;

/// A named benchmark circuit with its classical reference function.
///
/// # Example
///
/// ```
/// use revlib::toffoli_double;
///
/// let bench = toffoli_double();
/// assert_eq!(bench.circuit().num_qubits(), 3);
/// // |110⟩: both controls set (q1=1, q2=1)? depends on the benchmark —
/// // use the reference to find out.
/// let out = bench.eval(0b011);
/// assert_eq!(out, bench.eval_circuit(0b011));
/// ```
#[derive(Debug, Clone)]
pub struct Benchmark {
    name: &'static str,
    description: &'static str,
    circuit: Circuit,
    reference: Reference,
}

impl Benchmark {
    /// Creates a benchmark from parts (used by the circuit constructors in
    /// this crate).
    pub fn new(
        name: &'static str,
        description: &'static str,
        circuit: Circuit,
        reference: Reference,
    ) -> Self {
        Benchmark {
            name,
            description,
            circuit,
            reference,
        }
    }

    /// Benchmark name as used in the paper's Table I.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of the computed function.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The benchmark circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Evaluates the independent reference permutation.
    pub fn eval(&self, input: usize) -> usize {
        (self.reference)(input)
    }

    /// Evaluates the *circuit* classically on a basis input (must agree
    /// with [`Benchmark::eval`]; the tests enforce this exhaustively).
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-classical gates — impossible
    /// for the benchmarks constructed by this crate; use
    /// [`classical_eval`] directly for arbitrary circuits.
    pub fn eval_circuit(&self, input: usize) -> usize {
        classical_eval(&self.circuit, input).expect("benchmark circuits are classical")
    }

    /// The output the paper's "accuracy" metric counts as correct: the
    /// image of the all-zeros input.
    pub fn expected_output(&self) -> usize {
        self.eval(0)
    }

    /// Verifies circuit-vs-reference agreement on every basis input.
    ///
    /// Returns the first mismatching input, or `None` if all agree.
    pub fn verify_exhaustive(&self) -> Option<usize> {
        let n = self.circuit.num_qubits();
        (0..1usize << n).find(|&input| self.eval(input) != self.eval_circuit(input))
    }
}

/// Classically evaluates a reversible circuit on a basis state.
///
/// Supports the classical gate subset (I/X/CX/CCX/MCX/SWAP/CSWAP).
///
/// # Errors
///
/// Returns [`RevlibError::NonClassicalGate`] if the circuit contains a
/// gate outside that subset (H, rotations, …).
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use revlib::spec::classical_eval;
///
/// let mut c = Circuit::new(2);
/// c.x(0).cx(0, 1);
/// assert_eq!(classical_eval(&c, 0b00)?, 0b11);
/// # Ok::<(), revlib::RevlibError>(())
/// ```
pub fn classical_eval(circuit: &Circuit, input: usize) -> Result<usize, RevlibError> {
    let mut state = input;
    for (index, inst) in circuit.iter().enumerate() {
        let qs = inst.qubits();
        match inst.gate() {
            Gate::I => {}
            Gate::X => state ^= 1 << qs[0].index(),
            Gate::CX => {
                if state >> qs[0].index() & 1 == 1 {
                    state ^= 1 << qs[1].index();
                }
            }
            Gate::CCX => {
                if state >> qs[0].index() & 1 == 1 && state >> qs[1].index() & 1 == 1 {
                    state ^= 1 << qs[2].index();
                }
            }
            Gate::Mcx(_) => {
                let (controls, target) = qs.split_at(qs.len() - 1);
                if controls.iter().all(|q| state >> q.index() & 1 == 1) {
                    state ^= 1 << target[0].index();
                }
            }
            Gate::Swap => {
                let a = state >> qs[0].index() & 1;
                let b = state >> qs[1].index() & 1;
                if a != b {
                    state ^= (1 << qs[0].index()) | (1 << qs[1].index());
                }
            }
            Gate::CSwap => {
                if state >> qs[0].index() & 1 == 1 {
                    let a = state >> qs[1].index() & 1;
                    let b = state >> qs[2].index() & 1;
                    if a != b {
                        state ^= (1 << qs[1].index()) | (1 << qs[2].index());
                    }
                }
            }
            other => {
                return Err(RevlibError::NonClassicalGate {
                    gate: other.to_string(),
                    index,
                })
            }
        }
    }
    Ok(state)
}

/// Classically evaluates a reversible circuit on a wide basis state.
///
/// The limb-backed twin of [`classical_eval`]: same gate subset, same
/// semantics, but the basis state is a [`BasisBits`] so the register
/// width is not capped by the `usize` index encoding — this is what
/// lets witness replay certify wrong-key pairs at 64+ wires. The two
/// evaluators are implemented independently (index arithmetic vs
/// per-bit reads), and the test suites pin their agreement on every
/// width where both apply.
///
/// # Errors
///
/// Returns [`RevlibError::NonClassicalGate`] on any gate outside the
/// classical subset, exactly like [`classical_eval`].
///
/// # Example
///
/// ```
/// use qcir::{BasisBits, Circuit};
/// use revlib::spec::classical_eval_bits;
///
/// let mut c = Circuit::new(80);
/// c.x(70).cx(70, 79);
/// let out = classical_eval_bits(&c, &BasisBits::zeros(80))?;
/// assert!(out.bit(70) && out.bit(79) && out.count_ones() == 2);
/// # Ok::<(), revlib::RevlibError>(())
/// ```
pub fn classical_eval_bits(circuit: &Circuit, input: &BasisBits) -> Result<BasisBits, RevlibError> {
    let mut state = input.clone();
    for (index, inst) in circuit.iter().enumerate() {
        let qs = inst.qubits();
        let bit = |s: &BasisBits, k: usize| s.bit(qs[k].index() as u32);
        match inst.gate() {
            Gate::I => {}
            Gate::X => state.toggle(qs[0].index() as u32),
            Gate::CX => {
                if bit(&state, 0) {
                    state.toggle(qs[1].index() as u32);
                }
            }
            Gate::CCX => {
                if bit(&state, 0) && bit(&state, 1) {
                    state.toggle(qs[2].index() as u32);
                }
            }
            Gate::Mcx(_) => {
                let controls = qs.len() - 1;
                if (0..controls).all(|k| bit(&state, k)) {
                    state.toggle(qs[controls].index() as u32);
                }
            }
            Gate::Swap => {
                if bit(&state, 0) != bit(&state, 1) {
                    state.toggle(qs[0].index() as u32);
                    state.toggle(qs[1].index() as u32);
                }
            }
            Gate::CSwap => {
                if bit(&state, 0) && bit(&state, 1) != bit(&state, 2) {
                    state.toggle(qs[1].index() as u32);
                    state.toggle(qs[2].index() as u32);
                }
            }
            other => {
                return Err(RevlibError::NonClassicalGate {
                    gate: other.to_string(),
                    index,
                })
            }
        }
    }
    Ok(state)
}

/// A tiny 3-qubit double-Toffoli benchmark used in doctests and smoke
/// tests (not part of Table I).
pub fn toffoli_double() -> Benchmark {
    let mut c = Circuit::with_name(3, "toffoli_double");
    c.ccx(0, 1, 2).cx(0, 1);
    Benchmark::new("toffoli_double", "q2 ^= q0·q1 then q1 ^= q0", c, |x| {
        let mut s = x;
        if s & 0b01 != 0 && s & 0b10 != 0 {
            s ^= 0b100;
        }
        if s & 0b01 != 0 {
            s ^= 0b010;
        }
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_eval_gate_coverage() {
        let mut c = Circuit::new(4);
        c.x(0) // 0001
            .cx(0, 1) // 0011
            .ccx(0, 1, 2) // 0111
            .mcx(&[0, 1, 2], 3) // 1111
            .swap(0, 3) // 1111 (both set)
            .cswap(0, 1, 2); // no-op content-wise (both set)
        assert_eq!(classical_eval(&c, 0).unwrap(), 0b1111);
    }

    #[test]
    fn swap_moves_single_bit() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert_eq!(classical_eval(&c, 0b01).unwrap(), 0b10);
        assert_eq!(classical_eval(&c, 0b10).unwrap(), 0b01);
        assert_eq!(classical_eval(&c, 0b11).unwrap(), 0b11);
    }

    #[test]
    fn cswap_needs_control() {
        let mut c = Circuit::new(3);
        c.cswap(2, 0, 1);
        assert_eq!(classical_eval(&c, 0b001).unwrap(), 0b001); // control clear
        assert_eq!(classical_eval(&c, 0b101).unwrap(), 0b110); // control set
    }

    #[test]
    fn rejects_quantum_gates_with_typed_error() {
        let mut c = Circuit::new(2);
        c.x(0).h(1);
        assert_eq!(
            classical_eval(&c, 0),
            Err(RevlibError::NonClassicalGate {
                gate: "h".into(),
                index: 1,
            })
        );
    }

    #[test]
    fn bits_evaluator_agrees_with_index_evaluator() {
        let mut c = Circuit::new(4);
        c.x(0)
            .cx(0, 1)
            .ccx(0, 1, 2)
            .mcx(&[0, 1, 2], 3)
            .swap(0, 3)
            .cswap(0, 1, 2);
        for input in 0..16usize {
            let wide = classical_eval_bits(&c, &BasisBits::from_u64(4, input as u64)).unwrap();
            assert_eq!(
                wide.to_u64().unwrap(),
                classical_eval(&c, input).unwrap() as u64,
                "input {input:#b}"
            );
        }
    }

    #[test]
    fn bits_evaluator_works_past_the_u64_width() {
        // Move a bit across the limb boundary and back: q100 → q10 → q3.
        let mut c = Circuit::new(120);
        c.cx(100, 10).cx(10, 100).cx(100, 10); // swap via 3 CX
        c.swap(10, 3);
        let mut input = BasisBits::zeros(120);
        input.set(100, true);
        let out = classical_eval_bits(&c, &input).unwrap();
        assert!(out.bit(3));
        assert_eq!(out.count_ones(), 1);
    }

    #[test]
    fn bits_evaluator_rejects_quantum_gates() {
        let mut c = Circuit::new(70);
        c.x(0).h(65);
        assert_eq!(
            classical_eval_bits(&c, &BasisBits::zeros(70)),
            Err(RevlibError::NonClassicalGate {
                gate: "h".into(),
                index: 1,
            })
        );
    }

    #[test]
    fn toffoli_double_verifies() {
        assert_eq!(toffoli_double().verify_exhaustive(), None);
    }

    #[test]
    fn expected_output_is_image_of_zero() {
        let b = toffoli_double();
        assert_eq!(b.expected_output(), 0);
    }
}
