//! 4-bit greater-than comparators (the RevLib `4gt` family).

use crate::spec::Benchmark;
use qcir::Circuit;

/// `4gt13`: outputs `[x > 13]` for the 4-bit input `x = q3 q2 q1 q0` onto
/// `q4`.
///
/// `x > 13 ⟺ x ∈ {14, 15} ⟺ x1·x2·x3`. The circuit computes the triple
/// AND with the classic *dirty-ancilla* Toffoli ladder using the unused
/// input `q0` as borrowed workspace (restored afterwards):
///
/// ```text
/// ccx(q3, q0, q4); ccx(q1, q2, q0); ccx(q3, q0, q4); ccx(q1, q2, q0)
/// ```
///
/// Net effect: `q4 ^= q1·q2·q3` for *any* initial `q0`. Four gates at
/// depth 4 — exactly the size the paper reports for this benchmark.
///
/// # Example
///
/// ```
/// use revlib::comparator_4gt13;
///
/// let bench = comparator_4gt13();
/// assert_eq!(bench.eval(14) >> 4 & 1, 1);
/// assert_eq!(bench.eval(13) >> 4 & 1, 0);
/// ```
pub fn comparator_4gt13() -> Benchmark {
    let mut c = Circuit::with_name(5, "4gt13");
    c.ccx(3, 0, 4).ccx(1, 2, 0).ccx(3, 0, 4).ccx(1, 2, 0);
    Benchmark::new(
        "4gt13",
        "q4 ^= [x > 13] for 4-bit x on q0..q3 (dirty-ancilla AND ladder)",
        c,
        |s| {
            let x = s & 0b1111;
            let hit = usize::from(x > 13);
            s ^ (hit << 4)
        },
    )
}

/// `4gt11`: outputs `[x > 11]` for the 4-bit input onto `q4`.
///
/// `x > 11 ⟺ x2·x3`. Mirroring the redundant ESOP-style synthesis of the
/// RevLib netlist (which is noticeably larger than the optimum), the
/// function is expanded over `x1`:
///
/// `x2·x3 = x1·x2·x3 ⊕ ¬x1·x2·x3`
///
/// and each 3-input AND term uses the dirty-ancilla ladder with `q0`
/// borrowed. 10 gates, depth 10 (paper: 13 / 13).
pub fn comparator_4gt11() -> Benchmark {
    let mut c = Circuit::with_name(5, "4gt11");
    // Term 1: q4 ^= ¬x1·x2·x3 (the X-conjugated term first: the lone
    // x(1) opener leaves a two-layer leading idle window on q3/q4, the
    // kind of slack real RevLib netlists exhibit).
    c.x(1);
    c.ccx(1, 2, 0).ccx(3, 0, 4).ccx(1, 2, 0).ccx(3, 0, 4);
    c.x(1);
    // Term 2: q4 ^= x1·x2·x3.
    c.ccx(1, 2, 0).ccx(3, 0, 4).ccx(1, 2, 0).ccx(3, 0, 4);
    Benchmark::new(
        "4gt11",
        "q4 ^= [x > 11] for 4-bit x on q0..q3 (ESOP over x1, dirty ancilla)",
        c,
        |s| {
            let x = s & 0b1111;
            let hit = usize::from(x > 11);
            s ^ (hit << 4)
        },
    )
}

/// `4gt5`: extension workload — `[x > 5]` onto `q4`.
///
/// `x > 5 ⟺ x3 ∨ (x2·x1)`, ESOP form `x3 ⊕ x2·x1 ⊕ x3·x2·x1`.
pub fn comparator_4gt5() -> Benchmark {
    let mut c = Circuit::with_name(5, "4gt5");
    c.cx(3, 4).ccx(1, 2, 4);
    // q4 ^= x1·x2·x3 via dirty ancilla q0.
    c.ccx(3, 0, 4).ccx(1, 2, 0).ccx(3, 0, 4).ccx(1, 2, 0);
    Benchmark::new("4gt5", "q4 ^= [x > 5] for 4-bit x on q0..q3", c, |s| {
        let x = s & 0b1111;
        let hit = usize::from(x > 5);
        s ^ (hit << 4)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gt13_exhaustive() {
        assert_eq!(comparator_4gt13().verify_exhaustive(), None);
    }

    #[test]
    fn gt13_threshold_behaviour() {
        let b = comparator_4gt13();
        for x in 0..16usize {
            let out = b.eval_circuit(x);
            assert_eq!(out >> 4 & 1, usize::from(x > 13), "x = {x}");
            // Inputs must be preserved (ancilla restored).
            assert_eq!(out & 0b1111, x, "inputs clobbered for x = {x}");
        }
    }

    #[test]
    fn gt13_matches_paper_size() {
        let b = comparator_4gt13();
        assert_eq!(b.circuit().gate_count(), 4); // paper: 4
        assert_eq!(b.circuit().depth(), 4); // paper: 4
        assert_eq!(b.circuit().num_qubits(), 5);
    }

    #[test]
    fn gt13_dirty_ancilla_invariant() {
        // The ladder must work for q0 = 1 too (dirty means *any* value).
        let b = comparator_4gt13();
        for x in 0..32usize {
            let out = b.eval_circuit(x);
            assert_eq!(out & 1, x & 1, "ancilla q0 not restored for {x}");
        }
    }

    #[test]
    fn gt11_exhaustive() {
        assert_eq!(comparator_4gt11().verify_exhaustive(), None);
    }

    #[test]
    fn gt11_shape() {
        let b = comparator_4gt11();
        assert_eq!(b.circuit().gate_count(), 10);
        assert_eq!(b.circuit().num_qubits(), 5);
        assert!(b.circuit().depth() >= 9);
    }

    #[test]
    fn gt11_threshold_behaviour() {
        let b = comparator_4gt11();
        for x in 0..16usize {
            assert_eq!(b.eval_circuit(x) >> 4 & 1, usize::from(x > 11), "x = {x}");
        }
    }

    #[test]
    fn gt5_exhaustive() {
        assert_eq!(comparator_4gt5().verify_exhaustive(), None);
    }

    #[test]
    fn outputs_xor_into_target() {
        // With q4 initially 1 the output is complemented.
        let b = comparator_4gt13();
        let out = b.eval_circuit(0b1_1111); // x = 15, q4 = 1
        assert_eq!(out >> 4 & 1, 0);
    }
}
