//! Grover-search workload.
//!
//! The paper's §V-A notes that for non-arithmetic circuits such as
//! Grover's algorithm, TetrisLock inserts Hadamard gates instead of X/CX.
//! This module provides the Grover workload those experiments run on.
//! Unlike the RevLib circuits this one is *not* classical, so it has no
//! truth-table reference; its marker is the amplified basis state.

use qcir::Circuit;

/// Builds a Grover search circuit over `num_qubits` qubits amplifying the
/// basis state `marked`, running `iterations` Grover iterations.
///
/// Oracle and diffusion use multi-controlled Z built from `H·MCX·H`.
///
/// # Panics
///
/// Panics if `marked` is out of range or `num_qubits == 0`.
///
/// # Example
///
/// ```
/// use revlib::grover::grover;
/// use qsim::Statevector;
///
/// // 3 qubits, 2 iterations is near-optimal for 8 entries.
/// let c = grover(3, 0b101, 2);
/// let sv = Statevector::from_circuit(&c)?;
/// assert!(sv.probability(0b101) > 0.9);
/// # Ok::<(), qsim::SimError>(())
/// ```
pub fn grover(num_qubits: u32, marked: usize, iterations: u32) -> Circuit {
    assert!(num_qubits > 0, "grover needs at least one qubit");
    assert!(marked < 1usize << num_qubits, "marked state out of range");
    let mut c = Circuit::with_name(num_qubits, format!("grover{num_qubits}"));
    // Uniform superposition.
    for q in 0..num_qubits {
        c.h(q);
    }
    let controls: Vec<u32> = (0..num_qubits - 1).collect();
    let target = num_qubits - 1;
    for _ in 0..iterations {
        // Oracle: phase-flip |marked⟩. Conjugate an MCZ with X on the
        // zero bits of `marked`.
        for q in 0..num_qubits {
            if marked >> q & 1 == 0 {
                c.x(q);
            }
        }
        c.h(target);
        c.mcx(&controls, target);
        c.h(target);
        for q in 0..num_qubits {
            if marked >> q & 1 == 0 {
                c.x(q);
            }
        }
        // Diffusion: reflect about the mean.
        for q in 0..num_qubits {
            c.h(q);
            c.x(q);
        }
        c.h(target);
        c.mcx(&controls, target);
        c.h(target);
        for q in 0..num_qubits {
            c.x(q);
            c.h(q);
        }
    }
    c
}

/// The recommended iteration count ⌊π/4·√N⌋ for an `num_qubits`-qubit
/// search space.
pub fn optimal_iterations(num_qubits: u32) -> u32 {
    let n = (1u64 << num_qubits) as f64;
    (std::f64::consts::FRAC_PI_4 * n.sqrt()).floor().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Statevector;

    #[test]
    fn grover_amplifies_marked_state() {
        for marked in [0b000usize, 0b101, 0b111] {
            let c = grover(3, marked, optimal_iterations(3));
            let sv = Statevector::from_circuit(&c).unwrap();
            assert!(
                sv.probability(marked) > 0.9,
                "marked {marked:b}: p = {}",
                sv.probability(marked)
            );
        }
    }

    #[test]
    fn grover_4_qubits() {
        let c = grover(4, 0b1010, optimal_iterations(4));
        let sv = Statevector::from_circuit(&c).unwrap();
        assert!(sv.probability(0b1010) > 0.9);
    }

    #[test]
    fn zero_iterations_is_uniform() {
        let c = grover(3, 0, 0);
        let sv = Statevector::from_circuit(&c).unwrap();
        for i in 0..8 {
            assert!((sv.probability(i) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn optimal_iterations_grows_with_space() {
        assert_eq!(optimal_iterations(2), 1);
        assert_eq!(optimal_iterations(3), 2);
        assert_eq!(optimal_iterations(4), 3);
        assert!(optimal_iterations(8) > optimal_iterations(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_marked_state() {
        grover(2, 7, 1);
    }
}
