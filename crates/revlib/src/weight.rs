//! Hamming-weight benchmarks (the RevLib `rd` family).
//!
//! `rdXY` computes the binary weight of X input bits into Y output bits.
//! Two synthesis styles are used, matching how the RevLib netlists of
//! different sizes are built:
//!
//! * `rd53` — *symmetric-function* style: bit `k` of the weight is the XOR
//!   of all AND-terms over `2ᵏ`-subsets of the inputs (Lucas' theorem).
//! * `rd73`/`rd84` — *counter* style: one controlled increment of a binary
//!   counter per input bit.

use crate::error::RevlibError;
use crate::spec::Benchmark;
use qcir::Circuit;

/// `rd53`: weight of 5 input bits (`q0..q4`) as a 3-bit number.
///
/// Output mapping (7 qubits total, like the RevLib netlist):
/// * bit 2 of the weight → `q6` (XOR of all C(5,4)=5 quad ANDs),
/// * bit 1 of the weight → `q5` (XOR of all C(5,2)=10 pair ANDs),
/// * bit 0 (parity) folds onto `q4` (4 CX), leaving `q4` as output/garbage.
///
/// 5 + 10 + 4 = 19 gates — the exact Table I count.
///
/// # Example
///
/// ```
/// use revlib::rd53;
///
/// let bench = rd53();
/// let out = bench.eval(0b00111); // weight 3 = 0b011
/// assert_eq!(out >> 4 & 1, 1); // w0 on q4
/// assert_eq!(out >> 5 & 1, 1); // w1 on q5
/// assert_eq!(out >> 6 & 1, 0); // w2 on q6
/// ```
pub fn rd53() -> Benchmark {
    let mut c = Circuit::with_name(7, "rd53");
    // w2 = XOR over 4-subsets (must read original inputs, so done first).
    for skip in 0..5u32 {
        let controls: Vec<u32> = (0..5).filter(|&q| q != skip).collect();
        c.mcx(&controls, 6);
    }
    // w1 = XOR over 2-subsets.
    for a in 0..5u32 {
        for b in a + 1..5 {
            c.ccx(a, b, 5);
        }
    }
    // w0 = parity folded onto q4.
    for a in 0..4u32 {
        c.cx(a, 4);
    }
    Benchmark::new(
        "rd53",
        "weight of q0..q4: w0→q4, w1→q5, w2→q6 (symmetric-function form)",
        c,
        |s| {
            let w = (s & 0b11111).count_ones() as usize;
            let rest = s & !0b111_0000 & !0b10000;
            let q4 = w & 1;
            let q5 = (s >> 5 & 1) ^ ((w >> 1) & 1);
            let q6 = (s >> 6 & 1) ^ ((w >> 2) & 1);
            (rest & 0b1111) | (q4 << 4) | (q5 << 5) | (q6 << 6)
        },
    )
}

/// Builds a counter-style `rd` benchmark: `inputs` input bits on
/// `q0..inputs-1`, a `counter_bits`-wide binary counter on the top wires,
/// one controlled increment per input.
///
/// # Errors
///
/// Returns [`RevlibError::UnregisteredReference`] for shapes without a
/// registered reference permutation (registered shapes: `rd43`,
/// `rd73`, `rd84`).
pub fn counter_benchmark(
    name: &'static str,
    description: &'static str,
    inputs: u32,
    counter_bits: u32,
) -> Result<Benchmark, RevlibError> {
    let n = inputs + counter_bits;
    let mut c = Circuit::with_name(n, name);
    for x in 0..inputs {
        // Controlled increment, most-significant carry first:
        // c_{k} ^= x · c_0 · … · c_{k-1}.
        for k in (0..counter_bits).rev() {
            let mut controls: Vec<u32> = vec![x];
            controls.extend(inputs..inputs + k);
            c.mcx(&controls, inputs + k);
        }
    }
    c_with_reference(name, description, c, inputs, counter_bits)
}

/// Shorthand for the registered shapes used by this crate's named
/// constructors; the registration invariant makes the `expect` safe.
fn counter_rd(
    name: &'static str,
    description: &'static str,
    inputs: u32,
    counter_bits: u32,
) -> Benchmark {
    counter_benchmark(name, description, inputs, counter_bits)
        .expect("named rd constructors use registered shapes")
}

fn c_with_reference(
    name: &'static str,
    description: &'static str,
    circuit: Circuit,
    inputs: u32,
    counter_bits: u32,
) -> Result<Benchmark, RevlibError> {
    // The reference must be a `fn`, so dispatch on (inputs, counter_bits)
    // through dedicated monomorphic functions.
    fn reference_impl(s: usize, inputs: u32, counter_bits: u32) -> usize {
        let input_mask = (1usize << inputs) - 1;
        let x = s & input_mask;
        let w = x.count_ones() as usize;
        let counter = (s >> inputs) & ((1 << counter_bits) - 1);
        let new_counter = (counter + w) & ((1 << counter_bits) - 1);
        x | (new_counter << inputs)
    }
    let reference: fn(usize) -> usize = match (inputs, counter_bits) {
        (7, 3) => |s| reference_impl(s, 7, 3),
        (8, 4) => |s| reference_impl(s, 8, 4),
        (4, 3) => |s| reference_impl(s, 4, 3),
        _ => {
            return Err(RevlibError::UnregisteredReference {
                inputs,
                counter_bits,
            })
        }
    };
    Ok(Benchmark::new(name, description, circuit, reference))
}

/// `rd73`: weight of 7 inputs into a 3-bit counter on `q7..q9`
/// (10 qubits, 21 gates — paper: 23).
pub fn rd73() -> Benchmark {
    counter_rd(
        "rd73",
        "weight of q0..q6 accumulated into 3-bit counter q7..q9",
        7,
        3,
    )
}

/// `rd84`: weight of 8 inputs into a 4-bit counter on `q8..q11`
/// (12 qubits, 32 gates — the exact Table I count).
pub fn rd84() -> Benchmark {
    counter_rd(
        "rd84",
        "weight of q0..q7 accumulated into 4-bit counter q8..q11",
        8,
        4,
    )
}

/// Small counter workload for tests: 4 inputs, 3-bit counter.
pub fn rd43() -> Benchmark {
    counter_rd(
        "rd43",
        "weight of q0..q3 accumulated into 3-bit counter q4..q6",
        4,
        3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rd53_exhaustive() {
        assert_eq!(rd53().verify_exhaustive(), None);
    }

    #[test]
    fn rd53_weight_bits() {
        let b = rd53();
        for x in 0..32usize {
            let out = b.eval_circuit(x);
            let w = x.count_ones() as usize;
            assert_eq!(out >> 4 & 1, w & 1, "w0 for x={x}");
            assert_eq!(out >> 5 & 1, (w >> 1) & 1, "w1 for x={x}");
            assert_eq!(out >> 6 & 1, (w >> 2) & 1, "w2 for x={x}");
        }
    }

    #[test]
    fn rd53_matches_paper_count() {
        let b = rd53();
        assert_eq!(b.circuit().num_qubits(), 7);
        assert_eq!(b.circuit().gate_count(), 19); // paper: 19
    }

    #[test]
    fn rd73_exhaustive() {
        assert_eq!(rd73().verify_exhaustive(), None);
    }

    #[test]
    fn rd73_shape() {
        let b = rd73();
        assert_eq!(b.circuit().num_qubits(), 10);
        assert_eq!(b.circuit().gate_count(), 21); // paper: 23
    }

    #[test]
    fn rd84_exhaustive() {
        assert_eq!(rd84().verify_exhaustive(), None);
    }

    #[test]
    fn rd84_shape() {
        let b = rd84();
        assert_eq!(b.circuit().num_qubits(), 12);
        assert_eq!(b.circuit().gate_count(), 32); // paper: 32
    }

    #[test]
    fn rd84_counts_all_ones() {
        let b = rd84();
        let out = b.eval_circuit(0xFF);
        assert_eq!(out >> 8, 8, "count of 8 ones");
    }

    #[test]
    fn unregistered_shape_yields_typed_error() {
        assert_eq!(
            counter_benchmark("rd94", "unregistered", 9, 4).unwrap_err(),
            RevlibError::UnregisteredReference {
                inputs: 9,
                counter_bits: 4,
            }
        );
    }

    #[test]
    fn rd43_counter_saturates_mod_8() {
        let b = rd43();
        assert_eq!(b.verify_exhaustive(), None);
        // Preloaded counter wraps modulo 8.
        let preload = 0b111 << 4; // counter = 7
        let out = b.eval_circuit(preload | 0b0011); // +2 → 9 mod 8 = 1
        assert_eq!(out >> 4, 1);
    }
}
