//! The `mini ALU` benchmark.

use crate::spec::Benchmark;
use qcir::Circuit;

/// `mini ALU`: a 1-bit arithmetic-logic unit on 5 qubits.
///
/// Wires: `q0 = a`, `q1 = b`, `q2 = s` (operation select), `q3 = result
/// accumulator`, `q4 = workspace` (dirty, restored).
///
/// Semantics: `q3 ^= s ? (a ⊕ b) : (a ∧ b)` — select-XOR vs select-AND,
/// the classic two-op ALU slice. The AND path needs a 3-controlled AND
/// (`¬s·a·b`), built with the dirty-ancilla Toffoli ladder over `q4`; the
/// XOR path conditions `a ⊕ b` on `s` directly.
///
/// 9 gates (paper: 9), depth 9 (paper: 8).
///
/// # Example
///
/// ```
/// use revlib::mini_alu;
///
/// let bench = mini_alu();
/// // s=0: AND. a=1, b=1 → q3 ^= 1.
/// assert_eq!(bench.eval(0b00011) >> 3 & 1, 1);
/// // s=1: XOR. a=1, b=1 → q3 ^= 0.
/// assert_eq!(bench.eval(0b00111) >> 3 & 1, 0);
/// ```
pub fn mini_alu() -> Benchmark {
    let mut c = Circuit::with_name(5, "mini ALU");
    // AND path: q3 ^= ¬s·a·b (dirty ancilla q4).
    c.x(2); // s̄
    c.ccx(2, 4, 3).ccx(0, 1, 4).ccx(2, 4, 3).ccx(0, 1, 4); // q3 ^= s̄·a·b
    c.x(2); // restore s
            // XOR path: q3 ^= s·(a ⊕ b).
    c.cx(0, 1) // q1 = a ⊕ b
        .ccx(2, 1, 3) // q3 ^= s·(a⊕b)
        .cx(0, 1); // restore b
    Benchmark::new(
        "mini ALU",
        "q3 ^= s ? (a⊕b) : (a∧b); a,b,s preserved, q4 dirty-restored",
        c,
        |x| {
            let a = x & 1;
            let b = x >> 1 & 1;
            let s = x >> 2 & 1;
            let result = if s == 1 { a ^ b } else { a & b };
            x ^ (result << 3)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_exhaustive() {
        assert_eq!(mini_alu().verify_exhaustive(), None);
    }

    #[test]
    fn alu_op_table() {
        let bench = mini_alu();
        for a in 0..2usize {
            for b in 0..2usize {
                for s in 0..2usize {
                    let input = a | (b << 1) | (s << 2);
                    let out = bench.eval_circuit(input);
                    let expect = if s == 1 { a ^ b } else { a & b };
                    assert_eq!(out >> 3 & 1, expect, "a={a} b={b} s={s}");
                    // Inputs preserved.
                    assert_eq!(out & 0b111, input & 0b111);
                    // Workspace restored.
                    assert_eq!(out >> 4 & 1, 0);
                }
            }
        }
    }

    #[test]
    fn alu_workspace_is_dirty_safe() {
        let bench = mini_alu();
        // q4 = 1 initially must still give correct results + restore.
        for x in 0..16usize {
            let input = x | (1 << 4);
            let out = bench.eval_circuit(input);
            assert_eq!(out >> 4 & 1, 1, "workspace not restored for {x}");
            let a = x & 1;
            let b = x >> 1 & 1;
            let s = x >> 2 & 1;
            let expect = if s == 1 { a ^ b } else { a & b };
            assert_eq!(out >> 3 & 1, (x >> 3 & 1) ^ expect);
        }
    }

    #[test]
    fn alu_matches_paper_size() {
        let bench = mini_alu();
        assert_eq!(bench.circuit().num_qubits(), 5);
        assert_eq!(bench.circuit().gate_count(), 9); // paper: 9
        assert!(bench.circuit().depth() <= 9); // paper: 8
    }
}
