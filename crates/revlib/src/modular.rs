//! Modular-arithmetic detectors (the RevLib `4mod5` family).

use crate::spec::Benchmark;
use qcir::Circuit;

/// `4mod5`: flags onto `q4` whether the 4-bit input is divisible by 5.
///
/// For 4-bit `x`, `x mod 5 == 0 ⟺ x ∈ {0, 5, 10, 15} ⟺ (x0 = x2) ∧
/// (x1 = x3)`. The circuit folds the two XNOR tests onto `q2`/`q3` and
/// ANDs them into the result line; `q2`/`q3` end as garbage (standard for
/// RevLib netlists), `q2` is restored to the XOR for cleanliness.
///
/// 6 gates (paper: 6), depth 4 (paper: 5).
///
/// # Example
///
/// ```
/// use revlib::mod5_4;
///
/// let bench = mod5_4();
/// assert_eq!(bench.eval(10) >> 4 & 1, 1); // 10 = 2·5
/// assert_eq!(bench.eval(7) >> 4 & 1, 0);
/// ```
pub fn mod5_4() -> Benchmark {
    let mut c = Circuit::with_name(5, "4mod5");
    c.cx(0, 2) // q2 = x0 ⊕ x2
        .cx(1, 3) // q3 = x1 ⊕ x3
        .x(2) // q2 = XNOR(x0, x2)
        .x(3) // q3 = XNOR(x1, x3)
        .ccx(2, 3, 4) // q4 ^= [x ≡ 0 (mod 5)]
        .x(2); // restore q2 = x0 ⊕ x2 (q3 stays inverted: garbage)
    Benchmark::new(
        "4mod5",
        "q4 ^= [4-bit x ≡ 0 mod 5]; q2,q3 garbage XOR lines",
        c,
        |s| {
            let x = s & 0b1111;
            let x0 = x & 1;
            let x1 = x >> 1 & 1;
            let x2 = x >> 2 & 1;
            let x3 = x >> 3 & 1;
            let hit = usize::from(x % 5 == 0);
            let g2 = x0 ^ x2;
            let g3 = (x1 ^ x3) ^ 1;
            (s & !0b11100) | (g2 << 2) | (g3 << 3) | ((s >> 4 & 1) ^ hit) << 4
        },
    )
}

/// `mod5adder`-style extension workload: adds the 3-bit input `q0..q2`
/// (values 0..7) modulo 2 onto `q3` and tracks `mod 4` residue parity on
/// `q4` — a small arithmetic mixer exercising CX/CCX chains.
pub fn mod_mixer() -> Benchmark {
    let mut c = Circuit::with_name(5, "mod_mixer");
    c.cx(0, 3)
        .cx(1, 3)
        .cx(2, 3) // q3 ^= parity
        .ccx(0, 1, 4)
        .ccx(1, 2, 4)
        .ccx(0, 2, 4); // q4 ^= pair-count parity = bit1 of weight
    Benchmark::new(
        "mod_mixer",
        "q3 ^= parity(x), q4 ^= ⌊weight(x)/2⌋ mod 2 for 3-bit x",
        c,
        |s| {
            let x = s & 0b111;
            let w = (x & 1) + (x >> 1 & 1) + (x >> 2 & 1);
            let p = w & 1;
            let h = (w >> 1) & 1;
            s ^ (p << 3) ^ (h << 4)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod5_exhaustive() {
        assert_eq!(mod5_4().verify_exhaustive(), None);
    }

    #[test]
    fn mod5_flags_multiples() {
        let b = mod5_4();
        for x in 0..16usize {
            assert_eq!(
                b.eval_circuit(x) >> 4 & 1,
                usize::from(x % 5 == 0),
                "x = {x}"
            );
        }
    }

    #[test]
    fn mod5_shape() {
        let b = mod5_4();
        assert_eq!(b.circuit().num_qubits(), 5);
        assert_eq!(b.circuit().gate_count(), 6); // paper: 6
        assert!(b.circuit().depth() >= 4);
    }

    #[test]
    fn mixer_exhaustive() {
        assert_eq!(mod_mixer().verify_exhaustive(), None);
    }

    #[test]
    fn mixer_weight_bits() {
        let b = mod_mixer();
        for x in 0..8usize {
            let out = b.eval_circuit(x);
            let w = x.count_ones() as usize;
            assert_eq!(out >> 3 & 1, w & 1);
            assert_eq!(out >> 4 & 1, (w >> 1) & 1);
        }
    }
}
