//! Benchmark-crate error types.

use std::fmt;

/// Errors raised by the classical evaluator and benchmark constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RevlibError {
    /// [`crate::classical_eval`] met a gate outside the classical
    /// reversible subset (H, rotations, …).
    NonClassicalGate {
        /// Display name of the offending gate.
        gate: String,
        /// Instruction index within the circuit.
        index: usize,
    },
    /// A counter-style weight benchmark was requested for a shape that
    /// has no registered reference permutation.
    UnregisteredReference {
        /// Requested input-bit count.
        inputs: u32,
        /// Requested counter width.
        counter_bits: u32,
    },
}

impl fmt::Display for RevlibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RevlibError::NonClassicalGate { gate, index } => write!(
                f,
                "classical evaluation cannot handle gate {gate} at instruction {index}"
            ),
            RevlibError::UnregisteredReference {
                inputs,
                counter_bits,
            } => write!(
                f,
                "no reference permutation registered for rd({inputs},{counter_bits})"
            ),
        }
    }
}

impl std::error::Error for RevlibError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = RevlibError::NonClassicalGate {
            gate: "h".into(),
            index: 4,
        };
        assert!(e.to_string().contains('h'));
        assert!(e.to_string().contains('4'));
        let e = RevlibError::UnregisteredReference {
            inputs: 9,
            counter_bits: 4,
        };
        assert!(e.to_string().contains("rd(9,4)"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<RevlibError>();
    }
}
