//! Reversible adders.

use crate::spec::Benchmark;
use qcir::Circuit;

/// The classic 4-qubit reversible full adder ("1-bit adder" in the paper's
/// Table I).
///
/// Wires: `q0 = a`, `q1 = b`, `q2 = c_in`, `q3 = 0` (carry out).
/// After the circuit: `q2 = a ⊕ b ⊕ c_in` (sum), `q3 ^= carry`,
/// `q1 = a ⊕ b` (garbage), `q0 = a`.
///
/// # Example
///
/// ```
/// use revlib::adder_1bit;
///
/// let bench = adder_1bit();
/// // a=1, b=1, cin=0 → sum=0, carry=1.
/// let out = bench.eval(0b0011);
/// assert_eq!(out >> 2 & 1, 0); // sum on q2
/// assert_eq!(out >> 3 & 1, 1); // carry on q3
/// ```
pub fn adder_1bit() -> Benchmark {
    let mut c = Circuit::with_name(4, "1-bit adder");
    c.ccx(0, 1, 3) // q3 ^= a·b
        .cx(0, 1) // q1 = a ⊕ b
        .ccx(1, 2, 3) // q3 ^= (a⊕b)·c  → q3 = carry
        .cx(1, 2) // q2 = a ⊕ b ⊕ c = sum
        .cx(0, 1); // restore q1 = b
    Benchmark::new(
        "1-bit adder",
        "full adder: q2=sum(a,b,cin), q3^=carry, inputs a,b preserved",
        c,
        |x| {
            let a = x & 1;
            let b = x >> 1 & 1;
            let cin = x >> 2 & 1;
            let d = x >> 3 & 1;
            let sum = a ^ b ^ cin;
            let carry = (a & b) | (a & cin) | (b & cin);
            a | (b << 1) | (sum << 2) | ((d ^ carry) << 3)
        },
    )
}

/// A 2-bit ripple-carry adder on 7 qubits (extension workload, not in
/// Table I): `q0..q1 = a`, `q2..q3 = b`, `q4 = c_in = 0`, `q5 = 0`,
/// `q6 = 0`. Computes `b ← a + b` with carry chain through q4/q5, final
/// carry in q6.
pub fn adder_2bit() -> Benchmark {
    let mut c = Circuit::with_name(7, "2-bit adder");
    // Bit 0: carry into q5, sum into q2.
    c.ccx(0, 2, 5).cx(0, 2);
    // Bit 1 with carry q5: sum q3, carry q6.
    c.ccx(1, 3, 6).cx(1, 3).ccx(3, 5, 6).cx(5, 3);
    Benchmark::new(
        "2-bit adder",
        "ripple adder: (q3 q2) = a + b mod 4, q6 = carry-out",
        c,
        |x| {
            let a = (x & 1) | (x >> 1 & 1) << 1;
            let b = (x >> 2 & 1) | (x >> 3 & 1) << 1;
            let q4 = x >> 4 & 1;
            let q5 = x >> 5 & 1;
            let q6 = x >> 6 & 1;
            // Trace the gate list classically (independent re-derivation):
            let mut s0 = a & 1;
            let s1 = a >> 1 & 1;
            let mut t0 = b & 1;
            let mut t1 = b >> 1 & 1;
            let mut c5 = q5;
            let mut c6 = q6;
            // ccx(0,2,5); cx(0,2)
            c5 ^= s0 & t0;
            t0 ^= s0;
            // ccx(1,3,6); cx(1,3); ccx(3,5,6); cx(5,3)
            c6 ^= s1 & t1;
            t1 ^= s1;
            c6 ^= t1 & c5;
            t1 ^= c5;
            s0 = a & 1;
            s0 | (s1 << 1) | (t0 << 2) | (t1 << 3) | (q4 << 4) | (c5 << 5) | (c6 << 6)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_1bit_matches_reference_exhaustively() {
        assert_eq!(adder_1bit().verify_exhaustive(), None);
    }

    #[test]
    fn adder_1bit_truth_table() {
        let bench = adder_1bit();
        for a in 0..2usize {
            for b in 0..2usize {
                for cin in 0..2usize {
                    let input = a | (b << 1) | (cin << 2);
                    let out = bench.eval_circuit(input);
                    let sum = out >> 2 & 1;
                    let carry = out >> 3 & 1;
                    assert_eq!(sum, a ^ b ^ cin, "sum wrong for {a}+{b}+{cin}");
                    assert_eq!(
                        carry,
                        (a & b) | (a & cin) | (b & cin),
                        "carry wrong for {a}+{b}+{cin}"
                    );
                }
            }
        }
    }

    #[test]
    fn adder_1bit_shape_close_to_paper() {
        let bench = adder_1bit();
        assert_eq!(bench.circuit().num_qubits(), 4);
        // Paper reports 7 gates / depth 5 for its RevLib netlist; the
        // textbook MAJ-UMA adder needs 5 gates at the same depth.
        assert_eq!(bench.circuit().gate_count(), 5);
        assert_eq!(bench.circuit().depth(), 5);
    }

    #[test]
    fn adder_2bit_matches_reference_exhaustively() {
        assert_eq!(adder_2bit().verify_exhaustive(), None);
    }

    #[test]
    fn adder_2bit_adds() {
        let bench = adder_2bit();
        for a in 0..4usize {
            for b in 0..4usize {
                let input = (a & 1) | (a >> 1 & 1) << 1 | (b & 1) << 2 | (b >> 1 & 1) << 3;
                let out = bench.eval_circuit(input);
                let sum = (out >> 2 & 1) | (out >> 3 & 1) << 1;
                let carry = out >> 6 & 1;
                assert_eq!(sum, (a + b) % 4, "{a}+{b}");
                assert_eq!(carry, ((a + b) >> 2) & 1, "{a}+{b} carry");
            }
        }
    }
}
