//! The `.tlk` metadata sidecar.
//!
//! `tetrislock protect` splits a circuit into two segment files plus a
//! metadata file holding everything the *designer* needs to recombine
//! (and that the untrusted compilers must never see): the original
//! register size and the segment→original wire maps.
//!
//! The format is deliberately trivial — line-based, self-describing:
//!
//! ```text
//! tetrislock-meta v1
//! register 5
//! source adder.qasm
//! map L 0 2
//! map L 1 4
//! map R 0 0
//! ...
//! ```

use qcir::Qubit;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Designer-side recombination metadata.
///
/// Two-way splits use `left_map`/`right_map` (sides `L`/`R`); k-way
/// splits store one map per segment in `segment_maps` (sides `S0`,
/// `S1`, …).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Meta {
    /// Original register size.
    pub register: u32,
    /// Name of the protected source (informational).
    pub source: String,
    /// Left-segment wire → original wire.
    pub left_map: BTreeMap<u32, u32>,
    /// Right-segment wire → original wire.
    pub right_map: BTreeMap<u32, u32>,
    /// For k-way splits: per-segment wire → original wire, in execution
    /// order. Empty for two-way splits.
    pub segment_maps: Vec<BTreeMap<u32, u32>>,
}

fn invert(m: &BTreeMap<Qubit, Qubit>) -> BTreeMap<u32, u32> {
    m.iter()
        .map(|(&orig, &seg)| (seg.raw(), orig.raw()))
        .collect()
}

impl Meta {
    /// Builds metadata from a completed two-way split.
    pub fn from_split(split: &tetrislock::SplitPair, source: &str) -> Self {
        Meta {
            register: split.original_qubits,
            source: source.to_string(),
            left_map: invert(&split.left.wire_map),
            right_map: invert(&split.right.wire_map),
            segment_maps: Vec::new(),
        }
    }

    /// Builds metadata from a completed k-way split.
    pub fn from_multiway(split: &tetrislock::multiway::MultiwaySplit, source: &str) -> Self {
        Meta {
            register: split.original_qubits,
            source: source.to_string(),
            left_map: BTreeMap::new(),
            right_map: BTreeMap::new(),
            segment_maps: split.segments.iter().map(|s| invert(&s.wire_map)).collect(),
        }
    }

    /// Number of segments this metadata describes.
    pub fn num_segments(&self) -> usize {
        if self.segment_maps.is_empty() {
            2
        } else {
            self.segment_maps.len()
        }
    }

    /// Serializes to the `.tlk` text form.
    pub fn to_text(&self) -> String {
        let mut out = String::from("tetrislock-meta v1\n");
        let _ = writeln!(out, "register {}", self.register);
        if !self.source.is_empty() {
            let _ = writeln!(out, "source {}", self.source);
        }
        for (seg, orig) in &self.left_map {
            let _ = writeln!(out, "map L {seg} {orig}");
        }
        for (seg, orig) in &self.right_map {
            let _ = writeln!(out, "map R {seg} {orig}");
        }
        for (i, map) in self.segment_maps.iter().enumerate() {
            for (seg, orig) in map {
                let _ = writeln!(out, "map S{i} {seg} {orig}");
            }
        }
        out
    }

    /// Parses the `.tlk` text form.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed input.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == "tetrislock-meta v1" => {}
            _ => return Err("missing `tetrislock-meta v1` header".into()),
        }
        let mut meta = Meta::default();
        for (lineno, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("register") => {
                    meta.register = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("line {}: bad register", lineno + 1))?;
                }
                Some("source") => {
                    meta.source = parts.collect::<Vec<_>>().join(" ");
                }
                Some("map") => {
                    let side = parts
                        .next()
                        .ok_or_else(|| format!("line {}: map side", lineno + 1))?;
                    let seg: u32 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("line {}: map segment wire", lineno + 1))?;
                    let orig: u32 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("line {}: map original wire", lineno + 1))?;
                    match side {
                        "L" => {
                            meta.left_map.insert(seg, orig);
                        }
                        "R" => {
                            meta.right_map.insert(seg, orig);
                        }
                        s if s.starts_with('S') => {
                            let index: usize = s[1..]
                                .parse()
                                .map_err(|_| format!("line {}: bad segment `{s}`", lineno + 1))?;
                            if meta.segment_maps.len() <= index {
                                meta.segment_maps.resize(index + 1, BTreeMap::new());
                            }
                            meta.segment_maps[index].insert(seg, orig);
                        }
                        other => {
                            return Err(format!("line {}: unknown side `{other}`", lineno + 1))
                        }
                    };
                }
                Some(other) => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
                None => {}
            }
        }
        if meta.register == 0 {
            return Err("missing register size".into());
        }
        Ok(meta)
    }

    /// The left map as `Qubit → Qubit` (segment → original).
    pub fn left_qubit_map(&self) -> BTreeMap<Qubit, Qubit> {
        self.left_map
            .iter()
            .map(|(&s, &o)| (Qubit::new(s), Qubit::new(o)))
            .collect()
    }

    /// The right map as `Qubit → Qubit` (segment → original).
    pub fn right_qubit_map(&self) -> BTreeMap<Qubit, Qubit> {
        self.right_map
            .iter()
            .map(|(&s, &o)| (Qubit::new(s), Qubit::new(o)))
            .collect()
    }

    /// The wire maps of every segment in execution order (`[left, right]`
    /// for two-way metadata).
    pub fn ordered_qubit_maps(&self) -> Vec<BTreeMap<Qubit, Qubit>> {
        if self.segment_maps.is_empty() {
            vec![self.left_qubit_map(), self.right_qubit_map()]
        } else {
            self.segment_maps
                .iter()
                .map(|m| {
                    m.iter()
                        .map(|(&s, &o)| (Qubit::new(s), Qubit::new(o)))
                        .collect()
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Circuit;
    use tetrislock::Obfuscator;

    #[test]
    fn roundtrip_through_text() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(0, 1);
        let obf = Obfuscator::new().with_seed(3).obfuscate(&c);
        let split = obf.split(1);
        let meta = Meta::from_split(&split, "demo.qasm");
        let text = meta.to_text();
        let back = Meta::from_text(&text).unwrap();
        assert_eq!(back, meta);
        assert_eq!(back.register, 4);
        assert_eq!(back.source, "demo.qasm");
    }

    #[test]
    fn rejects_missing_header() {
        assert!(Meta::from_text("register 3\n").is_err());
    }

    #[test]
    fn rejects_missing_register() {
        assert!(Meta::from_text("tetrislock-meta v1\nsource x\n").is_err());
    }

    #[test]
    fn rejects_malformed_map() {
        let text = "tetrislock-meta v1\nregister 3\nmap Q 0 1\n";
        assert!(Meta::from_text(text).is_err());
        let text = "tetrislock-meta v1\nregister 3\nmap L x 1\n";
        assert!(Meta::from_text(text).is_err());
    }

    #[test]
    fn qubit_maps_match_raw_maps() {
        let meta = Meta {
            register: 3,
            left_map: [(0, 2)].into(),
            right_map: [(1, 0)].into(),
            ..Meta::default()
        };
        assert_eq!(meta.left_qubit_map()[&Qubit::new(0)], Qubit::new(2));
        assert_eq!(meta.right_qubit_map()[&Qubit::new(1)], Qubit::new(0));
    }
}
