//! Circuit file I/O: QASM and RevLib `.real`, chosen by extension.

use qcir::{qasm, real, Circuit};
use std::path::Path;

/// Reads a circuit from a `.qasm` or `.real` file.
///
/// # Errors
///
/// Returns a human-readable message on I/O or parse failure.
pub fn read_circuit(path: &Path) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let circuit = match extension(path) {
        "real" => real::from_real(&text).map_err(|e| format!("{}: {e}", path.display()))?,
        _ => qasm::from_qasm(&text).map_err(|e| format!("{}: {e}", path.display()))?,
    };
    Ok(circuit)
}

/// Writes a circuit to a `.qasm` or `.real` file (format by extension).
///
/// # Errors
///
/// Returns a human-readable message on I/O failure or when a
/// non-classical circuit is written as `.real`.
pub fn write_circuit(path: &Path, circuit: &Circuit) -> Result<(), String> {
    let text = match extension(path) {
        "real" => real::to_real(circuit).map_err(|e| format!("{}: {e}", path.display()))?,
        _ => qasm::to_qasm(circuit),
    };
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn extension(path: &Path) -> &str {
    path.extension().and_then(|e| e.to_str()).unwrap_or("qasm")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qasm_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("tlk_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.qasm");
        let mut c = Circuit::with_name(2, "t");
        c.h(0).cx(0, 1);
        write_circuit(&path, &c).unwrap();
        let back = read_circuit(&path).unwrap();
        assert_eq!(back.instructions(), c.instructions());
    }

    #[test]
    fn real_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("tlk_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.real");
        let mut c = Circuit::with_name(3, "t");
        c.ccx(0, 1, 2).cx(0, 1).x(2);
        write_circuit(&path, &c).unwrap();
        let back = read_circuit(&path).unwrap();
        assert_eq!(back.instructions(), c.instructions());
    }

    #[test]
    fn missing_file_reports_path() {
        let err = read_circuit(Path::new("/nonexistent/x.qasm")).unwrap_err();
        assert!(err.contains("x.qasm"));
    }

    #[test]
    fn real_rejects_quantum_gates() {
        let dir = std::env::temp_dir().join("tlk_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.real");
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(write_circuit(&path, &c).is_err());
    }
}
