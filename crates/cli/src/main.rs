//! `tetrislock` — command-line front end for TetrisLock split compilation.
//!
//! ```text
//! tetrislock inspect  <circuit>
//! tetrislock protect  <circuit> --out-left L.qasm --out-right R.qasm \
//!                     --meta design.tlk [--seed N] [--limit K] [--policy xcx|h|mixed]
//! tetrislock recombine <left> <right> --meta design.tlk --out restored.qasm [--verify <original>]
//! tetrislock verify   <a> <b>
//! tetrislock compile  <circuit> --out compiled.qasm [--device valencia|ideal|linear:<n>]
//! tetrislock batch    <circuit>… --out-dir D [--jobs-dir D] [--workers N] [--resume]
//! tetrislock serve    --watch D --out-dir D [--jobs-dir D] [--workers N] …
//! tetrislock report   <trace.jsonl>
//! tetrislock report   --serve <status.json>
//! ```
//!
//! Circuits are read/written as OpenQASM 2.0 (`.qasm`) or RevLib
//! (`.real`), chosen by extension. `protect` emits the two segment files
//! for the untrusted compilers plus a designer-side `.tlk` metadata file
//! that `recombine` consumes.
//!
//! Every subcommand accepts a global `--trace <out.jsonl>` flag that
//! writes a [`qobs`] trace of the run (spans, counters, histograms) as
//! JSON lines; `report` renders such a trace as a human-readable
//! summary. `--trace` implies `QOBS=full` unless the `QOBS` environment
//! variable is already set, in which case the configured level wins.

mod io;
mod meta;

use meta::Meta;
use qcir::{display, Circuit};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tetrislock::{GatePolicy, InsertionConfig, Obfuscator};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            // The structured copy of this diagnostic already went out as
            // a `cli.error` qobs event inside `run`; stderr is for humans.
            eprintln!("error: {message}");
            eprintln!("run `tetrislock help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (args, trace) = extract_trace(args)?;
    if let Some(path) = &trace {
        install_trace(path, &args)?;
    }
    let result = {
        let _span = command_span(args.first().map(String::as_str));
        dispatch(&args)
    };
    if let Err(message) = &result {
        qobs::event(
            "cli.error",
            &[("message", qobs::AttrValue::from(message.as_str()))],
        );
    }
    qobs::flush();
    if trace.is_some() {
        qobs::clear_trace();
    }
    result
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("inspect") => inspect(&rest(args)),
        Some("protect") => protect(&rest(args)),
        Some("recombine") => recombine_cmd(&rest(args)),
        Some("verify") => verify(&rest(args)),
        Some("compile") => compile(&rest(args)),
        Some("batch") => batch_cmd(&rest(args)),
        Some("serve") => serve_cmd(&rest(args)),
        Some("report") => report_cmd(&rest(args)),
        Some("help") | None => {
            match it.next().map(String::as_str) {
                Some("verify") => print!("{}", verify_help()),
                Some("batch") => print!("{}", batch_help()),
                Some("serve") => print!("{}", serve_help()),
                _ => print!("{USAGE}"),
            }
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

/// Strips a global `--trace <path>` flag (usable on any subcommand) from
/// the argument list.
fn extract_trace(args: &[String]) -> Result<(Vec<String>, Option<PathBuf>), String> {
    let mut out = Vec::with_capacity(args.len());
    let mut trace = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--trace" {
            let value = it.next().ok_or("--trace expects an output file path")?;
            trace = Some(PathBuf::from(value));
        } else {
            out.push(arg.clone());
        }
    }
    Ok((out, trace))
}

/// Opens the trace sink and emits the run metadata line. `--trace`
/// implies full-detail tracing, but an explicit `QOBS` level set in the
/// environment wins (so `QOBS=counters … --trace t.jsonl` stays cheap).
fn install_trace(path: &Path, args: &[String]) -> Result<(), String> {
    if std::env::var_os("QOBS").is_none() {
        qobs::set_level(qobs::Level::Full);
    }
    qobs::set_trace_file(path)
        .map_err(|e| format!("cannot create trace file {}: {e}", path.display()))?;
    let command = args.first().map(String::as_str).unwrap_or("help");
    let workers_env = std::env::var("QSIM_WORKERS").unwrap_or_else(|_| "unset".to_string());
    qobs::run_meta(&[
        ("command", qobs::AttrValue::from(command)),
        ("argv", qobs::AttrValue::from(args.join(" "))),
        (
            "qsim_workers",
            qobs::AttrValue::from(qsim::resolved_workers()),
        ),
        ("qsim_workers_env", qobs::AttrValue::from(workers_env)),
    ]);
    Ok(())
}

/// Top-level span for a recognized subcommand (span names are static).
fn command_span(command: Option<&str>) -> Option<qobs::Span> {
    let name = match command? {
        "inspect" => "cli.inspect",
        "protect" => "cli.protect",
        "recombine" => "cli.recombine",
        "verify" => "cli.verify",
        "compile" => "cli.compile",
        "batch" => "cli.batch",
        "serve" => "cli.serve",
        "report" => "cli.report",
        _ => return None,
    };
    Some(qobs::span(name))
}

/// Renders a `--trace` output file as a per-stage / per-tier summary,
/// or (with the bare `--serve` flag) a serve daemon `status.json` as a
/// health card. Validation is built in either way: malformed input is
/// an error, not garbage output.
fn report_cmd(args: &[String]) -> Result<(), String> {
    // `--serve` is a bare flag; strip it before the flag-value parser.
    let serve_view = args.iter().any(|a| a == "--serve");
    let filtered: Vec<String> = args.iter().filter(|a| *a != "--serve").cloned().collect();
    let (paths, _) = parse(&filtered)?;
    let path = paths.first().ok_or(if serve_view {
        "report --serve expects a status.json file"
    } else {
        "report expects a trace file (.jsonl)"
    })?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let rendered = if serve_view {
        qobs::report::render_serve_status(&text)
            .map_err(|e| format!("invalid status file {}: {e}", path.display()))?
    } else {
        qobs::report::summarize(&text)
            .map_err(|e| format!("invalid trace {}: {e}", path.display()))?
    };
    print!("{rendered}");
    Ok(())
}

const USAGE: &str = "\
tetrislock — quantum circuit split compilation with interlocking patterns

commands:
  inspect   <circuit>                              show stats and a drawing
  protect   <circuit> --out-left F --out-right F --meta F
            [--seed N] [--limit K] [--policy xcx|h|mixed] [--split-seed N]
            [--segments K --out-prefix P]   (k-way split: writes P0.qasm…)
  recombine <seg> <seg> [<seg>…] --meta F --out F [--verify <original>]
  verify    <a> <b> [--trials N] [--seed N]        tiered equivalence check
            (classical / tableau / zx-calculus / dense-unitary / stimulus;
             `verify --help` explains tier selection)
  compile   <circuit> --out F [--device valencia|ideal|linear:<n>]
  batch     <circuit>… --out-dir D [--jobs-dir D] [--workers N] [--resume]
            [--suite table1|all] [--seed N] [--split-seed N] [--limit K]
            [--policy xcx|h|mixed] [--device …] [--trials N]
            crash-safe obfuscate→split→compile→recombine→verify over many
            circuits, checkpointed per job (`batch --help` for details)
  serve     --watch D --out-dir D [--jobs-dir D] [--workers N] …
            long-running daemon: watched intake with priorities and
            cancellation, retry/backoff with crash-loop quarantine,
            graceful drain (`serve --help` for the full contract)
  report    <trace.jsonl>                          summarize a qobs trace
  report    --serve <status.json>                  render serve health
  help

global options:
  --trace <out.jsonl>   write an observability trace of the run (implies
                        QOBS=full unless the QOBS env var is already set)

formats: .qasm (OpenQASM 2.0) and .real (RevLib), chosen by extension.
";

fn rest(args: &[String]) -> Vec<String> {
    args[1..].to_vec()
}

/// Parsed command line: positional paths plus `--flag value` options.
type ParsedArgs = (Vec<PathBuf>, Vec<(String, String)>);

/// Splits positional arguments from `--flag value` options.
fn parse(args: &[String]) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(flag) = arg.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("--{flag} expects a value"))?;
            options.push((flag.to_string(), value.clone()));
        } else {
            positional.push(PathBuf::from(arg));
        }
    }
    Ok((positional, options))
}

fn option<'a>(options: &'a [(String, String)], key: &str) -> Option<&'a str> {
    options
        .iter()
        .rev()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn required<'a>(options: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
    option(options, key).ok_or_else(|| format!("missing required option --{key}"))
}

fn inspect(args: &[String]) -> Result<(), String> {
    let (paths, _) = parse(args)?;
    let path = paths.first().ok_or("inspect expects a circuit file")?;
    let circuit = io::read_circuit(path)?;
    println!(
        "{}: {} qubits, {} gates, depth {}",
        path.display(),
        circuit.num_qubits(),
        circuit.gate_count(),
        circuit.depth()
    );
    let stats = qcir::stats::CircuitStats::of(&circuit);
    println!("{stats}");
    let summary: Vec<String> = stats
        .histogram
        .iter()
        .map(|(g, n)| format!("{g}×{n}"))
        .collect();
    println!("gates: {}", summary.join(", "));
    let timing = qcompile::schedule::schedule(&circuit, &qcompile::schedule::GateTimes::falcon());
    println!(
        "estimated duration: {:.0} ns (falcon gate times)",
        timing.duration_ns
    );
    let slots = tetrislock::slots::SlotTable::new(&circuit);
    println!(
        "empty slots: {} cells across {} layers",
        slots.total_empty_slots(),
        slots.depth()
    );
    if circuit.num_qubits() <= 16 && circuit.depth() <= 40 {
        print!("{}", display::render(&circuit));
    }
    Ok(())
}

fn protect(args: &[String]) -> Result<(), String> {
    let (paths, options) = parse(args)?;
    let input = paths.first().ok_or("protect expects a circuit file")?;
    let meta_path = PathBuf::from(required(&options, "meta")?);
    let seed: u64 = option(&options, "seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "bad --seed")?;
    let split_seed: u64 = option(&options, "split-seed")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --split-seed")?;
    let limit: usize = option(&options, "limit")
        .unwrap_or("4")
        .parse()
        .map_err(|_| "bad --limit")?;
    let segments: usize = option(&options, "segments")
        .unwrap_or("2")
        .parse()
        .map_err(|_| "bad --segments")?;
    if segments < 2 {
        return Err("--segments must be at least 2".into());
    }
    let policy = match option(&options, "policy").unwrap_or("xcx") {
        "xcx" => GatePolicy::XCx,
        "h" | "hadamard" => GatePolicy::Hadamard,
        "mixed" => GatePolicy::Mixed,
        other => return Err(format!("unknown policy `{other}`")),
    };

    let circuit = io::read_circuit(input)?;
    let obf = Obfuscator::new()
        .with_config(InsertionConfig {
            seed,
            gate_limit: limit,
            policy,
            ..Default::default()
        })
        .obfuscate(&circuit);

    if segments == 2 {
        let out_left = PathBuf::from(required(&options, "out-left")?);
        let out_right = PathBuf::from(required(&options, "out-right")?);
        let split = obf.split(split_seed);
        io::write_circuit(&out_left, &split.left.circuit)?;
        io::write_circuit(&out_right, &split.right.circuit)?;
        let meta = Meta::from_split(&split, &input.display().to_string());
        std::fs::write(&meta_path, meta.to_text())
            .map_err(|e| format!("cannot write {}: {e}", meta_path.display()))?;
        println!(
            "inserted {} masking gates (depth change {}), split into {}q + {}q segments",
            obf.insertion().gate_overhead(),
            obf.depth_increase(),
            split.left.circuit.num_qubits(),
            split.right.circuit.num_qubits(),
        );
        println!("segment for compiler A: {}", out_left.display());
        println!("segment for compiler B: {}", out_right.display());
    } else {
        use tetrislock::multiway::MultiwayPattern;
        let prefix = required(&options, "out-prefix")?;
        let pattern = MultiwayPattern::random_for(&obf, segments, split_seed);
        let split = pattern.split(&obf);
        let mut outputs = Vec::new();
        for (i, segment) in split.segments.iter().enumerate() {
            let path = PathBuf::from(format!("{prefix}{i}.qasm"));
            io::write_circuit(&path, &segment.circuit)?;
            outputs.push(path);
        }
        let meta = Meta::from_multiway(&split, &input.display().to_string());
        std::fs::write(&meta_path, meta.to_text())
            .map_err(|e| format!("cannot write {}: {e}", meta_path.display()))?;
        println!(
            "inserted {} masking gates (depth change {}), split into {} segments:",
            obf.insertion().gate_overhead(),
            obf.depth_increase(),
            segments,
        );
        for (i, path) in outputs.iter().enumerate() {
            println!(
                "  compiler {}: {} ({}q, {} gates)",
                (b'A' + i as u8) as char,
                path.display(),
                split.segments[i].circuit.num_qubits(),
                split.segments[i].circuit.gate_count(),
            );
        }
    }
    println!("designer metadata (KEEP PRIVATE): {}", meta_path.display());
    Ok(())
}

fn recombine_cmd(args: &[String]) -> Result<(), String> {
    let (paths, options) = parse(args)?;
    if paths.len() < 2 {
        return Err("recombine expects at least two segment files".into());
    }
    let meta_path = PathBuf::from(required(&options, "meta")?);
    let out = PathBuf::from(required(&options, "out")?);

    let meta_text = std::fs::read_to_string(&meta_path)
        .map_err(|e| format!("cannot read {}: {e}", meta_path.display()))?;
    let meta = Meta::from_text(&meta_text)?;
    if paths.len() != meta.num_segments() {
        return Err(format!(
            "metadata describes {} segments but {} files given",
            meta.num_segments(),
            paths.len()
        ));
    }

    let circuits: Vec<Circuit> = paths
        .iter()
        .map(|p| io::read_circuit(p))
        .collect::<Result<_, _>>()?;

    // Extend each map over any extra wires the compilers introduced.
    let mut next = meta.register;
    let mut maps = meta.ordered_qubit_maps();
    for (map, circuit) in maps.iter_mut().zip(&circuits) {
        for w in 0..circuit.num_qubits() {
            map.entry(qcir::Qubit::new(w)).or_insert_with(|| {
                let fresh = next;
                next += 1;
                qcir::Qubit::new(fresh)
            });
        }
    }

    // Concatenate segments in order on the combined register.
    let mut restored = Circuit::with_name(next, "recombined");
    for (circuit, map) in circuits.iter().zip(&maps) {
        for inst in circuit.iter() {
            let mapped = inst.remapped(map).map_err(|e| e.to_string())?;
            restored.push(mapped).map_err(|e| e.to_string())?;
        }
    }
    io::write_circuit(&out, &restored)?;
    println!(
        "recombined {} segments → {} ({} gates over {} wires)",
        circuits.len(),
        out.display(),
        restored.gate_count(),
        restored.num_qubits(),
    );

    if let Some(original_path) = option(&options, "verify") {
        let original = io::read_circuit(Path::new(original_path))?;
        let ok = check_equivalence(&original, &restored)?;
        println!(
            "verification against {original_path}: {}",
            if ok { "PASS" } else { "FAIL" }
        );
        if !ok {
            return Err("restored circuit does not match the original".into());
        }
    }
    Ok(())
}

/// Long help for `verify`. Built at runtime so every advertised qubit
/// cap derives from the authoritative constants — a cap bump in `qsim`
/// or `qverify` can never leave this text stale.
fn verify_help() -> String {
    format!(
        "\
tetrislock verify <a> <b> [--trials N] [--seed N]

Decides whether two circuits implement the same unitary (up to global
phase). If the registers differ, the smaller circuit is padded with
identity wires onto the larger register.

Tier selection — the cheapest applicable decision procedure wins:

  classical      both circuits classical reversible (X/CX/CCX/MCX/SWAP/
                 CSWAP) and <= {classical} qubits. Exact: every basis input is
                 enumerated.
  tableau        both circuits Clifford (H/S/CX and gates reducible to
                 them, incl. right-angle rotations). Exact at hundreds
                 of qubits via stabilizer conjugation of the miter.
  zx-calculus    any gate set, any register size. The miter C2^dag*C1 is
                 reduced by ZX graph rewriting over exact phases (no
                 float tolerance); full reduction to bare wires is an
                 exact equivalence proof. Two-sided: a stalled residue
                 can also certify INEQUIVALENCE, but only through a
                 replay-confirmed witness — a bit-level replay of both
                 circuits (classical pairs, any width), or basis-column
                 replays of the miter: sharded out-of-core up to
                 {column} wires when the miter has <= {branching} branching
                 gates (H-like), dense statevector otherwise
                 (<= {stimulus} qubits). A magnitude deficit is a basis-
                 column witness; two diverging unit phases are a
                 relative-phase witness (the diagonal-residue shape,
                 e.g. T vs Tdg). With no confirmed witness the stall
                 proves nothing and falls through.
  dense-unitary  <= {dense} qubits. Exact full-unitary comparison; produces
                 a concrete witness (basis column or relative phase) on
                 failure.
  stimulus       <= {stimulus} qubits. Statistical: the miter runs on --trials
                 random product states (default 16), in parallel. A
                 failed trial is a concrete, reproducible witness; a
                 clean pass certifies equivalence with confidence
                 1 - 2^(-trials), not proof.

Options:
  --trials N   stimulus trials to run when that tier decides
               (default 16; 0 makes the stimulus tier inconclusive)
  --seed N     base seed for the stimulus preparation layers
               (default 1). Same seed => same trials => same verdict;
               the seed printed in a witness rebuilds its input state.

Output: the verdict, the deciding tier, and on failure a witness.
Exit status: 0 iff equivalent, 1 otherwise (including inconclusive).
",
        classical = qverify::CLASSICAL_EXHAUSTIVE_MAX_QUBITS,
        dense = qverify::MAX_UNITARY_QUBITS,
        stimulus = qverify::MAX_STIMULUS_QUBITS,
        column = qverify::MAX_COLUMN_QUBITS,
        branching = qverify::MAX_COLUMN_BRANCHING,
    )
}

fn verify(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", verify_help());
        return Ok(());
    }
    let (paths, options) = parse(args)?;
    if paths.len() < 2 {
        return Err("verify expects two circuit files".into());
    }
    let a = io::read_circuit(&paths[0])?;
    let b = io::read_circuit(&paths[1])?;
    let trials: u64 = option(&options, "trials")
        .unwrap_or("16")
        .parse()
        .map_err(|_| "bad --trials")?;
    let seed: u64 = option(&options, "seed")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --seed")?;
    let report = verification_report(
        &a,
        &b,
        &qverify::Verifier::new().with_trials(trials).with_seed(seed),
    );
    println!("{report}");
    match &report.verdict {
        qverify::Verdict::Equivalent => Ok(()),
        qverify::Verdict::Inequivalent { .. } => Err("circuits differ".into()),
        qverify::Verdict::Inconclusive { .. } => Err(inconclusive_message(&report).into()),
    }
}

/// Why no tier could decide: zero configured trials reads very
/// differently from a register past every tier's reach.
fn inconclusive_message(report: &qverify::Report) -> &'static str {
    if report.tier == qverify::Tier::Stimulus && report.trials == 0 {
        "no stimulus trials configured (pass --trials N with N >= 1)"
    } else {
        "register too large for every verification tier"
    }
}

/// Runs the tiered `qverify` engine (classical permutation → stabilizer
/// tableau → dense unitary → parallel random stimulus). The smaller
/// circuit is padded onto the larger register; extra wires must act as
/// identity.
fn verification_report(a: &Circuit, b: &Circuit, verifier: &qverify::Verifier) -> qverify::Report {
    let n = a.num_qubits().max(b.num_qubits());
    let pad = |c: &Circuit| -> Circuit {
        let mut out = Circuit::with_name(n, c.name());
        out.compose(c).expect("padding cannot fail");
        out
    };
    verifier.check_report(&pad(a), &pad(b))
}

fn check_equivalence(a: &Circuit, b: &Circuit) -> Result<bool, String> {
    let report = verification_report(a, b, &qverify::Verifier::new());
    match report.verdict {
        qverify::Verdict::Equivalent => Ok(true),
        qverify::Verdict::Inequivalent { .. } => Ok(false),
        qverify::Verdict::Inconclusive { .. } => Err(inconclusive_message(&report).into()),
    }
}

fn compile(args: &[String]) -> Result<(), String> {
    use qcompile::Transpiler;
    use qsim::Device;
    let (paths, options) = parse(args)?;
    let input = paths.first().ok_or("compile expects a circuit file")?;
    let out = PathBuf::from(required(&options, "out")?);
    let circuit = io::read_circuit(input)?;

    let device = match option(&options, "device").unwrap_or("valencia") {
        "valencia" => {
            if circuit.num_qubits() <= 5 {
                Device::fake_valencia()
            } else {
                Device::fake_valencia_extended(circuit.num_qubits())
            }
        }
        "ideal" => Device::ideal(circuit.num_qubits().max(2)),
        spec => {
            if let Some(n) = spec.strip_prefix("linear:") {
                let n: u32 = n.parse().map_err(|_| "bad linear device size")?;
                Device::linear(n, qsim::noise::NoiseModel::ideal())
            } else {
                return Err(format!("unknown device `{spec}`"));
            }
        }
    };
    let result = Transpiler::new(device)
        .transpile(&circuit)
        .map_err(|e| e.to_string())?;
    // Emit in the *logical* frame (input wire i stays wire i; routing
    // wires become trailing ancillas) so that `recombine` can map segment
    // wires straight through the .tlk metadata.
    let logical = result.into_logical_circuit();
    io::write_circuit(&out, &logical)?;
    println!(
        "compiled {} → {} ({} native gates, {} swaps inserted)",
        input.display(),
        out.display(),
        logical.gate_count(),
        result.swaps_inserted,
    );
    Ok(())
}

/// Long help for `batch`. Built at runtime so the advertised stage
/// list, defaults, and checkpoint format version all derive from the
/// authoritative engine constants and can never go stale.
fn batch_help() -> String {
    use tetrislock::job::{JobConfig, JobStage};
    let defaults = JobConfig::default();
    let stages = [
        JobStage::Obfuscate,
        JobStage::Split,
        JobStage::CompileLeft,
        JobStage::CompileRight,
        JobStage::Recombine,
        JobStage::Verify,
        JobStage::Emit,
    ]
    .map(JobStage::name)
    .join(" → ");
    format!(
        "\
tetrislock batch <circuit>… --out-dir D [options]

Runs the full protection pipeline ({stages})
over many input circuits as a pool of crash-safe jobs. Each job
checkpoints its complete state to <jobs-dir>/<id>.job after every stage
(format version {version}, versioned + checksummed + atomically written;
the previous generation is kept as <id>.job.prev). Killing the process
at ANY instant — including `kill -9` — loses at most one stage per
in-flight job; re-running with --resume finishes every job with output
byte-identical to an uninterrupted run, regardless of --workers.

Inputs: positional circuit files (.qasm/.real; the job id is the file
stem), and/or a built-in RevLib suite via --suite.

Options:
  --out-dir D      output directory: <id>.restored.qasm per job plus a
                   sorted, tab-separated `{manifest}` (required)
  --jobs-dir D     checkpoint directory (default: <out-dir>/jobs)
  --workers N      worker threads (default 1; output is identical for
                   any N)
  --resume         resume from existing checkpoints instead of starting
                   fresh; completed jobs are skipped, a checkpoint
                   written under a different configuration is refused
  --suite S        add a built-in benchmark suite: `table1` (the paper's
                   Table I circuits) or `all`
  --seed N         insertion RNG seed        (default {seed})
  --split-seed N   interlock pattern seed    (default {split_seed})
  --limit K        max inserted gates        (default {gate_limit})
  --policy P       xcx | h | mixed           (default xcx)
  --device D       ideal | valencia | linear:<n>  (default {device})
  --trials N       stimulus verification trials   (default {trials})

Exit status: 0 iff every job completed and verified equivalent.

Fault injection (test hook): set {kill_env}=N to abort the
process (as if SIGKILLed) after the N-th checkpoint write.
",
        version = qcir::persist::FORMAT_VERSION,
        manifest = tetrislock::batch::MANIFEST_FILE,
        seed = defaults.seed,
        split_seed = defaults.split_seed,
        gate_limit = defaults.gate_limit,
        device = defaults.device,
        trials = defaults.trials,
        kill_env = tetrislock::job::KILL_AFTER_CHECKPOINTS_ENV,
    )
}

fn batch_cmd(args: &[String]) -> Result<(), String> {
    use tetrislock::batch::{run_batch, BatchConfig};
    use tetrislock::job::JobConfig;
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", batch_help());
        return Ok(());
    }
    // `--resume` is a bare flag; strip it before the flag-value parser.
    let resume = args.iter().any(|a| a == "--resume");
    let filtered: Vec<String> = args.iter().filter(|a| *a != "--resume").cloned().collect();
    let (paths, options) = parse(&filtered)?;

    let out_dir = PathBuf::from(required(&options, "out-dir")?);
    let jobs_dir = option(&options, "jobs-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| out_dir.join("jobs"));
    let workers: usize = option(&options, "workers")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --workers")?;
    let defaults = JobConfig::default();
    let job = JobConfig {
        seed: parse_opt(&options, "seed", defaults.seed)?,
        split_seed: parse_opt(&options, "split-seed", defaults.split_seed)?,
        gate_limit: parse_opt(&options, "limit", defaults.gate_limit)?,
        policy: match option(&options, "policy").unwrap_or("xcx") {
            "xcx" => GatePolicy::XCx,
            "h" | "hadamard" => GatePolicy::Hadamard,
            "mixed" => GatePolicy::Mixed,
            other => return Err(format!("unknown policy `{other}`")),
        },
        device: option(&options, "device")
            .unwrap_or(&defaults.device)
            .to_string(),
        trials: parse_opt(&options, "trials", defaults.trials)?,
        verify_seed: defaults.verify_seed,
    };

    let mut inputs: Vec<(String, Circuit)> = Vec::new();
    for path in &paths {
        let id = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("cannot derive a job id from {}", path.display()))?
            .to_string();
        inputs.push((id, io::read_circuit(path)?));
    }
    if let Some(suite) = option(&options, "suite") {
        let benchmarks = match suite {
            "table1" => revlib::table1_benchmarks(),
            "all" => revlib::all_benchmarks(),
            other => return Err(format!("unknown suite `{other}` (expected table1 or all)")),
        };
        for b in benchmarks {
            inputs.push((b.name().to_string(), b.circuit().clone()));
        }
    }
    if inputs.is_empty() {
        return Err("batch expects at least one circuit file or --suite".into());
    }

    let report = run_batch(
        inputs,
        &BatchConfig {
            jobs_dir,
            out_dir,
            workers,
            resume,
            job,
        },
    )
    .map_err(|e| e.to_string())?;

    for o in &report.outcomes {
        match &o.result {
            Ok(v) if v.equivalent => println!(
                "  {:<12} ok        ({} tier, {} steps{})",
                o.id,
                v.tier,
                o.steps_done,
                if o.resumed { ", resumed" } else { "" }
            ),
            Ok(v) => println!("  {:<12} NOT EQUIVALENT ({} tier)", o.id, v.tier),
            Err(message) => println!("  {:<12} FAILED: {message}", o.id),
        }
    }
    let total = report.outcomes.len();
    let failed = report.failed();
    println!(
        "batch: {}/{total} jobs ok, manifest {}",
        total - failed,
        report.manifest_path.display()
    );
    if failed > 0 {
        Err(format!("{failed} job(s) failed"))
    } else if !report.all_equivalent() {
        Err("at least one job verified NOT equivalent".into())
    } else {
        Ok(())
    }
}

/// Long help for `serve`. Built at runtime so every advertised default
/// (poll interval, stability window, stage timeout, strike budget,
/// backoff curve) derives from the authoritative engine constants and
/// can never go stale.
fn serve_help() -> String {
    use tetrislock::retry;
    use tetrislock::serve;
    format!(
        "\
tetrislock serve --watch D --out-dir D [options]

Long-running protection daemon over the crash-safe batch machinery.
Drop .qasm/.real circuit files into the watch directory; each is run
through the full pipeline and emitted as <out-dir>/<id>.restored.qasm,
with the input moved to <watch>/{done}/ on success. Every stage is
checkpointed, so `kill -9` at any instant resumes to byte-identical
output on the next start.

Intake contract:
  - a file is admitted only once its length and mtime have been stable
    for the stability window (half-written inputs are never picked up)
  - name a file p<k>--<id>.qasm to run at priority k (lower runs
    first, FIFO within a priority; default priority {priority})
  - drop <id>.cancel to cancel a queued or in-flight job
  - drop a file named `{shutdown}` to drain: stop admitting, finish
    in-flight jobs, write the final manifest and {status}, exit 0
    (typing `shutdown` on stdin, or closing a non-empty stdin, does
    the same)

Self-healing: a failed, panicked, or timed-out stage costs a strike
and is retried after a deterministic seeded backoff (base
{base_delay} ms doubling to a {max_delay} ms ceiling, jitter derived
from the job id — never the clock). After {strikes} consecutive
strikes the crash-loop breaker opens and the job is quarantined to
<watch>/{failed}/ with a typed failure report (<id>.failure; kinds:
poisoned, crash_loop, timeout, config_mismatch) instead of wedging
the queue. Unparseable inputs quarantine as `poisoned` at intake.

Health: every poll rewrites <out-dir>/{status} atomically and emits a
qobs heartbeat; render it with `tetrislock report --serve <{status}>`.
The idle loop sleeps the poll interval — idle CPU is polling-bounded.

Options:
  --watch D              watch directory (required; must be a directory)
  --out-dir D            outputs, {manifest}, {status} (required)
  --jobs-dir D           checkpoint directory (default <out-dir>/jobs)
  --workers N            worker threads            (default {workers})
  --poll-ms MS           intake poll interval      (default {poll})
  --stability-ms MS      input stability window    (default {stability})
  --stage-timeout-ms MS  per-stage wall clock      (default {stage_timeout})
  --strikes N            failures before quarantine (default {strikes})
  --base-delay-ms MS     first retry backoff       (default {base_delay})
  --max-delay-ms MS      backoff ceiling           (default {max_delay})
  pipeline options as for batch:
    [--seed N] [--split-seed N] [--limit K] [--policy xcx|h|mixed]
    [--device ideal|valencia|linear:<n>] [--trials N]

Exit status: 0 after a clean drain.
",
        done = serve::DONE_DIR,
        failed = serve::FAILED_DIR,
        priority = serve::DEFAULT_PRIORITY,
        shutdown = serve::SHUTDOWN_SENTINEL,
        status = serve::STATUS_FILE,
        manifest = tetrislock::batch::MANIFEST_FILE,
        workers = serve::DEFAULT_WORKERS,
        poll = serve::DEFAULT_POLL_MS,
        stability = serve::DEFAULT_STABILITY_MS,
        stage_timeout = serve::DEFAULT_STAGE_TIMEOUT_MS,
        strikes = retry::DEFAULT_MAX_STRIKES,
        base_delay = retry::DEFAULT_BASE_DELAY_MS,
        max_delay = retry::DEFAULT_MAX_DELAY_MS,
    )
}

fn serve_cmd(args: &[String]) -> Result<(), String> {
    use tetrislock::job::JobConfig;
    use tetrislock::retry::RetryPolicy;
    use tetrislock::serve::{run_serve, ServeConfig, SHUTDOWN_SENTINEL};
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", serve_help());
        return Ok(());
    }
    let (paths, options) = parse(args)?;
    if let Some(extra) = paths.first() {
        return Err(format!(
            "serve takes no positional arguments (got {}); inputs go into the watch directory",
            extra.display()
        ));
    }
    let watch_dir = PathBuf::from(required(&options, "watch")?);
    let out_dir = PathBuf::from(required(&options, "out-dir")?);
    let jobs_dir = option(&options, "jobs-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| out_dir.join("jobs"));
    let retry_defaults = RetryPolicy::default();
    let defaults = JobConfig::default();
    let serve_defaults = ServeConfig::default();
    let config = ServeConfig {
        watch_dir,
        jobs_dir,
        out_dir,
        workers: parse_opt(&options, "workers", serve_defaults.workers)?,
        poll_ms: parse_opt(&options, "poll-ms", serve_defaults.poll_ms)?,
        stability_ms: parse_opt(&options, "stability-ms", serve_defaults.stability_ms)?,
        stage_timeout_ms: parse_opt(
            &options,
            "stage-timeout-ms",
            serve_defaults.stage_timeout_ms,
        )?,
        retry: RetryPolicy {
            max_strikes: parse_opt(&options, "strikes", retry_defaults.max_strikes)?,
            base_delay_ms: parse_opt(&options, "base-delay-ms", retry_defaults.base_delay_ms)?,
            max_delay_ms: parse_opt(&options, "max-delay-ms", retry_defaults.max_delay_ms)?,
        },
        job: JobConfig {
            seed: parse_opt(&options, "seed", defaults.seed)?,
            split_seed: parse_opt(&options, "split-seed", defaults.split_seed)?,
            gate_limit: parse_opt(&options, "limit", defaults.gate_limit)?,
            policy: match option(&options, "policy").unwrap_or("xcx") {
                "xcx" => GatePolicy::XCx,
                "h" | "hadamard" => GatePolicy::Hadamard,
                "mixed" => GatePolicy::Mixed,
                other => return Err(format!("unknown policy `{other}`")),
            },
            device: option(&options, "device")
                .unwrap_or(&defaults.device)
                .to_string(),
            trials: parse_opt(&options, "trials", defaults.trials)?,
            verify_seed: defaults.verify_seed,
        },
    };

    // Best-effort stdin drain trigger: a `shutdown`/`drain` line — or
    // EOF on a stdin that actually carried bytes — drops the sentinel
    // into the watch dir. A silent closed/null stdin (e.g. a CI
    // background launch) reads EOF immediately with zero bytes and
    // must NOT drain.
    let stdin_watch = config.watch_dir.clone();
    std::thread::spawn(move || {
        use std::io::Read;
        let mut stdin = std::io::stdin();
        let mut buf = [0u8; 256];
        let mut seen = String::new();
        let mut total = 0usize;
        loop {
            match stdin.read(&mut buf) {
                Ok(0) => {
                    if total > 0 {
                        let _ = std::fs::write(stdin_watch.join(SHUTDOWN_SENTINEL), "");
                    }
                    return;
                }
                Ok(n) => {
                    total += n;
                    seen.push_str(&String::from_utf8_lossy(&buf[..n]));
                    if seen
                        .lines()
                        .any(|l| matches!(l.trim(), "shutdown" | "drain"))
                    {
                        let _ = std::fs::write(stdin_watch.join(SHUTDOWN_SENTINEL), "");
                        return;
                    }
                    // Only complete lines matter; keep the tail.
                    if let Some(idx) = seen.rfind('\n') {
                        seen.drain(..=idx);
                    }
                }
                Err(_) => return,
            }
        }
    });

    let summary = run_serve(&config).map_err(|e| e.to_string())?;
    println!(
        "serve drained: {} admitted, {} completed, {} quarantined, {} cancelled, {} retries",
        summary.admitted,
        summary.completed,
        summary.quarantined,
        summary.cancelled,
        summary.retries
    );
    println!(
        "manifest: {}\nstatus:   {}",
        summary.manifest_path.display(),
        summary.status_path.display()
    );
    Ok(())
}

/// Parses an optional `--flag value` with a typed default.
fn parse_opt<T: std::str::FromStr>(
    options: &[(String, String)],
    key: &str,
    default: T,
) -> Result<T, String> {
    match option(options, key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("bad --{key}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tlk_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_demo_circuit() -> PathBuf {
        let path = tmp("demo.qasm");
        let mut c = Circuit::with_name(4, "demo");
        c.h(0).cx(0, 1).cx(1, 2).cx(0, 1).x(3).cx(3, 2);
        io::write_circuit(&path, &c).unwrap();
        path
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_runs() {
        assert!(run(&s(&["help"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn verify_help_documents_tiers_and_flags() {
        // Both `verify --help` and `help verify` print the long help
        // (and must not try to read circuit files).
        assert!(run(&s(&["verify", "--help"])).is_ok());
        assert!(run(&s(&["verify", "-h"])).is_ok());
        assert!(run(&s(&["help", "verify"])).is_ok());
        for needle in [
            "zx-calculus",
            "--trials",
            "--seed",
            "stimulus",
            "relative-phase",
            "sharded out-of-core",
            &qverify::MAX_COLUMN_QUBITS.to_string(),
        ] {
            assert!(
                verify_help().contains(needle),
                "verify help must document {needle}"
            );
        }
    }

    #[test]
    fn inspect_demo() {
        let path = write_demo_circuit();
        assert!(run(&s(&["inspect", path.to_str().unwrap()])).is_ok());
    }

    #[test]
    fn protect_recombine_verify_roundtrip() {
        let input = write_demo_circuit();
        let left = tmp("left.qasm");
        let right = tmp("right.qasm");
        let meta = tmp("demo.tlk");
        let restored = tmp("restored.qasm");

        run(&s(&[
            "protect",
            input.to_str().unwrap(),
            "--out-left",
            left.to_str().unwrap(),
            "--out-right",
            right.to_str().unwrap(),
            "--meta",
            meta.to_str().unwrap(),
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(left.exists() && right.exists() && meta.exists());

        run(&s(&[
            "recombine",
            left.to_str().unwrap(),
            right.to_str().unwrap(),
            "--meta",
            meta.to_str().unwrap(),
            "--out",
            restored.to_str().unwrap(),
            "--verify",
            input.to_str().unwrap(),
        ]))
        .unwrap();

        // And the standalone verify command agrees.
        run(&s(&[
            "verify",
            input.to_str().unwrap(),
            restored.to_str().unwrap(),
        ]))
        .unwrap();
    }

    #[test]
    fn protect_compile_recombine_roundtrip() {
        // The full shell workflow including the untrusted-compiler step.
        let input = write_demo_circuit();
        let left = tmp("cl.qasm");
        let right = tmp("cr.qasm");
        let meta = tmp("c.tlk");
        let left_c = tmp("clc.qasm");
        let right_c = tmp("crc.qasm");
        let restored = tmp("crestored.qasm");

        run(&s(&[
            "protect",
            input.to_str().unwrap(),
            "--out-left",
            left.to_str().unwrap(),
            "--out-right",
            right.to_str().unwrap(),
            "--meta",
            meta.to_str().unwrap(),
            "--seed",
            "3",
        ]))
        .unwrap();
        for (src, dst) in [(&left, &left_c), (&right, &right_c)] {
            run(&s(&[
                "compile",
                src.to_str().unwrap(),
                "--out",
                dst.to_str().unwrap(),
                "--device",
                "valencia",
            ]))
            .unwrap();
        }
        run(&s(&[
            "recombine",
            left_c.to_str().unwrap(),
            right_c.to_str().unwrap(),
            "--meta",
            meta.to_str().unwrap(),
            "--out",
            restored.to_str().unwrap(),
            "--verify",
            input.to_str().unwrap(),
        ]))
        .unwrap();
    }

    #[test]
    fn multiway_protect_recombine_roundtrip() {
        let input = write_demo_circuit();
        let meta = tmp("mw.tlk");
        let prefix = tmp("mwseg").to_str().unwrap().to_string();
        let restored = tmp("mwrestored.qasm");

        run(&s(&[
            "protect",
            input.to_str().unwrap(),
            "--segments",
            "3",
            "--out-prefix",
            &prefix,
            "--meta",
            meta.to_str().unwrap(),
            "--seed",
            "5",
        ]))
        .unwrap();

        let seg_paths: Vec<String> = (0..3).map(|i| format!("{prefix}{i}.qasm")).collect();
        for p in &seg_paths {
            assert!(std::path::Path::new(p).exists(), "{p} missing");
        }
        let mut args = vec!["recombine".to_string()];
        args.extend(seg_paths);
        args.extend(s(&[
            "--meta",
            meta.to_str().unwrap(),
            "--out",
            restored.to_str().unwrap(),
            "--verify",
            input.to_str().unwrap(),
        ]));
        run(&args).unwrap();
    }

    #[test]
    fn recombine_rejects_wrong_segment_count() {
        let input = write_demo_circuit();
        let left = tmp("wl.qasm");
        let right = tmp("wr.qasm");
        let meta = tmp("w.tlk");
        run(&s(&[
            "protect",
            input.to_str().unwrap(),
            "--out-left",
            left.to_str().unwrap(),
            "--out-right",
            right.to_str().unwrap(),
            "--meta",
            meta.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run(&s(&[
            "recombine",
            left.to_str().unwrap(),
            right.to_str().unwrap(),
            left.to_str().unwrap(),
            "--meta",
            meta.to_str().unwrap(),
            "--out",
            tmp("wout.qasm").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("segments"));
    }

    #[test]
    fn verify_detects_difference() {
        let a_path = tmp("a.qasm");
        let b_path = tmp("b.qasm");
        let mut a = Circuit::new(2);
        a.x(0);
        let mut b = Circuit::new(2);
        b.x(1);
        io::write_circuit(&a_path, &a).unwrap();
        io::write_circuit(&b_path, &b).unwrap();
        assert!(run(&s(&[
            "verify",
            a_path.to_str().unwrap(),
            b_path.to_str().unwrap()
        ]))
        .is_err());
    }

    #[test]
    fn compile_produces_device_circuit() {
        let input = write_demo_circuit();
        let out = tmp("compiled.qasm");
        run(&s(&[
            "compile",
            input.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--device",
            "valencia",
        ]))
        .unwrap();
        let compiled = io::read_circuit(&out).unwrap();
        assert!(compiled.gate_count() > 0);
    }

    #[test]
    fn batch_help_derives_from_engine_constants() {
        assert!(run(&s(&["batch", "--help"])).is_ok());
        assert!(run(&s(&["help", "batch"])).is_ok());
        let help = batch_help();
        for needle in [
            "--workers",
            "--resume",
            "--jobs-dir",
            "obfuscate",
            "emit",
            &format!("format version {}", qcir::persist::FORMAT_VERSION),
            tetrislock::job::KILL_AFTER_CHECKPOINTS_ENV,
            tetrislock::batch::MANIFEST_FILE,
        ] {
            assert!(help.contains(needle), "batch help must mention {needle}");
        }
    }

    #[test]
    fn batch_runs_files_and_resumes() {
        let input = write_demo_circuit();
        let out_dir = tmp("batch_out");
        run(&s(&[
            "batch",
            input.to_str().unwrap(),
            "--out-dir",
            out_dir.to_str().unwrap(),
            "--workers",
            "2",
        ]))
        .unwrap();
        assert!(out_dir.join("demo.restored.qasm").exists());
        assert!(out_dir.join(tetrislock::batch::MANIFEST_FILE).exists());
        assert!(out_dir.join("jobs").join("demo.job").exists());
        // Resuming a finished batch is a no-op that still succeeds.
        run(&s(&[
            "batch",
            input.to_str().unwrap(),
            "--out-dir",
            out_dir.to_str().unwrap(),
            "--resume",
        ]))
        .unwrap();
    }

    #[test]
    fn serve_help_derives_from_engine_constants() {
        use tetrislock::{retry, serve};
        assert!(run(&s(&["serve", "--help"])).is_ok());
        assert!(run(&s(&["help", "serve"])).is_ok());
        let help = serve_help();
        for needle in [
            "--watch".to_string(),
            "--strikes".to_string(),
            "--stage-timeout-ms".to_string(),
            "--stability-ms".to_string(),
            serve::SHUTDOWN_SENTINEL.to_string(),
            serve::STATUS_FILE.to_string(),
            "poisoned".to_string(),
            "crash_loop".to_string(),
            "config_mismatch".to_string(),
            format!("default {}", serve::DEFAULT_POLL_MS),
            format!("default {}", serve::DEFAULT_STABILITY_MS),
            format!("default {}", serve::DEFAULT_STAGE_TIMEOUT_MS),
            format!("default {}", retry::DEFAULT_MAX_STRIKES),
            format!("{} ms doubling", retry::DEFAULT_BASE_DELAY_MS),
            format!("{} ms ceiling", retry::DEFAULT_MAX_DELAY_MS),
        ] {
            assert!(help.contains(&needle), "serve help must mention {needle}");
        }
    }

    #[test]
    fn serve_refuses_non_directory_watch_path() {
        let file = tmp("serve_watch_file");
        std::fs::write(&file, "not a dir").unwrap();
        let out = tmp("serve_out_nd");
        let err = run(&s(&[
            "serve",
            "--watch",
            file.to_str().unwrap(),
            "--out-dir",
            out.to_str().unwrap(),
        ]))
        .unwrap_err();
        // The typed core-side ServeError::NotADirectory, not a panic.
        assert!(err.contains("not a directory"), "{err}");
    }

    #[test]
    fn serve_requires_watch_and_rejects_positional_args() {
        let err = run(&s(&["serve", "--out-dir", "x"])).unwrap_err();
        assert!(err.contains("--watch"), "{err}");
        let err = run(&s(&[
            "serve",
            "stray.qasm",
            "--watch",
            "w",
            "--out-dir",
            "x",
        ]))
        .unwrap_err();
        assert!(err.contains("no positional"), "{err}");
    }

    #[test]
    fn report_serve_renders_and_validates_status() {
        let status = tmp("status.json");
        std::fs::write(
            &status,
            "{\"type\":\"serve_status\",\"schema_version\":1,\"workers\":2,\
\"queue_depth\":0,\"in_flight\":0,\"admitted\":3,\"completed\":3,\"quarantined\":0,\
\"cancelled\":0,\"retries\":1,\"polls\":42,\"draining\":true}\n",
        )
        .unwrap();
        assert!(run(&s(&["report", "--serve", status.to_str().unwrap()])).is_ok());
        // A trace file is not a status file: loud error, not garbage.
        let trace = tmp("not_status.jsonl");
        std::fs::write(&trace, "{\"type\":\"meta\",\"schema_version\":1}\n").unwrap();
        let err = run(&s(&["report", "--serve", trace.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("not a serve status"), "{err}");
    }

    #[test]
    fn batch_requires_inputs_and_out_dir() {
        assert!(run(&s(&["batch"])).is_err());
        let err = run(&s(&["batch", "--out-dir", tmp("be").to_str().unwrap()])).unwrap_err();
        assert!(err.contains("circuit file or --suite"), "{err}");
        let err = run(&s(&["batch", "--suite", "nope", "--out-dir", "x"])).unwrap_err();
        assert!(err.contains("unknown suite"), "{err}");
    }

    #[test]
    fn missing_options_reported() {
        let input = write_demo_circuit();
        let err = run(&s(&["protect", input.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("meta"));
    }

    // The `--trace` round trip is covered by `tests/trace_cli.rs`, which
    // drives the real binary in a subprocess: the qobs sink and level are
    // process-global, so an in-process test would race with the rest of
    // this (parallel) suite.

    #[test]
    fn trace_flag_requires_value() {
        let err = run(&s(&["verify", "--trace"])).unwrap_err();
        assert!(err.contains("--trace"));
    }

    #[test]
    fn check_equivalence_padded_registers() {
        let mut small = Circuit::new(2);
        small.x(0);
        let mut large = Circuit::new(3);
        large.x(0);
        assert!(check_equivalence(&small, &large).unwrap());
        let mut wrong = Circuit::new(3);
        wrong.x(2);
        assert!(!check_equivalence(&small, &wrong).unwrap());
    }
}
