//! End-to-end `--trace` / `report` checks against the real binary.
//!
//! These drive the CLI as a subprocess rather than calling `run()`
//! in-process: the qobs sink and level are process-global, so an
//! in-process test would race with the unit-test suite's parallel
//! threads and pollute their (sink-free) runs.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tetrislock"));
    // Isolate from the ambient environment: `--trace` should imply full
    // tracing unless a test sets QOBS explicitly.
    cmd.env_remove("QOBS");
    cmd
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tlk_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn write(name: &str, body: &str) -> PathBuf {
    let path = tmp(name);
    std::fs::write(&path, body).unwrap();
    path
}

const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n";

#[test]
fn verify_trace_roundtrip_and_report() {
    let a = write("rt_a.qasm", &format!("{HEADER}h q[0];\ncx q[0],q[1];\n"));
    let trace = tmp("rt_equal.jsonl");

    let out = bin()
        .args([
            "verify",
            a.to_str().unwrap(),
            a.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "verify failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    let summary = qobs::schema::validate_trace(&text)
        .unwrap_or_else(|e| panic!("invalid trace: {e}\n{text}"));
    assert!(
        summary.spans >= 3,
        "cli.verify + verify.check + verify.tier"
    );
    for needle in [
        "\"command\":\"verify\"",
        "\"qsim_workers\"",
        "\"qsim_workers_env\"",
        "\"name\":\"cli.verify\"",
        "\"name\":\"verify.check\"",
        "\"name\":\"verify.tier\"",
        "\"outcome\":\"decided\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }

    let rep = bin()
        .args(["report", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(rep.status.success());
    let rendered = String::from_utf8_lossy(&rep.stdout);
    assert!(rendered.contains("verify.tier"), "{rendered}");
    assert!(rendered.contains("<- decided"), "{rendered}");
}

#[test]
fn dense_tier_trace_records_kernel_class_counts() {
    // An 8-control mcx (past the ZX translation bound) with a t/tdg
    // garnish: non-classical, non-Clifford, and the miter never even
    // becomes a ZX diagram — so the dense tier decides, driving the
    // qsim statevector kernels. (t vs tdg alone no longer works here:
    // the ZX tier certifies it with a phase-replay witness.)
    let wide = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[9];\n";
    let mcx = "mcx8 q[0],q[1],q[2],q[3],q[4],q[5],q[6],q[7],q[8];\n";
    let a = write("dt_t.qasm", &format!("{wide}{mcx}t q[8];\n"));
    let b = write("dt_tdg.qasm", &format!("{wide}{mcx}tdg q[8];\n"));
    let trace = tmp("dt_dense.jsonl");

    let out = bin()
        .args([
            "verify",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "t vs tdg must be inequivalent");

    let text = std::fs::read_to_string(&trace).unwrap();
    qobs::schema::validate_trace(&text).unwrap_or_else(|e| panic!("invalid trace: {e}\n{text}"));
    assert!(text.contains("\"tier\":\"dense\""), "{text}");
    assert!(text.contains("qsim.kernel."), "{text}");
    assert!(text.contains("\"name\":\"cli.error\""), "{text}");
}

#[test]
fn qobs_env_overrides_trace_level() {
    let a = write("lv_a.qasm", &format!("{HEADER}h q[0];\n"));
    let trace = tmp("lv_counters.jsonl");

    let out = bin()
        .env("QOBS", "counters")
        .args([
            "verify",
            a.to_str().unwrap(),
            a.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let text = std::fs::read_to_string(&trace).unwrap();
    qobs::schema::validate_trace(&text).unwrap_or_else(|e| panic!("invalid trace: {e}\n{text}"));
    assert!(!text.contains("\"type\":\"span\""), "{text}");
    assert!(text.contains("\"type\":\"counter\""), "{text}");
}

#[test]
fn report_rejects_malformed_trace() {
    let bad = write("bad.jsonl", "not json\n");
    let out = bin()
        .args(["report", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid trace"), "{err}");
}
