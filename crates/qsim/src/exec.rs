//! Lowered kernel operations and the layer-blocked executor.
//!
//! The statevector dispatcher used to call a kernel driver per gate,
//! which at 28 qubits means one full 4 GiB sweep of the amplitude
//! array per gate — pure memory traffic. This module splits dispatch
//! into two halves:
//!
//! * [`KernelOp`] — a gate (or fused run product) lowered to the exact
//!   kernel call it will make, with its operand bit masks resolved;
//! * [`Executor`] — a push-based sink that either applies each op
//!   immediately (small registers) or batches consecutive *block-local*
//!   ops into a layer and applies the whole layer with **one** sweep:
//!   the array is walked in cache-sized blocks of `2^`[`BLOCK_QUBITS`]
//!   amplitudes and every op of the layer is applied to a block while
//!   it is hot, using the same per-chunk kernels the full-array drivers
//!   use.
//!
//! An op is block-local when all its *paired* bits fall inside a block
//! (`paired_span() ≤ block`); diagonal and controlled-phase ops are
//! always block-local because their chunk kernels take the block's
//! global offset and handle out-of-block bits by a constant check. Ops
//! pairing amplitudes across blocks (a gate on a top qubit) flush the
//! current layer and run through their ordinary full-array driver.
//!
//! Layer sweeps are bit-identical to sequential full passes: each op
//! touches each amplitude exactly as the full-array kernel would (same
//! formula, same pairing), and blocks are independent, so only the
//! *order in time* changes, never the arithmetic. The determinism and
//! kernel-equivalence suites pin this.

use crate::complex::C64;
use crate::kernels::{self, Mat2, Threading};
use crate::matrix::Matrix;

// Per-kernel-class dispatch counters (one tick per op submitted to an
// executor, independent of whether it runs layered or full-array) and
// layer-sweep accounting, all no-ops below `QOBS=counters`.
static KERNEL_DIAG1: qobs::Counter = qobs::Counter::new("qsim.kernel.diag1");
static KERNEL_PHASE: qobs::Counter = qobs::Counter::new("qsim.kernel.phase");
static KERNEL_MCX: qobs::Counter = qobs::Counter::new("qsim.kernel.mcx");
static KERNEL_SWAP: qobs::Counter = qobs::Counter::new("qsim.kernel.swap");
static KERNEL_ANTI1: qobs::Counter = qobs::Counter::new("qsim.kernel.anti1");
static KERNEL_MAT1: qobs::Counter = qobs::Counter::new("qsim.kernel.mat1");
static KERNEL_MAT2Q: qobs::Counter = qobs::Counter::new("qsim.kernel.mat2q");
static KERNEL_MATKQ: qobs::Counter = qobs::Counter::new("qsim.kernel.matkq");
static EXEC_FULL_PASSES: qobs::Counter = qobs::Counter::new("qsim.exec.full_passes");
static EXEC_LAYER_SWEEPS: qobs::Counter = qobs::Counter::new("qsim.exec.layer_sweeps");
static EXEC_LAYER_OPS: qobs::Counter = qobs::Counter::new("qsim.exec.layer_ops");

/// Block size exponent for layer-blocked sweeps: `2¹⁵` amplitudes
/// = 512 KiB, sized to sit comfortably in a per-core L2 cache while
/// a whole fused layer is applied to it.
pub const BLOCK_QUBITS: u32 = 15;

/// Register size at which the executor starts batching block-local ops
/// into layer sweeps (below it the state fits in cache and re-sweeping
/// costs nothing).
pub const LAYER_MIN_QUBITS: u32 = 20;

/// A gate lowered to the kernel invocation that will execute it. Bit
/// fields hold *bit values* (`1 << qubit_index`), matching the kernel
/// signatures.
#[derive(Debug, Clone)]
pub(crate) enum KernelOp {
    /// `diag(d0, d1)` on target bit `tbit`.
    Diag1 { tbit: usize, d0: C64, d1: C64 },
    /// Multiply by `phase` where all `set` bits are 1 and all `clear`
    /// bits are 0 (CZ/CP/CRz halves).
    Phase {
        set: usize,
        clear: usize,
        phase: C64,
    },
    /// (Multi-)controlled X; `cmask = 0` is a plain X.
    Mcx { cmask: usize, tbit: usize },
    /// (Controlled) swap of `abit`/`bbit` (normalized `abit < bbit`).
    SwapBits {
        cmask: usize,
        abit: usize,
        bbit: usize,
    },
    /// Antidiagonal single-qubit unitary (Y, X·T-style fused runs).
    Anti1 { tbit: usize, a01: C64, a10: C64 },
    /// Dense single-qubit unitary.
    Mat1 { tbit: usize, m: Mat2 },
    /// Dense two-qubit unitary (CY/CH), operand bits `p0`/`p1`.
    Mat2Q { p0: usize, p1: usize, m: Matrix },
    /// Generic k-qubit gather/scatter fallback.
    MatKQ { bits: Vec<usize>, m: Matrix },
}

impl KernelOp {
    /// The block span that must stay chunk-local for this op: `2 ×` the
    /// highest bit whose amplitudes it *pairs*. Diagonal and phase ops
    /// pair nothing (their chunk kernels are offset-aware), so any
    /// block works.
    fn paired_span(&self) -> usize {
        match self {
            KernelOp::Diag1 { .. } | KernelOp::Phase { .. } => 1,
            KernelOp::Mcx { tbit, .. }
            | KernelOp::Anti1 { tbit, .. }
            | KernelOp::Mat1 { tbit, .. } => 2 * tbit,
            KernelOp::SwapBits { bbit, .. } => 2 * bbit,
            KernelOp::Mat2Q { p0, p1, .. } => 2 * p0.max(p1),
            KernelOp::MatKQ { bits, .. } => {
                2 * bits.iter().copied().max().expect("at least one operand")
            }
        }
    }

    /// The dispatch counter for this op's kernel class.
    fn class_counter(&self) -> &'static qobs::Counter {
        match self {
            KernelOp::Diag1 { .. } => &KERNEL_DIAG1,
            KernelOp::Phase { .. } => &KERNEL_PHASE,
            KernelOp::Mcx { .. } => &KERNEL_MCX,
            KernelOp::SwapBits { .. } => &KERNEL_SWAP,
            KernelOp::Anti1 { .. } => &KERNEL_ANTI1,
            KernelOp::Mat1 { .. } => &KERNEL_MAT1,
            KernelOp::Mat2Q { .. } => &KERNEL_MAT2Q,
            KernelOp::MatKQ { .. } => &KERNEL_MATKQ,
        }
    }

    /// Applies this op over the whole array through its full driver
    /// (chunked/pair-slab parallel as appropriate).
    fn apply_full(&self, amps: &mut [C64], th: Threading) {
        EXEC_FULL_PASSES.incr();
        match self {
            KernelOp::Diag1 { tbit, d0, d1 } => kernels::apply_diag1(amps, th, *tbit, *d0, *d1),
            KernelOp::Phase { set, clear, phase } => {
                kernels::apply_phase(amps, th, *set, *clear, *phase)
            }
            KernelOp::Mcx { cmask, tbit } => kernels::apply_mcx(amps, th, *cmask, *tbit),
            KernelOp::SwapBits { cmask, abit, bbit } => {
                kernels::apply_swap(amps, th, *cmask, *abit, *bbit)
            }
            KernelOp::Anti1 { tbit, a01, a10 } => kernels::apply_anti1(amps, th, *tbit, *a01, *a10),
            KernelOp::Mat1 { tbit, m } => kernels::apply_1q(amps, th, *tbit, *m),
            KernelOp::Mat2Q { p0, p1, m } => kernels::apply_2q(amps, th, *p0, *p1, m),
            KernelOp::MatKQ { bits, m } => kernels::apply_kq(amps, th, bits, m),
        }
    }

    /// Applies this op to one block whose global base index is
    /// `offset`. Requires `paired_span() ≤ chunk.len()`.
    fn apply_chunk(&self, chunk: &mut [C64], offset: usize) {
        debug_assert!(self.paired_span() <= chunk.len());
        match self {
            KernelOp::Diag1 { tbit, d0, d1 } => {
                kernels::diag1_chunk(chunk, offset, *tbit, *d0, *d1)
            }
            KernelOp::Phase { set, clear, phase } => {
                kernels::phase_chunk(chunk, offset, *set, *clear, *phase)
            }
            KernelOp::Mcx { cmask, tbit } => kernels::mcx_chunk(chunk, offset, *cmask, *tbit),
            KernelOp::SwapBits { cmask, abit, bbit } => {
                kernels::swap_chunk(chunk, offset, *cmask, *abit, *bbit)
            }
            KernelOp::Anti1 { tbit, a01, a10 } => kernels::anti1_chunk(chunk, *tbit, *a01, *a10),
            KernelOp::Mat1 { tbit, m } => kernels::oneq_chunk(chunk, *tbit, *m),
            KernelOp::Mat2Q { p0, p1, m } => kernels::twoq_chunk(chunk, *p0, *p1, m),
            KernelOp::MatKQ { bits, m } => kernels::kq_chunk(chunk, bits, m),
        }
    }
}

/// Push-based op sink: batches block-local ops into layers when
/// layering is enabled, applies everything else straight through the
/// full drivers. Call [`Executor::finish`] after the last push (a
/// pending layer is also flushed on drop as a safety net).
pub(crate) struct Executor<'a> {
    amps: &'a mut [C64],
    th: Threading,
    /// Block size in amplitudes, or 0 when layering is disabled.
    block: usize,
    layer: Vec<KernelOp>,
}

impl<'a> Executor<'a> {
    /// Creates an executor over `amps`. `layering` enables the
    /// layer-blocked sweep path (the caller gates it on register size
    /// or an explicit override).
    pub fn new(amps: &'a mut [C64], th: Threading, layering: bool) -> Self {
        let block = if layering {
            (1usize << BLOCK_QUBITS).min(amps.len())
        } else {
            0
        };
        Executor {
            amps,
            th,
            block,
            layer: Vec::new(),
        }
    }

    /// Submits one op for execution.
    pub fn push(&mut self, op: KernelOp) {
        op.class_counter().incr();
        if self.block == 0 {
            op.apply_full(self.amps, self.th);
        } else if op.paired_span() <= self.block {
            self.layer.push(op);
        } else {
            // A cross-block op: drain the layer, run the op through
            // its full driver (pair-slab parallel for top-bit 1q/MCX).
            self.flush();
            op.apply_full(self.amps, self.th);
        }
    }

    /// Applies any pending layer. A single-op "layer" goes through the
    /// ordinary full driver (no sweep overhead); two or more ops are
    /// applied block by block in one pass over the array.
    pub fn flush(&mut self) {
        match self.layer.len() {
            0 => {}
            1 => {
                let op = self.layer.pop().expect("len checked");
                op.apply_full(self.amps, self.th);
            }
            _ => {
                let ops = std::mem::take(&mut self.layer);
                EXEC_LAYER_SWEEPS.incr();
                EXEC_LAYER_OPS.add(ops.len() as u64);
                let block = self.block;
                kernels::run_chunks(self.amps, block, self.th, &|offset, chunk| {
                    for (bi, b) in chunk.chunks_mut(block).enumerate() {
                        let base = offset + bi * block;
                        for op in &ops {
                            op.apply_chunk(b, base);
                        }
                    }
                });
                // Reuse the allocation for the next layer.
                self.layer = ops;
                self.layer.clear();
            }
        }
    }

    /// Flushes the final layer. Equivalent to dropping the executor,
    /// but explicit at the call site.
    pub fn finish(mut self) {
        self.flush();
        self.layer.clear(); // Drop's flush becomes a no-op.
    }
}

impl Drop for Executor<'_> {
    fn drop(&mut self) {
        if !self.layer.is_empty() && !std::thread::panicking() {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<C64> {
        (0..n).map(|i| C64::new(i as f64, -(i as f64))).collect()
    }

    #[test]
    fn exec_paired_span_classifies_block_locality() {
        let diag = KernelOp::Diag1 {
            tbit: 1 << 20,
            d0: C64::ONE,
            d1: C64::I,
        };
        assert_eq!(diag.paired_span(), 1); // offset-aware: always local
        let phase = KernelOp::Phase {
            set: (1 << 25) | (1 << 3),
            clear: 0,
            phase: -C64::ONE,
        };
        assert_eq!(phase.paired_span(), 1);
        let mcx = KernelOp::Mcx {
            cmask: 1 << 27,
            tbit: 1 << 4,
        };
        // Controls don't pair; only the target does.
        assert_eq!(mcx.paired_span(), 2 << 4);
        let swap = KernelOp::SwapBits {
            cmask: 0,
            abit: 1 << 2,
            bbit: 1 << 9,
        };
        assert_eq!(swap.paired_span(), 2 << 9);
    }

    #[test]
    fn exec_layered_sweep_matches_sequential_application() {
        // Force tiny blocks by building an executor over a small array
        // (block = min(2^BLOCK_QUBITS, len) = len here), then compare a
        // multi-op layer against one-op-at-a-time application.
        let n = 1usize << 10;
        let ops = [
            KernelOp::Diag1 {
                tbit: 1 << 3,
                d0: C64::ONE,
                d1: C64::cis(0.7),
            },
            KernelOp::Mcx {
                cmask: 1 << 1,
                tbit: 1 << 5,
            },
            KernelOp::Anti1 {
                tbit: 1 << 2,
                a01: C64::new(0.0, -1.0),
                a10: C64::I,
            },
            KernelOp::Phase {
                set: (1 << 4) | (1 << 0),
                clear: 0,
                phase: C64::cis(-1.1),
            },
        ];

        let mut layered = ramp(n);
        {
            let mut ex = Executor::new(&mut layered, Threading::single(), true);
            for op in &ops {
                ex.push(op.clone());
            }
            ex.finish();
        }

        let mut sequential = ramp(n);
        for op in &ops {
            op.apply_full(&mut sequential, Threading::single());
        }

        // Bit-identical, not approximately equal.
        for (i, (a, b)) in layered.iter().zip(&sequential).enumerate() {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "amplitude {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn exec_cross_block_op_flushes_and_still_matches() {
        let n = 1usize << 8;
        let top = n >> 1;
        let ops = [
            KernelOp::Diag1 {
                tbit: 1 << 2,
                d0: C64::cis(0.3),
                d1: C64::cis(-0.3),
            },
            // Pairs across the whole array: cannot join a layer when
            // blocks are smaller (here block == len, but the flush path
            // is still exercised via push order).
            KernelOp::Mat1 {
                tbit: top,
                m: Mat2 {
                    m00: C64::real(std::f64::consts::FRAC_1_SQRT_2),
                    m01: C64::real(std::f64::consts::FRAC_1_SQRT_2),
                    m10: C64::real(std::f64::consts::FRAC_1_SQRT_2),
                    m11: C64::real(-std::f64::consts::FRAC_1_SQRT_2),
                },
            },
        ];
        let mut layered = ramp(n);
        {
            let mut ex = Executor::new(&mut layered, Threading::single(), true);
            for op in &ops {
                ex.push(op.clone());
            }
            ex.finish();
        }
        let mut sequential = ramp(n);
        for op in &ops {
            op.apply_full(&mut sequential, Threading::single());
        }
        for (a, b) in layered.iter().zip(&sequential) {
            assert!(a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
        }
    }
}
