//! Branch-free stride kernels over amplitude arrays.
//!
//! This module is the hot path of the statevector simulator. Every
//! kernel exploits the same structure: a gate on operand bits
//! `b₀ < b₁ < …` decomposes the `2ⁿ` amplitude array into independent
//! groups addressed by the *non*-operand bits, so the loops below
//! enumerate only the `2ⁿ⁻ᵏ` group base indices — no per-amplitude
//! branch, no wasted iterations — and touch each amplitude at most
//! once.
//!
//! Three loop shapes cover the whole gate set:
//!
//! * **stride pairs** — a single-qubit unitary on target bit `t` pairs
//!   `amps[i]` with `amps[i + 2^t]`; iterating blocks of `2^{t+1}` and
//!   splitting each at the midpoint yields two contiguous slices whose
//!   `j`-th elements form the pairs (perfectly vectorizable);
//! * **submask enumeration** — controlled/permutation kernels freeze
//!   the operand bits and walk the remaining "live" bits with the
//!   carry trick `x ← ((x | !live) + 1) & live`, visiting exactly the
//!   relevant base indices;
//! * **diagonal scans** — phase gates never pair amplitudes at all and
//!   reduce to scaling contiguous half-blocks.
//!
//! Above [`PARALLEL_MIN_QUBITS`] qubits the drivers split the array
//! into power-of-two aligned chunks (alignment ≥ `2^{t+1}` for the
//! highest *paired* bit, so every pair stays chunk-local; control bits
//! only need an offset check) and apply the same kernels across the
//! persistent worker pool in [`crate::pool`] (spawned once per
//! process, work distributed by state-slab range). When the paired bit
//! is too high for aligned chunking to produce enough chunks, the 1q
//! and MCX kernels (which cover every gate of the Clifford+T and
//! classical-reversible workloads except the diagonal family, itself
//! alignment-free) fall back to a pair driver that splits each
//! `2^{t+1}` block at its midpoint and zips sub-chunks of the two
//! halves, preserving full parallelism for top-bit targets; the rarer
//! Swap/CSwap/CY/CH kernels simply degrade to fewer chunks there.
//!
//! The arithmetic-heavy inner loops (pair rotation, antidiagonal, and
//! diagonal scaling) are blocked into fixed-width lanes of [`LANES`]
//! amplitudes so the autovectorizer sees straight-line independent
//! complex multiplies; the remainder path reuses the *same*
//! `#[inline(always)]` per-element formula, so lane and scalar paths
//! are bit-identical — the determinism contract (same amplitudes for
//! any worker count or chunk layout) is enforced by the equivalence
//! suite, not by inspecting the generated assembly.

use crate::complex::C64;
use crate::matrix::Matrix;
use crate::pool;

/// Register size at which `apply` starts splitting kernels across
/// worker threads (`2¹⁸` amplitudes ≈ 4 MiB); below it the spawn cost
/// outweighs the win.
pub const PARALLEL_MIN_QUBITS: u32 = 18;

/// Lane width of the blocked inner loops: 8 × `f64` per component
/// matches one AVX-512 or two AVX2/NEON-pair registers, and a fixed
/// trip count lets LLVM fully unroll and vectorize the block.
const LANES: usize = 8;

/// Worker-thread policy for one kernel invocation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Threading {
    /// Worker count (≥ 1; 1 disables threading).
    pub workers: usize,
    /// Minimum amplitude count before threads are used.
    pub min_amps: usize,
}

impl Threading {
    /// The default policy: auto-detected worker count, threshold at
    /// [`PARALLEL_MIN_QUBITS`].
    pub fn auto() -> Self {
        Threading::with_workers(0)
    }

    /// A policy with an explicit worker count (`0` = auto-detect).
    /// Explicit counts are clamped to [`pool::MAX_WORKERS`] like the
    /// auto-detected ones — the kernels are memory-bandwidth-bound and
    /// oversubscription only contends.
    pub fn with_workers(workers: usize) -> Self {
        let workers = if workers == 0 {
            pool::default_workers()
        } else {
            workers.min(pool::MAX_WORKERS)
        };
        Threading {
            workers,
            min_amps: 1usize << PARALLEL_MIN_QUBITS,
        }
    }

    /// A strictly single-threaded policy.
    #[cfg(test)]
    pub fn single() -> Self {
        Threading {
            workers: 1,
            min_amps: usize::MAX,
        }
    }
}

/// A dense 2×2 complex matrix in row-major order — the payload of the
/// single-qubit kernel, `Copy` so closures can capture it by value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Mat2 {
    /// Row 0: `(m00, m01)`.
    pub m00: C64,
    /// Entry (0, 1).
    pub m01: C64,
    /// Entry (1, 0).
    pub m10: C64,
    /// Entry (1, 1).
    pub m11: C64,
}

impl Mat2 {
    /// Extracts the 2×2 payload of a [`Matrix`] (must be dimension 2).
    pub fn from_matrix(m: &Matrix) -> Self {
        debug_assert_eq!(m.dim(), 2);
        Mat2 {
            m00: m.get(0, 0),
            m01: m.get(0, 1),
            m10: m.get(1, 0),
            m11: m.get(1, 1),
        }
    }

    /// `true` if both off-diagonal entries are exactly zero (the case
    /// for compositions of diagonal gates, whose products introduce no
    /// rounding into the off-diagonal zeros).
    pub fn is_diagonal(&self) -> bool {
        self.m01 == C64::ZERO && self.m10 == C64::ZERO
    }

    /// `true` if both diagonal entries are exactly zero — products of
    /// an odd number of antidiagonal factors (X, Y) with diagonal ones
    /// keep exact zeros on the diagonal for the same reason.
    pub fn is_antidiagonal(&self) -> bool {
        self.m00 == C64::ZERO && self.m11 == C64::ZERO
    }
}

/// Largest power of two ≤ `x` (`x ≥ 1`).
fn prev_pow2(x: usize) -> usize {
    debug_assert!(x >= 1);
    1usize << (usize::BITS - 1 - x.leading_zeros())
}

/// Visits every submask of `live` (including 0 and `live` itself) in
/// increasing order — the branch-free enumeration of base indices with
/// the frozen bits held at zero.
#[inline]
fn for_each_submask(live: usize, mut f: impl FnMut(usize)) {
    let mut x = 0usize;
    loop {
        f(x);
        if x == live {
            break;
        }
        x = (x | !live).wrapping_add(1) & live;
    }
}

/// Chunk size for aligned parallel chunking, or `None` when the kernel
/// should run inline (threading disabled, array too small, or the
/// alignment leaves fewer than two chunks). `len` must be a power of
/// two and `align` a power of two dividing it; the returned size is
/// then a power-of-two multiple of `align`, so every chunk starts on a
/// multiple of its own (power-of-two) length.
fn plan_chunks(len: usize, align: usize, th: Threading) -> Option<usize> {
    if th.workers < 2 || len < th.min_amps {
        return None;
    }
    let max_chunks = len / align;
    if max_chunks < 2 {
        return None;
    }
    let chunks = prev_pow2(th.workers.min(max_chunks));
    if chunks < 2 {
        return None;
    }
    Some(len / chunks)
}

/// Runs `kernel(chunk_offset, chunk)` over aligned chunks of `amps`,
/// in parallel when [`plan_chunks`] allows, inline otherwise.
pub(crate) fn run_chunks(
    amps: &mut [C64],
    align: usize,
    th: Threading,
    kernel: &(impl Fn(usize, &mut [C64]) + Sync),
) {
    match plan_chunks(amps.len(), align, th) {
        None => kernel(0, amps),
        Some(size) => pool::scope(th.workers, |scope| {
            for (i, chunk) in amps.chunks_mut(size).enumerate() {
                scope.spawn(move || kernel(i * size, chunk));
            }
        }),
    }
}

/// Runs `f(lo_offset, lo, hi)` over the half-block pairs of pairing
/// bit `pbit`, sub-chunking the halves across workers — the driver for
/// paired kernels whose target bit is too high for aligned chunking.
fn run_pair_slabs(
    amps: &mut [C64],
    pbit: usize,
    th: Threading,
    f: &(impl Fn(usize, &mut [C64], &mut [C64]) + Sync),
) {
    let len = amps.len();
    let nblocks = len / (2 * pbit);
    if th.workers < 2 || len < th.min_amps {
        for (bi, block) in amps.chunks_mut(2 * pbit).enumerate() {
            let (lo, hi) = block.split_at_mut(pbit);
            f(bi * 2 * pbit, lo, hi);
        }
        return;
    }
    let per_block = prev_pow2((th.workers / nblocks).max(1)).min(pbit);
    let sub = pbit / per_block;
    pool::scope(th.workers, |scope| {
        for (bi, block) in amps.chunks_mut(2 * pbit).enumerate() {
            let (lo, hi) = block.split_at_mut(pbit);
            for (ci, (lc, hc)) in lo.chunks_mut(sub).zip(hi.chunks_mut(sub)).enumerate() {
                scope.spawn(move || f(bi * 2 * pbit + ci * sub, lc, hc));
            }
        }
    });
}

// ---------------------------------------------------------------------
// Single-qubit unitary
// ---------------------------------------------------------------------

/// Applies a general single-qubit unitary on target bit value `tbit`.
pub(crate) fn apply_1q(amps: &mut [C64], th: Threading, tbit: usize, m: Mat2) {
    let block = 2 * tbit;
    if plan_chunks(amps.len(), block, th).is_some() {
        run_chunks(amps, block, th, &|_, chunk| oneq_chunk(chunk, tbit, m));
    } else if th.workers >= 2 && amps.len() >= th.min_amps {
        run_pair_slabs(amps, tbit, th, &|_, lo, hi| oneq_pair(lo, hi, m));
    } else {
        oneq_chunk(amps, tbit, m);
    }
}

/// Single-qubit kernel over a chunk whose length is a multiple of
/// `2 * tbit`.
pub(crate) fn oneq_chunk(chunk: &mut [C64], tbit: usize, m: Mat2) {
    for block in chunk.chunks_exact_mut(2 * tbit) {
        let (lo, hi) = block.split_at_mut(tbit);
        oneq_pair(lo, hi, m);
    }
}

/// The per-pair rotation — the one definition both the lane-blocked
/// loop and the remainder use, so the two paths are bit-identical.
#[inline(always)]
fn rotate_pair(m: &Mat2, a0: C64, a1: C64) -> (C64, C64) {
    (m.m00 * a0 + m.m01 * a1, m.m10 * a0 + m.m11 * a1)
}

/// The innermost pair loop: `j`-th elements of `lo` and `hi` form the
/// `(|…0…⟩, |…1…⟩)` amplitude pairs. Blocked into [`LANES`]-wide
/// groups of independent rotations for the autovectorizer.
fn oneq_pair(lo: &mut [C64], hi: &mut [C64], m: Mat2) {
    let mut lo_lanes = lo.chunks_exact_mut(LANES);
    let mut hi_lanes = hi.chunks_exact_mut(LANES);
    for (lc, hc) in (&mut lo_lanes).zip(&mut hi_lanes) {
        for j in 0..LANES {
            let (r0, r1) = rotate_pair(&m, lc[j], hc[j]);
            lc[j] = r0;
            hc[j] = r1;
        }
    }
    for (a, b) in lo_lanes
        .into_remainder()
        .iter_mut()
        .zip(hi_lanes.into_remainder())
    {
        let (r0, r1) = rotate_pair(&m, *a, *b);
        *a = r0;
        *b = r1;
    }
}

/// Applies an antidiagonal single-qubit unitary (`m00 = m11 = 0`) on
/// target bit `tbit`: `lo' = a01·hi`, `hi' = a10·lo` — one complex
/// multiply per amplitude instead of the dense kernel's four. X·T-style
/// fused runs route here.
pub(crate) fn apply_anti1(amps: &mut [C64], th: Threading, tbit: usize, a01: C64, a10: C64) {
    let block = 2 * tbit;
    if plan_chunks(amps.len(), block, th).is_some() {
        run_chunks(amps, block, th, &|_, chunk| {
            anti1_chunk(chunk, tbit, a01, a10)
        });
    } else if th.workers >= 2 && amps.len() >= th.min_amps {
        run_pair_slabs(amps, tbit, th, &|_, lo, hi| anti1_pair(lo, hi, a01, a10));
    } else {
        anti1_chunk(amps, tbit, a01, a10);
    }
}

/// Antidiagonal kernel over a chunk whose length is a multiple of
/// `2 * tbit`.
pub(crate) fn anti1_chunk(chunk: &mut [C64], tbit: usize, a01: C64, a10: C64) {
    for block in chunk.chunks_exact_mut(2 * tbit) {
        let (lo, hi) = block.split_at_mut(tbit);
        anti1_pair(lo, hi, a01, a10);
    }
}

/// Shared per-pair formula for the antidiagonal kernel.
#[inline(always)]
fn cross_pair(a01: C64, a10: C64, a0: C64, a1: C64) -> (C64, C64) {
    (a01 * a1, a10 * a0)
}

fn anti1_pair(lo: &mut [C64], hi: &mut [C64], a01: C64, a10: C64) {
    let mut lo_lanes = lo.chunks_exact_mut(LANES);
    let mut hi_lanes = hi.chunks_exact_mut(LANES);
    for (lc, hc) in (&mut lo_lanes).zip(&mut hi_lanes) {
        for j in 0..LANES {
            let (r0, r1) = cross_pair(a01, a10, lc[j], hc[j]);
            lc[j] = r0;
            hc[j] = r1;
        }
    }
    for (a, b) in lo_lanes
        .into_remainder()
        .iter_mut()
        .zip(hi_lanes.into_remainder())
    {
        let (r0, r1) = cross_pair(a01, a10, *a, *b);
        *a = r0;
        *b = r1;
    }
}

// ---------------------------------------------------------------------
// Permutation kernels: X / CX / CCX / MCX, Swap / CSwap
// ---------------------------------------------------------------------

/// Applies a (multi-)controlled X: target bit `tbit`, control mask
/// `cmask` (0 for a plain X).
pub(crate) fn apply_mcx(amps: &mut [C64], th: Threading, cmask: usize, tbit: usize) {
    let block = 2 * tbit;
    if plan_chunks(amps.len(), block, th).is_some() {
        run_chunks(amps, block, th, &|offset, chunk| {
            mcx_chunk(chunk, offset, cmask, tbit)
        });
    } else if th.workers >= 2 && amps.len() >= th.min_amps {
        run_pair_slabs(amps, tbit, th, &|offset, lo, hi| {
            mcx_pair(lo, hi, offset, cmask)
        });
    } else {
        mcx_chunk(amps, 0, cmask, tbit);
    }
}

/// MCX kernel over a chunk whose length is a multiple of `2 * tbit`;
/// `offset` is the chunk's global base index (for control bits above
/// the block size).
pub(crate) fn mcx_chunk(chunk: &mut [C64], offset: usize, cmask: usize, tbit: usize) {
    let cm_low = cmask & (tbit - 1);
    let cm_above = cmask & !(2 * tbit - 1);
    let live = (tbit - 1) & !cm_low;
    for (bi, block) in chunk.chunks_exact_mut(2 * tbit).enumerate() {
        if (offset + bi * 2 * tbit) & cm_above != cm_above {
            continue;
        }
        let (lo, hi) = block.split_at_mut(tbit);
        if cm_low == 0 {
            lo.swap_with_slice(hi);
        } else {
            for_each_submask(live, |x| {
                let i = x | cm_low;
                std::mem::swap(&mut lo[i], &mut hi[i]);
            });
        }
    }
}

/// MCX over one zipped half-block pair; `offset` is `lo[0]`'s global
/// index.
fn mcx_pair(lo: &mut [C64], hi: &mut [C64], offset: usize, cmask: usize) {
    let in_mask = lo.len() - 1;
    let cm_in = cmask & in_mask;
    let cm_out = cmask & !in_mask;
    if offset & cm_out != cm_out {
        return;
    }
    if cm_in == 0 {
        lo.swap_with_slice(hi);
    } else {
        for_each_submask(in_mask & !cm_in, |x| {
            let i = x | cm_in;
            std::mem::swap(&mut lo[i], &mut hi[i]);
        });
    }
}

/// Applies a (controlled) swap of the wires with bit values `abit` and
/// `bbit` under control mask `cmask` (0 for a plain swap).
pub(crate) fn apply_swap(amps: &mut [C64], th: Threading, cmask: usize, abit: usize, bbit: usize) {
    let (abit, bbit) = (abit.min(bbit), abit.max(bbit));
    run_chunks(amps, 2 * bbit, th, &|offset, chunk| {
        swap_chunk(chunk, offset, cmask, abit, bbit)
    });
}

/// Swap kernel over a chunk whose length is a multiple of `2 * bbit`
/// (`abit < bbit`): exchanges `|…a=1,b=0…⟩ ↔ |…a=0,b=1…⟩` where the
/// controls are satisfied.
pub(crate) fn swap_chunk(chunk: &mut [C64], offset: usize, cmask: usize, abit: usize, bbit: usize) {
    let cm_low = cmask & (bbit - 1);
    let cm_above = cmask & !(2 * bbit - 1);
    let live = (bbit - 1) & !abit & !cm_low;
    for (bi, block) in chunk.chunks_exact_mut(2 * bbit).enumerate() {
        if (offset + bi * 2 * bbit) & cm_above != cm_above {
            continue;
        }
        let (lo, hi) = block.split_at_mut(bbit);
        for_each_submask(live, |x| {
            let base = x | cm_low;
            std::mem::swap(&mut lo[base | abit], &mut hi[base]);
        });
    }
}

// ---------------------------------------------------------------------
// Diagonal kernels: Z / S / T / P / Rz, CZ / CP / CRz
// ---------------------------------------------------------------------

/// Applies the diagonal single-qubit gate `diag(d0, d1)` on target bit
/// `tbit` — a pure scan with no amplitude pairing.
pub(crate) fn apply_diag1(amps: &mut [C64], th: Threading, tbit: usize, d0: C64, d1: C64) {
    run_chunks(amps, 1, th, &|offset, chunk| {
        diag1_chunk(chunk, offset, tbit, d0, d1)
    });
}

pub(crate) fn diag1_chunk(chunk: &mut [C64], offset: usize, tbit: usize, d0: C64, d1: C64) {
    if tbit >= chunk.len() {
        // The target bit is constant across this chunk.
        let d = if offset & tbit != 0 { d1 } else { d0 };
        scale_slice(chunk, d);
        return;
    }
    for block in chunk.chunks_exact_mut(2 * tbit) {
        let (lo, hi) = block.split_at_mut(tbit);
        scale_slice(lo, d0);
        scale_slice(hi, d1);
    }
}

/// Multiplies every amplitude of `s` by `d`, lane-blocked; skips the
/// pass entirely for an exact-unit factor (the `|0⟩` half of T-like
/// phase gates).
fn scale_slice(s: &mut [C64], d: C64) {
    if d == C64::ONE {
        return;
    }
    let mut lanes = s.chunks_exact_mut(LANES);
    for lane in &mut lanes {
        for a in lane.iter_mut() {
            *a *= d;
        }
    }
    for a in lanes.into_remainder() {
        *a *= d;
    }
}

/// Multiplies by `phase` every amplitude whose index has all
/// `set_mask` bits set and all `clear_mask` bits clear — the engine
/// behind CZ (`set = c|t`), CP, and each half of CRz.
pub(crate) fn apply_phase(
    amps: &mut [C64],
    th: Threading,
    set_mask: usize,
    clear_mask: usize,
    phase: C64,
) {
    run_chunks(amps, 1, th, &|offset, chunk| {
        phase_chunk(chunk, offset, set_mask, clear_mask, phase)
    });
}

pub(crate) fn phase_chunk(
    chunk: &mut [C64],
    offset: usize,
    set_mask: usize,
    clear_mask: usize,
    phase: C64,
) {
    let in_mask = chunk.len() - 1;
    let s_out = set_mask & !in_mask;
    let c_out = clear_mask & !in_mask;
    if offset & s_out != s_out || offset & c_out != 0 {
        return;
    }
    let s_in = set_mask & in_mask;
    let c_in = clear_mask & in_mask;
    for_each_submask(in_mask & !(s_in | c_in), |x| {
        chunk[x | s_in] *= phase;
    });
}

// ---------------------------------------------------------------------
// Two-qubit and generic k-qubit unitaries
// ---------------------------------------------------------------------

/// Applies a general two-qubit unitary (operand 0 on bit `p0`, operand
/// 1 on bit `p1`, little-endian matrix convention) without the
/// gather/scatter of the generic path.
pub(crate) fn apply_2q(amps: &mut [C64], th: Threading, p0: usize, p1: usize, m: &Matrix) {
    debug_assert_eq!(m.dim(), 4);
    let shi = p0.max(p1);
    run_chunks(amps, 2 * shi, th, &|_, chunk| twoq_chunk(chunk, p0, p1, m));
}

pub(crate) fn twoq_chunk(chunk: &mut [C64], p0: usize, p1: usize, m: &Matrix) {
    let (slo, shi) = (p0.min(p1), p0.max(p1));
    // For matrix basis index t, operand 0 is bit 0 of t and operand 1
    // is bit 1; locate the amplitude in the (lo, hi) half and at which
    // low-bit offset.
    let locate = |t: usize| {
        let b0 = t & 1;
        let b1 = (t >> 1) & 1;
        let (hi_sel, lo_sel) = if p0 == shi { (b0, b1) } else { (b1, b0) };
        (hi_sel == 1, lo_sel * slo)
    };
    let slots: [(bool, usize); 4] = [locate(0), locate(1), locate(2), locate(3)];
    for block in chunk.chunks_exact_mut(2 * shi) {
        let (lo, hi) = block.split_at_mut(shi);
        for_each_submask((shi - 1) & !slo, |base| {
            let read = |t: usize| {
                let (in_hi, add) = slots[t];
                if in_hi {
                    hi[base + add]
                } else {
                    lo[base + add]
                }
            };
            let a = [read(0), read(1), read(2), read(3)];
            for (t, &(in_hi, add)) in slots.iter().enumerate() {
                let v = m.get(t, 0) * a[0]
                    + m.get(t, 1) * a[1]
                    + m.get(t, 2) * a[2]
                    + m.get(t, 3) * a[3];
                if in_hi {
                    hi[base + add] = v;
                } else {
                    lo[base + add] = v;
                }
            }
        });
    }
}

/// Generic k-qubit gate: gathers each group of `2ᵏ` amplitudes
/// addressed by the operand bits, multiplies by the matrix, scatters
/// back. Fallback for gates without a specialized kernel.
pub(crate) fn apply_kq(amps: &mut [C64], th: Threading, bits: &[usize], m: &Matrix) {
    let dim = 1usize << bits.len();
    debug_assert_eq!(m.dim(), dim);
    let maxbit = bits.iter().copied().max().expect("at least one operand");
    run_chunks(amps, 2 * maxbit, th, &|_, chunk| kq_chunk(chunk, bits, m));
}

pub(crate) fn kq_chunk(chunk: &mut [C64], bits: &[usize], m: &Matrix) {
    let dim = 1usize << bits.len();
    let mask: usize = bits.iter().sum();
    let mut gathered = vec![C64::ZERO; dim];
    let index_of = |base: usize, pattern: usize| {
        let mut idx = base;
        for (pos, bit) in bits.iter().enumerate() {
            if pattern & (1 << pos) != 0 {
                idx |= bit;
            }
        }
        idx
    };
    for_each_submask((chunk.len() - 1) & !mask, |base| {
        for (pattern, slot) in gathered.iter_mut().enumerate() {
            *slot = chunk[index_of(base, pattern)];
        }
        for row in 0..dim {
            let mut acc = C64::ZERO;
            for (col, &g) in gathered.iter().enumerate() {
                acc += m.get(row, col) * g;
            }
            chunk[index_of(base, row)] = acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::gate_matrix;
    use crate::statevector::reference;
    use crate::statevector::{Blocking, ExecConfig, Statevector};
    use proptest::prelude::*;
    use qcir::random::RandomCircuitConfig;
    use qcir::{Circuit, Gate};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const EPS: f64 = 1e-12;

    /// Forces the threaded drivers even on tiny arrays.
    fn forced() -> Threading {
        Threading {
            workers: 4,
            min_amps: 2,
        }
    }

    fn zero_state(n: u32) -> Vec<C64> {
        let mut amps = vec![C64::ZERO; 1usize << n];
        amps[0] = C64::ONE;
        amps
    }

    fn assert_states_match(a: &[C64], b: &[C64], context: &str) {
        assert_eq!(a.len(), b.len(), "{context}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.approx_eq(*y, EPS),
                "{context}: amplitude {i} diverges: {x} vs {y}"
            );
        }
    }

    /// A random circuit drawing from the ENTIRE gate set (every
    /// variant the dispatcher has a path for), unlike
    /// `qcir::random::random_unitary_circuit`'s reduced pool.
    fn full_pool_circuit(n: u32, gates: usize, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::with_name(n, "kernel_pool");
        fn pick_wires(rng: &mut StdRng, count: usize, n: u32) -> Vec<u32> {
            let mut ws: Vec<u32> = Vec::with_capacity(count);
            while ws.len() < count {
                let w = rng.gen_range(0..n);
                if !ws.contains(&w) {
                    ws.push(w);
                }
            }
            ws
        }
        for _ in 0..gates {
            let angle = rng.gen_range(-3.0..3.0f64);
            let pick = rng.gen_range(0..24u8);
            match pick {
                0 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.h(w[0])
                }
                1 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.x(w[0])
                }
                2 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.y(w[0])
                }
                3 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.z(w[0])
                }
                4 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.s(w[0])
                }
                5 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.sdg(w[0])
                }
                6 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.t(w[0])
                }
                7 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.tdg(w[0])
                }
                8 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.sx(w[0])
                }
                9 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.rx(angle, w[0])
                }
                10 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.ry(angle, w[0])
                }
                11 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.rz(angle, w[0])
                }
                12 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.p(angle, w[0])
                }
                13 => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.u(angle, angle * 0.5, -angle, w[0])
                }
                14 if n >= 2 => {
                    let w = pick_wires(&mut rng, 2, n);
                    c.cx(w[0], w[1])
                }
                15 if n >= 2 => {
                    let w = pick_wires(&mut rng, 2, n);
                    c.cy(w[0], w[1])
                }
                16 if n >= 2 => {
                    let w = pick_wires(&mut rng, 2, n);
                    c.cz(w[0], w[1])
                }
                17 if n >= 2 => {
                    let w = pick_wires(&mut rng, 2, n);
                    c.ch(w[0], w[1])
                }
                18 if n >= 2 => {
                    let w = pick_wires(&mut rng, 2, n);
                    c.cp(angle, w[0], w[1])
                }
                19 if n >= 2 => {
                    let w = pick_wires(&mut rng, 2, n);
                    c.crz(angle, w[0], w[1])
                }
                20 if n >= 2 => {
                    let w = pick_wires(&mut rng, 2, n);
                    c.swap(w[0], w[1])
                }
                21 if n >= 3 => {
                    let w = pick_wires(&mut rng, 3, n);
                    c.ccx(w[0], w[1], w[2])
                }
                22 if n >= 3 => {
                    let w = pick_wires(&mut rng, 3, n);
                    c.cswap(w[0], w[1], w[2])
                }
                23 if n >= 4 => {
                    let w = pick_wires(&mut rng, 4, n);
                    c.mcx(&w[..3], w[3])
                }
                _ => {
                    let w = pick_wires(&mut rng, 1, n);
                    c.h(w[0])
                }
            };
        }
        c
    }

    /// Applies `circuit` four ways — stride single-threaded, stride
    /// force-threaded, fused, fused force-threaded — and compares all
    /// of them against the retained naive reference kernels.
    fn check_engine_matches_reference(circuit: &Circuit, context: &str) {
        let n = circuit.num_qubits();
        let mut expected = zero_state(n);
        reference::apply_circuit(&mut expected, circuit);

        let mut plain = Statevector::zero(n).unwrap();
        plain
            .apply_circuit_with(
                circuit,
                &ExecConfig {
                    fuse: false,
                    threads: 1,
                    blocking: Blocking::Off,
                },
            )
            .unwrap();
        assert_states_match(plain.amplitudes(), &expected, &format!("{context}: stride"));

        let mut fused = Statevector::zero(n).unwrap();
        fused
            .apply_circuit_with(
                circuit,
                &ExecConfig {
                    fuse: true,
                    threads: 1,
                    blocking: Blocking::Off,
                },
            )
            .unwrap();
        assert_states_match(fused.amplitudes(), &expected, &format!("{context}: fused"));

        let mut layered = Statevector::zero(n).unwrap();
        layered
            .apply_circuit_with(
                circuit,
                &ExecConfig {
                    fuse: true,
                    threads: 1,
                    blocking: Blocking::Force,
                },
            )
            .unwrap();
        assert_states_match(
            layered.amplitudes(),
            &expected,
            &format!("{context}: layered"),
        );

        // Forced threading exercises the chunked/pair-slab drivers even
        // though the register is small.
        let mut amps = zero_state(n);
        for inst in circuit.iter() {
            apply_instruction_forced(&mut amps, inst);
        }
        assert_states_match(&amps, &expected, &format!("{context}: threaded"));
    }

    /// Per-instruction dispatch mirroring `Statevector::apply`, but with
    /// the forced 4-worker policy and a tiny threshold.
    fn apply_instruction_forced(amps: &mut [C64], inst: &qcir::Instruction) {
        let th = forced();
        let bit = |i: usize| 1usize << inst.qubits()[i].index();
        match inst.gate() {
            Gate::I => {}
            Gate::X => apply_mcx(amps, th, 0, bit(0)),
            Gate::Y => apply_anti1(amps, th, bit(0), -C64::I, C64::I),
            Gate::Z => apply_diag1(amps, th, bit(0), C64::ONE, -C64::ONE),
            Gate::S => apply_diag1(amps, th, bit(0), C64::ONE, C64::I),
            Gate::Sdg => apply_diag1(amps, th, bit(0), C64::ONE, -C64::I),
            Gate::T => apply_diag1(
                amps,
                th,
                bit(0),
                C64::ONE,
                C64::cis(std::f64::consts::FRAC_PI_4),
            ),
            Gate::Tdg => apply_diag1(
                amps,
                th,
                bit(0),
                C64::ONE,
                C64::cis(-std::f64::consts::FRAC_PI_4),
            ),
            Gate::P(a) => apply_diag1(amps, th, bit(0), C64::ONE, C64::cis(*a)),
            Gate::Rz(a) => apply_diag1(amps, th, bit(0), C64::cis(-a / 2.0), C64::cis(a / 2.0)),
            Gate::CX => apply_mcx(amps, th, bit(0), bit(1)),
            Gate::CCX => apply_mcx(amps, th, bit(0) | bit(1), bit(2)),
            Gate::Mcx(_) => {
                let q = inst.qubits();
                let cmask: usize = q[..q.len() - 1].iter().map(|q| 1usize << q.index()).sum();
                apply_mcx(amps, th, cmask, 1usize << q[q.len() - 1].index());
            }
            Gate::CZ => apply_phase(amps, th, bit(0) | bit(1), 0, -C64::ONE),
            Gate::CP(a) => apply_phase(amps, th, bit(0) | bit(1), 0, C64::cis(*a)),
            Gate::CRz(a) => {
                apply_phase(amps, th, bit(0), bit(1), C64::cis(-a / 2.0));
                apply_phase(amps, th, bit(0) | bit(1), 0, C64::cis(a / 2.0));
            }
            Gate::Swap => apply_swap(amps, th, 0, bit(0), bit(1)),
            Gate::CSwap => apply_swap(amps, th, bit(0), bit(1), bit(2)),
            Gate::CY | Gate::CH => apply_2q(amps, th, bit(0), bit(1), &gate_matrix(inst.gate())),
            gate if gate.arity() == 1 => {
                apply_1q(amps, th, bit(0), Mat2::from_matrix(&gate_matrix(gate)))
            }
            gate => {
                let bits: Vec<usize> = inst.qubits().iter().map(|q| 1usize << q.index()).collect();
                apply_kq(amps, th, &bits, &gate_matrix(gate));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn kernels_match_naive_reference_on_random_circuits(
            n in 2u32..=10,
            gates in 1usize..=40,
            seed in 0u64..1 << 32,
        ) {
            let circuit = full_pool_circuit(n, gates, seed);
            check_engine_matches_reference(&circuit, &format!("n={n} seed={seed}"));
        }

        #[test]
        fn kernels_match_reference_on_reversible_circuits(
            n in 3u32..=9,
            gates in 1usize..=30,
            seed in 0u64..1 << 32,
        ) {
            let circuit =
                qcir::random::random_reversible(&RandomCircuitConfig::new(n, gates, seed));
            check_engine_matches_reference(&circuit, &format!("rev n={n} seed={seed}"));
        }
    }

    #[test]
    fn kernels_cover_every_gate_individually() {
        // One instruction per gate variant on an interesting initial
        // state, against the reference.
        let n = 5u32;
        let mut prep = Circuit::new(n);
        for q in 0..n {
            prep.h(q).t(q);
        }
        prep.cx(0, 1).cx(2, 3).cz(1, 4);
        let gates: Vec<(Gate, Vec<u32>)> = vec![
            (Gate::X, vec![3]),
            (Gate::Y, vec![1]),
            (Gate::Z, vec![0]),
            (Gate::H, vec![4]),
            (Gate::S, vec![2]),
            (Gate::Sdg, vec![2]),
            (Gate::T, vec![0]),
            (Gate::Tdg, vec![1]),
            (Gate::Sx, vec![3]),
            (Gate::Sxdg, vec![3]),
            (Gate::Rx(0.7), vec![2]),
            (Gate::Ry(-1.1), vec![0]),
            (Gate::Rz(2.2), vec![4]),
            (Gate::P(0.9), vec![1]),
            (Gate::U(0.3, 0.5, -0.7), vec![2]),
            (Gate::CX, vec![4, 0]),
            (Gate::CY, vec![0, 3]),
            (Gate::CZ, vec![2, 4]),
            (Gate::CH, vec![1, 2]),
            (Gate::CP(0.4), vec![3, 1]),
            (Gate::CRz(-0.6), vec![0, 4]),
            (Gate::Swap, vec![1, 3]),
            (Gate::CCX, vec![2, 0, 4]),
            (Gate::CSwap, vec![4, 2, 0]),
            (Gate::Mcx(3), vec![0, 1, 2, 3]),
            (Gate::Mcx(4), vec![0, 1, 2, 3, 4]),
        ];
        for (gate, wires) in gates {
            let mut c = prep.clone();
            c.append(gate.clone(), &wires).unwrap();
            check_engine_matches_reference(&c, &format!("gate {gate}"));
        }
    }

    #[test]
    fn kernels_threaded_pair_slabs_cover_top_bit_targets() {
        // Gates on the top wires force the pair-slab driver (aligned
        // chunking cannot split a block as large as the array).
        let n = 8u32;
        let mut c = Circuit::new(n);
        c.h(n - 1)
            .t(n - 1)
            .cx(n - 2, n - 1)
            .x(n - 1)
            .ccx(0, n - 2, n - 1)
            .u(0.3, 0.2, 0.1, n - 2)
            .swap(n - 2, n - 1)
            .cz(n - 1, 0);
        check_engine_matches_reference(&c, "top-bit targets");
    }

    #[test]
    fn kernels_submask_enumeration_visits_exactly_the_submasks() {
        let mut seen = Vec::new();
        for_each_submask(0b1010, |x| seen.push(x));
        assert_eq!(seen, vec![0b0000, 0b0010, 0b1000, 0b1010]);
        let mut zero = Vec::new();
        for_each_submask(0, |x| zero.push(x));
        assert_eq!(zero, vec![0]);
    }

    #[test]
    fn kernels_chunk_plan_respects_alignment_and_threshold() {
        let th = Threading {
            workers: 8,
            min_amps: 16,
        };
        // Inline below the threshold.
        assert_eq!(plan_chunks(8, 1, th), None);
        // Aligned chunking: 256 amps, align 4 → 8 chunks of 32.
        assert_eq!(plan_chunks(256, 4, th), Some(32));
        // Alignment covering half the array: only two chunks possible.
        assert_eq!(plan_chunks(256, 128, th), Some(128));
        // Alignment covering the whole array: inline.
        assert_eq!(plan_chunks(256, 256, th), None);
        // Single worker: inline.
        assert_eq!(plan_chunks(256, 4, Threading::single()), None);
    }

    #[test]
    fn kernels_spot_check_20q_clifford_t() {
        let circuit = full_pool_circuit(20, 120, 0xDAC2025);
        let mut expected = zero_state(20);
        reference::apply_circuit(&mut expected, &circuit);
        let engine = Statevector::from_circuit(&circuit).unwrap();
        assert_states_match(engine.amplitudes(), &expected, "20q spot check");
        assert!((engine.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kernels_smoke_27q_exercises_raised_cap() {
        // 2²⁷ amplitudes (2 GiB): prepare |1…⟩ on the top wire, spread
        // qubit 0, and entangle across the register — checks the raised
        // cap end to end without a full reference replay.
        let n = 27u32;
        let mut c = Circuit::new(n);
        c.x(n - 1).h(0).cx(0, n - 1).t(0).z(n - 1);
        let sv = Statevector::from_circuit(&c).unwrap();
        let top = 1usize << (n - 1);
        // cx(0, top) on (|0⟩+|1⟩)|1_top⟩ flips the top bit when qubit 0
        // is 1: outcomes |0…01⟩ (top cleared... qubit0 set) and |10…0⟩.
        let p_top_only = sv.probability(top);
        let p_low_only = sv.probability(1);
        assert!((p_top_only - 0.5).abs() < 1e-9, "p(top)={p_top_only}");
        assert!((p_low_only - 0.5).abs() < 1e-9, "p(low)={p_low_only}");
        assert!((sv.norm() - 1.0).abs() < 1e-9);
    }
}
