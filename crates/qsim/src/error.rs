//! Simulator error types.

use std::fmt;

/// Errors raised by the statevector simulator and samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A register exceeded the dense-simulation limit.
    TooManyQubits {
        /// Requested register size.
        requested: u32,
        /// Supported maximum.
        max: u32,
    },
    /// A circuit referenced more qubits than the state holds.
    QubitMismatch {
        /// Qubits required by the circuit.
        circuit: u32,
        /// Qubits available in the state.
        state: u32,
    },
    /// A state-construction argument was invalid.
    InvalidState(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyQubits { requested, max } => {
                write!(
                    f,
                    "register of {requested} qubits exceeds simulator limit of {max}"
                )
            }
            SimError::QubitMismatch { circuit, state } => write!(
                f,
                "circuit needs {circuit} qubits but state has only {state}"
            ),
            SimError::InvalidState(message) => write!(f, "invalid state: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_numbers() {
        let e = SimError::TooManyQubits {
            requested: 40,
            max: 26,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("26"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
