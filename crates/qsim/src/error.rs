//! Simulator error types.

use std::fmt;

/// Errors raised by the statevector simulator and samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A register exceeded the dense-simulation limit.
    TooManyQubits {
        /// Requested register size.
        requested: u32,
        /// Supported maximum.
        max: u32,
    },
    /// A circuit referenced more qubits than the state holds.
    QubitMismatch {
        /// Qubits required by the circuit.
        circuit: u32,
        /// Qubits available in the state.
        state: u32,
    },
    /// A state-construction argument was invalid.
    InvalidState(String),
    /// An out-of-core column's live shard count exceeded its budget —
    /// the circuit branched the basis column into more amplitude
    /// support than the configured memory/disk envelope allows.
    ShardBudgetExceeded {
        /// Live shards the next allocation would have required.
        shards: usize,
        /// Configured shard budget.
        max: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyQubits { requested, max } => {
                write!(
                    f,
                    "register of {requested} qubits exceeds simulator limit of {max}"
                )
            }
            SimError::QubitMismatch { circuit, state } => write!(
                f,
                "circuit needs {circuit} qubits but state has only {state}"
            ),
            SimError::InvalidState(message) => write!(f, "invalid state: {message}"),
            SimError::ShardBudgetExceeded { shards, max } => write!(
                f,
                "basis column branched into {shards} shards, over the budget of {max}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_numbers() {
        // The advertised cap must derive from the one source of truth,
        // `statevector::MAX_QUBITS`, so a cap bump cannot drift.
        use crate::statevector::MAX_QUBITS;
        let e = SimError::TooManyQubits {
            requested: MAX_QUBITS + 12,
            max: MAX_QUBITS,
        };
        assert!(e.to_string().contains(&(MAX_QUBITS + 12).to_string()));
        assert!(e.to_string().contains(&MAX_QUBITS.to_string()));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
