//! Device (backend) models.
//!
//! A [`Device`] bundles what a compiler and a noisy simulator need to know
//! about a quantum computer: qubit count, coupling map (which pairs support
//! two-qubit gates), native basis gates and a [`NoiseModel`].
//!
//! [`Device::fake_valencia`] mirrors the 5-qubit `ibmq_valencia` machine
//! behind Qiskit's `FakeValencia`, which the paper uses for all
//! experiments. The paper also runs 7–12 qubit RevLib benchmarks through
//! that backend; [`Device::fake_valencia_extended`] makes the necessary
//! extension explicit by tiling the same error rates over a larger
//! heavy-hex-like topology (see DESIGN.md §2).

use crate::noise::{NoiseModel, ReadoutError};
use serde::{Deserialize, Serialize};

/// Names of native basis gates a device executes directly.
pub type BasisGates = Vec<&'static str>;

/// A quantum device model.
///
/// # Example
///
/// ```
/// use qsim::Device;
///
/// let dev = Device::fake_valencia();
/// assert_eq!(dev.num_qubits(), 5);
/// assert!(dev.are_coupled(0, 1));
/// assert!(!dev.are_coupled(0, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    name: String,
    num_qubits: u32,
    coupling: Vec<(u32, u32)>,
    basis_gates: Vec<String>,
    noise: NoiseModel,
}

impl Device {
    /// Creates a device from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the coupling map references qubits out of range.
    pub fn new(
        name: impl Into<String>,
        num_qubits: u32,
        coupling: Vec<(u32, u32)>,
        basis_gates: BasisGates,
        noise: NoiseModel,
    ) -> Self {
        for &(a, b) in &coupling {
            assert!(
                a < num_qubits && b < num_qubits && a != b,
                "coupling edge ({a},{b}) invalid for {num_qubits} qubits"
            );
        }
        Device {
            name: name.into(),
            num_qubits,
            coupling,
            basis_gates: basis_gates.into_iter().map(String::from).collect(),
            noise,
        }
    }

    /// The 5-qubit `ibmq_valencia` model (T-shaped topology):
    ///
    /// ```text
    /// 0 — 1 — 2
    ///     |
    ///     3
    ///     |
    ///     4
    /// ```
    ///
    /// Error rates are calibrated so that the *benchmark-level accuracy*
    /// of the paper's Table I is reproduced (original-circuit accuracy
    /// ≈ 0.87–0.99 across 4–12 qubit RevLib circuits): ~4.5·10⁻⁴
    /// single-qubit error, ~2.5·10⁻³ multi-qubit gate error, ~0.6%
    /// readout error. These are lower than the physical `ibmq_valencia`
    /// calibration because the paper's reported accuracies imply noise at
    /// the MCT-gate level (each multi-controlled Toffoli counted as one
    /// gate) rather than at the decomposed-CX level — see EXPERIMENTS.md.
    pub fn fake_valencia() -> Self {
        Device::new(
            "fake_valencia",
            5,
            vec![(0, 1), (1, 2), (1, 3), (3, 4)],
            vec!["id", "rz", "sx", "x", "cx"],
            NoiseModel::builder()
                .one_qubit_error(4.5e-4)
                .two_qubit_error(2.5e-3)
                .readout_errors(vec![
                    ReadoutError {
                        p1_given_0: 0.005,
                        p0_given_1: 0.007,
                    },
                    ReadoutError {
                        p1_given_0: 0.006,
                        p0_given_1: 0.008,
                    },
                    ReadoutError {
                        p1_given_0: 0.004,
                        p0_given_1: 0.006,
                    },
                    ReadoutError {
                        p1_given_0: 0.006,
                        p0_given_1: 0.009,
                    },
                    ReadoutError {
                        p1_given_0: 0.005,
                        p0_given_1: 0.007,
                    },
                ])
                .build(),
        )
    }

    /// A FakeValencia-style device widened to `num_qubits` wires on a
    /// ladder (heavy-hex-like) coupling map, reusing the Valencia noise
    /// rates. This is the explicit substitution that lets 7–12 qubit RevLib
    /// benchmarks run under "FakeValencia noise" as the paper reports.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits < 2`.
    pub fn fake_valencia_extended(num_qubits: u32) -> Self {
        assert!(num_qubits >= 2, "extended device needs at least 2 qubits");
        let mut coupling: Vec<(u32, u32)> = (0..num_qubits - 1).map(|i| (i, i + 1)).collect();
        // Ladder rungs every third qubit add routing shortcuts like the
        // heavy-hex pattern.
        for i in (0..num_qubits.saturating_sub(3)).step_by(3) {
            coupling.push((i, i + 3));
        }
        let valencia = Device::fake_valencia();
        Device::new(
            format!("fake_valencia_ext{num_qubits}"),
            num_qubits,
            coupling,
            vec!["id", "rz", "sx", "x", "cx"],
            valencia.noise,
        )
    }

    /// An all-to-all noiseless device — the "algorithm view" used when a
    /// circuit is simulated without hardware constraints.
    pub fn ideal(num_qubits: u32) -> Self {
        let mut coupling = Vec::new();
        for a in 0..num_qubits {
            for b in a + 1..num_qubits {
                coupling.push((a, b));
            }
        }
        Device::new(
            format!("ideal{num_qubits}"),
            num_qubits,
            coupling,
            vec!["id", "rz", "sx", "x", "cx"],
            NoiseModel::ideal(),
        )
    }

    /// A linear nearest-neighbour device with the given noise model.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits < 2`.
    pub fn linear(num_qubits: u32, noise: NoiseModel) -> Self {
        assert!(num_qubits >= 2, "linear device needs at least 2 qubits");
        Device::new(
            format!("linear{num_qubits}"),
            num_qubits,
            (0..num_qubits - 1).map(|i| (i, i + 1)).collect(),
            vec!["id", "rz", "sx", "x", "cx"],
            noise,
        )
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Undirected coupling edges.
    pub fn coupling(&self) -> &[(u32, u32)] {
        &self.coupling
    }

    /// Native basis gate names.
    pub fn basis_gates(&self) -> Vec<&str> {
        self.basis_gates.iter().map(String::as_str).collect()
    }

    /// The device noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Replaces the noise model (e.g. to study noiseless routing).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// `true` if a two-qubit gate can act directly on `(a, b)`.
    pub fn are_coupled(&self, a: u32, b: u32) -> bool {
        self.coupling
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Adjacency list representation of the coupling map.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.num_qubits as usize];
        for &(a, b) in &self.coupling {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valencia_topology() {
        let dev = Device::fake_valencia();
        assert_eq!(dev.num_qubits(), 5);
        assert!(dev.are_coupled(0, 1));
        assert!(dev.are_coupled(1, 0));
        assert!(dev.are_coupled(1, 3));
        assert!(dev.are_coupled(3, 4));
        assert!(!dev.are_coupled(0, 2));
        assert!(!dev.are_coupled(2, 4));
        assert!(dev.noise().is_noisy());
    }

    #[test]
    fn extended_device_is_connected() {
        let dev = Device::fake_valencia_extended(12);
        assert_eq!(dev.num_qubits(), 12);
        // Line edges guarantee connectivity.
        for i in 0..11 {
            assert!(dev.are_coupled(i, i + 1));
        }
        assert!(dev.noise().is_noisy());
        assert!(dev.name().contains("12"));
    }

    #[test]
    fn ideal_device_full_coupling_no_noise() {
        let dev = Device::ideal(4);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(dev.are_coupled(a, b));
                }
            }
        }
        assert!(!dev.noise().is_noisy());
    }

    #[test]
    fn adjacency_mirrors_edges() {
        let dev = Device::fake_valencia();
        let adj = dev.adjacency();
        assert_eq!(adj[1].len(), 3); // 1 connects to 0, 2, 3
        assert_eq!(adj[4], vec![3]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn rejects_bad_coupling() {
        Device::new("bad", 2, vec![(0, 5)], vec!["cx"], NoiseModel::ideal());
    }

    #[test]
    fn with_noise_overrides() {
        let dev = Device::fake_valencia().with_noise(NoiseModel::ideal());
        assert!(!dev.noise().is_noisy());
    }
}
