//! Shot-based sampling with optional noise.

use crate::error::SimError;
use crate::noise::NoiseModel;
use crate::statevector::Statevector;
use qcir::{Circuit, Gate, Instruction, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Measurement counts: bitstring → number of shots.
///
/// Bitstrings print qubit 0 rightmost (Qiskit convention): on three qubits
/// outcome index `0b110` is the string `"110"` meaning `q2=1, q1=1, q0=0`.
///
/// # Example
///
/// ```
/// use qsim::sampler::Counts;
///
/// let mut counts = Counts::new(2);
/// counts.record(0b01, 3);
/// counts.record(0b10, 1);
/// assert_eq!(counts.total(), 4);
/// assert_eq!(counts.get("01"), 3);
/// assert!((counts.probability(0b01) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counts {
    num_bits: u32,
    table: BTreeMap<usize, u64>,
}

impl Counts {
    /// Creates an empty counts table over `num_bits` measured bits.
    pub fn new(num_bits: u32) -> Self {
        Counts {
            num_bits,
            table: BTreeMap::new(),
        }
    }

    /// Number of measured bits per outcome.
    pub fn num_bits(&self) -> u32 {
        self.num_bits
    }

    /// Adds `shots` observations of the outcome `index`.
    pub fn record(&mut self, index: usize, shots: u64) {
        *self.table.entry(index).or_insert(0) += shots;
    }

    /// Count for a raw outcome index.
    pub fn count(&self, index: usize) -> u64 {
        self.table.get(&index).copied().unwrap_or(0)
    }

    /// Count for a bitstring key such as `"011"` (qubit 0 rightmost).
    ///
    /// Returns 0 for malformed keys.
    pub fn get(&self, bitstring: &str) -> u64 {
        match usize::from_str_radix(bitstring, 2) {
            Ok(index) => self.count(index),
            Err(_) => 0,
        }
    }

    /// Total number of shots recorded.
    pub fn total(&self) -> u64 {
        self.table.values().sum()
    }

    /// Empirical probability of outcome `index`.
    pub fn probability(&self, index: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(index) as f64 / total as f64
        }
    }

    /// Iterates over `(index, count)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.table.iter().map(|(&k, &v)| (k, v))
    }

    /// Formats an outcome index as a bitstring (qubit 0 rightmost).
    pub fn bitstring(&self, index: usize) -> String {
        (0..self.num_bits)
            .rev()
            .map(|b| if index >> b & 1 == 1 { '1' } else { '0' })
            .collect()
    }

    /// The most frequent outcome, if any shots were recorded.
    pub fn mode(&self) -> Option<usize> {
        self.table
            .iter()
            .max_by_key(|(_, &count)| count)
            .map(|(&index, _)| index)
    }

    /// Converts to a `bitstring → count` map (for display/serialization).
    pub fn to_string_map(&self) -> BTreeMap<String, u64> {
        self.table
            .iter()
            .map(|(&index, &count)| (self.bitstring(index), count))
            .collect()
    }

    /// Marginalizes onto the given qubits (in the given order: entry 0 of
    /// `keep` becomes bit 0 of the marginal outcome).
    pub fn marginal(&self, keep: &[u32]) -> Counts {
        let mut out = Counts::new(keep.len() as u32);
        for (&index, &count) in &self.table {
            let mut m = 0usize;
            for (pos, &q) in keep.iter().enumerate() {
                if index >> q & 1 == 1 {
                    m |= 1 << pos;
                }
            }
            out.record(m, count);
        }
        out
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (index, count)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "\"{}\": {}", self.bitstring(index), count)?;
        }
        write!(f, "}}")
    }
}

/// Shot-based circuit sampler.
///
/// Without noise, the final statevector is computed once and sampled
/// `shots` times. With noise, each shot runs its own stochastic Pauli
/// trajectory (gate errors injected per the model) followed by readout
/// corruption — the standard Monte-Carlo treatment of a noisy backend.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qsim::{Sampler, noise::NoiseModel};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let sampler = Sampler::new(1000).with_seed(7);
/// let counts = sampler.run_ideal(&bell)?;
/// assert_eq!(counts.total(), 1000);
/// // Only 00 and 11 appear without noise.
/// assert_eq!(counts.get("01") + counts.get("10"), 0);
/// # Ok::<(), qsim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sampler {
    shots: u64,
    seed: Option<u64>,
}

impl Sampler {
    /// Creates a sampler that takes `shots` measurements per run.
    pub fn new(shots: u64) -> Self {
        Sampler { shots, seed: None }
    }

    /// Fixes the RNG seed for reproducible experiments.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Number of shots per run.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    fn rng(&self) -> StdRng {
        match self.seed {
            Some(seed) => StdRng::seed_from_u64(seed),
            None => StdRng::from_entropy(),
        }
    }

    /// Samples the circuit without noise.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures (register too large, wire mismatch).
    pub fn run_ideal(&self, circuit: &Circuit) -> Result<Counts, SimError> {
        let sv = Statevector::from_circuit(circuit)?;
        let mut rng = self.rng();
        let mut counts = Counts::new(circuit.num_qubits());
        for _ in 0..self.shots {
            counts.record(sv.sample_once(&mut rng), 1);
        }
        Ok(counts)
    }

    /// Samples the circuit under the given noise model (one trajectory per
    /// shot).
    ///
    /// For *classical* circuits (X/CX/CCX/MCX/SWAP/CSWAP only) a fast
    /// exact path is used: on a computational basis state a Pauli-Z error
    /// only contributes a global phase and X/Y both act as bit flips, so
    /// each trajectory reduces to classical bit propagation with random
    /// flips. This is not an approximation — it is the same distribution
    /// the statevector trajectory would sample, computed without the
    /// exponential state.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn run_noisy(&self, circuit: &Circuit, noise: &NoiseModel) -> Result<Counts, SimError> {
        if !noise.is_noisy() {
            return self.run_ideal(circuit);
        }
        let mut rng = self.rng();
        let mut counts = Counts::new(circuit.num_qubits());
        if circuit.iter().all(|i| i.gate().is_classical()) {
            for _ in 0..self.shots {
                let outcome = run_classical_trajectory(circuit, noise, &mut rng);
                counts.record(outcome, 1);
            }
            return Ok(counts);
        }
        for _ in 0..self.shots {
            let outcome = run_trajectory(circuit, noise, &mut rng)?;
            counts.record(outcome, 1);
        }
        Ok(counts)
    }
}

/// One classical bit-flip trajectory: propagate a basis index through the
/// classical gates, injecting an X flip wherever the noise model draws an
/// X or Y Pauli (Z is measurement-invisible on basis states).
fn run_classical_trajectory<R: Rng + ?Sized>(
    circuit: &Circuit,
    noise: &NoiseModel,
    rng: &mut R,
) -> usize {
    use crate::noise::PauliKind;
    let mut state = 0usize;
    for inst in circuit.iter() {
        let qs = inst.qubits();
        match inst.gate() {
            Gate::I => {}
            Gate::X => state ^= 1 << qs[0].index(),
            Gate::CX => {
                if state >> qs[0].index() & 1 == 1 {
                    state ^= 1 << qs[1].index();
                }
            }
            Gate::CCX => {
                if state >> qs[0].index() & 1 == 1 && state >> qs[1].index() & 1 == 1 {
                    state ^= 1 << qs[2].index();
                }
            }
            Gate::Mcx(_) => {
                let (controls, target) = qs.split_at(qs.len() - 1);
                if controls.iter().all(|q| state >> q.index() & 1 == 1) {
                    state ^= 1 << target[0].index();
                }
            }
            Gate::Swap => {
                let a = state >> qs[0].index() & 1;
                let b = state >> qs[1].index() & 1;
                if a != b {
                    state ^= (1 << qs[0].index()) | (1 << qs[1].index());
                }
            }
            Gate::CSwap => {
                if state >> qs[0].index() & 1 == 1 {
                    let a = state >> qs[1].index() & 1;
                    let b = state >> qs[2].index() & 1;
                    if a != b {
                        state ^= (1 << qs[1].index()) | (1 << qs[2].index());
                    }
                }
            }
            // is_classical() guarantees we never get here.
            other => unreachable!("non-classical gate {other} on classical path"),
        }
        if let Some((operand, pauli)) = noise.sample_gate_error(inst.gate().arity(), rng) {
            match pauli {
                PauliKind::X | PauliKind::Y => state ^= 1 << qs[operand].index(),
                PauliKind::Z => {}
            }
        }
    }
    noise.corrupt_readout(state, circuit.num_qubits(), rng)
}

/// Runs a single noisy trajectory and measures all qubits.
fn run_trajectory<R: Rng + ?Sized>(
    circuit: &Circuit,
    noise: &NoiseModel,
    rng: &mut R,
) -> Result<usize, SimError> {
    let mut sv = Statevector::zero(circuit.num_qubits())?;
    for inst in circuit.iter() {
        sv.apply(inst)?;
        if let Some((operand, pauli)) = noise.sample_gate_error(inst.gate().arity(), rng) {
            let q = inst.qubits()[operand];
            let err = Instruction::new(pauli.gate(), vec![Qubit::new(q.raw())])
                .expect("pauli instructions are valid");
            sv.apply(&err)?;
        }
    }
    let outcome = sv.sample_once(rng);
    Ok(noise.corrupt_readout(outcome, circuit.num_qubits(), rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn counts_accounting() {
        let mut counts = Counts::new(3);
        counts.record(0b101, 10);
        counts.record(0b101, 5);
        counts.record(0b010, 5);
        assert_eq!(counts.total(), 20);
        assert_eq!(counts.count(0b101), 15);
        assert_eq!(counts.get("101"), 15);
        assert_eq!(counts.probability(0b010), 0.25);
        assert_eq!(counts.mode(), Some(0b101));
        assert_eq!(counts.bitstring(0b101), "101");
    }

    #[test]
    fn counts_display_qiskit_style() {
        let mut counts = Counts::new(2);
        counts.record(0b01, 95);
        counts.record(0b00, 5);
        let s = counts.to_string();
        assert!(s.contains("\"01\": 95"));
        assert!(s.contains("\"00\": 5"));
    }

    #[test]
    fn marginal_projects_bits() {
        let mut counts = Counts::new(3);
        counts.record(0b110, 4);
        counts.record(0b010, 6);
        let m = counts.marginal(&[1]);
        assert_eq!(m.num_bits(), 1);
        assert_eq!(m.count(1), 10);
        let m2 = counts.marginal(&[2, 1]);
        // keep[0]=q2 becomes bit 0, keep[1]=q1 becomes bit 1.
        assert_eq!(m2.count(0b10), 6); // q2=0 → bit0=0, q1=1 → bit1=1
        assert_eq!(m2.count(0b11), 4);
    }

    #[test]
    fn ideal_bell_splits_evenly() {
        let counts = Sampler::new(4000).with_seed(11).run_ideal(&bell()).unwrap();
        assert_eq!(counts.total(), 4000);
        assert_eq!(counts.get("01"), 0);
        assert_eq!(counts.get("10"), 0);
        let frac = counts.probability(0b00);
        assert!((frac - 0.5).abs() < 0.05);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let a = Sampler::new(200).with_seed(3).run_ideal(&bell()).unwrap();
        let b = Sampler::new(200).with_seed(3).run_ideal(&bell()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn noiseless_model_short_circuits() {
        let counts = Sampler::new(100)
            .with_seed(5)
            .run_noisy(&bell(), &NoiseModel::ideal())
            .unwrap();
        assert_eq!(counts.get("01") + counts.get("10"), 0);
    }

    #[test]
    fn noise_leaks_into_forbidden_outcomes() {
        let noise = NoiseModel::builder()
            .one_qubit_error(0.05)
            .two_qubit_error(0.05)
            .readout_error(0.05)
            .build();
        let counts = Sampler::new(2000)
            .with_seed(13)
            .run_noisy(&bell(), &noise)
            .unwrap();
        // With strong noise, odd-parity outcomes must appear.
        assert!(counts.get("01") + counts.get("10") > 0);
        assert_eq!(counts.total(), 2000);
    }

    #[test]
    fn classical_fast_path_matches_statevector_path() {
        // A classical circuit forced down the statevector path (by adding
        // a trailing pair of H gates that cancel... no — H is not
        // classical, and HH ≠ identity per-instruction). Instead compare
        // the classical circuit against the same circuit with the final
        // gate expressed as SWAP·SWAP (still classical) vs an equivalent
        // with a CZ no-op (quantum path); CZ on basis states is invisible.
        let mut classical = Circuit::new(3);
        classical.x(0).cx(0, 1).ccx(0, 1, 2);
        let mut quantum = classical.clone();
        quantum.cz(0, 1); // diagonal: does not change outcome statistics

        let noise = NoiseModel::builder()
            .one_qubit_error(0.02)
            .two_qubit_error(0.05)
            .readout_error(0.02)
            .build();
        let a = Sampler::new(4000)
            .with_seed(21)
            .run_noisy(&classical, &noise)
            .unwrap();
        let b = Sampler::new(4000)
            .with_seed(22)
            .run_noisy(&quantum, &noise)
            .unwrap();
        // Compare the dominant outcome mass — both should be |111⟩-heavy
        // with similar leakage. (The CZ adds one more noisy gate, so
        // tolerance is loose.)
        let pa = a.probability(0b111);
        let pb = b.probability(0b111);
        assert!((pa - pb).abs() < 0.08, "pa={pa} pb={pb}");
    }

    #[test]
    fn identity_circuit_with_readout_noise_mostly_zero() {
        let c = Circuit::new(3);
        let noise = NoiseModel::builder().readout_error(0.02).build();
        let counts = Sampler::new(1000)
            .with_seed(17)
            .run_noisy(&c, &noise)
            .unwrap();
        assert!(counts.probability(0) > 0.9);
        assert!(counts.probability(0) < 1.0);
    }
}
