//! Full-unitary extraction and circuit equivalence checking.
//!
//! Used by the test suites to *prove* that TetrisLock's obfuscation and
//! de-obfuscation preserve functionality: `recombine(split(obfuscate(C)))`
//! must implement the same unitary as `C` (up to global phase and, after
//! routing, up to a known output permutation).

use crate::error::SimError;
use crate::matrix::Matrix;
use crate::statevector::Statevector;
use qcir::Circuit;

/// Maximum register size for dense unitary extraction.
///
/// A 12-qubit unitary is `2¹² × 2¹²` complex entries ≈ 256 MiB and
/// `O(4ⁿ·gates)` time to extract — the hard ceiling of the dense path.
/// Oversized registers fail fast with a typed
/// [`SimError::TooManyQubits`] *before* any allocation. The `qverify`
/// crate re-exports this constant and uses it to route larger circuits
/// onto its stabilizer-tableau and random-stimulus tiers.
pub const MAX_UNITARY_QUBITS: u32 = 12;

/// Computes the full `2ⁿ × 2ⁿ` unitary implemented by `circuit` by applying
/// it to every basis state (columns of the matrix).
///
/// # Errors
///
/// Returns [`SimError::TooManyQubits`] if the register exceeds
/// [`MAX_UNITARY_QUBITS`].
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qsim::unitary::circuit_unitary;
///
/// let mut c = Circuit::new(1);
/// c.h(0).h(0);
/// let u = circuit_unitary(&c)?;
/// assert!(u.approx_eq(&qsim::matrix::Matrix::identity(2), 1e-12));
/// # Ok::<(), qsim::SimError>(())
/// ```
pub fn circuit_unitary(circuit: &Circuit) -> Result<Matrix, SimError> {
    let n = circuit.num_qubits();
    if n > MAX_UNITARY_QUBITS {
        return Err(SimError::TooManyQubits {
            requested: n,
            max: MAX_UNITARY_QUBITS,
        });
    }
    let dim = 1usize << n;
    let mut u = Matrix::zeros(dim);
    for col in 0..dim {
        let mut sv = Statevector::basis(n, col)?;
        sv.apply_circuit(circuit)?;
        for (row, amp) in sv.amplitudes().iter().enumerate() {
            u.set(row, col, *amp);
        }
    }
    Ok(u)
}

/// `true` if the two circuits implement the same unitary up to global
/// phase.
///
/// # Errors
///
/// Propagates extraction failures (register too large or mismatched).
pub fn equivalent_up_to_phase(a: &Circuit, b: &Circuit, eps: f64) -> Result<bool, SimError> {
    if a.num_qubits() != b.num_qubits() {
        return Ok(false);
    }
    let ua = circuit_unitary(a)?;
    let ub = circuit_unitary(b)?;
    Ok(ua.approx_eq_up_to_phase(&ub, eps))
}

/// `true` if the circuits act identically on the all-zeros input (weaker
/// than full equivalence; what shot-based experiments observe).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn same_output_on_zero(a: &Circuit, b: &Circuit, eps: f64) -> Result<bool, SimError> {
    let sa = Statevector::from_circuit(a)?;
    let sb = Statevector::from_circuit(b)?;
    if sa.num_qubits() != sb.num_qubits() {
        return Ok(false);
    }
    Ok(sa.approx_eq_up_to_phase(&sb, eps))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn identity_circuit_gives_identity_unitary() {
        let c = Circuit::new(2);
        let u = circuit_unitary(&c).unwrap();
        assert!(u.approx_eq(&Matrix::identity(4), EPS));
    }

    #[test]
    fn hh_is_identity() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert!(equivalent_up_to_phase(&c, &Circuit::new(1), EPS).unwrap());
    }

    #[test]
    fn inverse_composition_is_identity() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).ccx(0, 1, 2).rz(0.7, 0).cx(1, 2).s(0);
        let composed = c.then(&c.inverse()).unwrap();
        assert!(equivalent_up_to_phase(&composed, &Circuit::new(3), EPS).unwrap());
    }

    #[test]
    fn different_circuits_not_equivalent() {
        let mut a = Circuit::new(1);
        a.x(0);
        let mut b = Circuit::new(1);
        b.z(0);
        assert!(!equivalent_up_to_phase(&a, &b, EPS).unwrap());
    }

    #[test]
    fn rz_p_equivalent_up_to_phase() {
        let mut a = Circuit::new(1);
        a.rz(0.9, 0);
        let mut b = Circuit::new(1);
        b.p(0.9, 0);
        assert!(equivalent_up_to_phase(&a, &b, EPS).unwrap());
    }

    #[test]
    fn mismatched_sizes_not_equivalent() {
        let a = Circuit::new(1);
        let b = Circuit::new(2);
        assert!(!equivalent_up_to_phase(&a, &b, EPS).unwrap());
        assert!(!same_output_on_zero(&a, &b, EPS).unwrap());
    }

    #[test]
    fn same_output_is_weaker_than_equivalence() {
        // CZ acts trivially on |00>, so it matches identity on zero but is
        // not the identity unitary.
        let mut a = Circuit::new(2);
        a.cz(0, 1);
        let b = Circuit::new(2);
        assert!(same_output_on_zero(&a, &b, EPS).unwrap());
        // (CZ *is* diagonal with a -1 on |11>, so full equivalence fails.)
        assert!(!equivalent_up_to_phase(&a, &b, EPS).unwrap());
    }

    #[test]
    fn oversized_register_rejected() {
        let c = Circuit::new(MAX_UNITARY_QUBITS + 1);
        assert!(circuit_unitary(&c).is_err());
    }

    #[test]
    fn swap_unitary_is_permutation() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let u = circuit_unitary(&c).unwrap();
        // |01> (index 1) ↔ |10> (index 2)
        assert!((u.get(2, 1).re - 1.0).abs() < EPS);
        assert!((u.get(1, 2).re - 1.0).abs() < EPS);
    }
}
