//! Statevector simulation.
//!
//! The hot path lives in the crate-private `kernels` and `exec`
//! modules: branch-free stride loops that enumerate only the
//! amplitude-group base indices, specialized
//! diagonal/antidiagonal/permutation fast paths, persistent-pool
//! multi-threaded application above [`PARALLEL_MIN_QUBITS`] qubits,
//! and layer-blocked sweeps above [`LAYER_MIN_QUBITS`] qubits (a whole
//! run of cache-block-local gates is applied per pass over the array
//! instead of one pass per gate). [`Statevector::apply_circuit`]
//! additionally runs `qcir`'s single-qubit fusion pre-pass, collapsing
//! runs of adjacent same-wire gates into one kernel application — but
//! only when `qcir`'s structural cost model says the fused kernel is
//! cheaper than the specialized per-gate paths it displaces (see
//! [`ExecConfig`] to pin any of this down, e.g. for benchmarking).

use crate::complex::C64;
use crate::error::SimError;
use crate::exec::{Executor, KernelOp};
use crate::kernels::{Mat2, Threading};
use crate::matrix::{gate_matrix, Matrix};
use qcir::fusion::{
    fused_stream, fused_sweep_cost, fusion_wins, gate_sweep_cost, run_kernel_class, CostRegime,
    FusedOp, KernelClass,
};
use qcir::{Circuit, Gate, Instruction, Qubit};
use rand::Rng;

pub use crate::exec::{BLOCK_QUBITS, LAYER_MIN_QUBITS};
pub use crate::kernels::PARALLEL_MIN_QUBITS;

// Cost-model outcome counters for the fusion gate in
// `apply_circuit_with`; at `QOBS=full` each decision additionally emits
// a `qsim.fusion.decision` event carrying the plan-cost inputs.
static FUSION_ACCEPTED: qobs::Counter = qobs::Counter::new("qsim.fusion.accepted");
static FUSION_REJECTED: qobs::Counter = qobs::Counter::new("qsim.fusion.rejected");
static APPLY_CIRCUITS: qobs::Counter = qobs::Counter::new("qsim.apply_circuit.calls");

/// A pure n-qubit quantum state as 2ⁿ complex amplitudes.
///
/// Amplitude index bit `k` is the state of qubit `k` (little-endian), so
/// `amp[0b10]` on two qubits is the amplitude of `|q1=1, q0=0⟩`. Formatted
/// bitstrings (as produced by [`crate::sampler`]) print qubit 0 rightmost,
/// matching Qiskit's convention.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qsim::Statevector;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let state = Statevector::from_circuit(&bell)?;
/// let probs = state.probabilities();
/// assert!((probs[0] - 0.5).abs() < 1e-12); // |00>
/// assert!((probs[3] - 0.5).abs() < 1e-12); // |11>
/// # Ok::<(), qsim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Statevector {
    num_qubits: u32,
    amps: Vec<C64>,
}

/// Maximum number of qubits the dense simulator accepts (2²⁸ amplitudes
/// ≈ 4 GiB); the paper's circuits use at most 12. Everything deriving a
/// capacity from the simulator — [`SimError::TooManyQubits`], the
/// qverify stimulus tier, the CLI help — must reference this constant
/// rather than repeat the number.
pub const MAX_QUBITS: u32 = 28;

/// Register size at which [`Statevector::apply_circuit`] starts fusing
/// adjacent single-qubit gates; below it the per-run matrix products
/// cost more than the saved passes over a tiny amplitude array.
pub const FUSION_MIN_QUBITS: u32 = 8;

/// Register size at which the fusion cost model switches from the
/// compute-bound to the memory-bound regime (`2²³` amplitudes
/// = 128 MiB, past any last-level cache): below it arithmetic per
/// amplitude decides whether fusing a run wins; above it every pass
/// streams the state from DRAM, so fewer passes always win.
pub const MEM_BOUND_MIN_QUBITS: u32 = 23;

/// The kernel worker count the engine resolves on first use:
/// `QSIM_WORKERS` if set to a positive integer, otherwise
/// `std::thread::available_parallelism`, both clamped to the internal
/// cap of 8 (the kernels are memory-bandwidth-bound beyond that).
/// Memoized — changing the environment variable after the first kernel
/// call has no effect.
///
/// # Example
///
/// ```
/// let workers = qsim::statevector::resolved_workers();
/// assert!((1..=8).contains(&workers));
/// ```
pub fn resolved_workers() -> usize {
    crate::pool::default_workers()
}

/// Execution configuration for the kernel engine.
///
/// The defaults (gate fusion on, auto thread count) are what
/// [`Statevector::apply_circuit`] uses; construct one explicitly only
/// to pin behaviour down, e.g. in benchmarks comparing fused against
/// unfused application.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qsim::statevector::{ExecConfig, Statevector};
///
/// let mut c = Circuit::new(10);
/// for q in 0..10 {
///     c.h(q).t(q).h(q);
/// }
/// let mut fused = Statevector::zero(10)?;
/// fused.apply_circuit_with(&c, &ExecConfig::default())?;
/// let mut unfused = Statevector::zero(10)?;
/// unfused.apply_circuit_with(&c, &ExecConfig::unfused())?;
/// assert!(fused.approx_eq_up_to_phase(&unfused, 1e-12));
/// # Ok::<(), qsim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Fuse runs of adjacent same-wire single-qubit gates into one
    /// kernel application (above [`FUSION_MIN_QUBITS`]), gated per run
    /// by the `qcir::fusion` cost model.
    pub fuse: bool,
    /// Kernel worker threads (`0` = auto-detect from `QSIM_WORKERS` /
    /// `available_parallelism`, capped at 8; threads only engage at
    /// [`PARALLEL_MIN_QUBITS`]+ qubits). See [`resolved_workers`].
    pub threads: usize,
    /// Layer-blocked sweep policy (see [`Blocking`]).
    pub blocking: Blocking,
}

/// Layer-blocked sweep policy: whether consecutive cache-block-local
/// kernel ops are batched and applied block by block in one pass over
/// the amplitude array.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qsim::statevector::{Blocking, ExecConfig, Statevector};
///
/// let mut c = Circuit::new(10);
/// for q in 0..10 {
///     c.h(q).t(q).cx(q, (q + 1) % 10);
/// }
/// let mut auto = Statevector::zero(10)?;
/// auto.apply_circuit_with(&c, &ExecConfig::default())?;
/// let mut forced = Statevector::zero(10)?;
/// forced.apply_circuit_with(
///     &c,
///     &ExecConfig { blocking: Blocking::Force, ..ExecConfig::default() },
/// )?;
/// // Layering never changes the arithmetic, only the sweep order.
/// assert_eq!(auto, forced);
/// # Ok::<(), qsim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Blocking {
    /// Layer sweeps at [`LAYER_MIN_QUBITS`]+ qubits (the default).
    #[default]
    Auto,
    /// Never batch; one full pass per kernel op.
    Off,
    /// Batch at any register size (used by the equivalence suite to
    /// exercise the layered path on small states).
    Force,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            fuse: true,
            threads: 0,
            blocking: Blocking::Auto,
        }
    }
}

impl ExecConfig {
    /// The default configuration with fusion disabled (per-instruction
    /// dispatch; stride kernels, threading, and layer blocking still
    /// apply).
    pub fn unfused() -> Self {
        ExecConfig {
            fuse: false,
            ..ExecConfig::default()
        }
    }
}

impl Statevector {
    /// Creates `|0…0⟩` over `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] beyond [`MAX_QUBITS`].
    pub fn zero(num_qubits: u32) -> Result<Self, SimError> {
        if num_qubits == 0 || num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_QUBITS,
            });
        }
        let mut amps = vec![C64::ZERO; 1usize << num_qubits];
        amps[0] = C64::ONE;
        Ok(Statevector { num_qubits, amps })
    }

    /// Creates the computational basis state `|index⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] for oversized registers or
    /// [`SimError::InvalidState`] if `index` is out of range.
    pub fn basis(num_qubits: u32, index: usize) -> Result<Self, SimError> {
        let mut sv = Statevector::zero(num_qubits)?;
        if index >= sv.amps.len() {
            return Err(SimError::InvalidState(format!(
                "basis index {index} out of range for {num_qubits} qubits"
            )));
        }
        sv.amps[0] = C64::ZERO;
        sv.amps[index] = C64::ONE;
        Ok(sv)
    }

    /// Runs `circuit` on `|0…0⟩` and returns the final state.
    ///
    /// # Errors
    ///
    /// Propagates register-size errors from [`Statevector::zero`].
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, SimError> {
        let mut sv = Statevector::zero(circuit.num_qubits())?;
        sv.apply_circuit(circuit)?;
        Ok(sv)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Raw amplitudes (length `2^num_qubits`).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies every instruction of `circuit` in order, with the
    /// default execution configuration (fusion on, auto threads).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitMismatch`] if the circuit register exceeds
    /// the state's.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        self.apply_circuit_with(circuit, &ExecConfig::default())
    }

    /// Applies `circuit` under an explicit [`ExecConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitMismatch`] if the circuit register exceeds
    /// the state's.
    pub fn apply_circuit_with(
        &mut self,
        circuit: &Circuit,
        config: &ExecConfig,
    ) -> Result<(), SimError> {
        if circuit.num_qubits() > self.num_qubits {
            return Err(SimError::QubitMismatch {
                circuit: circuit.num_qubits(),
                state: self.num_qubits,
            });
        }
        APPLY_CIRCUITS.incr();
        let _span = qobs::span_at(qobs::Level::Full, "qsim.apply_circuit")
            .attr("wires", circuit.num_qubits() as u64)
            .attr("gates", circuit.gate_count());
        let th = Threading::with_workers(config.threads);
        let n = self.num_qubits;
        let layering = match config.blocking {
            Blocking::Off => false,
            Blocking::Force => true,
            Blocking::Auto => n >= LAYER_MIN_QUBITS,
        };
        let regime = if n >= MEM_BOUND_MIN_QUBITS {
            CostRegime::MemoryBound
        } else {
            CostRegime::ComputeBound
        };
        // A run needs at least two single-qubit gates to exist; purely
        // classical circuits (X/CX/CCX/Mcx — the RevLib suite) can't
        // contain one, so skip the stream rewrite and its per-run
        // allocations outright. The count is cached on the circuit, so
        // this costs one integer compare.
        let fusable = circuit.single_qubit_gate_count() >= 2;
        let mut ex = Executor::new(&mut self.amps, th, layering);
        if config.fuse && n >= FUSION_MIN_QUBITS && fusable {
            for op in fused_stream(circuit) {
                match op {
                    FusedOp::Single(inst) => lower_gate(inst.gate(), inst.qubits(), &mut ex),
                    FusedOp::Run(run) => {
                        if let [gate] = run.gates[..] {
                            lower_gate(gate, &[run.qubit], &mut ex);
                            continue;
                        }
                        let accepted = fusion_wins(&run.gates, regime);
                        if accepted {
                            FUSION_ACCEPTED.incr();
                        } else {
                            FUSION_REJECTED.incr();
                        }
                        if qobs::enabled(qobs::Level::Full) {
                            let unfused: f64 =
                                run.gates.iter().map(|g| gate_sweep_cost(g, regime)).sum();
                            qobs::event(
                                "qsim.fusion.decision",
                                &[
                                    ("qubit", qobs::AttrValue::from(run.qubit.index())),
                                    ("run_len", qobs::AttrValue::from(run.gates.len())),
                                    (
                                        "class",
                                        qobs::AttrValue::from(match run_kernel_class(&run.gates) {
                                            KernelClass::Diagonal => "diagonal",
                                            KernelClass::Antidiagonal => "antidiagonal",
                                            KernelClass::General => "general",
                                        }),
                                    ),
                                    (
                                        "regime",
                                        qobs::AttrValue::from(match regime {
                                            CostRegime::ComputeBound => "compute_bound",
                                            CostRegime::MemoryBound => "memory_bound",
                                        }),
                                    ),
                                    (
                                        "fused_cost",
                                        qobs::AttrValue::from(fused_sweep_cost(&run.gates, regime)),
                                    ),
                                    ("unfused_cost", qobs::AttrValue::from(unfused)),
                                    ("accepted", qobs::AttrValue::from(accepted)),
                                ],
                            );
                        }
                        if accepted {
                            let tbit = 1usize << run.qubit.index();
                            let m = compose_run(&run.gates);
                            match run_kernel_class(&run.gates) {
                                KernelClass::Diagonal => {
                                    debug_assert!(m.is_diagonal());
                                    ex.push(KernelOp::Diag1 {
                                        tbit,
                                        d0: m.m00,
                                        d1: m.m11,
                                    });
                                }
                                KernelClass::Antidiagonal => {
                                    debug_assert!(m.is_antidiagonal());
                                    ex.push(KernelOp::Anti1 {
                                        tbit,
                                        a01: m.m01,
                                        a10: m.m10,
                                    });
                                }
                                KernelClass::General => ex.push(KernelOp::Mat1 { tbit, m }),
                            }
                        } else {
                            // The cost model says the specialized
                            // per-gate paths are cheaper than one fused
                            // dense/antidiagonal pass.
                            for gate in &run.gates {
                                lower_gate(gate, &[run.qubit], &mut ex);
                            }
                        }
                    }
                }
            }
        } else {
            for inst in circuit.iter() {
                lower_gate(inst.gate(), inst.qubits(), &mut ex);
            }
        }
        ex.finish();
        Ok(())
    }

    /// Applies a single instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitMismatch`] if an operand is out of range.
    pub fn apply(&mut self, inst: &Instruction) -> Result<(), SimError> {
        self.apply_with(inst, Threading::auto())
    }

    fn apply_with(&mut self, inst: &Instruction, th: Threading) -> Result<(), SimError> {
        for q in inst.qubits() {
            if q.raw() >= self.num_qubits {
                return Err(SimError::QubitMismatch {
                    circuit: q.raw() + 1,
                    state: self.num_qubits,
                });
            }
        }
        let mut ex = Executor::new(&mut self.amps, th, false);
        lower_gate(inst.gate(), inst.qubits(), &mut ex);
        ex.finish();
        Ok(())
    }

    /// Born-rule probabilities of every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability of measuring the given basis index.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// L2 norm of the state (1.0 for any valid state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the states have different sizes.
    pub fn inner(&self, other: &Statevector) -> C64 {
        assert_eq!(self.num_qubits, other.num_qubits, "size mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if the states have different sizes.
    pub fn fidelity(&self, other: &Statevector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Samples one measurement outcome (a basis index) without collapsing
    /// the state.
    pub fn sample_once<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, amp) in self.amps.iter().enumerate() {
            acc += amp.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// `true` if the two states are equal up to a global phase within `eps`.
    pub fn approx_eq_up_to_phase(&self, other: &Statevector, eps: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        let overlap = self.inner(other);
        (overlap.abs() - 1.0).abs() <= eps
            && (self.norm() - 1.0).abs() <= eps
            && (other.norm() - 1.0).abs() <= eps
    }
}

/// Lowers `gate` to its [`KernelOp`] form and pushes it into the
/// executor. Operands must already be validated against the register.
fn lower_gate(gate: &Gate, qubits: &[Qubit], ex: &mut Executor) {
    use std::f64::consts::FRAC_PI_4;
    let bit = |i: usize| 1usize << qubits[i].index();
    match gate {
        Gate::I => {}
        // Permutation gates: pure amplitude swaps.
        Gate::X => ex.push(KernelOp::Mcx {
            cmask: 0,
            tbit: bit(0),
        }),
        Gate::CX => ex.push(KernelOp::Mcx {
            cmask: bit(0),
            tbit: bit(1),
        }),
        Gate::CCX => ex.push(KernelOp::Mcx {
            cmask: bit(0) | bit(1),
            tbit: bit(2),
        }),
        Gate::Mcx(_) => {
            let (controls, target) = qubits.split_at(qubits.len() - 1);
            let cmask: usize = controls.iter().map(|q| 1usize << q.index()).sum();
            ex.push(KernelOp::Mcx {
                cmask,
                tbit: 1usize << target[0].index(),
            });
        }
        Gate::Swap => ex.push(KernelOp::SwapBits {
            cmask: 0,
            abit: bit(0).min(bit(1)),
            bbit: bit(0).max(bit(1)),
        }),
        Gate::CSwap => ex.push(KernelOp::SwapBits {
            cmask: bit(0),
            abit: bit(1).min(bit(2)),
            bbit: bit(1).max(bit(2)),
        }),
        // Diagonal gates: pure per-amplitude phase multiplies.
        Gate::Z => ex.push(KernelOp::Diag1 {
            tbit: bit(0),
            d0: C64::ONE,
            d1: -C64::ONE,
        }),
        Gate::S => ex.push(KernelOp::Diag1 {
            tbit: bit(0),
            d0: C64::ONE,
            d1: C64::I,
        }),
        Gate::Sdg => ex.push(KernelOp::Diag1 {
            tbit: bit(0),
            d0: C64::ONE,
            d1: -C64::I,
        }),
        Gate::T => ex.push(KernelOp::Diag1 {
            tbit: bit(0),
            d0: C64::ONE,
            d1: C64::cis(FRAC_PI_4),
        }),
        Gate::Tdg => ex.push(KernelOp::Diag1 {
            tbit: bit(0),
            d0: C64::ONE,
            d1: C64::cis(-FRAC_PI_4),
        }),
        Gate::P(a) => ex.push(KernelOp::Diag1 {
            tbit: bit(0),
            d0: C64::ONE,
            d1: C64::cis(*a),
        }),
        Gate::Rz(a) => ex.push(KernelOp::Diag1 {
            tbit: bit(0),
            d0: C64::cis(-a / 2.0),
            d1: C64::cis(a / 2.0),
        }),
        // Y is antidiagonal: one multiply per amplitude, not four.
        Gate::Y => ex.push(KernelOp::Anti1 {
            tbit: bit(0),
            a01: -C64::I,
            a10: C64::I,
        }),
        Gate::CZ => ex.push(KernelOp::Phase {
            set: bit(0) | bit(1),
            clear: 0,
            phase: -C64::ONE,
        }),
        Gate::CP(a) => ex.push(KernelOp::Phase {
            set: bit(0) | bit(1),
            clear: 0,
            phase: C64::cis(*a),
        }),
        Gate::CRz(a) => {
            ex.push(KernelOp::Phase {
                set: bit(0),
                clear: bit(1),
                phase: C64::cis(-a / 2.0),
            });
            ex.push(KernelOp::Phase {
                set: bit(0) | bit(1),
                clear: 0,
                phase: C64::cis(a / 2.0),
            });
        }
        // Remaining two-qubit unitaries: dedicated 2q kernel, never
        // the generic gather/scatter.
        Gate::CY | Gate::CH => ex.push(KernelOp::Mat2Q {
            p0: bit(0),
            p1: bit(1),
            m: gate_matrix(gate),
        }),
        // General single-qubit unitaries (H, Sx, Rx, Ry, U…).
        gate if gate.arity() == 1 => ex.push(KernelOp::Mat1 {
            tbit: bit(0),
            m: Mat2::from_matrix(&gate_matrix(gate)),
        }),
        // Fallback for any future gate without a specialized path.
        gate => {
            let bits: Vec<usize> = qubits.iter().map(|q| 1usize << q.index()).collect();
            ex.push(KernelOp::MatKQ {
                bits,
                m: gate_matrix(gate),
            });
        }
    }
}

/// Composes a fused run's gates into one 2×2 matrix (`gates[0]` acts
/// first, so the product is `m_k ⋯ m_1`).
fn compose_run(gates: &[&Gate]) -> Mat2 {
    let mut acc = Matrix::identity(2);
    for gate in gates {
        acc = gate_matrix(gate).mul(&acc);
    }
    Mat2::from_matrix(&acc)
}

/// The pre-kernel-engine naive loops, kept verbatim as the ground-truth
/// reference for the kernel-equivalence suite (`cargo test -p qsim --
/// kernels`): every new code path — stride, fused, threaded — must
/// reproduce these amplitudes to ≤ 1e-12.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    /// Applies every instruction of `circuit` with the naive kernels.
    pub fn apply_circuit(amps: &mut [C64], circuit: &Circuit) {
        for inst in circuit.iter() {
            apply(amps, inst);
        }
    }

    /// The original `Statevector::apply` dispatch.
    pub fn apply(amps: &mut [C64], inst: &Instruction) {
        match inst.gate() {
            Gate::I => {}
            Gate::X => apply_x(amps, inst.qubits()[0]),
            Gate::CX => apply_cx(amps, inst.qubits()[0], inst.qubits()[1]),
            Gate::CCX => {
                let q = inst.qubits();
                apply_mcx(amps, &[q[0], q[1]], q[2]);
            }
            Gate::Mcx(_) => {
                let q = inst.qubits();
                let (controls, target) = q.split_at(q.len() - 1);
                apply_mcx(amps, controls, target[0]);
            }
            Gate::Swap => apply_swap(amps, inst.qubits()[0], inst.qubits()[1]),
            gate if gate.arity() == 1 => {
                apply_1q(amps, &gate_matrix(gate), inst.qubits()[0]);
            }
            gate => {
                apply_kq(amps, &gate_matrix(gate), inst.qubits());
            }
        }
    }

    fn apply_x(amps: &mut [C64], q: Qubit) {
        let bit = 1usize << q.index();
        for i in 0..amps.len() {
            if i & bit == 0 {
                amps.swap(i, i | bit);
            }
        }
    }

    fn apply_cx(amps: &mut [C64], control: Qubit, target: Qubit) {
        let cbit = 1usize << control.index();
        let tbit = 1usize << target.index();
        for i in 0..amps.len() {
            if i & cbit != 0 && i & tbit == 0 {
                amps.swap(i, i | tbit);
            }
        }
    }

    fn apply_mcx(amps: &mut [C64], controls: &[Qubit], target: Qubit) {
        let cmask: usize = controls.iter().map(|q| 1usize << q.index()).sum();
        let tbit = 1usize << target.index();
        for i in 0..amps.len() {
            if i & cmask == cmask && i & tbit == 0 {
                amps.swap(i, i | tbit);
            }
        }
    }

    fn apply_swap(amps: &mut [C64], a: Qubit, b: Qubit) {
        let abit = 1usize << a.index();
        let bbit = 1usize << b.index();
        for i in 0..amps.len() {
            if i & abit != 0 && i & bbit == 0 {
                amps.swap(i, (i & !abit) | bbit);
            }
        }
    }

    fn apply_1q(amps: &mut [C64], m: &Matrix, q: Qubit) {
        let bit = 1usize << q.index();
        let (m00, m01, m10, m11) = (m.get(0, 0), m.get(0, 1), m.get(1, 0), m.get(1, 1));
        for i in 0..amps.len() {
            if i & bit == 0 {
                let a0 = amps[i];
                let a1 = amps[i | bit];
                amps[i] = m00 * a0 + m01 * a1;
                amps[i | bit] = m10 * a0 + m11 * a1;
            }
        }
    }

    fn apply_kq(amps: &mut [C64], m: &Matrix, qubits: &[Qubit]) {
        let k = qubits.len();
        let dim = 1usize << k;
        debug_assert_eq!(m.dim(), dim);
        let bits: Vec<usize> = qubits.iter().map(|q| 1usize << q.index()).collect();
        let mask: usize = bits.iter().sum();

        let mut gathered = vec![C64::ZERO; dim];
        for base in 0..amps.len() {
            if base & mask != 0 {
                continue;
            }
            for (pattern, slot) in gathered.iter_mut().enumerate() {
                let mut idx = base;
                for (bit_pos, bit) in bits.iter().enumerate() {
                    if pattern & (1 << bit_pos) != 0 {
                        idx |= bit;
                    }
                }
                *slot = amps[idx];
            }
            for row in 0..dim {
                let mut acc = C64::ZERO;
                for (col, &g) in gathered.iter().enumerate() {
                    acc += m.get(row, col) * g;
                }
                let mut idx = base;
                for (bit_pos, bit) in bits.iter().enumerate() {
                    if row & (1 << bit_pos) != 0 {
                        idx |= bit;
                    }
                }
                amps[idx] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 1e-12;

    #[test]
    fn zero_state_is_basis_zero() {
        let sv = Statevector::zero(3).unwrap();
        assert_eq!(sv.amplitudes()[0], C64::ONE);
        assert!((sv.norm() - 1.0).abs() < EPS);
        assert_eq!(sv.probabilities()[0], 1.0);
    }

    #[test]
    fn rejects_oversized_register() {
        assert!(Statevector::zero(0).is_err());
        assert!(Statevector::zero(MAX_QUBITS + 1).is_err());
    }

    #[test]
    fn basis_state_constructor() {
        let sv = Statevector::basis(2, 3).unwrap();
        assert_eq!(sv.probability(3), 1.0);
        assert!(Statevector::basis(2, 4).is_err());
    }

    #[test]
    fn x_flips_qubit() {
        let mut c = Circuit::new(2);
        c.x(0);
        let sv = Statevector::from_circuit(&c).unwrap();
        assert_eq!(sv.probability(0b01), 1.0);
        let mut c = Circuit::new(2);
        c.x(1);
        let sv = Statevector::from_circuit(&c).unwrap();
        assert_eq!(sv.probability(0b10), 1.0);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = Statevector::from_circuit(&c).unwrap();
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < EPS);
        assert!(p[1].abs() < EPS);
        assert!(p[2].abs() < EPS);
        assert!((p[3] - 0.5).abs() < EPS);
    }

    #[test]
    fn cx_only_fires_on_control() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let sv = Statevector::from_circuit(&c).unwrap();
        assert_eq!(sv.probability(0), 1.0); // control 0: no-op

        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let sv = Statevector::from_circuit(&c).unwrap();
        assert_eq!(sv.probability(0b11), 1.0);
    }

    #[test]
    fn ccx_truth_table() {
        for input in 0..8usize {
            let mut c = Circuit::new(3);
            for b in 0..3 {
                if input & (1 << b) != 0 {
                    c.x(b as u32);
                }
            }
            c.ccx(0, 1, 2);
            let sv = Statevector::from_circuit(&c).unwrap();
            let expected = if input & 0b11 == 0b11 {
                input ^ 0b100
            } else {
                input
            };
            assert!(
                (sv.probability(expected) - 1.0).abs() < EPS,
                "input {input} mapped wrong"
            );
        }
    }

    #[test]
    fn mcx_matches_expected_permutation() {
        for input in 0..16usize {
            let mut c = Circuit::new(4);
            for b in 0..4 {
                if input & (1 << b) != 0 {
                    c.x(b as u32);
                }
            }
            c.mcx(&[0, 1, 2], 3);
            let sv = Statevector::from_circuit(&c).unwrap();
            let expected = if input & 0b111 == 0b111 {
                input ^ 0b1000
            } else {
                input
            };
            assert!((sv.probability(expected) - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut c = Circuit::new(2);
        c.x(0).swap(0, 1);
        let sv = Statevector::from_circuit(&c).unwrap();
        assert_eq!(sv.probability(0b10), 1.0);
    }

    #[test]
    fn cswap_controlled_behaviour() {
        // Control clear: no swap.
        let mut c = Circuit::new(3);
        c.x(1).cswap(0, 1, 2);
        let sv = Statevector::from_circuit(&c).unwrap();
        assert_eq!(sv.probability(0b010), 1.0);
        // Control set: swap.
        let mut c = Circuit::new(3);
        c.x(0).x(1).cswap(0, 1, 2);
        let sv = Statevector::from_circuit(&c).unwrap();
        assert_eq!(sv.probability(0b101), 1.0);
    }

    #[test]
    fn circuit_then_inverse_is_identity() {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(1)
            .cx(0, 1)
            .rz(0.37, 2)
            .ccx(0, 1, 2)
            .s(2)
            .swap(0, 2);
        let mut sv = Statevector::from_circuit(&c).unwrap();
        sv.apply_circuit(&c.inverse()).unwrap();
        let zero = Statevector::zero(3).unwrap();
        assert!(sv.approx_eq_up_to_phase(&zero, 1e-10));
        assert!((sv.probability(0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn norm_preserved_through_random_circuit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .rx(0.3, 1)
            .cp(0.9, 0, 2)
            .ccx(0, 1, 3)
            .ry(1.2, 2)
            .crz(0.5, 3, 0)
            .u(0.2, 0.4, 0.6, 1)
            .ch(2, 3);
        let sv = Statevector::from_circuit(&c).unwrap();
        assert!((sv.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn kq_path_matches_fast_path() {
        // Apply CX via the generic gather/scatter path and compare.
        let mut c = Circuit::new(3);
        c.h(0).h(2);
        let mut fast = Statevector::from_circuit(&c).unwrap();
        let slow = fast.clone();
        let inst = Instruction::new(Gate::CX, vec![Qubit::new(0), Qubit::new(2)]).unwrap();
        fast.apply(&inst).unwrap();
        let mut slow_amps = slow.amps;
        let bits: Vec<usize> = inst.qubits().iter().map(|q| 1usize << q.index()).collect();
        crate::kernels::apply_kq(
            &mut slow_amps,
            Threading::single(),
            &bits,
            &gate_matrix(&Gate::CX),
        );
        for (a, b) in fast.amplitudes().iter().zip(&slow_amps) {
            assert!(a.approx_eq(*b, EPS));
        }
    }

    #[test]
    fn fused_and_unfused_agree_on_deep_runs() {
        // Long same-wire chains interleaved with entanglers: the fusion
        // pre-pass must not change the state.
        let n = FUSION_MIN_QUBITS + 1;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q).t(q).rz(0.3 * (q as f64 + 1.0), q).s(q).h(q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        for q in 0..n {
            c.tdg(q).sx(q).p(-0.8, q);
        }
        let mut fused = Statevector::zero(n).unwrap();
        fused
            .apply_circuit_with(&c, &ExecConfig::default())
            .unwrap();
        let mut unfused = Statevector::zero(n).unwrap();
        unfused
            .apply_circuit_with(&c, &ExecConfig::unfused())
            .unwrap();
        for (a, b) in fused.amplitudes().iter().zip(unfused.amplitudes()) {
            assert!(a.approx_eq(*b, EPS));
        }
    }

    #[test]
    fn fidelity_and_inner() {
        let a = Statevector::basis(2, 0).unwrap();
        let b = Statevector::basis(2, 3).unwrap();
        assert_eq!(a.fidelity(&b), 0.0);
        assert_eq!(a.fidelity(&a), 1.0);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut c = Circuit::new(1);
        c.h(0);
        let sv = Statevector::from_circuit(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let ones = (0..n).filter(|_| sv.sample_once(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn mismatched_circuit_register_rejected() {
        let mut sv = Statevector::zero(2).unwrap();
        let mut c = Circuit::new(3);
        c.x(2);
        assert!(sv.apply_circuit(&c).is_err());
    }

    #[test]
    fn global_phase_equality() {
        let mut c1 = Circuit::new(1);
        c1.rz(1.0, 0);
        let mut c2 = Circuit::new(1);
        c2.p(1.0, 0);
        let s1 = Statevector::from_circuit(&c1).unwrap();
        let s2 = Statevector::from_circuit(&c2).unwrap();
        // On |0>, rz and p differ only by global phase.
        assert!(s1.approx_eq_up_to_phase(&s2, EPS));
    }

    #[test]
    fn compose_run_multiplies_in_application_order() {
        // h then s: matrix is S·H, which maps |0⟩ to (|0⟩ + i|1⟩)/√2.
        let m = compose_run(&[&Gate::H, &Gate::S]);
        assert!(m
            .m00
            .approx_eq(C64::real(std::f64::consts::FRAC_1_SQRT_2), EPS));
        assert!(m
            .m10
            .approx_eq(C64::new(0.0, std::f64::consts::FRAC_1_SQRT_2), EPS));
        // A run of diagonal gates composes to an exactly-diagonal matrix.
        let d = compose_run(&[&Gate::T, &Gate::Rz(0.4), &Gate::S, &Gate::P(1.1)]);
        assert!(d.is_diagonal());
        // Any non-diagonal factor breaks exact diagonality.
        assert!(!compose_run(&[&Gate::T, &Gate::H]).is_diagonal());
    }
}
