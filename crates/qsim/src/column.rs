//! Out-of-core single-column simulation for witness replay.
//!
//! The witness layer of the verifier needs one number from a miter
//! `C₂†·C₁`: the amplitude `⟨x|M|x⟩` for a candidate basis input `x`.
//! A dense statevector caps that question at
//! [`crate::statevector::MAX_QUBITS`] qubits because it materialises all
//! `2ⁿ` amplitudes. But a *column* of the miter — the state `M|x⟩` —
//! usually has tiny support: permutation gates (X/CX/CCX/MCX/SWAP) move
//! the single amplitude around, diagonal gates (Z/S/T/Rz/P and their
//! controlled forms) only rotate its phase, and each branching gate
//! (H/Sx/Rx/Ry/U, …) at most doubles the number of non-zero amplitudes.
//! A wrong-key miter built from reversible logic plus a bounded number
//! of branching gates therefore fits in a handful of sparse blocks even
//! at 60 qubits.
//!
//! [`ShardedColumn`] exploits that: the column is a sparse map from
//! *shard id* (the basis index's high bits) to a fixed-size block of
//! amplitudes (`2^shard_qubits`, default [`crate::exec::BLOCK_QUBITS`]
//! ⇒ 512 KiB per shard — the same cache-sweep block discipline the
//! dense engine uses). Absent shards are exactly zero. A bounded number
//! of shards stay resident; excess shards spill to a temporary
//! directory in LRU order and stream back on demand, so memory stays
//! bounded no matter the register width. A hard budget
//! ([`ColumnConfig::max_shards`]) turns "this miter branches too much"
//! into a typed error ([`SimError::ShardBudgetExceeded`]) instead of an
//! OOM — the caller treats that as "replay infeasible" and falls
//! through, which keeps the witness contract sound.
//!
//! The width cap is [`MAX_COLUMN_QUBITS`] = 63: the only hard limit is
//! `u64` basis-index addressability, *not* memory — feasibility is
//! support-dependent, enforced by the shard budget.
//!
//! # Example
//!
//! ```
//! use qcir::Circuit;
//! use qsim::column::{basis_column_amplitude, ColumnConfig};
//!
//! // A 40-qubit permutation miter: dense simulation is hopeless, the
//! // sharded column never leaves one shard.
//! let mut m = Circuit::new(40);
//! m.x(35).cx(35, 7).x(35);
//! let amp = basis_column_amplitude(&m, 0, ColumnConfig::default())?;
//! assert!(amp.abs() < 1e-12); // |0…0⟩ maps elsewhere: diagonal entry 0
//! # Ok::<(), qsim::SimError>(())
//! ```

use crate::complex::C64;
use crate::error::SimError;
use crate::exec::BLOCK_QUBITS;
use crate::matrix::gate_matrix;
use qcir::{Circuit, Gate, Instruction};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COLUMN_OPS: qobs::Counter = qobs::Counter::new("qsim.column.ops");
static COLUMN_SPILLS: qobs::Counter = qobs::Counter::new("qsim.column.spills");

/// Hard width cap for sharded columns: `u64` basis indices address at
/// most 63 qubit registers without ambiguity against the budget
/// sentinel arithmetic. Feasibility below the cap is governed by
/// [`ColumnConfig::max_shards`], not width.
pub const MAX_COLUMN_QUBITS: u32 = 63;

/// Memory/disk envelope for a [`ShardedColumn`].
#[derive(Debug, Clone)]
pub struct ColumnConfig {
    /// Qubits per shard: each shard holds `2^shard_qubits` amplitudes.
    /// Clamped to the register width (and to 30 as an allocation guard).
    pub shard_qubits: u32,
    /// Shards kept in memory before LRU spilling kicks in (≥ 1; the
    /// shards an in-flight gate touches are pinned and may briefly
    /// exceed this by one).
    pub resident_shards: usize,
    /// Hard budget on *live* shards (resident + spilled). Exceeding it
    /// returns [`SimError::ShardBudgetExceeded`] instead of allocating.
    pub max_shards: usize,
}

impl Default for ColumnConfig {
    /// 512 KiB shards ([`BLOCK_QUBITS`]), 64 resident (≤ 32 MiB in
    /// memory), 4096 live (≤ 2 GiB spilled worst case).
    fn default() -> Self {
        ColumnConfig {
            shard_qubits: BLOCK_QUBITS,
            resident_shards: 64,
            max_shards: 4096,
        }
    }
}

/// The 2×2 action class of a lowered gate on its target qubit.
enum Kind {
    /// Diagonal: `amp(x) *= d[x_t]`. Never changes support.
    Diag([C64; 2]),
    /// Antidiagonal: `new(x_t=0) = a[0]·old(x_t=1)`,
    /// `new(x_t=1) = a[1]·old(x_t=0)`. Permutes support.
    Anti([C64; 2]),
    /// Full 2×2 — the only class that can double support.
    Dense([[C64; 2]; 2]),
}

/// A gate lowered to (control mask, target, 2×2 class) over full-width
/// `u64` basis indices.
struct Op {
    ctrl: u64,
    target: u32,
    kind: Kind,
}

fn classify(gate: &Gate) -> Kind {
    let m = gate_matrix(gate);
    debug_assert_eq!(m.dim(), 2, "classify is for single-qubit gates");
    let (a, b) = (m.get(0, 0), m.get(0, 1));
    let (c, d) = (m.get(1, 0), m.get(1, 1));
    if b == C64::ZERO && c == C64::ZERO {
        Kind::Diag([a, d])
    } else if a == C64::ZERO && d == C64::ZERO {
        Kind::Anti([b, c])
    } else {
        Kind::Dense([[a, b], [c, d]])
    }
}

fn cx_op(control: u32, target: u32) -> Op {
    Op {
        ctrl: 1u64 << control,
        target,
        kind: Kind::Anti([C64::ONE, C64::ONE]),
    }
}

/// Lowers one instruction to a sequence of [`Op`]s. Multi-target gates
/// decompose into CX conjugations so every op has exactly one target.
fn lower(inst: &Instruction) -> Vec<Op> {
    let q = |k: usize| inst.qubits()[k].index() as u32;
    match inst.gate() {
        Gate::I => vec![],
        // SWAP(a,b) = CX(a,b)·CX(b,a)·CX(a,b).
        Gate::Swap => vec![cx_op(q(0), q(1)), cx_op(q(1), q(0)), cx_op(q(0), q(1))],
        // Fredkin(c; a,b) = CX(b,a)·CCX(c,a,b)·CX(b,a).
        Gate::CSwap => vec![
            cx_op(q(2), q(1)),
            Op {
                ctrl: (1u64 << q(0)) | (1u64 << q(1)),
                target: q(2),
                kind: Kind::Anti([C64::ONE, C64::ONE]),
            },
            cx_op(q(2), q(1)),
        ],
        Gate::CCX => vec![Op {
            ctrl: (1u64 << q(0)) | (1u64 << q(1)),
            target: q(2),
            kind: Kind::Anti([C64::ONE, C64::ONE]),
        }],
        Gate::Mcx(_) => {
            let qs = inst.qubits();
            let (controls, target) = qs.split_at(qs.len() - 1);
            let ctrl = controls
                .iter()
                .fold(0u64, |m, qubit| m | (1u64 << qubit.index()));
            vec![Op {
                ctrl,
                target: target[0].index() as u32,
                kind: Kind::Anti([C64::ONE, C64::ONE]),
            }]
        }
        Gate::CX => vec![cx_op(q(0), q(1))],
        Gate::CY => vec![Op {
            ctrl: 1u64 << q(0),
            target: q(1),
            kind: classify(&Gate::Y),
        }],
        Gate::CZ => vec![Op {
            ctrl: 1u64 << q(0),
            target: q(1),
            kind: classify(&Gate::Z),
        }],
        Gate::CH => vec![Op {
            ctrl: 1u64 << q(0),
            target: q(1),
            kind: classify(&Gate::H),
        }],
        Gate::CP(a) => vec![Op {
            ctrl: 1u64 << q(0),
            target: q(1),
            kind: classify(&Gate::P(*a)),
        }],
        Gate::CRz(a) => vec![Op {
            ctrl: 1u64 << q(0),
            target: q(1),
            kind: classify(&Gate::Rz(*a)),
        }],
        single => vec![Op {
            ctrl: 0,
            target: q(0),
            kind: classify(single),
        }],
    }
}

/// A sparse, spillable column `M|x⟩` over up to [`MAX_COLUMN_QUBITS`]
/// qubits. See the module docs for the shard model.
pub struct ShardedColumn {
    num_qubits: u32,
    shard_qubits: u32,
    resident_cap: usize,
    max_shards: usize,
    resident: BTreeMap<u64, Vec<C64>>,
    spilled: BTreeSet<u64>,
    /// LRU candidates, oldest first. May hold stale ids (already
    /// spilled or pruned); the eviction scan skips those lazily.
    lru: VecDeque<u64>,
    spill_dir: Option<PathBuf>,
    spill_count: u64,
    peak_shards: usize,
}

impl ShardedColumn {
    /// Starts the column at basis state `|index⟩` with the default
    /// [`ColumnConfig`].
    ///
    /// # Errors
    ///
    /// [`SimError::TooManyQubits`] past [`MAX_COLUMN_QUBITS`];
    /// [`SimError::InvalidState`] if `index` does not name a basis
    /// state of the register.
    pub fn basis(num_qubits: u32, index: u64) -> Result<Self, SimError> {
        Self::with_config(num_qubits, index, ColumnConfig::default())
    }

    /// Starts the column at `|index⟩` with an explicit envelope.
    ///
    /// # Errors
    ///
    /// As [`ShardedColumn::basis`].
    pub fn with_config(
        num_qubits: u32,
        index: u64,
        config: ColumnConfig,
    ) -> Result<Self, SimError> {
        if num_qubits > MAX_COLUMN_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_COLUMN_QUBITS,
            });
        }
        check_index(num_qubits, index)?;
        let shard_qubits = config.shard_qubits.min(num_qubits).min(30);
        let mut column = ShardedColumn {
            num_qubits,
            shard_qubits,
            resident_cap: config.resident_shards.max(1),
            max_shards: config.max_shards.max(1),
            resident: BTreeMap::new(),
            spilled: BTreeSet::new(),
            lru: VecDeque::new(),
            spill_dir: None,
            spill_count: 0,
            peak_shards: 1,
        };
        let id = index >> shard_qubits;
        let mut amps = vec![C64::ZERO; column.shard_len()];
        amps[(index & column.lo_mask()) as usize] = C64::ONE;
        column.resident.insert(id, amps);
        column.lru.push_back(id);
        Ok(column)
    }

    /// Register width in qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Effective qubits per shard (clamped to the register width).
    pub fn shard_qubits(&self) -> u32 {
        self.shard_qubits
    }

    /// Live shards right now (resident + spilled).
    pub fn live_shards(&self) -> usize {
        self.resident.len() + self.spilled.len()
    }

    /// High-water mark of live shards over the column's lifetime.
    pub fn peak_shards(&self) -> usize {
        self.peak_shards
    }

    /// Number of shard spills to disk so far.
    pub fn spill_count(&self) -> u64 {
        self.spill_count
    }

    /// Applies a circuit gate by gate.
    ///
    /// # Errors
    ///
    /// [`SimError::QubitMismatch`] if the circuit is wider than the
    /// column; [`SimError::ShardBudgetExceeded`] when branching gates
    /// push the live shard count over [`ColumnConfig::max_shards`];
    /// [`SimError::InvalidState`] on spill I/O failure. After an error
    /// the column contents are unspecified — discard it.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.num_qubits() > self.num_qubits {
            return Err(SimError::QubitMismatch {
                circuit: circuit.num_qubits(),
                state: self.num_qubits,
            });
        }
        for inst in circuit.iter() {
            for op in lower(inst) {
                self.apply_op(&op)?;
                COLUMN_OPS.incr();
            }
        }
        Ok(())
    }

    /// The amplitude at basis index `index` (exactly zero for indices
    /// outside the live support).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidState`] if `index` is outside the register or
    /// a spilled shard fails to stream back.
    pub fn amplitude(&mut self, index: u64) -> Result<C64, SimError> {
        check_index(self.num_qubits, index)?;
        let id = index >> self.shard_qubits;
        let offset = (index & self.lo_mask()) as usize;
        if !self.resident.contains_key(&id) && !self.spilled.contains(&id) {
            return Ok(C64::ZERO);
        }
        self.make_resident(id, &[id])?;
        Ok(self.resident[&id][offset])
    }

    fn shard_len(&self) -> usize {
        1usize << self.shard_qubits
    }

    fn lo_mask(&self) -> u64 {
        (1u64 << self.shard_qubits) - 1
    }

    fn apply_op(&mut self, op: &Op) -> Result<(), SimError> {
        let k = self.shard_qubits;
        let ctrl_lo = (op.ctrl & self.lo_mask()) as usize;
        let ctrl_hi = op.ctrl >> k;
        if op.target < k {
            // Local target: every matching shard transforms in place.
            let ids: Vec<u64> = self.live_ids(ctrl_hi);
            for id in ids {
                self.make_resident(id, &[id])?;
                let shard_len = self.shard_len();
                let amps = self.resident.get_mut(&id).expect("just made resident");
                apply_local(amps, shard_len, op, ctrl_lo);
            }
            Ok(())
        } else {
            // High target: the target bit lives in the shard id.
            let tb = 1u64 << (op.target - k);
            match &op.kind {
                Kind::Diag(d) => {
                    let ids: Vec<u64> = self.live_ids(ctrl_hi);
                    for id in ids {
                        let factor = d[((id & tb) != 0) as usize];
                        self.make_resident(id, &[id])?;
                        let amps = self.resident.get_mut(&id).expect("just made resident");
                        for (j, amp) in amps.iter_mut().enumerate() {
                            if j & ctrl_lo == ctrl_lo {
                                *amp *= factor;
                            }
                        }
                    }
                    Ok(())
                }
                Kind::Anti(_) | Kind::Dense(_) => {
                    // The control mask never contains the target, so
                    // both members of a shard pair agree on ctrl_hi.
                    let bases: BTreeSet<u64> = self
                        .live_ids(ctrl_hi)
                        .into_iter()
                        .map(|id| id & !tb)
                        .collect();
                    for base in bases {
                        self.transform_shard_pair(base, base | tb, op, ctrl_lo)?;
                    }
                    Ok(())
                }
            }
        }
    }

    /// Live shard ids whose high index bits satisfy `ctrl_hi`.
    fn live_ids(&self, ctrl_hi: u64) -> Vec<u64> {
        self.resident
            .keys()
            .chain(self.spilled.iter())
            .copied()
            .filter(|id| id & ctrl_hi == ctrl_hi)
            .collect()
    }

    /// Pairs shards `lo`/`hi` across the target bit, transforms the
    /// controlled entries, and prunes any shard the op zeroed out.
    fn transform_shard_pair(
        &mut self,
        lo: u64,
        hi: u64,
        op: &Op,
        ctrl_lo: usize,
    ) -> Result<(), SimError> {
        self.ensure_shard(lo, &[lo, hi])?;
        self.ensure_shard(hi, &[lo, hi])?;
        // Take both shards out of the map — the transform needs two
        // mutable views at once.
        let mut a0 = self.resident.remove(&lo).expect("pinned resident");
        let mut a1 = self.resident.remove(&hi).expect("pinned resident");
        for j in 0..self.shard_len() {
            if j & ctrl_lo != ctrl_lo {
                continue;
            }
            let (x, y) = (a0[j], a1[j]);
            match &op.kind {
                Kind::Anti(a) => {
                    a0[j] = a[0] * y;
                    a1[j] = a[1] * x;
                }
                Kind::Dense(m) => {
                    a0[j] = m[0][0] * x + m[0][1] * y;
                    a1[j] = m[1][0] * x + m[1][1] * y;
                }
                Kind::Diag(_) => unreachable!("diagonal ops never pair shards"),
            }
        }
        self.put_back(lo, a0);
        self.put_back(hi, a1);
        Ok(())
    }

    /// Reinserts a transformed shard, pruning it if the op moved all
    /// its weight away (keeps X-ladders and interference from leaking
    /// zero shards into the budget).
    fn put_back(&mut self, id: u64, amps: Vec<C64>) {
        if amps.iter().all(|&a| a == C64::ZERO) {
            // Stale lru entry is skipped lazily by the eviction scan.
            return;
        }
        self.resident.insert(id, amps);
    }

    /// Makes shard `id` resident, creating it as all-zeros if it does
    /// not exist yet (budget-checked).
    fn ensure_shard(&mut self, id: u64, pinned: &[u64]) -> Result<(), SimError> {
        if self.resident.contains_key(&id) || self.spilled.contains(&id) {
            return self.make_resident(id, pinned);
        }
        let live = self.live_shards();
        if live + 1 > self.max_shards {
            return Err(SimError::ShardBudgetExceeded {
                shards: live + 1,
                max: self.max_shards,
            });
        }
        self.peak_shards = self.peak_shards.max(live + 1);
        let len = self.shard_len();
        self.resident.insert(id, vec![C64::ZERO; len]);
        self.lru.push_back(id);
        self.evict_over(pinned)
    }

    /// Makes an *existing* shard resident, streaming it back from the
    /// spill directory if needed.
    fn make_resident(&mut self, id: u64, pinned: &[u64]) -> Result<(), SimError> {
        if self.resident.contains_key(&id) {
            self.touch(id);
            return Ok(());
        }
        debug_assert!(self.spilled.contains(&id), "shard {id} is not live");
        self.spilled.remove(&id);
        let amps = self.read_shard(id)?;
        self.resident.insert(id, amps);
        self.lru.push_back(id);
        self.evict_over(pinned)
    }

    /// Moves `id` to the most-recently-used position.
    fn touch(&mut self, id: u64) {
        if let Some(pos) = self.lru.iter().position(|&x| x == id) {
            self.lru.remove(pos);
        }
        self.lru.push_back(id);
    }

    /// Spills least-recently-used resident shards (never the pinned
    /// ones) until the resident count fits the cap.
    fn evict_over(&mut self, pinned: &[u64]) -> Result<(), SimError> {
        while self.resident.len() > self.resident_cap {
            let mut victim = None;
            let mut scan = 0;
            while scan < self.lru.len() {
                let id = self.lru[scan];
                if !self.resident.contains_key(&id) {
                    // Stale entry (already spilled or pruned): drop it.
                    self.lru.remove(scan);
                    continue;
                }
                if pinned.contains(&id) {
                    scan += 1;
                    continue;
                }
                victim = Some((scan, id));
                break;
            }
            let Some((pos, id)) = victim else {
                // Everything resident is pinned: tolerate the overage.
                return Ok(());
            };
            self.lru.remove(pos);
            let amps = self.resident.remove(&id).expect("victim is resident");
            self.write_shard(id, &amps)?;
            self.spilled.insert(id);
            self.spill_count += 1;
            COLUMN_SPILLS.incr();
        }
        Ok(())
    }

    fn spill_dir(&mut self) -> Result<PathBuf, SimError> {
        if self.spill_dir.is_none() {
            static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "qsim-column-{}-{}",
                std::process::id(),
                SPILL_SEQ.fetch_add(1, Ordering::Relaxed),
            ));
            fs::create_dir_all(&dir).map_err(spill_io)?;
            self.spill_dir = Some(dir);
        }
        Ok(self.spill_dir.clone().expect("just created"))
    }

    fn shard_path(&mut self, id: u64) -> Result<PathBuf, SimError> {
        Ok(self.spill_dir()?.join(format!("shard-{id:016x}.amps")))
    }

    /// Raw little-endian `f64` (re, im) pairs.
    fn write_shard(&mut self, id: u64, amps: &[C64]) -> Result<(), SimError> {
        let mut bytes = Vec::with_capacity(amps.len() * 16);
        for amp in amps {
            bytes.extend_from_slice(&amp.re.to_le_bytes());
            bytes.extend_from_slice(&amp.im.to_le_bytes());
        }
        let path = self.shard_path(id)?;
        fs::write(path, bytes).map_err(spill_io)
    }

    fn read_shard(&mut self, id: u64) -> Result<Vec<C64>, SimError> {
        let path = self.shard_path(id)?;
        let bytes = fs::read(&path).map_err(spill_io)?;
        let _ = fs::remove_file(&path);
        if bytes.len() != self.shard_len() * 16 {
            return Err(SimError::InvalidState(format!(
                "column shard file {} has {} bytes, expected {}",
                path.display(),
                bytes.len(),
                self.shard_len() * 16,
            )));
        }
        Ok(bytes
            .chunks_exact(16)
            .map(|pair| {
                C64::new(
                    f64::from_le_bytes(pair[..8].try_into().expect("8-byte chunk")),
                    f64::from_le_bytes(pair[8..].try_into().expect("8-byte chunk")),
                )
            })
            .collect())
    }
}

impl Drop for ShardedColumn {
    fn drop(&mut self) {
        if let Some(dir) = &self.spill_dir {
            let _ = fs::remove_dir_all(dir);
        }
    }
}

impl std::fmt::Debug for ShardedColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedColumn")
            .field("num_qubits", &self.num_qubits)
            .field("shard_qubits", &self.shard_qubits)
            .field("resident", &self.resident.len())
            .field("spilled", &self.spilled.len())
            .field("peak_shards", &self.peak_shards)
            .finish()
    }
}

/// Transforms one resident shard in place for a local-target op.
fn apply_local(amps: &mut [C64], shard_len: usize, op: &Op, ctrl_lo: usize) {
    let bit = 1usize << op.target;
    match &op.kind {
        Kind::Diag(d) => {
            for (j, amp) in amps.iter_mut().enumerate() {
                if j & ctrl_lo == ctrl_lo {
                    *amp *= d[(j & bit != 0) as usize];
                }
            }
        }
        Kind::Anti(a) => {
            for j in 0..shard_len {
                if j & bit == 0 && j & ctrl_lo == ctrl_lo {
                    let (x, y) = (amps[j], amps[j | bit]);
                    amps[j] = a[0] * y;
                    amps[j | bit] = a[1] * x;
                }
            }
        }
        Kind::Dense(m) => {
            for j in 0..shard_len {
                if j & bit == 0 && j & ctrl_lo == ctrl_lo {
                    let (x, y) = (amps[j], amps[j | bit]);
                    amps[j] = m[0][0] * x + m[0][1] * y;
                    amps[j | bit] = m[1][0] * x + m[1][1] * y;
                }
            }
        }
    }
}

fn check_index(num_qubits: u32, index: u64) -> Result<(), SimError> {
    if num_qubits < 64 && index >> num_qubits != 0 {
        return Err(SimError::InvalidState(format!(
            "basis index {index:#b} does not fit {num_qubits} qubits"
        )));
    }
    Ok(())
}

fn spill_io(e: std::io::Error) -> SimError {
    SimError::InvalidState(format!("column shard spill failed: {e}"))
}

/// One diagonal entry of a circuit: `⟨input|C|input⟩`, computed by
/// streaming the column `C|input⟩` through a [`ShardedColumn`].
///
/// # Errors
///
/// Propagates every [`ShardedColumn`] error — in particular
/// [`SimError::ShardBudgetExceeded`] when the circuit branches past the
/// configured envelope.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qsim::column::{basis_column_amplitude, ColumnConfig};
///
/// let mut c = Circuit::new(50);
/// c.t(49);
/// let amp = basis_column_amplitude(&c, 1u64 << 49, ColumnConfig::default())?;
/// assert!((amp.arg() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
/// # Ok::<(), qsim::SimError>(())
/// ```
pub fn basis_column_amplitude(
    circuit: &Circuit,
    input: u64,
    config: ColumnConfig,
) -> Result<C64, SimError> {
    let mut column = ShardedColumn::with_config(circuit.num_qubits(), input, config)?;
    column.apply_circuit(circuit)?;
    column.amplitude(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::Statevector;

    /// Tiny envelope that forces cross-shard pairing and LRU spilling
    /// even on toy registers.
    fn tight() -> ColumnConfig {
        ColumnConfig {
            shard_qubits: 3,
            resident_shards: 2,
            max_shards: 1 << 12,
        }
    }

    fn mixed_circuit(n: u32, seed: u64) -> Circuit {
        // Deterministic gate soup covering every lowering class,
        // including high-target (cross-shard) and controlled forms.
        let mut c = Circuit::new(n);
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        for _ in 0..24 {
            let a = (next() % n as u64) as u32;
            let b = (next() % n as u64) as u32;
            match next() % 10 {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.t(a);
                }
                2 => {
                    c.x(a);
                }
                3 => {
                    c.rz(0.37, a);
                }
                4 if a != b => {
                    c.cx(a, b);
                }
                5 if a != b => {
                    c.swap(a, b);
                }
                6 if a != b => {
                    c.cp(0.81, a, b);
                }
                7 => {
                    c.sx(a);
                }
                8 if a != b => {
                    c.ch(a, b);
                }
                _ => {
                    c.sdg(a);
                }
            }
        }
        c
    }

    #[test]
    fn column_agrees_with_dense_statevector() {
        for n in [4u32, 6, 8] {
            for seed in 0..4u64 {
                let circuit = mixed_circuit(n, seed ^ 0x9E37);
                let input = seed % (1 << n);
                let mut sv = Statevector::basis(n, input as usize).unwrap();
                sv.apply_circuit(&circuit).unwrap();
                let mut col = ShardedColumn::with_config(n, input, tight()).unwrap();
                col.apply_circuit(&circuit).unwrap();
                for index in 0..1u64 << n {
                    let dense = sv.amplitudes()[index as usize];
                    let sparse = col.amplitude(index).unwrap();
                    assert!(
                        dense.approx_eq(sparse, 1e-10),
                        "n={n} seed={seed} index={index}: dense {dense:?} vs sparse {sparse:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn spilling_actually_happens_and_stays_correct() {
        // 8 qubits / 3-qubit shards / 2 resident ⇒ an H-ladder drives
        // support across all 32 shards and through the spill path.
        let n = 8u32;
        let mut circuit = Circuit::new(n);
        for q in 0..n {
            circuit.h(q);
        }
        circuit.t(7);
        for q in 0..n {
            circuit.h(q);
        }
        let mut sv = Statevector::basis(n, 0).unwrap();
        sv.apply_circuit(&circuit).unwrap();
        let mut col = ShardedColumn::with_config(n, 0, tight()).unwrap();
        col.apply_circuit(&circuit).unwrap();
        assert!(col.spill_count() > 0, "tight config must exercise spills");
        for index in 0..1u64 << n {
            let dense = sv.amplitudes()[index as usize];
            let sparse = col.amplitude(index).unwrap();
            assert!(dense.approx_eq(sparse, 1e-10), "index {index}");
        }
    }

    #[test]
    fn wide_permutation_stays_in_one_shard() {
        // 50-qubit reversible logic: support never branches, so the
        // column never allocates a second shard even as the single
        // amplitude crosses shard boundaries.
        let mut c = Circuit::new(50);
        c.x(0)
            .cx(0, 45)
            .ccx(0, 45, 30)
            .swap(30, 3)
            .mcx(&[0, 3, 45], 49);
        c.cswap(0, 45, 49);
        let mut col = ShardedColumn::basis(50, 0).unwrap();
        col.apply_circuit(&c).unwrap();
        assert_eq!(col.live_shards(), 1);
        // Crossing a shard boundary transiently materialises the
        // partner shard before the vacated one is pruned — the peak is
        // 2, never more, for permutation circuits.
        assert!(col.peak_shards() <= 2, "peak {}", col.peak_shards());
        // Follow the bit with the independent classical evaluator.
        let expected = revlib_free_eval(&c);
        assert!(col.amplitude(expected).unwrap().approx_eq(C64::ONE, 1e-12));
    }

    /// Local classical evaluation (qsim cannot depend on revlib).
    fn revlib_free_eval(c: &Circuit) -> u64 {
        let mut s = 0u64;
        for inst in c.iter() {
            let q: Vec<u32> = inst.qubits().iter().map(|x| x.index() as u32).collect();
            let bit = |s: u64, i: u32| s >> i & 1 == 1;
            match inst.gate() {
                Gate::X => s ^= 1 << q[0],
                Gate::CX => {
                    if bit(s, q[0]) {
                        s ^= 1 << q[1]
                    }
                }
                Gate::CCX => {
                    if bit(s, q[0]) && bit(s, q[1]) {
                        s ^= 1 << q[2]
                    }
                }
                Gate::Mcx(_) => {
                    let (ctrl, t) = q.split_at(q.len() - 1);
                    if ctrl.iter().all(|&i| bit(s, i)) {
                        s ^= 1 << t[0]
                    }
                }
                Gate::Swap => {
                    if bit(s, q[0]) != bit(s, q[1]) {
                        s ^= (1 << q[0]) | (1 << q[1])
                    }
                }
                Gate::CSwap => {
                    if bit(s, q[0]) && bit(s, q[1]) != bit(s, q[2]) {
                        s ^= (1 << q[1]) | (1 << q[2])
                    }
                }
                other => panic!("non-classical gate {other}"),
            }
        }
        s
    }

    #[test]
    fn diagonal_gates_only_rotate_phase() {
        let mut c = Circuit::new(40);
        c.t(39).rz(0.25, 20).cp(0.5, 0, 39);
        let mut col = ShardedColumn::basis(40, (1u64 << 39) | 1).unwrap();
        col.apply_circuit(&c).unwrap();
        assert_eq!(col.live_shards(), 1);
        let amp = col.amplitude((1u64 << 39) | 1).unwrap();
        // t(39) ⇒ π/4, rz(0.25; 20) on a clear bit ⇒ −0.125,
        // cp(0.5; 0,39) ⇒ 0.5 (both control and target set).
        let expected = std::f64::consts::FRAC_PI_4 - 0.125 + 0.5;
        assert!((amp.abs() - 1.0).abs() < 1e-12);
        assert!((amp.arg() - expected).abs() < 1e-12, "arg {}", amp.arg());
    }

    #[test]
    fn shard_budget_is_a_typed_error() {
        let mut c = Circuit::new(30);
        for q in 15..25 {
            c.h(q); // 10 high-target branchings ⇒ 2^10 shards
        }
        let config = ColumnConfig {
            shard_qubits: 15,
            resident_shards: 4,
            max_shards: 8,
        };
        let mut col = ShardedColumn::with_config(30, 0, config).unwrap();
        let err = col.apply_circuit(&c).unwrap_err();
        assert!(
            matches!(err, SimError::ShardBudgetExceeded { max: 8, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn width_cap_is_enforced() {
        let err = ShardedColumn::basis(MAX_COLUMN_QUBITS + 1, 0).unwrap_err();
        assert_eq!(
            err,
            SimError::TooManyQubits {
                requested: MAX_COLUMN_QUBITS + 1,
                max: MAX_COLUMN_QUBITS,
            }
        );
        // And the cap itself is fine.
        let mut c = Circuit::new(MAX_COLUMN_QUBITS);
        c.x(62).cx(62, 0);
        let amp = basis_column_amplitude(&c, 0, ColumnConfig::default()).unwrap();
        assert!(amp.abs() < 1e-12);
    }

    #[test]
    fn bad_basis_index_is_rejected() {
        assert!(matches!(
            ShardedColumn::basis(4, 0b10000),
            Err(SimError::InvalidState(_))
        ));
        let mut col = ShardedColumn::basis(4, 0).unwrap();
        assert!(matches!(
            col.amplitude(1 << 10),
            Err(SimError::InvalidState(_))
        ));
    }

    #[test]
    fn x_ladder_prunes_zero_shards() {
        // X on a high qubit moves the support shard; the vacated shard
        // must be pruned, not kept as a live zero block.
        let mut c = Circuit::new(20);
        c.x(19).x(18).x(19);
        let mut col = ShardedColumn::with_config(
            20,
            0,
            ColumnConfig {
                shard_qubits: 4,
                resident_shards: 8,
                max_shards: 64,
            },
        )
        .unwrap();
        col.apply_circuit(&c).unwrap();
        assert_eq!(col.live_shards(), 1);
        assert!(col.amplitude(1 << 18).unwrap().approx_eq(C64::ONE, 1e-12));
    }
}
