//! Minimal complex-number arithmetic.
//!
//! The workspace deliberately avoids external numerics crates; this module
//! provides the small slice of complex arithmetic a statevector simulator
//! needs.
//!
//! The arithmetic operators are `#[inline]` so the kernel crates' lane-
//! blocked loops see the component formulas directly (cross-crate calls
//! would otherwise block autovectorization in non-LTO builds). The
//! formulas use plain IEEE multiplies and adds — Rust never contracts
//! them into FMAs behind the source — so results are bit-identical
//! across call sites, which the simulator's determinism contract
//! (identical amplitudes for any worker count) relies on.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// # Example
///
/// ```
/// use qsim::complex::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, -C64::ONE);
/// assert!((C64::from_polar(1.0, std::f64::consts::PI).re + 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a real-valued complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Creates `e^{iθ}` (unit phase).
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²` (the Born-rule probability weight).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `true` if both components are within `eps` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: C64, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics (with a division-produced NaN/inf rather than an explicit
    /// panic) when `self` is zero; callers divide only by unitary-matrix
    /// entries that are nonzero by construction.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64 {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div for C64 {
    type Output = C64;
    // Division via the precomputed reciprocal; the `*` is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, Add::add)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-14;

    #[test]
    fn basic_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(-a, C64::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!(((z * z.conj()).re - 25.0).abs() < EPS);
    }

    #[test]
    fn polar_and_cis() {
        let z = C64::cis(FRAC_PI_2);
        assert!(z.approx_eq(C64::I, EPS));
        let w = C64::from_polar(2.0, PI);
        assert!(w.approx_eq(C64::new(-2.0, 0.0), EPS));
        assert!((z.arg() - FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C64::new(1.5, -2.5);
        let b = C64::new(0.5, 0.25);
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-12));
        assert!((b * b.recip()).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn sum_and_scale() {
        let total: C64 = [C64::ONE, C64::I, C64::new(1.0, 1.0)].into_iter().sum();
        assert_eq!(total, C64::new(2.0, 2.0));
        assert_eq!(C64::new(1.0, -2.0) * 3.0, C64::new(3.0, -6.0));
    }

    #[test]
    fn display_signs() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1.000000+2.000000i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1.000000-2.000000i");
    }
}
