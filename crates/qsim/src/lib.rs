//! # qsim — statevector simulation with device noise
//!
//! The simulation substrate for the TetrisLock reproduction. The paper
//! evaluates obfuscation quality by *running* circuits (Qiskit +
//! `FakeValencia`, 1000 shots) and comparing output distributions; this
//! crate provides the equivalent stack in Rust:
//!
//! * [`Statevector`] — dense pure-state simulation up to
//!   [`statevector::MAX_QUBITS`] qubits on a layered kernel engine:
//!   branch-free stride loops, diagonal/antidiagonal/permutation fast
//!   paths, cost-model-gated single-qubit gate fusion, layer-blocked
//!   cache sweeps, and persistent-pool multi-threaded application for
//!   wide registers (see `docs/qsim.md` in the repository for the
//!   engine internals and the determinism contract).
//! * [`unitary`] — full-unitary extraction and equivalence checking used to
//!   *prove* de-obfuscation correctness in tests.
//! * [`mod@column`] — sparse, spillable single-column simulation
//!   ([`ShardedColumn`]) for witness replay on registers far past the
//!   dense cap: memory scales with amplitude support, not width.
//! * [`noise`] — stochastic Pauli + readout error model (the Monte-Carlo
//!   equivalent of Qiskit's depolarizing/readout noise).
//! * [`Device`] — backend models, including [`Device::fake_valencia`]
//!   mirroring the paper's 5-qubit backend.
//! * [`Sampler`] / [`sampler::Counts`] — shot-based execution producing
//!   Qiskit-style counts dictionaries.
//!
//! # Example
//!
//! ```
//! use qcir::Circuit;
//! use qsim::{Device, Sampler};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! let device = Device::fake_valencia();
//! let counts = Sampler::new(1000)
//!     .with_seed(1)
//!     .run_noisy(&c, device.noise())?;
//! assert_eq!(counts.total(), 1000);
//! # Ok::<(), qsim::SimError>(())
//! ```

// `deny`, not `forbid`: the persistent worker pool in `pool` needs one
// documented lifetime-erasure `unsafe` block (see `pool.rs` for the
// safety argument); everything else in the crate stays unsafe-free and
// any new `unsafe` outside that allow is a hard error.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod column;
pub mod complex;
pub mod density;
pub mod device;
pub mod error;
pub(crate) mod exec;
pub(crate) mod kernels;
pub mod matrix;
pub mod noise;
pub(crate) mod pool;
pub mod sampler;
pub mod statevector;
pub mod unitary;

pub use column::{basis_column_amplitude, ColumnConfig, ShardedColumn, MAX_COLUMN_QUBITS};
pub use complex::C64;
pub use density::DensityMatrix;
pub use device::Device;
pub use error::SimError;
pub use sampler::{Counts, Sampler};
pub use statevector::{resolved_workers, Blocking, ExecConfig, Statevector};
