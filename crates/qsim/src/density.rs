//! Density-matrix simulation (exact noisy reference).
//!
//! The shot sampler in [`crate::sampler`] treats noise with Monte-Carlo
//! Pauli trajectories. This module provides the *exact* counterpart: the
//! full density matrix evolved through unitaries and noise channels. It
//! is exponentially more expensive (4ⁿ entries) and capped at small
//! registers, but it lets the test-suite verify that the trajectory
//! sampler converges to the true distribution — the kind of
//! cross-validation a simulation paper's reviewers would ask for.

use crate::complex::C64;
use crate::error::SimError;
use crate::matrix::{gate_matrix, Matrix};
use crate::noise::NoiseModel;
use qcir::{Circuit, Gate, Instruction, Qubit};

/// Maximum register size for density-matrix simulation (4⁸ = 65536
/// entries per state is still cheap; beyond ~10 the matrices get heavy).
pub const MAX_DENSITY_QUBITS: u32 = 8;

/// How far the trace of ρ may drift from 1 after a noisy evolution
/// before a `qsim.density.trace_drift` diagnostic event is emitted.
pub const TRACE_DRIFT_TOLERANCE: f64 = 1e-9;

static NOISE_CHANNELS: qobs::Counter = qobs::Counter::new("qsim.density.noise_channels");

/// An n-qubit mixed state ρ as a dense `2ⁿ × 2ⁿ` complex matrix.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qsim::density::DensityMatrix;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut rho = DensityMatrix::zero(2)?;
/// rho.apply_circuit(&bell)?;
/// let probs = rho.probabilities();
/// assert!((probs[0] - 0.5).abs() < 1e-12);
/// assert!((probs[3] - 0.5).abs() < 1e-12);
/// # Ok::<(), qsim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DensityMatrix {
    num_qubits: u32,
    dim: usize,
    /// Row-major dense storage, `rho[r * dim + c]`.
    data: Vec<C64>,
}

impl DensityMatrix {
    /// Creates `|0…0⟩⟨0…0|`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] beyond [`MAX_DENSITY_QUBITS`].
    pub fn zero(num_qubits: u32) -> Result<Self, SimError> {
        if num_qubits == 0 || num_qubits > MAX_DENSITY_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_DENSITY_QUBITS,
            });
        }
        let dim = 1usize << num_qubits;
        let mut data = vec![C64::ZERO; dim * dim];
        data[0] = C64::ONE;
        Ok(DensityMatrix {
            num_qubits,
            dim,
            data,
        })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// ρ entry at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> C64 {
        self.data[row * self.dim + col]
    }

    /// Trace of ρ (1.0 for any physical state).
    pub fn trace(&self) -> C64 {
        (0..self.dim).map(|i| self.get(i, i)).sum()
    }

    /// Purity `Tr(ρ²)`: 1 for pure states, `1/2ⁿ` for the maximally
    /// mixed state.
    pub fn purity(&self) -> f64 {
        let mut acc = 0.0;
        for r in 0..self.dim {
            for c in 0..self.dim {
                // Tr(ρ²) = Σ_{r,c} ρ_{rc} ρ_{cr}; with ρ Hermitian this is
                // Σ |ρ_{rc}|².
                acc += (self.get(r, c) * self.get(c, r)).re;
            }
        }
        acc
    }

    /// Computational-basis probabilities (the diagonal).
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim).map(|i| self.get(i, i).re).collect()
    }

    /// Applies a unitary instruction: `ρ → UρU†`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitMismatch`] for out-of-range operands.
    pub fn apply(&mut self, inst: &Instruction) -> Result<(), SimError> {
        for q in inst.qubits() {
            if q.raw() >= self.num_qubits {
                return Err(SimError::QubitMismatch {
                    circuit: q.raw() + 1,
                    state: self.num_qubits,
                });
            }
        }
        let u = gate_matrix(inst.gate());
        self.conjugate(&u, inst.qubits());
        Ok(())
    }

    /// Applies all gates of `circuit` (no noise).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitMismatch`] if the circuit is larger than
    /// the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.num_qubits() > self.num_qubits {
            return Err(SimError::QubitMismatch {
                circuit: circuit.num_qubits(),
                state: self.num_qubits,
            });
        }
        for inst in circuit.iter() {
            self.apply(inst)?;
        }
        Ok(())
    }

    /// Applies `circuit` with the exact channel semantics of `noise`: a
    /// per-gate depolarizing-style channel matching
    /// [`NoiseModel::sample_gate_error`] (with probability `p` one
    /// uniformly chosen operand suffers a uniformly chosen Pauli),
    /// followed by the readout channel on the diagonal (see
    /// [`DensityMatrix::readout_probabilities`]).
    ///
    /// # Errors
    ///
    /// Same as [`DensityMatrix::apply_circuit`].
    pub fn apply_circuit_noisy(
        &mut self,
        circuit: &Circuit,
        noise: &NoiseModel,
    ) -> Result<(), SimError> {
        if circuit.num_qubits() > self.num_qubits {
            return Err(SimError::QubitMismatch {
                circuit: circuit.num_qubits(),
                state: self.num_qubits,
            });
        }
        for inst in circuit.iter() {
            self.apply(inst)?;
            let arity = inst.gate().arity();
            let p = noise.gate_error(arity);
            if p > 0.0 {
                NOISE_CHANNELS.incr();
                // Mixture: (1-p)·ρ + p · uniform over (operand, pauli).
                let share = p / (arity as f64 * 3.0);
                let mut mixed = self.scaled(1.0 - p);
                for q in inst.qubits() {
                    for pauli in [Gate::X, Gate::Y, Gate::Z] {
                        let mut branch = self.clone();
                        branch.conjugate(&gate_matrix(&pauli), &[*q]);
                        mixed.add_scaled(&branch, share);
                    }
                }
                *self = mixed;
            }
        }
        // Every channel above is trace-preserving; drift signals a bad
        // noise model or accumulated float error. Diagnostics used to be
        // ad-hoc stderr prints — they now flow through the level-gated
        // qobs event stream so traces capture them uniformly.
        let trace = self.trace().re;
        if (trace - 1.0).abs() > TRACE_DRIFT_TOLERANCE {
            qobs::event(
                "qsim.density.trace_drift",
                &[
                    ("trace", qobs::AttrValue::from(trace)),
                    ("wires", qobs::AttrValue::from(self.num_qubits)),
                    ("gates", qobs::AttrValue::from(circuit.gate_count())),
                ],
            );
        }
        Ok(())
    }

    /// Measurement distribution including readout error: the diagonal of
    /// ρ pushed through the per-qubit confusion matrices.
    pub fn readout_probabilities(&self, noise: &NoiseModel) -> Vec<f64> {
        let mut probs = self.probabilities();
        for q in 0..self.num_qubits as usize {
            let err = noise.readout_for(q);
            if err.p0_given_1 == 0.0 && err.p1_given_0 == 0.0 {
                continue;
            }
            let bit = 1usize << q;
            let mut next = vec![0.0f64; probs.len()];
            for (i, &p) in probs.iter().enumerate() {
                if i & bit == 0 {
                    next[i] += p * (1.0 - err.p1_given_0);
                    next[i | bit] += p * err.p1_given_0;
                } else {
                    next[i] += p * (1.0 - err.p0_given_1);
                    next[i & !bit] += p * err.p0_given_1;
                }
            }
            probs = next;
        }
        probs
    }

    /// ρ ← U ρ U† with `u` acting on the given operand qubits
    /// (little-endian operand order, matching [`gate_matrix`]).
    fn conjugate(&mut self, u: &Matrix, qubits: &[Qubit]) {
        let k = qubits.len();
        let sub = 1usize << k;
        debug_assert_eq!(u.dim(), sub);
        let bits: Vec<usize> = qubits.iter().map(|q| 1usize << q.index()).collect();
        let mask: usize = bits.iter().sum();

        let index_of = |base: usize, pattern: usize| -> usize {
            let mut idx = base;
            for (b, bit) in bits.iter().enumerate() {
                if pattern & (1 << b) != 0 {
                    idx |= bit;
                }
            }
            idx
        };

        // Left multiply: rows mix. For each column c and each row-group.
        let mut next = self.data.clone();
        for col in 0..self.dim {
            for base in 0..self.dim {
                if base & mask != 0 {
                    continue;
                }
                let mut gathered = vec![C64::ZERO; sub];
                for (p, g) in gathered.iter_mut().enumerate() {
                    *g = self.data[index_of(base, p) * self.dim + col];
                }
                for r in 0..sub {
                    let mut acc = C64::ZERO;
                    for (p, &g) in gathered.iter().enumerate() {
                        acc += u.get(r, p) * g;
                    }
                    next[index_of(base, r) * self.dim + col] = acc;
                }
            }
        }
        // Right multiply by U†: columns mix with conjugated coefficients.
        let mut out = next.clone();
        for row in 0..self.dim {
            for base in 0..self.dim {
                if base & mask != 0 {
                    continue;
                }
                let mut gathered = vec![C64::ZERO; sub];
                for (p, g) in gathered.iter_mut().enumerate() {
                    *g = next[row * self.dim + index_of(base, p)];
                }
                for c in 0..sub {
                    let mut acc = C64::ZERO;
                    for (p, &g) in gathered.iter().enumerate() {
                        // (ρU†)_{row,c} = Σ_p ρ_{row,p} conj(U_{c,p})
                        acc += g * u.get(c, p).conj();
                    }
                    out[row * self.dim + index_of(base, c)] = acc;
                }
            }
        }
        self.data = out;
    }

    fn scaled(&self, k: f64) -> DensityMatrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v = v.scale(k);
        }
        out
    }

    fn add_scaled(&mut self, other: &DensityMatrix, k: f64) {
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b.scale(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::sampler::Sampler;
    use crate::statevector::Statevector;

    const EPS: f64 = 1e-10;

    #[test]
    fn zero_state_is_pure_projector() {
        let rho = DensityMatrix::zero(2).unwrap();
        assert!((rho.trace().re - 1.0).abs() < EPS);
        assert!((rho.purity() - 1.0).abs() < EPS);
        assert_eq!(rho.probabilities()[0], 1.0);
    }

    #[test]
    fn rejects_oversized() {
        assert!(DensityMatrix::zero(0).is_err());
        assert!(DensityMatrix::zero(MAX_DENSITY_QUBITS + 1).is_err());
    }

    #[test]
    fn pure_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).ccx(0, 1, 2).rz(0.4, 2).swap(0, 2);
        let sv = Statevector::from_circuit(&c).unwrap();
        let mut rho = DensityMatrix::zero(3).unwrap();
        rho.apply_circuit(&c).unwrap();
        assert!((rho.trace().re - 1.0).abs() < EPS);
        assert!((rho.purity() - 1.0).abs() < EPS);
        for (i, p) in sv.probabilities().iter().enumerate() {
            assert!(
                (rho.probabilities()[i] - p).abs() < EPS,
                "diagonal mismatch at {i}"
            );
        }
    }

    #[test]
    fn depolarizing_reduces_purity_but_keeps_trace() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).x(1).cx(1, 0);
        let noise = NoiseModel::builder()
            .one_qubit_error(0.05)
            .two_qubit_error(0.1)
            .build();
        let mut rho = DensityMatrix::zero(2).unwrap();
        rho.apply_circuit_noisy(&c, &noise).unwrap();
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
        assert!(rho.purity() < 1.0 - 1e-3, "purity = {}", rho.purity());
    }

    #[test]
    fn readout_channel_conserves_probability() {
        let mut rho = DensityMatrix::zero(3).unwrap();
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1);
        rho.apply_circuit(&c).unwrap();
        let noise = NoiseModel::builder().readout_error(0.1).build();
        let probs = rho.readout_probabilities(&noise);
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Readout error must leak mass into odd-parity outcomes.
        assert!(probs[0b001] > 0.0);
    }

    #[test]
    fn trajectory_sampler_converges_to_density_matrix() {
        // The headline cross-validation: Monte-Carlo trajectories vs the
        // exact channel, on a circuit mixing classical and quantum gates.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).x(2).ccx(0, 2, 1).t(1).cx(1, 2);
        let noise = NoiseModel::builder()
            .one_qubit_error(0.02)
            .two_qubit_error(0.04)
            .readout_error(0.03)
            .build();

        let mut rho = DensityMatrix::zero(3).unwrap();
        rho.apply_circuit_noisy(&c, &noise).unwrap();
        let exact = rho.readout_probabilities(&noise);

        let counts = Sampler::new(60_000)
            .with_seed(42)
            .run_noisy(&c, &noise)
            .unwrap();
        for (i, &p) in exact.iter().enumerate() {
            let empirical = counts.probability(i);
            assert!(
                (empirical - p).abs() < 0.01,
                "outcome {i}: exact {p:.4} vs sampled {empirical:.4}"
            );
        }
    }

    #[test]
    fn classical_fast_path_converges_to_density_matrix() {
        // Same cross-validation for the classical bit-propagation path.
        let bench_circuit = {
            let mut c = Circuit::new(4);
            c.x(0).cx(0, 1).ccx(0, 1, 2).mcx(&[0, 1, 2], 3).swap(2, 3);
            c
        };
        let noise = NoiseModel::builder()
            .one_qubit_error(0.03)
            .two_qubit_error(0.05)
            .readout_error(0.02)
            .build();

        let mut rho = DensityMatrix::zero(4).unwrap();
        rho.apply_circuit_noisy(&bench_circuit, &noise).unwrap();
        let exact = rho.readout_probabilities(&noise);

        let counts = Sampler::new(60_000)
            .with_seed(7)
            .run_noisy(&bench_circuit, &noise)
            .unwrap();
        for (i, &p) in exact.iter().enumerate() {
            let empirical = counts.probability(i);
            assert!(
                (empirical - p).abs() < 0.01,
                "outcome {i}: exact {p:.4} vs sampled {empirical:.4}"
            );
        }
    }

    #[test]
    fn maximally_mixing_noise_approaches_uniform() {
        let mut c = Circuit::new(1);
        // Long chain of noisy gates.
        for _ in 0..200 {
            c.x(0);
        }
        let noise = NoiseModel::builder().one_qubit_error(0.5).build();
        let mut rho = DensityMatrix::zero(1).unwrap();
        rho.apply_circuit_noisy(&c, &noise).unwrap();
        let probs = rho.probabilities();
        assert!((probs[0] - 0.5).abs() < 0.05, "p0 = {}", probs[0]);
        assert!((rho.purity() - 0.5).abs() < 0.05);
    }
}
