//! Stochastic noise model.
//!
//! The paper evaluates on Qiskit's `FakeValencia` backend, which attaches
//! the calibrated noise of the retired `ibmq_valencia` device to the
//! simulator. This module reproduces the behaviourally relevant part of
//! that model with *stochastic Pauli trajectories*:
//!
//! * after every gate, with the gate-class depolarizing probability, one
//!   uniformly random operand qubit suffers a uniformly random Pauli
//!   (X, Y or Z) — one error draw per gate, matching how calibration data
//!   quotes per-gate (not per-operand) error rates;
//! * at measurement, each classical bit flips with an asymmetric readout
//!   error probability.
//!
//! This is the standard Pauli-twirled approximation of a depolarizing
//! channel. Under shot-based sampling (what the paper's TVD and accuracy
//! metrics consume) it is statistically equivalent to the density-matrix
//! treatment while scaling to 12-qubit benchmarks trivially.

use qcir::Gate;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-qubit asymmetric readout error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadoutError {
    /// Probability of reading 1 when the qubit is 0.
    pub p1_given_0: f64,
    /// Probability of reading 0 when the qubit is 1.
    pub p0_given_1: f64,
}

impl ReadoutError {
    /// Symmetric readout error with flip probability `p`.
    pub fn symmetric(p: f64) -> Self {
        ReadoutError {
            p1_given_0: p,
            p0_given_1: p,
        }
    }

    /// A noiseless readout.
    pub fn ideal() -> Self {
        ReadoutError::symmetric(0.0)
    }
}

/// Which Pauli error (if any) hits a qubit after a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PauliKind {
    /// Bit flip.
    X,
    /// Bit+phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl PauliKind {
    /// The corresponding gate.
    pub fn gate(self) -> Gate {
        match self {
            PauliKind::X => Gate::X,
            PauliKind::Y => Gate::Y,
            PauliKind::Z => Gate::Z,
        }
    }
}

/// Depolarizing + readout noise parameters.
///
/// # Example
///
/// ```
/// use qsim::noise::NoiseModel;
///
/// let noise = NoiseModel::builder()
///     .one_qubit_error(1e-3)
///     .two_qubit_error(1e-2)
///     .readout_error(0.02)
///     .build();
/// assert!(noise.is_noisy());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Depolarizing probability after each single-qubit gate.
    pub one_qubit_depolarizing: f64,
    /// Depolarizing probability (per operand) after each multi-qubit gate.
    pub two_qubit_depolarizing: f64,
    /// Readout error applied per measured qubit. Index is the qubit wire;
    /// wires beyond the vector reuse the last entry (or ideal if empty).
    pub readout: Vec<ReadoutError>,
}

impl NoiseModel {
    /// An exactly noiseless model.
    pub fn ideal() -> Self {
        NoiseModel {
            one_qubit_depolarizing: 0.0,
            two_qubit_depolarizing: 0.0,
            readout: Vec::new(),
        }
    }

    /// Starts a [`NoiseModelBuilder`].
    pub fn builder() -> NoiseModelBuilder {
        NoiseModelBuilder::default()
    }

    /// `true` if any error probability is positive.
    pub fn is_noisy(&self) -> bool {
        self.one_qubit_depolarizing > 0.0
            || self.two_qubit_depolarizing > 0.0
            || self
                .readout
                .iter()
                .any(|r| r.p0_given_1 > 0.0 || r.p1_given_0 > 0.0)
    }

    /// Readout error for a given wire.
    pub fn readout_for(&self, qubit: usize) -> ReadoutError {
        self.readout
            .get(qubit)
            .or_else(|| self.readout.last())
            .copied()
            .unwrap_or_else(ReadoutError::ideal)
    }

    /// Depolarizing probability for a gate of the given arity.
    pub fn gate_error(&self, arity: usize) -> f64 {
        if arity <= 1 {
            self.one_qubit_depolarizing
        } else {
            self.two_qubit_depolarizing
        }
    }

    /// Samples a Pauli error (or `None`) for one operand of a gate with the
    /// given arity.
    pub fn sample_pauli<R: Rng + ?Sized>(&self, arity: usize, rng: &mut R) -> Option<PauliKind> {
        let p = self.gate_error(arity);
        if p <= 0.0 || rng.gen::<f64>() >= p {
            return None;
        }
        Some(match rng.gen_range(0..3u8) {
            0 => PauliKind::X,
            1 => PauliKind::Y,
            _ => PauliKind::Z,
        })
    }

    /// Samples the per-gate error event: with probability
    /// [`NoiseModel::gate_error`] returns `(operand_index, pauli)` where
    /// the operand is drawn uniformly from `0..arity`. One draw per gate.
    pub fn sample_gate_error<R: Rng + ?Sized>(
        &self,
        arity: usize,
        rng: &mut R,
    ) -> Option<(usize, PauliKind)> {
        let pauli = self.sample_pauli(arity, rng)?;
        Some((rng.gen_range(0..arity.max(1)), pauli))
    }

    /// Applies readout error to a measured basis index over `num_qubits`
    /// wires, returning the (possibly corrupted) observed index.
    pub fn corrupt_readout<R: Rng + ?Sized>(
        &self,
        outcome: usize,
        num_qubits: u32,
        rng: &mut R,
    ) -> usize {
        let mut observed = outcome;
        for q in 0..num_qubits as usize {
            let err = self.readout_for(q);
            let bit = (outcome >> q) & 1;
            let flip_p = if bit == 1 {
                err.p0_given_1
            } else {
                err.p1_given_0
            };
            if flip_p > 0.0 && rng.gen::<f64>() < flip_p {
                observed ^= 1 << q;
            }
        }
        observed
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::ideal()
    }
}

/// Builder for [`NoiseModel`].
#[derive(Debug, Clone, Default)]
pub struct NoiseModelBuilder {
    one_qubit: f64,
    two_qubit: f64,
    readout: Vec<ReadoutError>,
}

impl NoiseModelBuilder {
    /// Sets the single-qubit depolarizing probability.
    pub fn one_qubit_error(mut self, p: f64) -> Self {
        self.one_qubit = p;
        self
    }

    /// Sets the multi-qubit depolarizing probability (per operand).
    pub fn two_qubit_error(mut self, p: f64) -> Self {
        self.two_qubit = p;
        self
    }

    /// Sets a uniform symmetric readout error for all qubits.
    pub fn readout_error(mut self, p: f64) -> Self {
        self.readout = vec![ReadoutError::symmetric(p)];
        self
    }

    /// Sets per-qubit readout errors.
    pub fn readout_errors(mut self, errors: Vec<ReadoutError>) -> Self {
        self.readout = errors;
        self
    }

    /// Finalizes the model.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn build(self) -> NoiseModel {
        for p in [self.one_qubit, self.two_qubit] {
            assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        }
        for r in &self.readout {
            assert!(
                (0.0..=1.0).contains(&r.p0_given_1),
                "readout prob outside [0,1]"
            );
            assert!(
                (0.0..=1.0).contains(&r.p1_given_0),
                "readout prob outside [0,1]"
            );
        }
        NoiseModel {
            one_qubit_depolarizing: self.one_qubit,
            two_qubit_depolarizing: self.two_qubit,
            readout: self.readout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_model_is_quiet() {
        let m = NoiseModel::ideal();
        assert!(!m.is_noisy());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(m.sample_pauli(1, &mut rng).is_none());
            assert!(m.sample_pauli(2, &mut rng).is_none());
            assert_eq!(m.corrupt_readout(0b101, 3, &mut rng), 0b101);
        }
    }

    #[test]
    fn builder_sets_fields() {
        let m = NoiseModel::builder()
            .one_qubit_error(0.001)
            .two_qubit_error(0.01)
            .readout_error(0.02)
            .build();
        assert_eq!(m.gate_error(1), 0.001);
        assert_eq!(m.gate_error(2), 0.01);
        assert_eq!(m.gate_error(3), 0.01);
        assert_eq!(m.readout_for(0).p0_given_1, 0.02);
        assert!(m.is_noisy());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn builder_rejects_bad_probability() {
        NoiseModel::builder().one_qubit_error(1.5).build();
    }

    #[test]
    fn readout_fallback_uses_last_entry() {
        let m = NoiseModel::builder()
            .readout_errors(vec![
                ReadoutError::symmetric(0.1),
                ReadoutError::symmetric(0.2),
            ])
            .build();
        assert_eq!(m.readout_for(0).p1_given_0, 0.1);
        assert_eq!(m.readout_for(1).p1_given_0, 0.2);
        assert_eq!(m.readout_for(9).p1_given_0, 0.2);
    }

    #[test]
    fn pauli_sampling_rate_tracks_probability() {
        let m = NoiseModel::builder().one_qubit_error(0.25).build();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| m.sample_pauli(1, &mut rng).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn readout_corruption_rate() {
        let m = NoiseModel::builder().readout_error(0.3).build();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let flips = (0..n)
            .filter(|_| m.corrupt_readout(0, 1, &mut rng) == 1)
            .count();
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn pauli_kinds_map_to_gates() {
        assert_eq!(PauliKind::X.gate(), Gate::X);
        assert_eq!(PauliKind::Y.gate(), Gate::Y);
        assert_eq!(PauliKind::Z.gate(), Gate::Z);
    }
}
