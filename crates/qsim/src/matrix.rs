//! Gate matrices.
//!
//! Maps every [`Gate`] to its unitary matrix over its operand qubits, in the
//! little-endian qubit convention used throughout the workspace (operand
//! order `[q0, q1]` means `q0` is the *least*-significant index bit of the
//! matrix).

use crate::complex::C64;
use qcir::Gate;
use std::f64::consts::FRAC_1_SQRT_2;

/// A dense square complex matrix (row-major).
///
/// # Example
///
/// ```
/// use qsim::matrix::Matrix;
/// use qsim::complex::C64;
///
/// let x = Matrix::from_rows(&[
///     &[C64::ZERO, C64::ONE],
///     &[C64::ONE, C64::ZERO],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert_eq!(x.mul(&x), Matrix::identity(2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    dim: usize,
    data: Vec<C64>,
}

impl Matrix {
    /// Creates a zero matrix of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        Matrix {
            dim,
            data: vec![C64::ZERO; dim * dim],
        }
    }

    /// Creates the identity matrix of the given dimension.
    pub fn identity(dim: usize) -> Self {
        let mut m = Matrix::zeros(dim);
        for i in 0..dim {
            m.set(i, i, C64::ONE);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are not all of length `rows.len()`.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        let dim = rows.len();
        let mut m = Matrix::zeros(dim);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), dim, "matrix rows must be square");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Matrix dimension (row count).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> C64 {
        self.data[row * self.dim + col]
    }

    /// Sets entry `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: C64) {
        self.data[row * self.dim + col] = value;
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.dim, rhs.dim, "dimension mismatch");
        let mut out = Matrix::zeros(self.dim);
        for i in 0..self.dim {
            for k in 0..self.dim {
                let a = self.get(i, k);
                if a == C64::ZERO {
                    continue;
                }
                for j in 0..self.dim {
                    let v = out.get(i, j) + a * rhs.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Matrix {
        let mut out = Matrix::zeros(self.dim);
        for i in 0..self.dim {
            for j in 0..self.dim {
                out.set(j, i, self.get(i, j).conj());
            }
        }
        out
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let dim = self.dim * rhs.dim;
        let mut out = Matrix::zeros(dim);
        for i in 0..self.dim {
            for j in 0..self.dim {
                let a = self.get(i, j);
                for k in 0..rhs.dim {
                    for l in 0..rhs.dim {
                        out.set(i * rhs.dim + k, j * rhs.dim + l, a * rhs.get(k, l));
                    }
                }
            }
        }
        out
    }

    /// `true` if `U·U† = I` within `eps` per entry.
    pub fn is_unitary(&self, eps: f64) -> bool {
        let product = self.mul(&self.dagger());
        let identity = Matrix::identity(self.dim);
        product.approx_eq(&identity, eps)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Matrix, eps: f64) -> bool {
        self.dim == other.dim
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, eps))
    }

    /// Approximate equality up to a global phase: finds the first
    /// significant entry and compares after phase alignment.
    pub fn approx_eq_up_to_phase(&self, other: &Matrix, eps: f64) -> bool {
        if self.dim != other.dim {
            return false;
        }
        let pivot = self
            .data
            .iter()
            .zip(&other.data)
            .find(|(a, b)| a.abs() > 1e-9 && b.abs() > 1e-9);
        let phase = match pivot {
            Some((a, b)) => *b / *a,
            None => return self.approx_eq(other, eps),
        };
        self.data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| (*a * phase).approx_eq(*b, eps))
    }
}

/// Returns the unitary matrix of `gate` over its operand qubits.
///
/// For an n-operand gate the result is `2ⁿ × 2ⁿ`; basis index bit `k`
/// corresponds to operand `k` (little-endian: operand 0 is the least
/// significant bit).
///
/// # Example
///
/// ```
/// use qcir::Gate;
/// use qsim::matrix::gate_matrix;
///
/// let h = gate_matrix(&Gate::H);
/// assert!(h.is_unitary(1e-12));
/// let ccx = gate_matrix(&Gate::CCX);
/// assert_eq!(ccx.dim(), 8);
/// ```
pub fn gate_matrix(gate: &Gate) -> Matrix {
    let h = C64::real(FRAC_1_SQRT_2);
    match gate {
        Gate::I => Matrix::identity(2),
        Gate::X => Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]),
        Gate::Y => Matrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]]),
        Gate::Z => Matrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::ONE]]),
        Gate::H => Matrix::from_rows(&[&[h, h], &[h, -h]]),
        Gate::S => Matrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, C64::I]]),
        Gate::Sdg => Matrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::I]]),
        Gate::T => Matrix::from_rows(&[
            &[C64::ONE, C64::ZERO],
            &[C64::ZERO, C64::cis(std::f64::consts::FRAC_PI_4)],
        ]),
        Gate::Tdg => Matrix::from_rows(&[
            &[C64::ONE, C64::ZERO],
            &[C64::ZERO, C64::cis(-std::f64::consts::FRAC_PI_4)],
        ]),
        Gate::Sx => {
            let p = C64::new(0.5, 0.5);
            let m = C64::new(0.5, -0.5);
            Matrix::from_rows(&[&[p, m], &[m, p]])
        }
        Gate::Sxdg => {
            let p = C64::new(0.5, 0.5);
            let m = C64::new(0.5, -0.5);
            Matrix::from_rows(&[&[m, p], &[p, m]])
        }
        Gate::Rx(a) => {
            let c = C64::real((a / 2.0).cos());
            let s = C64::new(0.0, -(a / 2.0).sin());
            Matrix::from_rows(&[&[c, s], &[s, c]])
        }
        Gate::Ry(a) => {
            let c = C64::real((a / 2.0).cos());
            let s = (a / 2.0).sin();
            Matrix::from_rows(&[&[c, C64::real(-s)], &[C64::real(s), c]])
        }
        Gate::Rz(a) => Matrix::from_rows(&[
            &[C64::cis(-a / 2.0), C64::ZERO],
            &[C64::ZERO, C64::cis(a / 2.0)],
        ]),
        Gate::P(a) => Matrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, C64::cis(*a)]]),
        Gate::U(theta, phi, lambda) => {
            let c = (theta / 2.0).cos();
            let s = (theta / 2.0).sin();
            Matrix::from_rows(&[
                &[C64::real(c), C64::cis(*lambda).scale(-s)],
                &[C64::cis(*phi).scale(s), C64::cis(phi + lambda).scale(c)],
            ])
        }
        Gate::CX => controlled(&gate_matrix(&Gate::X)),
        Gate::CY => controlled(&gate_matrix(&Gate::Y)),
        Gate::CZ => controlled(&gate_matrix(&Gate::Z)),
        Gate::CH => controlled(&gate_matrix(&Gate::H)),
        Gate::CP(a) => controlled(&gate_matrix(&Gate::P(*a))),
        Gate::CRz(a) => controlled(&gate_matrix(&Gate::Rz(*a))),
        Gate::Swap => {
            let mut m = Matrix::zeros(4);
            m.set(0, 0, C64::ONE);
            m.set(1, 2, C64::ONE);
            m.set(2, 1, C64::ONE);
            m.set(3, 3, C64::ONE);
            m
        }
        Gate::CCX => {
            // Controls are operands 0 and 1 (bits 0 and 1), target bit 2.
            let mut m = Matrix::identity(8);
            m.set(3, 3, C64::ZERO);
            m.set(7, 7, C64::ZERO);
            m.set(3, 7, C64::ONE);
            m.set(7, 3, C64::ONE);
            m
        }
        Gate::CSwap => {
            // Control is bit 0, swapped wires are bits 1 and 2.
            let mut m = Matrix::identity(8);
            // With control set (bit0 = 1): swap bits 1 and 2 → basis 3 (011) ↔ 5 (101).
            m.set(3, 3, C64::ZERO);
            m.set(5, 5, C64::ZERO);
            m.set(3, 5, C64::ONE);
            m.set(5, 3, C64::ONE);
            m
        }
        Gate::Mcx(controls) => {
            let n = *controls as usize + 1;
            let dim = 1usize << n;
            let mut m = Matrix::identity(dim);
            // Controls are bits 0..n-1, target is the most significant bit.
            let control_mask = (1usize << (n - 1)) - 1;
            let a = control_mask; // controls set, target 0
            let b = control_mask | (1 << (n - 1)); // controls set, target 1
            m.set(a, a, C64::ZERO);
            m.set(b, b, C64::ZERO);
            m.set(a, b, C64::ONE);
            m.set(b, a, C64::ONE);
            m
        }
    }
}

/// Builds the controlled version of a single-qubit matrix with the control
/// on bit 0 and the payload on bit 1 (little-endian: basis `b1 b0`).
fn controlled(u: &Matrix) -> Matrix {
    assert_eq!(u.dim(), 2);
    let mut m = Matrix::identity(4);
    // Rows/cols where control bit (bit 0) is 1: indices 1 (target 0) and 3
    // (target 1).
    m.set(1, 1, u.get(0, 0));
    m.set(1, 3, u.get(0, 1));
    m.set(3, 1, u.get(1, 0));
    m.set(3, 3, u.get(1, 1));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;

    const EPS: f64 = 1e-12;

    fn all_gates() -> Vec<Gate> {
        vec![
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(0.37),
            Gate::Ry(-1.1),
            Gate::Rz(2.2),
            Gate::P(0.7),
            Gate::U(0.3, 0.5, -0.7),
            Gate::CX,
            Gate::CY,
            Gate::CZ,
            Gate::CH,
            Gate::CP(0.4),
            Gate::CRz(-0.6),
            Gate::Swap,
            Gate::CCX,
            Gate::CSwap,
            Gate::Mcx(3),
            Gate::Mcx(4),
        ]
    }

    #[test]
    fn every_gate_matrix_is_unitary() {
        for g in all_gates() {
            let m = gate_matrix(&g);
            assert!(m.is_unitary(EPS), "{g} is not unitary");
            assert_eq!(m.dim(), 1 << g.arity(), "{g} has wrong dimension");
        }
    }

    #[test]
    fn adjoint_matrix_matches_dagger() {
        for g in all_gates() {
            let m = gate_matrix(&g);
            let adj = gate_matrix(&g.adjoint());
            assert!(adj.approx_eq(&m.dagger(), EPS), "adjoint mismatch for {g}");
        }
    }

    #[test]
    fn self_inverse_gates_square_to_identity() {
        for g in all_gates().into_iter().filter(|g| g.is_self_inverse()) {
            let m = gate_matrix(&g);
            assert!(
                m.mul(&m).approx_eq(&Matrix::identity(m.dim()), EPS),
                "{g}² ≠ I"
            );
        }
    }

    #[test]
    fn sx_squares_to_x() {
        let sx = gate_matrix(&Gate::Sx);
        let x = gate_matrix(&Gate::X);
        assert!(sx.mul(&sx).approx_eq_up_to_phase(&x, EPS));
    }

    #[test]
    fn hzh_equals_x() {
        let h = gate_matrix(&Gate::H);
        let z = gate_matrix(&Gate::Z);
        let x = gate_matrix(&Gate::X);
        assert!(h.mul(&z).mul(&h).approx_eq(&x, EPS));
    }

    #[test]
    fn s_is_t_squared() {
        let t = gate_matrix(&Gate::T);
        let s = gate_matrix(&Gate::S);
        assert!(t.mul(&t).approx_eq(&s, EPS));
    }

    #[test]
    fn rz_equals_p_up_to_phase() {
        let rz = gate_matrix(&Gate::Rz(0.8));
        let p = gate_matrix(&Gate::P(0.8));
        assert!(rz.approx_eq_up_to_phase(&p, EPS));
        assert!(!rz.approx_eq(&p, EPS));
    }

    #[test]
    fn u_covers_standard_gates() {
        use std::f64::consts::{FRAC_PI_2, PI};
        // U(π/2, 0, π) = H
        let u = gate_matrix(&Gate::U(FRAC_PI_2, 0.0, PI));
        assert!(u.approx_eq(&gate_matrix(&Gate::H), EPS));
        // U(π, 0, π) = X
        let u = gate_matrix(&Gate::U(PI, 0.0, PI));
        assert!(u.approx_eq(&gate_matrix(&Gate::X), EPS));
    }

    #[test]
    fn cx_truth_table() {
        // little-endian: operand0 = control = bit0.
        let cx = gate_matrix(&Gate::CX);
        // |control=1, target=0> = index 1 → |11> = index 3.
        assert_eq!(cx.get(3, 1), C64::ONE);
        assert_eq!(cx.get(1, 3), C64::ONE);
        // |00> and |10>(target=1,control=0 → index 2) fixed.
        assert_eq!(cx.get(0, 0), C64::ONE);
        assert_eq!(cx.get(2, 2), C64::ONE);
    }

    #[test]
    fn mcx2_matches_ccx() {
        let ccx = gate_matrix(&Gate::CCX);
        let mcx = gate_matrix(&Gate::Mcx(2));
        assert!(ccx.approx_eq(&mcx, EPS));
    }

    #[test]
    fn kron_dimension_and_identity() {
        let x = gate_matrix(&Gate::X);
        let i2 = Matrix::identity(2);
        let k = x.kron(&i2);
        assert_eq!(k.dim(), 4);
        assert!(k.is_unitary(EPS));
        let ii = i2.kron(&i2);
        assert!(ii.approx_eq(&Matrix::identity(4), EPS));
    }

    #[test]
    fn phase_equality_detects_difference() {
        let x = gate_matrix(&Gate::X);
        let z = gate_matrix(&Gate::Z);
        assert!(!x.approx_eq_up_to_phase(&z, EPS));
    }
}
