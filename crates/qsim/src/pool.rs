//! Persistent kernel worker pool.
//!
//! PR 4's drivers spawned fresh OS threads through `std::thread::scope`
//! for every gate application — at 2¹⁸+ amplitudes the spawn/join cost
//! is tolerable but never free, and on deep circuits it is paid tens of
//! thousands of times. This module keeps one process-wide set of worker
//! threads (grown lazily, never torn down) and hands them borrowed
//! closures through a scoped API with the same blocking guarantee as
//! `std::thread::scope`: [`scope`] does not return until every task
//! spawned inside it has finished running.
//!
//! That guarantee is what makes the one `unsafe` block below sound. A
//! task is a `Box<dyn FnOnce + Send + 'scope>` borrowing the caller's
//! amplitude slices; the pool's queue is `'static`, so the box's
//! lifetime is erased before enqueueing. The erasure is justified
//! because the borrow cannot outlive the data: [`scope`] keeps an
//! internal guard that drains the queue and blocks on the scope's
//! pending-task count — on normal return *and* on unwind — before the
//! borrowed frame is popped. Workers run tasks under `catch_unwind`
//! with the decrement in a drop guard, so a panicking kernel cannot
//! deadlock the scope; the panic is re-raised on the caller's thread.
//!
//! Worker-count policy lives here too: [`resolve_workers`] honours the
//! `QSIM_WORKERS` environment override before falling back to
//! `std::thread::available_parallelism`, both clamped to
//! [`MAX_WORKERS`] — the kernels are memory-bandwidth-bound and extra
//! workers only contend.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// Pool utilization counters: tasks that ran on a background worker vs
// on the spawning caller during its drain phase. worker/spawned is the
// pool's effective parallel fraction for a run.
static POOL_SCOPES: qobs::Counter = qobs::Counter::new("qsim.pool.scopes");
static POOL_TASKS_SPAWNED: qobs::Counter = qobs::Counter::new("qsim.pool.tasks_spawned");
static POOL_TASKS_WORKER: qobs::Counter = qobs::Counter::new("qsim.pool.tasks_on_worker");
static POOL_TASKS_CALLER: qobs::Counter = qobs::Counter::new("qsim.pool.tasks_on_caller");

/// Upper bound on kernel worker threads (beyond ~8 the kernels are
/// memory-bandwidth-bound and extra workers only contend).
pub(crate) const MAX_WORKERS: usize = 8;

/// A lifetime-erased unit of work paired with the scope it belongs to.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Per-[`scope`] completion state shared between the caller and the
/// workers executing its tasks.
struct ScopeState {
    /// Tasks spawned but not yet finished.
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// Set if any task panicked; re-raised by the caller.
    panicked: AtomicBool,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }
}

/// State shared by all worker threads.
struct Shared {
    queue: Mutex<VecDeque<(Task, Arc<ScopeState>)>>,
    /// Signalled when the queue gains work.
    work: Condvar,
}

/// The process-wide pool: shared queue plus a count of threads spawned
/// so far (threads are grown on demand and never torn down — idle
/// workers block on the condvar and cost nothing).
struct Pool {
    shared: Arc<Shared>,
    spawned: Mutex<usize>,
}

fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Ensures at least `helpers` background workers exist (the calling
    /// thread always participates too, so a `workers`-way kernel needs
    /// `workers - 1` helpers).
    fn ensure_workers(&self, helpers: usize) {
        let helpers = helpers.min(MAX_WORKERS - 1);
        let mut spawned = self.spawned.lock().expect("pool lock");
        while *spawned < helpers {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("qsim-worker-{spawned}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn qsim kernel worker");
            *spawned += 1;
        }
    }

    /// Pops queued tasks (any scope's) and runs them on the calling
    /// thread until the queue is empty, then blocks until `state` has
    /// no pending tasks left on other workers.
    fn drain_and_wait(&self, state: &ScopeState) {
        loop {
            let job = self.shared.queue.lock().expect("pool lock").pop_front();
            match job {
                Some(job) => {
                    POOL_TASKS_CALLER.incr();
                    run_task(job)
                }
                None => break,
            }
        }
        let mut pending = state.pending.lock().expect("scope lock");
        while *pending > 0 {
            pending = state.done.wait(pending).expect("scope lock");
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.work.wait(queue).expect("pool lock");
            }
        };
        POOL_TASKS_WORKER.incr();
        run_task(job);
    }
}

/// Runs one task, decrementing its scope's pending count even if the
/// task panics (the decrement lives in a drop guard so an unwinding
/// kernel cannot strand its scope in `drain_and_wait`).
fn run_task((task, state): (Task, Arc<ScopeState>)) {
    struct Complete(Arc<ScopeState>);
    impl Drop for Complete {
        fn drop(&mut self) {
            let mut pending = self.0.pending.lock().expect("scope lock");
            *pending -= 1;
            if *pending == 0 {
                self.0.done.notify_all();
            }
        }
    }
    let complete = Complete(Arc::clone(&state));
    if catch_unwind(AssertUnwindSafe(task)).is_err() {
        state.panicked.store(true, Ordering::Relaxed);
    }
    drop(complete);
}

/// Handle passed to the [`scope`] closure; [`Scope::spawn`] submits
/// borrowed tasks to the pool. `!Sync` (and never `Clone`d) so it
/// cannot leak into the tasks themselves — spawning is only possible
/// from the thread that owns the scope.
pub(crate) struct Scope<'scope> {
    pool: &'static Pool,
    state: Arc<ScopeState>,
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
    /// Invariant over `'scope` (the same trick `std::thread::Scope`
    /// uses) so the borrow checker cannot shrink the lifetime of
    /// captured borrows below the scope's.
    _scope: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Submits `f` to the pool. It may run on any worker thread or on
    /// the caller's own thread during the scope's drain phase.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: the borrows captured by `task` live at least as long
        // as `'scope`, and `scope()` (via its unwind-safe WaitGuard)
        // does not return control to the caller until this scope's
        // pending count is zero — i.e. until `task` has finished
        // running. The erased box therefore never outlives the data it
        // borrows; it only sits in a `'static` queue structure while
        // the originating stack frame is pinned.
        #[allow(unsafe_code)]
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        POOL_TASKS_SPAWNED.incr();
        *self.state.pending.lock().expect("scope lock") += 1;
        self.pool
            .shared
            .queue
            .lock()
            .expect("pool lock")
            .push_back((task, Arc::clone(&self.state)));
        self.pool.shared.work.notify_one();
    }
}

/// Runs `f` with a [`Scope`] backed by the persistent pool, ensuring
/// `workers - 1` helper threads exist, and blocks — participating in
/// the work — until every spawned task completes. Re-raises a panic if
/// any task panicked.
///
/// Mirrors `std::thread::scope`'s structured-concurrency contract with
/// persistent threads instead of per-call spawns.
pub(crate) fn scope<'scope, F, R>(workers: usize, f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    POOL_SCOPES.incr();
    let pool = global();
    pool.ensure_workers(workers.saturating_sub(1));
    let state = Arc::new(ScopeState::new());

    /// Blocks until the scope is quiescent — in `Drop` so the wait
    /// happens on unwind too, keeping the lifetime erasure in
    /// [`Scope::spawn`] sound even if `f` itself panics after spawning.
    struct WaitGuard<'a> {
        pool: &'static Pool,
        state: &'a ScopeState,
    }
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            self.pool.drain_and_wait(self.state);
        }
    }

    let guard = WaitGuard {
        pool,
        state: &state,
    };
    let scope = Scope {
        pool,
        state: Arc::clone(&state),
        _not_sync: std::marker::PhantomData,
        _scope: std::marker::PhantomData,
    };
    let result = f(&scope);
    drop(scope);
    drop(guard); // blocks until all tasks finish
    if state.panicked.load(Ordering::Relaxed) {
        panic!("qsim kernel worker panicked");
    }
    result
}

/// Resolves the kernel worker count from an optional `QSIM_WORKERS`
/// override and the detected CPU parallelism, clamping both to
/// [`MAX_WORKERS`]. Non-numeric or zero overrides are ignored.
pub(crate) fn resolve_workers(env_override: Option<&str>, detected: usize) -> usize {
    match env_override.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(MAX_WORKERS),
        _ => detected.clamp(1, MAX_WORKERS),
    }
}

/// The worker count kernels actually use, memoized on first call:
/// `QSIM_WORKERS` if set and valid, else `available_parallelism`,
/// clamped to [`MAX_WORKERS`].
pub(crate) fn default_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        resolve_workers(
            std::env::var("QSIM_WORKERS").ok().as_deref(),
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_scope_runs_every_task_before_returning() {
        let counter = AtomicUsize::new(0);
        scope(4, |s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn pool_scope_tasks_see_borrowed_mutations() {
        let mut data = vec![0usize; 256];
        scope(4, |s| {
            for (i, chunk) in data.chunks_mut(64).enumerate() {
                s.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = i * 64 + j;
                    }
                });
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn pool_scopes_nest_sequentially_and_reuse_workers() {
        // Many scopes back to back (the per-gate pattern) must not
        // leak pending counts between scopes.
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            scope(3, |s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        total.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 800);
    }

    #[test]
    fn pool_task_panic_propagates_without_deadlock() {
        let result = std::panic::catch_unwind(|| {
            scope(4, |s| {
                s.spawn(|| panic!("kernel boom"));
                s.spawn(|| {});
            });
        });
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let counter = AtomicUsize::new(0);
        scope(2, |s| {
            s.spawn(|| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pool_worker_resolution_honours_override_and_clamps() {
        assert_eq!(resolve_workers(None, 1), 1);
        assert_eq!(resolve_workers(None, 6), 6);
        assert_eq!(resolve_workers(None, 64), MAX_WORKERS);
        assert_eq!(resolve_workers(None, 0), 1);
        assert_eq!(resolve_workers(Some("4"), 1), 4);
        assert_eq!(resolve_workers(Some(" 2 "), 8), 2);
        assert_eq!(resolve_workers(Some("64"), 1), MAX_WORKERS);
        assert_eq!(resolve_workers(Some("0"), 5), 5);
        assert_eq!(resolve_workers(Some("junk"), 3), 3);
        assert_eq!(resolve_workers(Some(""), 2), 2);
    }
}
