//! Peephole optimization passes.
//!
//! Three passes, applied to fixpoint by [`optimize`]:
//!
//! 1. **Inverse cancellation** — adjacent gate pairs `G·G†` on identical
//!    wires (with nothing between them on those wires) are removed. This is
//!    the pass an *attacker-compiler* would run to strip a naively inserted
//!    `R⁻¹R` pair — TetrisLock survives it because the split separates the
//!    halves.
//! 2. **Rotation merging** — consecutive `Rz`/`P` (or `Rx`, `Ry`)
//!    rotations on the same wire merge; zero-angle rotations vanish.
//! 3. **1q resynthesis** — maximal runs of single-qubit gates on one wire
//!    collapse into at most 5 native gates via Euler synthesis.

use crate::euler;
use qcir::{Circuit, Gate, Instruction};
use std::f64::consts::PI;

/// Cancels adjacent inverse pairs on identical wires. Returns the number
/// of gates removed.
pub fn cancel_inverse_pairs(circuit: &mut Circuit) -> usize {
    let insts = circuit.instructions().to_vec();
    let n_wires = circuit.num_qubits() as usize;
    let mut keep = vec![true; insts.len()];
    // Stack of visible (not-yet-cancelled) gate indices per wire.
    let mut frontier: Vec<Option<usize>> = vec![None; n_wires];
    let mut removed = 0usize;

    for (i, inst) in insts.iter().enumerate() {
        // The candidate predecessor must be the frontier of *all* wires.
        let wires: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
        let prev = frontier[wires[0]];
        let same_prev = prev.is_some() && wires.iter().all(|&w| frontier[w] == prev);
        if same_prev {
            let j = prev.expect("checked is_some");
            let p = &insts[j];
            if p.qubits() == inst.qubits() && p.gate().adjoint().approx_eq(inst.gate()) {
                keep[i] = false;
                keep[j] = false;
                removed += 2;
                // Recompute frontier for the affected wires by scanning
                // back; simple and correct.
                for &w in &wires {
                    frontier[w] = (0..j)
                        .rev()
                        .find(|&k| keep[k] && insts[k].qubits().iter().any(|q| q.index() == w));
                }
                continue;
            }
        }
        for &w in &wires {
            frontier[w] = Some(i);
        }
    }

    if removed > 0 {
        let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name());
        for (i, inst) in insts.into_iter().enumerate() {
            if keep[i] {
                out.push(inst).expect("same register");
            }
        }
        *circuit = out;
    }
    removed
}

fn merged_rotation(a: &Gate, b: &Gate) -> Option<Gate> {
    let norm = |x: f64| {
        let tau = 2.0 * PI;
        let mut v = x % tau;
        if v > PI {
            v -= tau;
        }
        if v < -PI {
            v += tau;
        }
        v
    };
    match (a, b) {
        (Gate::Rz(x), Gate::Rz(y)) => Some(Gate::Rz(norm(x + y))),
        (Gate::Rx(x), Gate::Rx(y)) => Some(Gate::Rx(norm(x + y))),
        (Gate::Ry(x), Gate::Ry(y)) => Some(Gate::Ry(norm(x + y))),
        (Gate::P(x), Gate::P(y)) => Some(Gate::P(norm(x + y))),
        (Gate::Rz(x), Gate::P(y)) | (Gate::P(y), Gate::Rz(x)) => {
            // Differ only by global phase; merge into P.
            Some(Gate::P(norm(x + y)))
        }
        _ => None,
    }
}

fn is_null_rotation(g: &Gate) -> bool {
    match g {
        Gate::Rz(a) | Gate::Rx(a) | Gate::Ry(a) | Gate::P(a) => a.abs() < 1e-12,
        Gate::I => true,
        _ => false,
    }
}

/// Merges consecutive same-axis rotations on the same wire and deletes
/// zero rotations. Returns the number of gates eliminated.
pub fn merge_rotations(circuit: &mut Circuit) -> usize {
    let before = circuit.gate_count();
    let insts = circuit.instructions().to_vec();
    let mut out: Vec<Instruction> = Vec::with_capacity(insts.len());

    for inst in insts {
        if inst.gate().arity() == 1 && is_null_rotation(inst.gate()) {
            continue;
        }
        if inst.gate().arity() == 1 {
            // Find the last output gate on this wire with nothing after it
            // on the same wire.
            if let Some(last) = out.last() {
                if last.qubits() == inst.qubits() {
                    if let Some(merged) = merged_rotation(last.gate(), inst.gate()) {
                        let wires = inst.qubits().to_vec();
                        out.pop();
                        if !is_null_rotation(&merged) {
                            out.push(
                                Instruction::new(merged, wires).expect("1q instruction valid"),
                            );
                        }
                        continue;
                    }
                }
            }
        }
        out.push(inst);
    }

    let removed = before - out.len();
    if removed > 0 {
        let mut c = Circuit::with_name(circuit.num_qubits(), circuit.name());
        for inst in out {
            c.push(inst).expect("same register");
        }
        *circuit = c;
    }
    removed
}

/// Collapses every maximal run of ≥ 2 single-qubit gates on one wire into
/// the minimal `RZ·SX·RZ·SX·RZ` sequence. Returns the net gate-count
/// reduction (can be 0 if runs were already minimal).
pub fn resynthesize_1q_runs(circuit: &mut Circuit) -> usize {
    let before = circuit.gate_count();
    let insts = circuit.instructions().to_vec();
    let n_wires = circuit.num_qubits() as usize;
    let mut out: Vec<Instruction> = Vec::with_capacity(insts.len());
    // Pending run of 1q gates per wire.
    let mut pending: Vec<Vec<Gate>> = vec![Vec::new(); n_wires];

    let flush = |wire: usize, pending: &mut Vec<Vec<Gate>>, out: &mut Vec<Instruction>| {
        let run = std::mem::take(&mut pending[wire]);
        if run.is_empty() {
            return;
        }
        let emit: Vec<Gate> = if run.len() == 1 {
            run
        } else {
            let m = euler::sequence_matrix(&run);
            euler::matrix_to_zsx(&m)
        };
        for g in emit {
            out.push(
                Instruction::new(g, vec![qcir::Qubit::new(wire as u32)])
                    .expect("1q instruction valid"),
            );
        }
    };

    for inst in insts {
        if inst.gate().arity() == 1 {
            pending[inst.qubits()[0].index()].push(inst.gate().clone());
        } else {
            for q in inst.qubits() {
                flush(q.index(), &mut pending, &mut out);
            }
            out.push(inst);
        }
    }
    for wire in 0..n_wires {
        flush(wire, &mut pending, &mut out);
    }

    let mut c = Circuit::with_name(circuit.num_qubits(), circuit.name());
    for inst in out {
        c.push(inst).expect("same register");
    }
    let after = c.gate_count();
    *circuit = c;
    before.saturating_sub(after)
}

/// `true` if two instructions are *known* to commute (conservative:
/// `false` means "unknown", not "anti-commute").
///
/// Rules: disjoint wires always commute; diagonal gates commute with each
/// other; a diagonal single-qubit gate commutes through a CX *control*;
/// an X-axis single-qubit gate (X, Rx, Sx) commutes through a CX
/// *target*; two CX gates commute unless one's control is the other's
/// target.
pub fn instructions_commute(a: &Instruction, b: &Instruction) -> bool {
    let shared: Vec<_> = a
        .qubits()
        .iter()
        .filter(|q| b.qubits().contains(q))
        .collect();
    if shared.is_empty() {
        return true;
    }
    if a.gate().is_diagonal() && b.gate().is_diagonal() {
        return true;
    }
    let x_axis = |g: &Gate| matches!(g, Gate::X | Gate::Rx(_) | Gate::Sx | Gate::Sxdg);
    // CX vs 1q gate on a shared wire.
    let cx_vs_1q = |cx: &Instruction, one: &Instruction| -> bool {
        if cx.gate() != &Gate::CX || one.gate().arity() != 1 {
            return false;
        }
        let wire = one.qubits()[0];
        if wire == cx.qubits()[0] {
            one.gate().is_diagonal()
        } else if wire == cx.qubits()[1] {
            x_axis(one.gate())
        } else {
            true
        }
    };
    if cx_vs_1q(a, b) || cx_vs_1q(b, a) {
        return true;
    }
    // CX vs CX: commute unless a control meets a target.
    if a.gate() == &Gate::CX && b.gate() == &Gate::CX {
        let (ac, at) = (a.qubits()[0], a.qubits()[1]);
        let (bc, bt) = (b.qubits()[0], b.qubits()[1]);
        return ac != bt && at != bc;
    }
    // Identical instructions trivially commute.
    if a == b {
        return true;
    }
    false
}

/// Commutation-aware inverse cancellation: removes `G … G†` pairs on the
/// same wires even when *commuting* gates sit between them. This is the
/// stronger attacker-compiler pass: it would strip a naive `R⁻¹ … R`
/// insertion even if benign gates were interleaved. Returns the number of
/// gates removed.
pub fn cancel_commuting_pairs(circuit: &mut Circuit) -> usize {
    let mut removed_total = 0;
    loop {
        let insts = circuit.instructions().to_vec();
        let mut removed_this_round = None;
        'outer: for i in 0..insts.len() {
            for j in i + 1..insts.len() {
                let a = &insts[i];
                let b = &insts[j];
                if a.qubits() == b.qubits() && a.gate().adjoint().approx_eq(b.gate()) {
                    // Everything strictly between must commute with `a`.
                    if insts[i + 1..j].iter().all(|m| instructions_commute(a, m)) {
                        removed_this_round = Some((i, j));
                        break 'outer;
                    }
                }
                // A non-commuting gate sharing wires blocks further search
                // for this `i`.
                if !instructions_commute(a, b) && a.qubits().iter().any(|q| b.qubits().contains(q))
                {
                    break;
                }
            }
        }
        match removed_this_round {
            Some((i, j)) => {
                let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name());
                for (k, inst) in insts.into_iter().enumerate() {
                    if k != i && k != j {
                        out.push(inst).expect("same register");
                    }
                }
                *circuit = out;
                removed_total += 2;
            }
            None => break,
        }
    }
    removed_total
}

/// Runs all passes to fixpoint (bounded at 20 iterations).
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qcompile::optimize::optimize;
///
/// let mut c = Circuit::new(2);
/// c.h(0).h(0).cx(0, 1).cx(0, 1).rz(0.3, 1).rz(-0.3, 1);
/// optimize(&mut c);
/// assert!(c.is_empty());
/// ```
pub fn optimize(circuit: &mut Circuit) {
    for _ in 0..20 {
        let removed = cancel_inverse_pairs(circuit) + merge_rotations(circuit);
        if removed == 0 {
            break;
        }
    }
}

/// Full optimization including 1q resynthesis (used at optimization level
/// 2, where the output is re-expressed in the native basis anyway).
pub fn optimize_aggressive(circuit: &mut Circuit) {
    optimize(circuit);
    resynthesize_1q_runs(circuit);
    optimize(circuit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::unitary::equivalent_up_to_phase;

    #[test]
    fn adjacent_self_inverse_pairs_cancel() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).cx(0, 1).cx(0, 1).x(1).x(1);
        let removed = cancel_inverse_pairs(&mut c);
        assert_eq!(removed, 6);
        assert!(c.is_empty());
    }

    #[test]
    fn adjoint_pairs_cancel() {
        let mut c = Circuit::new(1);
        c.s(0).sdg(0).t(0).tdg(0).rz(0.7, 0).rz(-0.7, 0);
        cancel_inverse_pairs(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn interposed_gate_blocks_cancellation() {
        let mut c = Circuit::new(1);
        c.h(0).x(0).h(0);
        let removed = cancel_inverse_pairs(&mut c);
        assert_eq!(removed, 0);
        assert_eq!(c.gate_count(), 3);
    }

    #[test]
    fn gate_on_other_wire_does_not_block() {
        let mut c = Circuit::new(2);
        c.h(0).x(1).h(0);
        cancel_inverse_pairs(&mut c);
        assert_eq!(c.gate_count(), 1);
        assert_eq!(c.instruction(0).unwrap().gate(), &Gate::X);
    }

    #[test]
    fn cascading_cancellation() {
        // h x x h -> h h -> empty (needs the frontier rollback).
        let mut c = Circuit::new(1);
        c.h(0).x(0).x(0).h(0);
        cancel_inverse_pairs(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn cx_with_different_operand_order_not_cancelled() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        cancel_inverse_pairs(&mut c);
        assert_eq!(c.gate_count(), 2);
    }

    #[test]
    fn rotations_merge_and_vanish() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0).rz(0.4, 0).rz(-0.7, 0);
        merge_rotations(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn rotation_merge_respects_wires() {
        let mut c = Circuit::new(2);
        c.rz(0.3, 0).rz(0.4, 1);
        merge_rotations(&mut c);
        assert_eq!(c.gate_count(), 2);
    }

    #[test]
    fn rz_p_merge_to_p() {
        let mut c = Circuit::new(1);
        c.rz(0.25, 0).p(0.25, 0);
        merge_rotations(&mut c);
        assert_eq!(c.gate_count(), 1);
        assert!(matches!(c.instruction(0).unwrap().gate(), Gate::P(_)));
    }

    #[test]
    fn resynthesis_preserves_unitary() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).s(0).rz(0.3, 0).cx(0, 1).h(1).tdg(1).sx(1);
        let original = c.clone();
        resynthesize_1q_runs(&mut c);
        assert!(equivalent_up_to_phase(&original, &c, 1e-8).unwrap());
        // Runs of 4 1q gates collapse to ≤ 5 native gates but never grow a
        // run beyond 5.
        assert!(c.gate_count() <= original.gate_count() + 2);
    }

    #[test]
    fn resynthesis_collapses_long_runs() {
        let mut c = Circuit::new(1);
        for _ in 0..10 {
            c.h(0).t(0);
        }
        let original = c.clone();
        let saved = resynthesize_1q_runs(&mut c);
        assert!(saved >= 15, "saved only {saved}");
        assert!(equivalent_up_to_phase(&original, &c, 1e-8).unwrap());
    }

    #[test]
    fn commutation_rules_are_sound() {
        use qcir::Qubit;
        let inst = |g: Gate, qs: &[u32]| {
            Instruction::new(g, qs.iter().map(|&q| Qubit::new(q)).collect()).unwrap()
        };
        // Disjoint wires.
        assert!(instructions_commute(
            &inst(Gate::H, &[0]),
            &inst(Gate::X, &[1])
        ));
        // Diagonal pair on the same wire.
        assert!(instructions_commute(
            &inst(Gate::Rz(0.3), &[0]),
            &inst(Gate::T, &[0])
        ));
        // CX control passes diagonal, blocks X.
        assert!(instructions_commute(
            &inst(Gate::CX, &[0, 1]),
            &inst(Gate::S, &[0])
        ));
        assert!(!instructions_commute(
            &inst(Gate::CX, &[0, 1]),
            &inst(Gate::X, &[0])
        ));
        // CX target passes X, blocks Z.
        assert!(instructions_commute(
            &inst(Gate::CX, &[0, 1]),
            &inst(Gate::X, &[1])
        ));
        assert!(!instructions_commute(
            &inst(Gate::CX, &[0, 1]),
            &inst(Gate::Z, &[1])
        ));
        // CX/CX: shared control commutes, control-meets-target does not.
        assert!(instructions_commute(
            &inst(Gate::CX, &[0, 1]),
            &inst(Gate::CX, &[0, 2])
        ));
        assert!(instructions_commute(
            &inst(Gate::CX, &[0, 1]),
            &inst(Gate::CX, &[2, 1])
        ));
        assert!(!instructions_commute(
            &inst(Gate::CX, &[0, 1]),
            &inst(Gate::CX, &[1, 2])
        ));
        // H on a shared wire: unknown → conservative false.
        assert!(!instructions_commute(
            &inst(Gate::H, &[0]),
            &inst(Gate::X, &[0])
        ));
    }

    #[test]
    fn commuting_cancellation_reaches_through_interleaved_gates() {
        // cx … rz(control) … cx cancels; adjacent-only pass cannot do it.
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0.5, 0).x(1).cx(0, 1);
        let mut adjacent_only = c.clone();
        assert_eq!(cancel_inverse_pairs(&mut adjacent_only), 0);
        let original = c.clone();
        let removed = cancel_commuting_pairs(&mut c);
        assert_eq!(removed, 2);
        assert_eq!(c.gate_count(), 2);
        assert!(equivalent_up_to_phase(&original, &c, 1e-9).unwrap());
    }

    #[test]
    fn non_commuting_blocker_prevents_cancellation() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).x(0).cx(0, 1); // X on the control anti-commutes
        assert_eq!(cancel_commuting_pairs(&mut c), 0);
        assert_eq!(c.gate_count(), 3);
    }

    #[test]
    fn commuting_cancellation_preserves_semantics_on_mixed_circuit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .t(0)
            .rz(0.2, 0)
            .cx(0, 1)
            .s(2)
            .x(1)
            .x(1)
            .cx(1, 2)
            .z(1)
            .cx(1, 2);
        let original = c.clone();
        let removed = cancel_commuting_pairs(&mut c);
        assert!(removed >= 4, "removed only {removed}");
        assert!(equivalent_up_to_phase(&original, &c, 1e-9).unwrap());
    }

    #[test]
    fn optimize_reaches_fixpoint() {
        let mut c = Circuit::new(2);
        c.h(0)
            .h(0)
            .rz(0.5, 1)
            .rz(-0.25, 1)
            .rz(-0.25, 1)
            .cx(0, 1)
            .cx(0, 1);
        optimize(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn optimize_keeps_meaningful_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(0.7, 1);
        let original = c.clone();
        optimize_aggressive(&mut c);
        assert!(equivalent_up_to_phase(&original, &c, 1e-8).unwrap());
        assert!(!c.is_empty());
    }
}
