//! Transpiler error types.

use std::fmt;

/// Errors raised by the transpilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The logical circuit needs more qubits than the device has.
    CircuitTooLarge {
        /// Logical qubits required.
        required: u32,
        /// Physical qubits available.
        available: u32,
    },
    /// The coupling map is disconnected and a two-qubit gate cannot be
    /// routed between its operands.
    Unroutable {
        /// First physical qubit.
        a: u32,
        /// Second physical qubit.
        b: u32,
    },
    /// A gate survived decomposition that the target basis cannot express.
    UnsupportedGate(String),
    /// An internal circuit manipulation failed.
    Circuit(qcir::CircuitError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::CircuitTooLarge {
                required,
                available,
            } => write!(
                f,
                "circuit needs {required} qubits but device has {available}"
            ),
            CompileError::Unroutable { a, b } => {
                write!(f, "no coupling path between physical qubits {a} and {b}")
            }
            CompileError::UnsupportedGate(gate) => {
                write!(f, "gate {gate} not supported by target basis")
            }
            CompileError::Circuit(e) => write!(f, "circuit error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qcir::CircuitError> for CompileError {
    fn from(e: qcir::CircuitError) -> Self {
        CompileError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = CompileError::CircuitTooLarge {
            required: 7,
            available: 5,
        };
        assert!(e.to_string().contains("7"));
        let e = CompileError::Unroutable { a: 0, b: 4 };
        assert!(e.to_string().contains("0"));
    }

    #[test]
    fn from_circuit_error() {
        let inner = qcir::CircuitError::Invalid("x".into());
        let e: CompileError = inner.into();
        assert!(matches!(e, CompileError::Circuit(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
