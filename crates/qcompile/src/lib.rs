//! # qcompile — a quantum transpiler
//!
//! The "untrusted compiler" substrate of the TetrisLock reproduction. The
//! paper's threat model assumes circuits are handed to third-party
//! compilers (Qiskit, TKET, …) that map them to hardware; this crate
//! implements an equivalent pipeline from scratch:
//!
//! * [`decompose`] — lower CCX/MCX/SWAP/controlled gates to {1q, CX};
//! * [`layout`] — trivial and greedy interaction-based initial placement;
//! * [`routing`] — SABRE-style SWAP insertion over a device coupling map;
//! * [`euler`] — ZYZ/ZSX single-qubit synthesis;
//! * [`optimize`] — inverse-pair cancellation, rotation merging and 1q
//!   resynthesis (the passes an adversarial compiler would use to strip a
//!   naive `R⁻¹R` insertion);
//! * [`Transpiler`] — the end-to-end pipeline with optimization levels.
//!
//! # Example
//!
//! ```
//! use qcir::Circuit;
//! use qsim::Device;
//! use qcompile::Transpiler;
//!
//! let mut c = Circuit::new(3);
//! c.h(0).ccx(0, 1, 2);
//! let out = Transpiler::new(Device::fake_valencia()).transpile(&c)?;
//! assert!(qcompile::transpiler::conforms_to_device(&out.circuit, &Device::fake_valencia()));
//! # Ok::<(), qcompile::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coupling;
pub mod decompose;
pub mod error;
pub mod euler;
pub mod layout;
pub mod optimize;
pub mod routing;
pub mod schedule;
pub mod transpiler;

pub use error::CompileError;
pub use layout::Layout;
pub use transpiler::{OptimizationLevel, Transpiled, Transpiler};
