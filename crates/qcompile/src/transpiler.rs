//! The end-to-end transpilation pipeline.
//!
//! `decompose → layout → route → basis-translate → optimize`, mirroring
//! the stages of Qiskit's preset pass managers. This is the "untrusted
//! compiler" of the paper's threat model: it sees whatever circuit it is
//! given (a split segment, in TetrisLock's flow) and produces an
//! executable, device-conformant circuit.

use crate::coupling::DistanceMap;
use crate::decompose::{decompose_to_cx, to_u_params};
use crate::error::CompileError;
use crate::euler::u_to_zsx;
use crate::layout::{greedy_layout, Layout};
use crate::optimize::{optimize, optimize_aggressive};
use crate::routing::route;
use qcir::{Circuit, Gate, Instruction, Qubit};
use qsim::Device;

/// How hard the transpiler tries to shrink the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizationLevel {
    /// Decompose + route only.
    None,
    /// Plus inverse cancellation and rotation merging.
    #[default]
    Light,
    /// Plus single-qubit resynthesis.
    Full,
}

/// Output of [`Transpiler::transpile`].
#[derive(Debug, Clone)]
pub struct Transpiled {
    /// Device-conformant circuit over physical wires.
    pub circuit: Circuit,
    /// Logical→physical map at circuit start.
    pub initial_layout: Layout,
    /// Logical→physical map at circuit end (after routing SWAPs are
    /// absorbed; measurements of logical qubit `l` should read physical
    /// wire `final_layout.physical(l)`).
    pub final_layout: Layout,
    /// SWAPs inserted by routing.
    pub swaps_inserted: usize,
}

/// A configurable compiler targeting a [`Device`].
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qsim::Device;
/// use qcompile::{Transpiler, transpiler::OptimizationLevel};
///
/// let mut c = Circuit::new(3);
/// c.h(0).ccx(0, 1, 2);
/// let compiler = Transpiler::new(Device::fake_valencia())
///     .with_optimization(OptimizationLevel::Full);
/// let out = compiler.transpile(&c)?;
/// assert!(out.circuit.num_qubits() == 5);
/// # Ok::<(), qcompile::CompileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Transpiler {
    device: Device,
    level: OptimizationLevel,
    use_greedy_layout: bool,
}

impl Transpiler {
    /// Creates a transpiler for `device` at the default (light)
    /// optimization level with greedy layout.
    pub fn new(device: Device) -> Self {
        Transpiler {
            device,
            level: OptimizationLevel::default(),
            use_greedy_layout: true,
        }
    }

    /// Sets the optimization level.
    pub fn with_optimization(mut self, level: OptimizationLevel) -> Self {
        self.level = level;
        self
    }

    /// Forces the trivial (identity) initial layout.
    pub fn with_trivial_layout(mut self) -> Self {
        self.use_greedy_layout = false;
        self
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Compiles `circuit` for the target device.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::CircuitTooLarge`] if the circuit does not
    /// fit, [`CompileError::Unroutable`] for disconnected devices, and
    /// propagates internal failures.
    pub fn transpile(&self, circuit: &Circuit) -> Result<Transpiled, CompileError> {
        if circuit.num_qubits() > self.device.num_qubits() {
            return Err(CompileError::CircuitTooLarge {
                required: circuit.num_qubits(),
                available: self.device.num_qubits(),
            });
        }
        let span = qobs::span("compile.transpile")
            .attr("circuit", circuit.name())
            .attr("wires", circuit.num_qubits())
            .attr("gates_in", circuit.gate_count());
        let distances = DistanceMap::new(&self.device)?;

        // 1. Lower to {1q, CX}.
        let mut lowered = decompose_to_cx(circuit);
        if self.level != OptimizationLevel::None {
            optimize(&mut lowered);
        }

        // 2. Initial layout.
        let layout = if self.use_greedy_layout {
            greedy_layout(&lowered, &self.device, &distances)?
        } else {
            Layout::trivial(lowered.num_qubits(), self.device.num_qubits())
        };

        // 3. Route.
        let routed = route(&lowered, layout, &distances)?;

        // 4. Basis translation (SWAP → 3 CX happens here too).
        let mut physical = translate_to_basis(&routed.circuit)?;

        // 5. Final cleanup.
        match self.level {
            OptimizationLevel::None => {}
            OptimizationLevel::Light => optimize(&mut physical),
            OptimizationLevel::Full => optimize_aggressive(&mut physical),
        }

        let _span = span
            .attr("gates_out", physical.gate_count())
            .attr("swaps", routed.swaps_inserted);
        Ok(Transpiled {
            circuit: physical,
            initial_layout: routed.initial_layout,
            final_layout: routed.final_layout,
            swaps_inserted: routed.swaps_inserted,
        })
    }
}

impl Transpiled {
    /// Converts the compiled physical circuit back to the *logical* wire
    /// numbering of the input circuit:
    ///
    /// 1. appends SWAPs undoing the routing permutation (final layout →
    ///    initial layout),
    /// 2. relabels wires so logical qubit `l` is wire `l`; physical wires
    ///    hosting no logical qubit become fresh wires `n_logical..`.
    ///
    /// The result acts on `num_physical` wires but, restricted to the
    /// first `n_logical` wires (others starting in `|0⟩` and returning to
    /// `|0⟩`), implements exactly the input circuit. This is the form the
    /// TetrisLock designer needs to recombine split-compiled segments.
    pub fn into_logical_circuit(&self) -> Circuit {
        let np = self.initial_layout.num_physical();
        let nl = self.initial_layout.num_logical();
        let mut out = self.circuit.clone();

        // Undo the routing permutation with SWAPs: move each logical
        // qubit from final position back to its initial position.
        let mut pos: Vec<u32> = (0..nl).map(|l| self.final_layout.physical(l)).collect();
        for l in 0..nl {
            let home = self.initial_layout.physical(l);
            let cur = pos[l as usize];
            if cur != home {
                out.swap(cur, home);
                // Whatever lived at `home` moves to `cur`.
                for p in pos.iter_mut() {
                    if *p == home {
                        *p = cur;
                        break;
                    }
                }
                pos[l as usize] = home;
            }
        }

        // Relabel: physical initial_layout.physical(l) → l, spares → n_l…
        let mut map: std::collections::BTreeMap<Qubit, Qubit> = std::collections::BTreeMap::new();
        for l in 0..nl {
            map.insert(Qubit::new(self.initial_layout.physical(l)), Qubit::new(l));
        }
        let mut next = nl;
        for p in 0..np {
            map.entry(Qubit::new(p)).or_insert_with(|| {
                let w = next;
                next += 1;
                Qubit::new(w)
            });
        }
        out.remapped(np, &map)
            .expect("total wire map over the physical register")
    }
}

/// Rewrites every gate into the IBM native basis {RZ, SX, X, CX}.
///
/// # Errors
///
/// Returns [`CompileError::UnsupportedGate`] for gates that should have
/// been decomposed earlier (arity ≥ 3).
pub fn translate_to_basis(circuit: &Circuit) -> Result<Circuit, CompileError> {
    let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name());
    for inst in circuit.iter() {
        match inst.gate() {
            Gate::CX => out.push(inst.clone())?,
            Gate::X => out.push(inst.clone())?,
            Gate::Sx => out.push(inst.clone())?,
            Gate::Rz(_) => out.push(inst.clone())?,
            Gate::Swap => {
                let (a, b) = (inst.qubits()[0].raw(), inst.qubits()[1].raw());
                out.cx(a, b).cx(b, a).cx(a, b);
            }
            g if g.arity() == 1 => {
                let (t, p, l) =
                    to_u_params(g).ok_or_else(|| CompileError::UnsupportedGate(g.to_string()))?;
                let wire = inst.qubits()[0];
                for native in u_to_zsx(t, p, l) {
                    out.push(
                        Instruction::new(native, vec![Qubit::new(wire.raw())])
                            .expect("1q instruction valid"),
                    )?;
                }
            }
            g => return Err(CompileError::UnsupportedGate(g.to_string())),
        }
    }
    Ok(out)
}

/// Checks that `circuit` conforms to `device`: every gate is in the native
/// basis and every CX operand pair is coupled.
pub fn conforms_to_device(circuit: &Circuit, device: &Device) -> bool {
    let basis = device.basis_gates();
    for inst in circuit.iter() {
        if !basis.contains(&inst.gate().name()) {
            return false;
        }
        if inst.qubits().len() == 2 {
            let (a, b) = (inst.qubits()[0].raw(), inst.qubits()[1].raw());
            if !device.are_coupled(a, b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::statevector::Statevector;
    use qsim::Sampler;

    fn check_semantics_on_zero(logical: &Circuit, result: &Transpiled) {
        // Simulate the physical circuit, then read logical qubits through
        // the final layout and compare with the logical simulation.
        let log_sv = Statevector::from_circuit(logical).unwrap();
        let log_counts = {
            let s = Sampler::new(0);
            let _ = s; // probabilities compared directly below
            log_sv.probabilities()
        };

        let phys_sv = Statevector::from_circuit(&result.circuit).unwrap();
        let phys_probs = phys_sv.probabilities();

        // Marginalize physical probabilities onto logical wires.
        let nl = logical.num_qubits();
        let mut mapped = vec![0.0f64; 1 << nl];
        for (idx, &p) in phys_probs.iter().enumerate() {
            if p < 1e-15 {
                continue;
            }
            let mut logical_idx = 0usize;
            for l in 0..nl {
                let phys = result.final_layout.physical(l);
                if idx >> phys & 1 == 1 {
                    logical_idx |= 1 << l;
                }
            }
            mapped[logical_idx] += p;
        }
        for i in 0..1usize << nl {
            assert!(
                (mapped[i] - log_counts[i]).abs() < 1e-9,
                "probability mismatch at basis {i}: {} vs {}",
                mapped[i],
                log_counts[i]
            );
        }
    }

    #[test]
    fn transpiles_bell_to_valencia() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let t = Transpiler::new(Device::fake_valencia());
        let out = t.transpile(&c).unwrap();
        assert!(conforms_to_device(&out.circuit, t.device()));
        check_semantics_on_zero(&c, &out);
    }

    #[test]
    fn transpiles_toffoli_network() {
        let mut c = Circuit::new(4);
        c.x(0).x(1).ccx(0, 1, 2).cx(2, 3).ccx(1, 2, 3);
        let t = Transpiler::new(Device::fake_valencia());
        let out = t.transpile(&c).unwrap();
        assert!(conforms_to_device(&out.circuit, t.device()));
        check_semantics_on_zero(&c, &out);
    }

    #[test]
    fn transpiles_mcx_with_far_qubits() {
        let mut c = Circuit::new(5);
        c.x(0).x(1).x(2).x(3).mcx(&[0, 1, 2, 3], 4);
        let t = Transpiler::new(Device::fake_valencia()).with_optimization(OptimizationLevel::Full);
        let out = t.transpile(&c).unwrap();
        assert!(conforms_to_device(&out.circuit, t.device()));
        check_semantics_on_zero(&c, &out);
    }

    #[test]
    fn all_optimization_levels_preserve_semantics() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cx(0, 2).s(2).ccx(0, 1, 2).h(1);
        for level in [
            OptimizationLevel::None,
            OptimizationLevel::Light,
            OptimizationLevel::Full,
        ] {
            let t = Transpiler::new(Device::fake_valencia()).with_optimization(level);
            let out = t.transpile(&c).unwrap();
            assert!(conforms_to_device(&out.circuit, t.device()), "{level:?}");
            check_semantics_on_zero(&c, &out);
        }
    }

    #[test]
    fn full_optimization_not_larger_than_none() {
        let mut c = Circuit::new(4);
        c.h(0).h(0).ccx(0, 1, 2).swap(2, 3).ccx(0, 1, 2).x(3).x(3);
        let base = Transpiler::new(Device::fake_valencia())
            .with_optimization(OptimizationLevel::None)
            .with_trivial_layout()
            .transpile(&c)
            .unwrap();
        let opt = Transpiler::new(Device::fake_valencia())
            .with_optimization(OptimizationLevel::Full)
            .with_trivial_layout()
            .transpile(&c)
            .unwrap();
        assert!(opt.circuit.gate_count() <= base.circuit.gate_count());
    }

    #[test]
    fn rejects_oversized_circuit() {
        let c = Circuit::new(6);
        let t = Transpiler::new(Device::fake_valencia());
        assert!(matches!(
            t.transpile(&c),
            Err(CompileError::CircuitTooLarge { .. })
        ));
    }

    #[test]
    fn extended_device_hosts_12_qubits() {
        let mut c = Circuit::new(12);
        c.h(0);
        for i in 0..11 {
            c.cx(i, i + 1);
        }
        let t = Transpiler::new(Device::fake_valencia_extended(12));
        let out = t.transpile(&c).unwrap();
        assert!(conforms_to_device(&out.circuit, t.device()));
    }

    #[test]
    fn basis_translation_rejects_multiqubit_leftovers() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert!(matches!(
            translate_to_basis(&c),
            Err(CompileError::UnsupportedGate(_))
        ));
    }

    #[test]
    fn logical_circuit_matches_input_unitary() {
        use qsim::unitary::circuit_unitary;
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 2).ccx(0, 1, 2).t(1).cx(1, 0);
        for level in [OptimizationLevel::Light, OptimizationLevel::Full] {
            let out = Transpiler::new(Device::fake_valencia())
                .with_optimization(level)
                .transpile(&c)
                .unwrap();
            let logical = out.into_logical_circuit();
            // Pad the original onto the same register and compare.
            let mut padded = Circuit::new(logical.num_qubits());
            padded.compose(&c).unwrap();
            let ua = circuit_unitary(&padded).unwrap();
            let ub = circuit_unitary(&logical).unwrap();
            assert!(
                ua.approx_eq_up_to_phase(&ub, 1e-8),
                "{level:?}: logical reconstruction diverged"
            );
        }
    }

    #[test]
    fn trivial_layout_respected() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1);
        let t = Transpiler::new(Device::fake_valencia()).with_trivial_layout();
        let out = t.transpile(&c).unwrap();
        for l in 0..3 {
            assert_eq!(out.initial_layout.physical(l), l);
        }
    }
}
