//! Gate decomposition to {single-qubit, CX}.
//!
//! Lowers the full [`Gate`] set to single-qubit gates plus CX, the form the
//! router and basis translator operate on. Multi-controlled X gates use the
//! recursive multi-controlled-phase construction (no ancilla qubits), which
//! matches how a compiler must handle RevLib's MCT networks on real
//! hardware.

use qcir::{Circuit, Gate, Instruction};
use std::f64::consts::{FRAC_PI_2, PI};

/// Decomposes every gate in `circuit` into single-qubit gates and CX.
///
/// The output acts on the same wires and implements the same unitary (up to
/// global phase).
///
/// # Example
///
/// ```
/// use qcir::{Circuit, Gate};
/// use qcompile::decompose::decompose_to_cx;
///
/// let mut c = Circuit::new(3);
/// c.ccx(0, 1, 2);
/// let lowered = decompose_to_cx(&c);
/// assert!(lowered.iter().all(|i| i.gate().arity() == 1 || i.gate() == &Gate::CX));
/// ```
pub fn decompose_to_cx(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name());
    for inst in circuit.iter() {
        emit(&mut out, inst);
    }
    out
}

fn q(inst: &Instruction, i: usize) -> u32 {
    inst.qubits()[i].raw()
}

fn emit(out: &mut Circuit, inst: &Instruction) {
    match inst.gate() {
        Gate::I => {}
        g if g.arity() == 1 => {
            out.push(inst.clone()).expect("same register");
        }
        Gate::CX => {
            out.push(inst.clone()).expect("same register");
        }
        Gate::CZ => {
            let (c, t) = (q(inst, 0), q(inst, 1));
            out.h(t).cx(c, t).h(t);
        }
        Gate::CY => {
            let (c, t) = (q(inst, 0), q(inst, 1));
            out.sdg(t).cx(c, t).s(t);
        }
        Gate::CH => {
            // ch(c,t) = (S·H·T)ₜ · CX · (T†·H†·S†)ₜ pattern; verified by the
            // unitary-equivalence tests below.
            let (c, t) = (q(inst, 0), q(inst, 1));
            out.s(t).h(t).t(t).cx(c, t).tdg(t).h(t).sdg(t);
        }
        Gate::CP(a) => {
            let (c, t) = (q(inst, 0), q(inst, 1));
            emit_cp(out, *a, c, t);
        }
        Gate::CRz(a) => {
            let (c, t) = (q(inst, 0), q(inst, 1));
            out.rz(a / 2.0, t).cx(c, t).rz(-a / 2.0, t).cx(c, t);
        }
        Gate::Swap => {
            let (a, b) = (q(inst, 0), q(inst, 1));
            out.cx(a, b).cx(b, a).cx(a, b);
        }
        Gate::CCX => {
            let (c0, c1, t) = (q(inst, 0), q(inst, 1), q(inst, 2));
            emit_ccx(out, c0, c1, t);
        }
        Gate::CSwap => {
            let (c, a, b) = (q(inst, 0), q(inst, 1), q(inst, 2));
            out.cx(b, a);
            emit_ccx(out, c, a, b);
            out.cx(b, a);
        }
        Gate::Mcx(_) => {
            let ops = inst.qubits();
            let controls: Vec<u32> = ops[..ops.len() - 1].iter().map(|x| x.raw()).collect();
            let target = ops[ops.len() - 1].raw();
            emit_mcx(out, &controls, target);
        }
        other => {
            // All variants are covered above; this is unreachable but kept
            // as a defensive copy for future gate-set growth.
            let _ = other;
            out.push(inst.clone()).expect("same register");
        }
    }
}

/// Standard 6-CX, T-depth-3 Toffoli decomposition.
fn emit_ccx(out: &mut Circuit, c0: u32, c1: u32, t: u32) {
    out.h(t)
        .cx(c1, t)
        .tdg(t)
        .cx(c0, t)
        .t(t)
        .cx(c1, t)
        .tdg(t)
        .cx(c0, t)
        .t(c1)
        .t(t)
        .h(t)
        .cx(c0, c1)
        .t(c0)
        .tdg(c1)
        .cx(c0, c1);
}

/// Controlled-phase via two CX and three phase gates.
fn emit_cp(out: &mut Circuit, lambda: f64, c: u32, t: u32) {
    out.p(lambda / 2.0, c)
        .cx(c, t)
        .p(-lambda / 2.0, t)
        .cx(c, t)
        .p(lambda / 2.0, t);
}

/// Multi-controlled X without ancillas: `C^k X = H(t) · C^k Z · H(t)`, and
/// `C^k Z = C^k P(π)` by the recursive halving construction
/// (`C^k P(λ) = CP(λ/2) on (c_k, t) · C^{k-1}X · CP(-λ/2) · C^{k-1}X ·
/// C^{k-1}P(λ/2)`), which bottoms out at plain CP. Gate count is O(2ᵏ) —
/// exactly the cost profile that makes large MCT gates expensive on
/// hardware.
fn emit_mcx(out: &mut Circuit, controls: &[u32], target: u32) {
    match controls.len() {
        0 => {
            out.x(target);
        }
        1 => {
            out.cx(controls[0], target);
        }
        2 => emit_ccx(out, controls[0], controls[1], target),
        _ => {
            out.h(target);
            emit_mcp(out, PI, controls, target);
            out.h(target);
        }
    }
}

fn emit_mcp(out: &mut Circuit, lambda: f64, controls: &[u32], target: u32) {
    match controls.len() {
        0 => {
            out.p(lambda, target);
        }
        1 => emit_cp(out, lambda, controls[0], target),
        _ => {
            let (rest, last) = controls.split_at(controls.len() - 1);
            let last = last[0];
            emit_cp(out, lambda / 2.0, last, target);
            emit_mcx(out, rest, last);
            emit_cp(out, -lambda / 2.0, last, target);
            emit_mcx(out, rest, last);
            emit_mcp(out, lambda / 2.0, rest, target);
        }
    }
}

/// Translates a single-qubit gate into its `U(θ, φ, λ)` parameters (up to
/// global phase).
///
/// Returns `None` for multi-qubit gates.
pub fn to_u_params(gate: &Gate) -> Option<(f64, f64, f64)> {
    Some(match gate {
        Gate::I => (0.0, 0.0, 0.0),
        Gate::X => (PI, 0.0, PI),
        Gate::Y => (PI, FRAC_PI_2, FRAC_PI_2),
        Gate::Z => (0.0, 0.0, PI),
        Gate::H => (FRAC_PI_2, 0.0, PI),
        Gate::S => (0.0, 0.0, FRAC_PI_2),
        Gate::Sdg => (0.0, 0.0, -FRAC_PI_2),
        Gate::T => (0.0, 0.0, PI / 4.0),
        Gate::Tdg => (0.0, 0.0, -PI / 4.0),
        Gate::Sx => (FRAC_PI_2, -FRAC_PI_2, FRAC_PI_2),
        Gate::Sxdg => (FRAC_PI_2, FRAC_PI_2, -FRAC_PI_2),
        Gate::Rx(a) => (*a, -FRAC_PI_2, FRAC_PI_2),
        Gate::Ry(a) => (*a, 0.0, 0.0),
        Gate::Rz(a) => (0.0, 0.0, *a),
        Gate::P(a) => (0.0, 0.0, *a),
        Gate::U(t, p, l) => (*t, *p, *l),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::matrix::gate_matrix;
    use qsim::unitary::equivalent_up_to_phase;

    const EPS: f64 = 1e-9;

    fn check_equiv(original: &Circuit) {
        let lowered = decompose_to_cx(original);
        assert!(
            lowered
                .iter()
                .all(|i| i.gate().arity() == 1 || i.gate() == &Gate::CX),
            "decomposition left a non-CX multi-qubit gate"
        );
        assert!(
            equivalent_up_to_phase(original, &lowered, EPS).unwrap(),
            "decomposition changed the unitary of {}",
            original.name()
        );
    }

    #[test]
    fn ccx_decomposition_correct() {
        let mut c = Circuit::with_name(3, "ccx");
        c.ccx(0, 1, 2);
        check_equiv(&c);
        let mut c = Circuit::with_name(3, "ccx_perm");
        c.ccx(2, 0, 1);
        check_equiv(&c);
    }

    #[test]
    fn two_qubit_decompositions_correct() {
        for (name, gate) in [
            ("cz", Gate::CZ),
            ("cy", Gate::CY),
            ("ch", Gate::CH),
            ("swap", Gate::Swap),
            ("cp", Gate::CP(0.73)),
            ("crz", Gate::CRz(-1.1)),
        ] {
            let mut c = Circuit::with_name(2, name);
            c.append(gate, &[0, 1]).unwrap();
            check_equiv(&c);
        }
    }

    #[test]
    fn cswap_decomposition_correct() {
        let mut c = Circuit::with_name(3, "cswap");
        c.cswap(0, 1, 2);
        check_equiv(&c);
    }

    #[test]
    fn mcx_decompositions_correct() {
        for controls in 3..=5u32 {
            let n = controls + 1;
            let mut c = Circuit::with_name(n, format!("mcx{controls}"));
            let control_list: Vec<u32> = (0..controls).collect();
            c.mcx(&control_list, controls);
            check_equiv(&c);
        }
    }

    #[test]
    fn single_qubit_gates_pass_through() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).rz(0.3, 0);
        let lowered = decompose_to_cx(&c);
        assert_eq!(lowered.gate_count(), 3);
    }

    #[test]
    fn identity_gates_dropped() {
        let mut c = Circuit::new(1);
        c.append(Gate::I, &[0]).unwrap();
        let lowered = decompose_to_cx(&c);
        assert!(lowered.is_empty());
    }

    #[test]
    fn mixed_circuit_roundtrip() {
        let mut c = Circuit::with_name(4, "mixed");
        c.h(0)
            .ccx(0, 1, 2)
            .swap(2, 3)
            .cp(0.4, 0, 3)
            .mcx(&[0, 1, 2], 3);
        check_equiv(&c);
    }

    #[test]
    fn u_params_match_gate_matrices() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(0.37),
            Gate::Ry(1.2),
            Gate::Rz(-0.8),
            Gate::P(0.55),
        ];
        for g in gates {
            let (t, p, l) = to_u_params(&g).unwrap();
            let u = gate_matrix(&Gate::U(t, p, l));
            let m = gate_matrix(&g);
            assert!(u.approx_eq_up_to_phase(&m, 1e-12), "u-params wrong for {g}");
        }
        assert!(to_u_params(&Gate::CX).is_none());
    }
}
