//! Gate-time scheduling: converts layer depth into device wall-clock
//! duration.
//!
//! The paper's headline overhead claim is "0% depth increase"; what a
//! device operator actually cares about is execution *time*, which
//! drives decoherence. This module assigns each gate a duration from a
//! [`GateTimes`] profile (defaults match IBM Falcon-generation devices
//! like `ibmq_valencia`: ~35 ns single-qubit, ~300 ns CX) and computes
//! the ASAP finish time of the circuit — so the depth claim can be
//! re-verified in nanoseconds.

use qcir::{Circuit, Gate};

/// Per-gate-class durations in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTimes {
    /// Single-qubit gate duration.
    pub single_qubit_ns: f64,
    /// Two-qubit gate duration.
    pub two_qubit_ns: f64,
    /// Extra duration per additional control beyond two operands (models
    /// the decomposition cost of MCT gates executed natively-ish).
    pub per_extra_control_ns: f64,
}

impl GateTimes {
    /// Falcon-generation defaults (~`ibmq_valencia`).
    pub fn falcon() -> Self {
        GateTimes {
            single_qubit_ns: 35.0,
            two_qubit_ns: 300.0,
            per_extra_control_ns: 600.0,
        }
    }

    /// Duration of one gate under this profile.
    pub fn duration(&self, gate: &Gate) -> f64 {
        match gate.arity() {
            0 | 1 => self.single_qubit_ns,
            2 => self.two_qubit_ns,
            arity => self.two_qubit_ns + (arity as f64 - 2.0) * self.per_extra_control_ns,
        }
    }
}

impl Default for GateTimes {
    fn default() -> Self {
        GateTimes::falcon()
    }
}

/// ASAP schedule of a circuit under a duration profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Start time (ns) of each instruction, in program order.
    pub start_times: Vec<f64>,
    /// Total circuit duration (ns): the latest gate finish time.
    pub duration_ns: f64,
}

/// Computes the ASAP schedule: each gate starts as soon as all its wires
/// are free.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qcompile::schedule::{schedule, GateTimes};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1); // 35 ns then 300 ns, serialized on q0
/// let s = schedule(&c, &GateTimes::falcon());
/// assert!((s.duration_ns - 335.0).abs() < 1e-9);
/// ```
pub fn schedule(circuit: &Circuit, times: &GateTimes) -> Schedule {
    let mut wire_free = vec![0.0f64; circuit.num_qubits() as usize];
    let mut start_times = Vec::with_capacity(circuit.gate_count());
    let mut finish = 0.0f64;
    for inst in circuit.iter() {
        let start = inst
            .qubits()
            .iter()
            .map(|q| wire_free[q.index()])
            .fold(0.0, f64::max);
        let end = start + times.duration(inst.gate());
        for q in inst.qubits() {
            wire_free[q.index()] = end;
        }
        start_times.push(start);
        finish = finish.max(end);
    }
    Schedule {
        start_times,
        duration_ns: finish,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_sums_durations() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).x(0);
        let s = schedule(&c, &GateTimes::falcon());
        assert!((s.duration_ns - 105.0).abs() < 1e-9);
        assert_eq!(s.start_times, vec![0.0, 35.0, 70.0]);
    }

    #[test]
    fn parallel_gates_overlap() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let s = schedule(&c, &GateTimes::falcon());
        assert!((s.duration_ns - 300.0).abs() < 1e-9);
        assert_eq!(s.start_times, vec![0.0, 0.0]);
    }

    #[test]
    fn mct_gates_cost_more() {
        let times = GateTimes::falcon();
        assert!(times.duration(&Gate::CCX) > times.duration(&Gate::CX));
        assert!(times.duration(&Gate::Mcx(4)) > times.duration(&Gate::CCX));
    }

    #[test]
    fn tetrislock_insertion_adds_zero_duration() {
        // The wall-clock version of the 0%-depth claim: inserted gates
        // hide inside idle wire time, so the scheduled duration of the
        // obfuscated circuit can exceed the original only if an inserted
        // gate's duration outruns its window. For X/CX pairs in leading
        // windows of RevLib circuits this stays modest; verify on the
        // benchmark with the widest windows that it is exactly zero.
        let bench = revlib_like_staircase();
        let times = GateTimes::falcon();
        let base = schedule(&bench, &times).duration_ns;
        // Structural insertion (not via tetrislock to avoid a dependency
        // cycle): X;X pair on the fully idle wire 3.
        let mut obf = qcir::Circuit::new(4);
        obf.x(3).x(3);
        for inst in bench.iter() {
            obf.push(inst.clone()).unwrap();
        }
        let with_pair = schedule(&obf, &times).duration_ns;
        assert!(
            with_pair <= base + 1e-9,
            "pair on an idle wire must not extend the schedule"
        );
    }

    fn revlib_like_staircase() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(0, 1).h(2);
        c
    }

    #[test]
    fn empty_circuit_zero_duration() {
        let s = schedule(&Circuit::new(2), &GateTimes::falcon());
        assert_eq!(s.duration_ns, 0.0);
        assert!(s.start_times.is_empty());
    }
}
